#!/bin/bash
# Regenerates every table/figure of the paper (see EXPERIMENTS.md).
# Google-benchmark binaries (micro_*) additionally drop machine-readable
# results into bench_results/<name>.json for regression tracking.
mkdir -p /root/repo/bench_results
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue   # skip CMake artifacts
  echo "##### $b"
  name=$(basename "$b")
  case "$name" in
    micro_model)
      # Model-state layer round cost: O(dirty set) rebaselining at 1/10/100%
      # dirty fractions (BM_SyncRebaseline).
      "$b" --benchmark_out=/root/repo/bench_results/BENCH_model.json \
           --benchmark_out_format=json
      ;;
    micro_sync)
      # Sync critical path: one full pack/exchange/fold/apply round at
      # 100k x 200 scale, serial vs parallel engine, 1 vs 4 worker threads
      # (BM_SyncRound; sync() wall only via manual timing).
      "$b" --benchmark_out=/root/repo/bench_results/BENCH_sync.json \
           --benchmark_out_format=json
      ;;
    micro_*)
      "$b" --benchmark_out="/root/repo/bench_results/${name}.json" \
           --benchmark_out_format=json
      ;;
    fig8_strong_scaling)
      # Codec sweep: one row set per wire codec (fp32 = historical numbers).
      GW2V_SYNC_CODEC=fp32,fp16,int8 \
      GW2V_FIG8_JSON=/root/repo/bench_results/BENCH_fig8.json "$b"
      ;;
    fig9_comm_breakdown)
      # Codec sweep; the binary gates fp16 <= 0.55x and int8 <= 0.35x of the
      # fp32 volume per variant at 8/32 hosts (nonzero exit on failure).
      GW2V_SYNC_CODEC=fp32,fp16,int8 \
      GW2V_FIG9_JSON=/root/repo/bench_results/BENCH_fig9.json "$b"
      ;;
    ablation_codec)
      # Quality ablation: fp32 vs fp16+ef vs int8+ef vs int8 without error
      # feedback, analogy accuracy next to wire volume.
      GW2V_CODEC_JSON=/root/repo/bench_results/BENCH_codec.json "$b"
      ;;
    ps_convergence)
      # Async PS vs BSP: accuracy next to modelled wallclock at 8/32 workers,
      # SSP staleness 0/2/8. Gates "naive accuracy at <= 0.5x naive bytes" at
      # the largest host count (nonzero exit on failure); time columns are
      # reported, not gated — BSP stays faster, as in the paper's Table 4.
      GW2V_PS_GATE=volume \
      GW2V_PS_JSON=/root/repo/bench_results/BENCH_ps.json "$b"
      ;;
    serve_loadgen)
      # Serving bench: QPS, p50/p99 latency, batch occupancy, bytes/query,
      # plus the recall@10 == 1.0 determinism gate (nonzero exit on failure).
      # GW2V_SERVE_ANN=1 adds the IVF nprobe sweep (recall@10 / scan cost /
      # p50/p99 per point in the JSON "ann" block) and its recall >= 0.95 at
      # >= 10x scoring-speedup gate.
      GW2V_SERVE_ANN=1 \
      GW2V_SERVE_JSON=/root/repo/bench_results/BENCH_serve.json "$b"
      ;;
    store_hitrate)
      # Out-of-core block cache: hit-rate sweep over eviction policy x cache
      # budget x Zipf skew with full counter rows (hits/misses/evictions/
      # write-backs/pinned residency). Gates monotonicity in skew and the
      # zipf-pinned >= 0.9 hit rate at skew 1.0 with a 25% budget (nonzero
      # exit on failure). The spill dir is scratch; always cleaned up.
      GW2V_STORE_DIR=/root/repo/bench_results/store_spill \
      GW2V_STORE_JSON=/root/repo/bench_results/BENCH_store.json "$b"
      rm -rf /root/repo/bench_results/store_spill
      ;;
    graph_embeddings)
      # Random-walk node-embedding workload: walk throughput, per-ingestion-
      # path wall time and peak resident corpus bytes, held-out recall@10 /
      # link AUC. Gates bit-identity across paths, recall@10 >= 0.5 (random
      # <= 0.05), AUC >= 0.9, and pipelined peak corpus <= 25% of
      # materialized (nonzero exit on failure).
      GW2V_GRAPHEMB_JSON=/root/repo/bench_results/BENCH_graphemb.json "$b"
      ;;
    *)
      "$b"
      ;;
  esac
  echo
done
