#!/bin/bash
# Regenerates every table/figure of the paper (see EXPERIMENTS.md).
# Google-benchmark binaries (micro_*) additionally drop machine-readable
# results into bench_results/<name>.json for regression tracking.
mkdir -p /root/repo/bench_results
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue   # skip CMake artifacts
  echo "##### $b"
  name=$(basename "$b")
  case "$name" in
    micro_model)
      # Model-state layer round cost: O(dirty set) rebaselining at 1/10/100%
      # dirty fractions (BM_SyncRebaseline).
      "$b" --benchmark_out=/root/repo/bench_results/BENCH_model.json \
           --benchmark_out_format=json
      ;;
    micro_*)
      "$b" --benchmark_out="/root/repo/bench_results/${name}.json" \
           --benchmark_out_format=json
      ;;
    serve_loadgen)
      # Serving bench: QPS, p50/p99 latency, batch occupancy, bytes/query,
      # plus the recall@10 == 1.0 determinism gate (nonzero exit on failure).
      GW2V_SERVE_JSON=/root/repo/bench_results/BENCH_serve.json "$b"
      ;;
    *)
      "$b"
      ;;
  esac
  echo
done
