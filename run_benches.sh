#!/bin/bash
# Regenerates every table/figure of the paper (see EXPERIMENTS.md).
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue   # skip CMake artifacts
  echo "##### $b"
  "$b"
  echo
done
