#!/bin/bash
# Regenerates every table/figure of the paper (see EXPERIMENTS.md).
# Google-benchmark binaries (micro_*) additionally drop machine-readable
# results into bench_results/<name>.json for regression tracking.
mkdir -p /root/repo/bench_results
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue   # skip CMake artifacts
  echo "##### $b"
  name=$(basename "$b")
  case "$name" in
    micro_*)
      "$b" --benchmark_out="/root/repo/bench_results/${name}.json" \
           --benchmark_out_format=json
      ;;
    *)
      "$b"
      ;;
  esac
  echo
done
