// Analogical-reasoning evaluation walkthrough (paper Section 5.1): train on
// a synthetic corpus, then print the per-category accuracy table exactly as
// the original compute-accuracy tooling does, plus a few example analogy
// predictions.
//
//   ./examples/analogy_eval [epochs]

#include <cstdio>
#include <cstdlib>

#include "baselines/shared_memory.h"
#include "eval/analogy.h"
#include "eval/embedding_view.h"
#include "synth/generator.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

int main(int argc, char** argv) {
  using namespace gw2v;
  const unsigned epochs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;

  synth::CorpusSpec spec;
  spec.totalTokens = 250'000;
  spec.fillerVocab = 800;
  spec.relations = synth::defaultRelations(16);
  spec.factProbability = 0.6;
  const synth::CorpusGenerator gen(spec);
  const std::string body = gen.generateText();

  text::Vocabulary vocab;
  text::forEachToken(body, [&](std::string_view tok) { vocab.addToken(tok); });
  vocab.finalize(5);
  const auto corpus = text::encode(body, vocab);

  baselines::SharedMemoryOptions opts;
  opts.sgns.dim = 32;
  opts.sgns.negatives = 10;
  opts.sgns.subsample = 1e-3;
  opts.epochs = epochs;
  opts.trackLoss = false;
  std::printf("training %u epochs on %zu tokens (vocab %u)...\n", epochs, corpus.size(),
              vocab.size());
  const auto trained = baselines::trainHogwild(vocab, corpus, opts);

  const eval::AnalogyTask task(gen.analogySuite(60), vocab);
  const eval::EmbeddingView view(trained.model, vocab);
  const auto report = task.evaluate(view);

  std::printf("\n%-32s %10s   (%s)\n", "category", "accuracy", "sem/syn");
  for (std::size_t i = 0; i < report.perCategory.size(); ++i) {
    std::printf("%-32s %9.1f%%   (%s)\n", report.perCategory[i].first.c_str(),
                report.perCategory[i].second,
                task.categories()[i].semantic ? "semantic" : "syntactic");
  }
  std::printf("\nsemantic %.2f%%  syntactic %.2f%%  total %.2f%%  (%zu questions)\n",
              report.semantic, report.syntactic, report.total, task.totalQuestions());

  // A few concrete predictions, word2vec-demo style.
  std::printf("\nexample predictions (a : b :: c : ?):\n");
  int shown = 0;
  for (const auto& cat : task.categories()) {
    if (cat.questions.empty()) continue;
    const auto& q = cat.questions.front();
    const auto predicted = view.predictAnalogy(q.a, q.b, q.c);
    std::printf("  [%-28s] %s : %s :: %s : %s  (expect %s) %s\n", cat.name.c_str(),
                vocab.wordOf(q.a).c_str(), vocab.wordOf(q.b).c_str(),
                vocab.wordOf(q.c).c_str(),
                predicted == text::kInvalidWord ? "?" : vocab.wordOf(predicted).c_str(),
                vocab.wordOf(q.expected).c_str(), predicted == q.expected ? "OK" : "x");
    if (++shown == 6) break;
  }
  return 0;
}
