// Node embeddings over a synthetic community graph: generate random walks
// (DeepWalk / node2vec), train them through the distributed Word2Vec stack,
// and score the embedding against held-out edges — the graph workload the
// streaming corpus pipeline was built for.
//
//   ./examples/node_embeddings [options]
//
// Options:
//   -communities N   planted communities            (default 8)
//   -nodes N         nodes per community            (default 48)
//   -hosts N         simulated cluster size         (default 4)
//   -iter N          epochs                         (default 5)
//   -size N          embedding dimensionality       (default 64)
//   -walks N         walks started per node         (default 8)
//   -length N        tokens per walk                (default 30)
//   -p F / -q F      node2vec return / in-out bias  (default 1 1 = DeepWalk)
//   -held F          fraction of edges held out     (default 0.1)
//   -stream 1        pipeline walk generation through bounded rings

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/embedding_view.h"
#include "eval/link_prediction.h"
#include "graph/random_walks.h"
#include "graph/synthetic.h"
#include "text/streaming.h"
#include "util/rng.h"

namespace {

using namespace gw2v;

int usage() {
  std::fprintf(stderr,
               "usage: node_embeddings [-communities N] [-nodes N] [-hosts N] [-iter N]\n"
               "                       [-size N] [-walks N] [-length N] [-p F] [-q F]\n"
               "                       [-held F] [-stream 1]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  graph::CommunityGraphSpec spec;
  spec.communities = 8;
  spec.nodesPerCommunity = 48;
  spec.seed = 7;
  graph::WalkOptions wopts;
  wopts.walksPerNode = 8;
  wopts.walkLength = 30;
  wopts.seed = 9;
  core::TrainOptions topts;
  topts.sgns.dim = 64;
  topts.sgns.window = 5;
  topts.sgns.negatives = 5;
  topts.sgns.subsample = 0;
  topts.epochs = 5;
  topts.numHosts = 4;
  topts.trackLoss = false;
  double heldFraction = 0.1;
  bool stream = false;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "-communities") spec.communities = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-nodes") spec.nodesPerCommunity = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-hosts") topts.numHosts = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-iter") topts.epochs = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-size") topts.sgns.dim = static_cast<std::uint32_t>(std::atoi(val));
    else if (flag == "-walks") wopts.walksPerNode = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-length") wopts.walkLength = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-p") wopts.p = static_cast<float>(std::atof(val));
    else if (flag == "-q") wopts.q = static_cast<float>(std::atof(val));
    else if (flag == "-held") heldFraction = std::atof(val);
    else if (flag == "-stream") stream = std::atoi(val) != 0;
    else {
      std::fprintf(stderr, "unknown option %s\n", flag.c_str());
      return usage();
    }
  }

  // Build the graph, hold out edges, and train on the remainder only.
  const auto cg = graph::makeCommunityGraph(spec);
  std::vector<graph::Edge> undirected;
  for (const auto& e : cg.edges)
    if (e.src < e.dst) undirected.push_back(e);
  const auto split = eval::splitEdges(undirected, heldFraction, spec.seed);
  const auto trainEdges = graph::symmetrize(split.train);
  const graph::CSRGraph g(cg.numNodes, trainEdges);
  const auto nodes = graph::degreeVocabulary(g);
  std::printf("graph: %u nodes (%u communities), %zu train / %zu held edges, vocab %u\n",
              cg.numNodes, spec.communities, split.train.size(), split.held.size(),
              nodes.vocab.size());

  graph::RandomWalkCorpus walks(g, nodes, wopts, topts.numHosts);
  std::printf("walks: %u per node x %u tokens (p=%.2f q=%.2f) = %llu tokens/epoch%s\n",
              wopts.walksPerNode, wopts.walkLength, static_cast<double>(wopts.p),
              static_cast<double>(wopts.q),
              static_cast<unsigned long long>(walks.totalTokensPerEpoch()),
              stream ? ", pipelined" : "");

  const core::GraphWord2Vec trainer(nodes.vocab, topts);
  core::TrainResult result;
  if (stream) {
    const auto source = text::streamSource(walks);
    result = trainer.train(*source);
  } else {
    result = trainer.train(walks);
  }
  std::printf("trained %llu examples on %u host(s); peak resident corpus %llu bytes\n",
              static_cast<unsigned long long>(result.totalExamples), topts.numHosts,
              static_cast<unsigned long long>(result.corpusResidentBytesPeak));

  const eval::EmbeddingView view(result.model, nodes.vocab);
  const double recall = eval::neighborRecallAtK(view, nodes, split.held, 10);
  const double auc = eval::linkAuc(view, nodes, g, split.held, 11);
  std::uint64_t same = 0, total = 0;
  for (graph::NodeId n = 0; n < g.numNodes(); ++n) {
    if (nodes.wordOfNode[n] == text::kInvalidWord) continue;
    for (const auto& nb : view.nearestTo(nodes.wordOfNode[n], 5)) {
      same += cg.communityOf[nodes.nodeOfWord[nb.word]] == cg.communityOf[n] ? 1 : 0;
      ++total;
    }
  }
  std::printf("held-out recall@10 %.3f (random ~%.3f)  link AUC %.3f  "
              "community purity@5 %.3f (random ~%.3f)\n",
              recall, 10.0 / nodes.vocab.size(), auc,
              static_cast<double>(same) / static_cast<double>(total),
              1.0 / spec.communities);
  return 0;
}
