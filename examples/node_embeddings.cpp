// Node embeddings over a synthetic community graph: generate random walks
// (DeepWalk / node2vec), train them through the distributed Word2Vec stack,
// and score the embedding against held-out edges — the graph workload the
// streaming corpus pipeline was built for.
//
//   ./examples/node_embeddings [options]
//
// Options:
//   -communities N   planted communities            (default 8)
//   -nodes N         nodes per community            (default 48)
//   -hosts N         simulated cluster size         (default 4)
//   -iter N          epochs                         (default 5)
//   -size N          embedding dimensionality       (default 64)
//   -walks N         walks started per node         (default 8)
//   -length N        tokens per walk                (default 30)
//   -p F / -q F      node2vec return / in-out bias  (default 1 1 = DeepWalk)
//   -held F          fraction of edges held out     (default 0.1)
//   -stream 1        pipeline walk generation through bounded rings
//   -nprobe N        IVF lists probed per ANN query (default 8)
//
// After training, the embedding is published as a serving snapshot carrying
// a publish-time IVF index, and nearest-neighbour queries are answered twice
// through the sharded QueryEngine — exact (the recall oracle) and ANN — to
// print the approximate path's recall against brute force.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "core/trainer.h"
#include "eval/embedding_view.h"
#include "eval/link_prediction.h"
#include "graph/random_walks.h"
#include "graph/synthetic.h"
#include "runtime/thread_pool.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "sim/cluster.h"
#include "text/streaming.h"
#include "util/rng.h"

namespace {

using namespace gw2v;

int usage() {
  std::fprintf(stderr,
               "usage: node_embeddings [-communities N] [-nodes N] [-hosts N] [-iter N]\n"
               "                       [-size N] [-walks N] [-length N] [-p F] [-q F]\n"
               "                       [-held F] [-stream 1] [-nprobe N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  graph::CommunityGraphSpec spec;
  spec.communities = 8;
  spec.nodesPerCommunity = 48;
  spec.seed = 7;
  graph::WalkOptions wopts;
  wopts.walksPerNode = 8;
  wopts.walkLength = 30;
  wopts.seed = 9;
  core::TrainOptions topts;
  topts.sgns.dim = 64;
  topts.sgns.window = 5;
  topts.sgns.negatives = 5;
  topts.sgns.subsample = 0;
  topts.epochs = 5;
  topts.numHosts = 4;
  topts.trackLoss = false;
  double heldFraction = 0.1;
  bool stream = false;
  std::uint32_t nprobe = 8;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "-communities") spec.communities = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-nodes") spec.nodesPerCommunity = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-hosts") topts.numHosts = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-iter") topts.epochs = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-size") topts.sgns.dim = static_cast<std::uint32_t>(std::atoi(val));
    else if (flag == "-walks") wopts.walksPerNode = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-length") wopts.walkLength = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-p") wopts.p = static_cast<float>(std::atof(val));
    else if (flag == "-q") wopts.q = static_cast<float>(std::atof(val));
    else if (flag == "-held") heldFraction = std::atof(val);
    else if (flag == "-stream") stream = std::atoi(val) != 0;
    else if (flag == "-nprobe") nprobe = static_cast<std::uint32_t>(std::atoi(val));
    else {
      std::fprintf(stderr, "unknown option %s\n", flag.c_str());
      return usage();
    }
  }

  // Build the graph, hold out edges, and train on the remainder only.
  const auto cg = graph::makeCommunityGraph(spec);
  std::vector<graph::Edge> undirected;
  for (const auto& e : cg.edges)
    if (e.src < e.dst) undirected.push_back(e);
  const auto split = eval::splitEdges(undirected, heldFraction, spec.seed);
  const auto trainEdges = graph::symmetrize(split.train);
  const graph::CSRGraph g(cg.numNodes, trainEdges);
  const auto nodes = graph::degreeVocabulary(g);
  std::printf("graph: %u nodes (%u communities), %zu train / %zu held edges, vocab %u\n",
              cg.numNodes, spec.communities, split.train.size(), split.held.size(),
              nodes.vocab.size());

  graph::RandomWalkCorpus walks(g, nodes, wopts, topts.numHosts);
  std::printf("walks: %u per node x %u tokens (p=%.2f q=%.2f) = %llu tokens/epoch%s\n",
              wopts.walksPerNode, wopts.walkLength, static_cast<double>(wopts.p),
              static_cast<double>(wopts.q),
              static_cast<unsigned long long>(walks.totalTokensPerEpoch()),
              stream ? ", pipelined" : "");

  const core::GraphWord2Vec trainer(nodes.vocab, topts);
  core::TrainResult result;
  if (stream) {
    const auto source = text::streamSource(walks);
    result = trainer.train(*source);
  } else {
    result = trainer.train(walks);
  }
  std::printf("trained %llu examples on %u host(s); peak resident corpus %llu bytes\n",
              static_cast<unsigned long long>(result.totalExamples), topts.numHosts,
              static_cast<unsigned long long>(result.corpusResidentBytesPeak));

  const eval::EmbeddingView view(result.model, nodes.vocab);
  const double recall = eval::neighborRecallAtK(view, nodes, split.held, 10);
  const double auc = eval::linkAuc(view, nodes, g, split.held, 11);
  std::uint64_t same = 0, total = 0;
  for (graph::NodeId n = 0; n < g.numNodes(); ++n) {
    if (nodes.wordOfNode[n] == text::kInvalidWord) continue;
    for (const auto& nb : view.nearestTo(nodes.wordOfNode[n], 5)) {
      same += cg.communityOf[nodes.nodeOfWord[nb.word]] == cg.communityOf[n] ? 1 : 0;
      ++total;
    }
  }
  std::printf("held-out recall@10 %.3f (random ~%.3f)  link AUC %.3f  "
              "community purity@5 %.3f (random ~%.3f)\n",
              recall, 10.0 / nodes.vocab.size(), auc,
              static_cast<double>(same) / static_cast<double>(total),
              1.0 / spec.communities);

  // Serve the embedding: publish one snapshot with a publish-time IVF index
  // (auto list count = √N) and answer each sampled node's nearest-neighbour
  // query twice through the sharded engine — exact, then ANN. Candidate
  // scores are bit-exact between the modes, so the only possible difference
  // is coverage, reported below as recall against the exact oracle.
  runtime::ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  serve::SnapshotStore store(topts.numHosts + 1);
  store.publish(serve::EmbeddingSnapshot::fromModel(result.model, nullptr, 1,
                                                    serve::AnnBuildOptions{}, &pool));

  constexpr unsigned kNN = 10;
  const auto numWords = static_cast<std::uint32_t>(nodes.vocab.size());
  const std::uint32_t numQueries = std::min<std::uint32_t>(numWords, 64);
  double recallSum = 0.0;
  double probesAvg = 0.0, candRatio = 0.0;
  sim::ClusterOptions copts;
  copts.numHosts = topts.numHosts;
  sim::runCluster(copts, [&](sim::HostContext& ctx) {
    comm::SimTransport transport(ctx.network());
    serve::QueryEngine engine(transport, ctx.id(), store);
    if (ctx.id() != 0) {
      engine.run();
      return;
    }
    std::thread driver([&] {
      serve::QueryOptions qo;
      qo.mode = serve::QueryMode::kAnn;
      qo.nprobe = nprobe;
      const std::uint32_t stride = std::max<std::uint32_t>(1, numWords / numQueries);
      for (std::uint32_t i = 0; i < numQueries; ++i) {
        const auto w = static_cast<text::WordId>((i * stride) % numWords);
        const auto exact = engine.queryWord(w, kNN);
        const auto approx = engine.queryWord(w, kNN, qo);
        if (exact.neighbors.empty()) continue;
        unsigned hit = 0;
        for (const auto& c : approx.neighbors)
          for (const auto& e : exact.neighbors)
            if (c.id == e.id) {
              ++hit;
              break;
            }
        recallSum += static_cast<double>(hit) / static_cast<double>(exact.neighbors.size());
      }
      const auto& m = engine.metrics();
      const std::uint64_t annQ = m.annQueries.load();
      probesAvg = annQ == 0 ? 0.0
                            : static_cast<double>(m.annProbeCount.load()) /
                                  static_cast<double>(annQ);
      candRatio = m.annCandidateRatio();
      engine.shutdown();
    });
    engine.run();
    driver.join();
  });
  std::printf("serve: ANN recall@%u vs exact %.3f over %u queries on %u host(s)  "
              "(nprobe %u, avg probes %.1f, candidate ratio %.3f)\n",
              kNN, recallSum / numQueries, numQueries, topts.numHosts, nprobe, probesAvg,
              candRatio);
  return 0;
}
