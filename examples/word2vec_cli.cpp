// A word2vec.c-style command-line tool on top of the library: train from a
// plain-text file on a simulated cluster, save vectors in the word2vec text
// format, and query nearest neighbours interactively from a saved file.
//
//   ./examples/word2vec_cli train <corpus.txt> <vectors.txt> [options]
//   ./examples/word2vec_cli nn <vectors.txt> <word> [k]
//
// Train options (word2vec.c-compatible spellings where applicable):
//   -size N     embedding dimensionality      (default 100)
//   -window N   context window                (default 5)
//   -negative N negatives; 0 selects HS       (default 5)
//   -sample F   subsampling threshold         (default 1e-4)
//   -alpha F    initial learning rate         (default 0.025)
//   -iter N     epochs                        (default 5)
//   -min-count N                              (default 5)
//   -hosts N    simulated cluster size        (default 1)
//   -cbow 1     CBOW instead of skip-gram     (default 0)
//   -spill-dir D  out-of-core mode: spill each replica's model to block
//                 files under D (src/store/), training bit-identical
//   -cache-mb N   block-cache budget per replica in MB (default 64;
//                 only meaningful with -spill-dir)
//   -stream 1   stream the corpus from disk each epoch through bounded
//               per-host rings instead of materializing it in RAM; same
//               token streams, so same model bits (shuffle differs — see
//               TrainOptions::shuffleEachEpoch)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/trainer.h"
#include "store/stored_table.h"
#include "eval/embedding_view.h"
#include "eval/vectors_io.h"
#include "text/corpus.h"
#include "text/streaming.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace {

using namespace gw2v;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  word2vec_cli train <corpus.txt> <vectors.txt> [-size N] [-window N]\n"
               "                [-negative N] [-sample F] [-alpha F] [-iter N]\n"
               "                [-min-count N] [-hosts N] [-cbow 1]\n"
               "                [-spill-dir D] [-cache-mb N] [-stream 1]\n"
               "  word2vec_cli nn <vectors.txt> <word> [k]\n");
  return 2;
}

int runTrain(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string corpusPath = argv[2];
  const std::string vectorsPath = argv[3];

  core::TrainOptions opts;
  opts.sgns.dim = 100;
  opts.sgns.negatives = 5;
  opts.epochs = 5;
  std::uint64_t minCount = 5;
  std::string spillDir;
  std::uint64_t cacheMb = 64;
  bool stream = false;
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "-size") opts.sgns.dim = static_cast<std::uint32_t>(std::atoi(val));
    else if (flag == "-window") opts.sgns.window = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-negative") opts.sgns.negatives = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-sample") opts.sgns.subsample = std::atof(val);
    else if (flag == "-alpha") opts.sgns.alpha = static_cast<float>(std::atof(val));
    else if (flag == "-iter") opts.epochs = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-min-count") minCount = static_cast<std::uint64_t>(std::atoll(val));
    else if (flag == "-hosts") opts.numHosts = static_cast<unsigned>(std::atoi(val));
    else if (flag == "-spill-dir") spillDir = val;
    else if (flag == "-cache-mb") cacheMb = static_cast<std::uint64_t>(std::atoll(val));
    else if (flag == "-stream") stream = std::atoi(val) != 0;
    else if (flag == "-cbow" && std::atoi(val) != 0)
      opts.sgns.architecture = core::Architecture::kCbow;
    else {
      std::fprintf(stderr, "unknown option %s\n", flag.c_str());
      return usage();
    }
  }
  if (opts.sgns.negatives == 0) {
    opts.sgns.objective = core::Objective::kHierarchicalSoftmax;
    std::printf("negative=0: using hierarchical softmax\n");
  }

  // Pass 1: stream the file to build the vocabulary (Algorithm 1 line 3).
  text::Vocabulary vocab;
  const std::uint64_t rawTokens = text::forEachFileToken(
      corpusPath, [&](std::string_view tok) { vocab.addToken(tok); });
  vocab.finalize(minCount);
  if (vocab.size() == 0) {
    std::fprintf(stderr, "no words above min-count %llu\n",
                 static_cast<unsigned long long>(minCount));
    return 1;
  }
  // Pass 2: encode into RAM — or, with -stream, skip materialization and let
  // per-host producer threads re-read + encode the file every epoch.
  std::vector<text::WordId> corpus;
  if (!stream) {
    corpus.reserve(rawTokens);
    text::forEachFileToken(corpusPath, [&](std::string_view tok) {
      if (const auto id = vocab.idOf(tok)) corpus.push_back(*id);
    });
  }
  std::printf("vocab %u words, %llu/%llu tokens kept%s\n", vocab.size(),
              static_cast<unsigned long long>(vocab.totalTokens()),
              static_cast<unsigned long long>(rawTokens), stream ? " (streaming)" : "");

  // Out-of-core mode: every replica trains against a block-cached spill
  // file instead of an in-RAM matrix — same model bits, bounded memory.
  store::StoreMetrics storeMetrics;
  if (!spillDir.empty()) {
    opts.replicaHook = [&](unsigned host, graph::ModelGraph& model) {
      store::StoreOptions so;
      so.budgetBytes = cacheMb << 20;
      so.policy = store::EvictionPolicy::kZipfPinned;
      so.metrics = &storeMetrics;
      store::spillModel(model, spillDir + "/host" + std::to_string(host), so);
    };
    std::printf("spilling replicas under %s (cache %llu MB/replica)\n", spillDir.c_str(),
                static_cast<unsigned long long>(cacheMb));
  }

  const core::GraphWord2Vec trainer(vocab, opts);
  const auto observer = [](const core::EpochStats& st, const graph::ModelGraph&) {
    std::printf("epoch %2u  loss %.4f  alpha %.5f\n", st.epoch, st.avgLoss,
                static_cast<double>(st.alphaEnd));
  };
  core::TrainResult result;
  if (stream) {
    const auto source =
        text::streamTextFile(corpusPath, vocab, vocab.totalTokens(), opts.numHosts);
    result = trainer.train(*source, observer);
  } else {
    result = trainer.train(corpus, observer);
  }
  std::printf("trained %llu examples on %u host(s); simulated time %.2fs\n",
              static_cast<unsigned long long>(result.totalExamples), opts.numHosts,
              result.cluster.simulatedSeconds());
  if (stream) {
    std::printf("peak resident corpus: %llu bytes (materialized would be %llu)\n",
                static_cast<unsigned long long>(result.corpusResidentBytesPeak),
                static_cast<unsigned long long>(vocab.totalTokens() * sizeof(text::WordId)));
  }
  if (!spillDir.empty()) {
    std::printf("store: hit-rate %.4f (%llu hits, %llu misses, %llu write-backs)\n",
                storeMetrics.hitRate(),
                static_cast<unsigned long long>(storeMetrics.hits.load()),
                static_cast<unsigned long long>(storeMetrics.misses.load()),
                static_cast<unsigned long long>(storeMetrics.writeBacks.load()));
  }

  eval::saveTextVectors(vectorsPath, result.model, vocab);
  std::printf("wrote %s\n", vectorsPath.c_str());
  return 0;
}

int runNearest(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto loaded = eval::loadTextVectors(argv[2]);
  const std::string word = argv[3];
  const unsigned k = argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : 10;
  const auto id = loaded.vocab.idOf(word);
  if (!id) {
    std::fprintf(stderr, "'%s' not in vocabulary\n", word.c_str());
    return 1;
  }
  const eval::EmbeddingView view(loaded.model, loaded.vocab);
  for (const auto& nb : view.nearestTo(*id, k)) {
    std::printf("%-24s %.4f\n", loaded.vocab.wordOf(nb.word).c_str(), nb.similarity);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "train") == 0) return runTrain(argc, argv);
  if (std::strcmp(argv[1], "nn") == 0) return runNearest(argc, argv);
  return usage();
}
