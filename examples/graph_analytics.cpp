// The substrate is a real graph-analytics framework (paper Section 2.4):
// run the classic algorithms — BFS, SSSP (topology-driven and worklist),
// PageRank, connected components — on a random graph using the Galois-lite
// runtime, and print summary statistics.
//
//   ./examples/graph_analytics [nodes] [avg_degree] [threads]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace gw2v;
  const graph::NodeId nodes =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 50'000;
  const unsigned degree = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
  const unsigned threads = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;

  util::Rng rng(11);
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(nodes) * degree);
  for (graph::NodeId u = 0; u < nodes; ++u) {
    for (unsigned k = 0; k < degree; ++k) {
      edges.push_back({u, static_cast<graph::NodeId>(rng.bounded(nodes)),
                       0.5f + rng.uniformFloat() * 2.0f});
    }
  }
  const graph::CSRGraph g(nodes, edges);
  const graph::CSRGraph gSym(nodes, graph::symmetrize(edges));
  runtime::ThreadPool pool(threads);
  std::printf("graph: %u nodes, %llu edges, %u threads\n\n", g.numNodes(),
              static_cast<unsigned long long>(g.numEdges()), threads);

  {
    util::WallTimer t;
    const auto levels = graph::bfs(g, 0, pool);
    std::uint32_t reached = 0, maxLevel = 0;
    for (const auto l : levels) {
      if (l != graph::kUnreachedLevel) {
        ++reached;
        maxLevel = std::max(maxLevel, l);
      }
    }
    std::printf("bfs:       %.3fs  reached %u/%u nodes, eccentricity %u\n", t.seconds(),
                reached, nodes, maxLevel);
  }
  {
    util::WallTimer t;
    const auto d1 = graph::sssp(g, 0, pool);
    const double tTopo = t.seconds();
    t.reset();
    const auto d2 = graph::ssspWorklist(g, 0, pool);
    const double tWl = t.seconds();
    std::size_t mismatches = 0;
    float maxDist = 0;
    for (std::size_t i = 0; i < d1.size(); ++i) {
      if (d1[i] != d2[i]) ++mismatches;
      if (d1[i] != graph::kInfDistance) maxDist = std::max(maxDist, d1[i]);
    }
    std::printf("sssp:      %.3fs topology-driven, %.3fs worklist (mismatches: %zu, "
                "max dist %.2f)\n",
                tTopo, tWl, mismatches, maxDist);
  }
  {
    util::WallTimer t;
    const auto pr = graph::pagerank(g, pool);
    double sum = 0, top = 0;
    for (const double r : pr) {
      sum += r;
      top = std::max(top, r);
    }
    std::printf("pagerank:  %.3fs  mass %.6f, max rank %.2e\n", t.seconds(), sum, top);
  }
  {
    util::WallTimer t;
    const auto comp = graph::connectedComponents(gSym, pool);
    std::map<graph::NodeId, std::uint32_t> sizes;
    for (const auto c : comp) ++sizes[c];
    std::uint32_t largest = 0;
    for (const auto& [c, n] : sizes) largest = std::max(largest, n);
    std::printf("cc:        %.3fs  %zu components, largest %u nodes\n", t.seconds(),
                sizes.size(), largest);
  }
  return 0;
}
