// Distributed graph analytics on the same Gluon-lite substrate that trains
// Word2Vec — the "it is a general graph-analytics framework" demonstration
// (paper Section 2.4): BFS, SSSP and connected components run across
// simulated hosts with MIN-reduction bulk-synchronization, and their results
// are checked against the shared-memory implementations.
//
//   ./examples/distributed_graph_analytics [nodes] [hosts]

#include <cstdio>
#include <cstdlib>

#include "graph/algorithms.h"
#include "graph/distributed.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace gw2v;
  const graph::NodeId nodes =
      argc > 1 ? static_cast<graph::NodeId>(std::atoi(argv[1])) : 20'000;
  const unsigned hosts = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  util::Rng rng(17);
  std::vector<graph::Edge> edges;
  for (graph::NodeId u = 0; u < nodes; ++u) {
    for (int k = 0; k < 6; ++k) {
      edges.push_back({u, static_cast<graph::NodeId>(rng.bounded(nodes)),
                       0.5f + rng.uniformFloat() * 2.0f});
    }
  }
  const graph::CSRGraph g(nodes, edges);
  const graph::CSRGraph gSym(nodes, graph::symmetrize(edges));
  runtime::ThreadPool pool(2);
  std::printf("graph: %u nodes, %llu edges; cluster of %u hosts\n\n", nodes,
              static_cast<unsigned long long>(g.numEdges()), hosts);

  const auto check = [&](const char* name, const graph::DistributedResult& result,
                         const std::vector<float>& reference) {
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (result.values[i] != reference[i]) ++mismatches;
    }
    std::printf("%-6s %3llu BSP rounds, %7.2f MB traffic, %s shared-memory reference\n",
                name, static_cast<unsigned long long>(result.rounds),
                static_cast<double>(result.cluster.totalBytes()) / 1e6,
                mismatches == 0 ? "matches" : "MISMATCHES");
  };

  check("sssp", graph::distributedSssp(g, 0, hosts), graph::sssp(g, 0, pool));

  {
    const auto ref = graph::bfs(g, 0, pool);
    std::vector<float> refF(ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      refF[i] = ref[i] == graph::kUnreachedLevel ? graph::kInfDistance
                                                 : static_cast<float>(ref[i]);
    }
    check("bfs", graph::distributedBfs(g, 0, hosts), refF);
  }
  {
    const auto ref = graph::connectedComponents(gSym, pool);
    std::vector<float> refF(ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) refF[i] = static_cast<float>(ref[i]);
    check("cc", graph::distributedCc(gSym, hosts), refF);
  }
  return 0;
}
