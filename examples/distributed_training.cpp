// Distributed training walkthrough: sweeps hosts and communication
// strategies on one corpus and reports simulated time, traffic, and final
// accuracy — a miniature of the paper's Section 5 methodology.
//
//   ./examples/distributed_training [max_hosts] [epochs]

#include <cstdio>
#include <cstdlib>

#include "core/trainer.h"
#include "eval/analogy.h"
#include "eval/embedding_view.h"
#include "synth/generator.h"
#include "text/corpus.h"
#include "text/tokenizer.h"

int main(int argc, char** argv) {
  using namespace gw2v;
  const unsigned maxHosts = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const unsigned epochs = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 6;

  synth::CorpusSpec spec;
  spec.totalTokens = 200'000;
  spec.fillerVocab = 700;
  spec.relations = synth::defaultRelations(12);
  const synth::CorpusGenerator gen(spec);
  const std::string body = gen.generateText();
  text::Vocabulary vocab;
  text::forEachToken(body, [&](std::string_view tok) { vocab.addToken(tok); });
  vocab.finalize(5);
  const auto corpus = text::encode(body, vocab);
  const eval::AnalogyTask task(gen.analogySuite(30), vocab);

  std::printf("corpus: %zu tokens, vocab %u, %u epochs\n\n", corpus.size(), vocab.size(),
              epochs);
  std::printf("%-6s %-16s %-5s %10s %10s %10s %8s\n", "hosts", "strategy", "red.",
              "sim time", "compute", "traffic", "accuracy");

  for (unsigned hosts = 1; hosts <= maxHosts; hosts *= 2) {
    for (const auto strategy :
         {comm::SyncStrategy::kRepModelOpt, comm::SyncStrategy::kPullModel}) {
      core::TrainOptions opts;
      opts.sgns.dim = 32;
      opts.sgns.negatives = 8;
      opts.sgns.subsample = 1e-3;
      opts.epochs = epochs;
      opts.numHosts = hosts;
      opts.strategy = strategy;
      opts.reduction = core::Reduction::kModelCombiner;
      opts.trackLoss = false;

      const core::GraphWord2Vec trainer(vocab, opts);
      const auto result = trainer.train(corpus);
      const auto acc =
          task.evaluate(eval::EmbeddingView(result.model, vocab)).total;
      std::printf("%-6u %-16s %-5s %9.2fs %9.2fs %8.1fMB %7.1f%%\n", hosts,
                  comm::syncStrategyName(strategy),
                  core::reductionName(opts.reduction), result.cluster.simulatedSeconds(),
                  result.cluster.maxComputeSeconds(),
                  static_cast<double>(result.cluster.totalBytes()) / 1e6, acc);
      std::fflush(stdout);
      if (hosts == 1) break;  // strategies are identical on one host
    }
  }

  std::printf("\nNote: accuracy holds as hosts grow (the model-combiner property), while\n"
              "simulated time falls and traffic rises — the paper's core trade-off.\n");
  return 0;
}
