// Quickstart: generate a synthetic corpus, train GraphWord2Vec on a
// simulated 4-host cluster with the model combiner, and query the result.
//
//   ./examples/quickstart [hosts] [epochs]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/trainer.h"
#include "eval/analogy.h"
#include "eval/embedding_view.h"
#include "synth/generator.h"
#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

int main(int argc, char** argv) {
  using namespace gw2v;

  const unsigned hosts = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned epochs = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;

  // 1. A small synthetic corpus with planted analogy structure.
  synth::CorpusSpec spec;
  spec.totalTokens = 150'000;
  spec.fillerVocab = 600;
  spec.relations = synth::defaultRelations(12);
  const synth::CorpusGenerator gen(spec);
  const std::string text = gen.generateText();
  std::printf("corpus: %zu bytes of text\n", text.size());

  // 2. Vocabulary pass + id encoding (Algorithm 1, lines 3-4).
  text::Vocabulary vocab;
  text::forEachToken(text, [&](std::string_view tok) { vocab.addToken(tok); });
  vocab.finalize(/*minCount=*/5);
  const std::vector<text::WordId> corpus = text::encode(text, vocab);
  std::printf("vocabulary: %u words, %zu training tokens\n", vocab.size(), corpus.size());

  // 3. Train on a simulated cluster with the model combiner.
  core::TrainOptions opts;
  opts.sgns.dim = 32;
  opts.sgns.window = 5;
  opts.sgns.negatives = 8;
  opts.epochs = epochs;
  opts.numHosts = hosts;
  opts.reduction = core::Reduction::kModelCombiner;
  opts.strategy = comm::SyncStrategy::kRepModelOpt;

  const eval::AnalogyTask task(gen.analogySuite(/*maxQuestionsPerCategory=*/40), vocab);
  std::printf("analogy suite: %zu questions across %zu categories\n\n", task.totalQuestions(),
              task.categories().size());

  const core::GraphWord2Vec trainer(vocab, opts);
  const core::TrainResult result = trainer.train(
      corpus, [&](const core::EpochStats& st, const graph::ModelGraph& model) {
        const eval::EmbeddingView view(model, vocab);
        const eval::AccuracyReport acc = task.evaluate(view);
        std::printf("epoch %2u  loss %.4f  accuracy: sem %5.1f%%  syn %5.1f%%  total %5.1f%%\n",
                    st.epoch, st.avgLoss, acc.semantic, acc.syntactic, acc.total);
      });

  std::printf("\ntrained %llu examples on %u hosts\n",
              static_cast<unsigned long long>(result.totalExamples), hosts);
  std::printf("simulated cluster time: %.2fs (compute %.2fs + modelled comm %.2fs)\n",
              result.cluster.simulatedSeconds(), result.cluster.maxComputeSeconds(),
              result.cluster.maxModelledCommSeconds());
  std::printf("total traffic: %.1f MB\n\n",
              static_cast<double>(result.cluster.totalBytes()) / 1e6);

  // 4. Query the embedding space.
  const eval::EmbeddingView view(result.model, vocab);
  const std::string probe = gen.aWord(0, 0);
  if (const auto id = vocab.idOf(probe)) {
    std::printf("nearest neighbours of '%s':\n", probe.c_str());
    for (const auto& nb : view.nearestTo(*id, 5)) {
      std::printf("  %-16s %.3f\n", vocab.wordOf(nb.word).c_str(), nb.similarity);
    }
  }
  return 0;
}
