#pragma once

// Parameter-server baseline (paper Figure 3 / DistBelief-style).
//
// Host 0 is the server holding the canonical model; hosts 1..H-1 are
// workers. Each worker round: pull the touched slice of the model, compute
// a mini-round on its corpus shard, push the raw delta — Section 1's "global
// parameter server" bottleneck: all traffic funnels through one host.
//
// Since the async PS rebuild this is a thin configuration of src/ps/ (one
// server, staleness 0, SUM folds, fp32, no row cache) rather than its own
// protocol; src/ps/trainer.h exposes the full knob set (multiple servers,
// bounded staleness, codecs, caching).

#include <cstdint>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "graph/model_graph.h"
#include "sim/cluster.h"
#include "text/vocabulary.h"

namespace gw2v::baselines {

struct ParameterServerOptions {
  core::SgnsParams sgns;
  unsigned epochs = 16;
  /// Worker rounds per epoch (push/pull frequency).
  unsigned roundsPerEpoch = 8;
  /// Total hosts including the server (>= 2).
  unsigned numHosts = 4;
  std::uint64_t seed = 42;
  float minAlphaFraction = 1e-4f;
  sim::NetworkModel netModel{};
};

struct ParameterServerResult {
  graph::ModelGraph model;  // server's canonical model
  sim::ClusterReport cluster;
  std::uint64_t totalExamples = 0;
};

ParameterServerResult trainParameterServer(const text::Vocabulary& vocab,
                                           std::span<const text::WordId> corpus,
                                           const ParameterServerOptions& opts);

}  // namespace gw2v::baselines
