#include "baselines/column_parallel.h"

#include <cmath>
#include <memory>

#include "comm/collectives.h"
#include "comm/transport.h"
#include "runtime/do_all.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/sigmoid_table.h"
#include "util/vecmath.h"

namespace gw2v::baselines {

ColumnParallelResult trainColumnParallel(const text::Vocabulary& vocab,
                                         std::span<const text::WordId> corpus,
                                         const ColumnParallelOptions& opts) {
  const std::uint32_t vocabSize = vocab.size();
  const std::uint32_t dim = opts.sgns.dim;
  const unsigned numHosts = opts.numHosts;
  const unsigned targetsPerExample = 1 + opts.sgns.negatives;

  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;

  // Per-host replica; host h only reads/writes its dimension slice.
  std::vector<std::unique_ptr<graph::ModelGraph>> replicas(numHosts);
  for (unsigned h = 0; h < numHosts; ++h) {
    replicas[h] = std::make_unique<graph::ModelGraph>(vocabSize, dim);
    replicas[h]->randomizeEmbeddings(opts.seed);
  }

  std::vector<double> epochLoss(opts.epochs, 0.0);
  std::uint64_t totalExamples = 0;

  const auto body = [&](sim::HostContext& ctx) {
    const unsigned host = ctx.id();
    comm::SimTransport transport(ctx.network());
    comm::Collectives coll(transport, host, comm::TagSpace::kBaseline);
    graph::ModelGraph& model = *replicas[host];
    const auto [dlo, dhi] = runtime::blockRange(dim, numHosts, host);
    const std::uint32_t sliceLen = static_cast<std::uint32_t>(dhi - dlo);
    const auto slice = [&](graph::Label label, text::WordId node) {
      return model.mutableRow(label, node).subspan(dlo, sliceLen);
    };

    // Batch buffers: example metadata + one global-dot scalar per target.
    std::vector<text::WordId> centers, contexts, targets;  // targets flat
    std::vector<double> dots;
    std::vector<float> neu1e(sliceLen);

    std::uint64_t hostExamples = 0;
    for (unsigned epoch = 0; epoch < opts.epochs; ++epoch) {
      const float frac =
          1.0f - static_cast<float>(epoch) / static_cast<float>(opts.epochs);
      const float alpha = opts.sgns.alpha * std::max(frac, opts.minAlphaFraction);
      double lossSum = 0.0;
      std::uint64_t examples = 0;

      const auto flushBatch = [&] {
        if (centers.empty()) return;
        // Partial dots over this host's slice...
        ctx.computeTimer().start();
        dots.assign(targets.size(), 0.0);
        for (std::size_t e = 0; e < centers.size(); ++e) {
          const auto emb = slice(graph::Label::kEmbedding, contexts[e]);
          for (unsigned j = 0; j < targetsPerExample; ++j) {
            const std::size_t t = e * targetsPerExample + j;
            dots[t] = static_cast<double>(
                util::dot(emb, slice(graph::Label::kTraining, targets[t])));
          }
        }
        ctx.computeTimer().stop();
        // ...summed across hosts into global dots (the design's hot loop).
        const sim::CommSnapshot before = sim::snapshot(ctx.commStats());
        coll.allReduceSum(dots);
        ctx.addModelledCommSeconds(opts.netModel.exchangeSeconds(
            sim::delta(before, sim::snapshot(ctx.commStats()))));

        // Apply gradients to the slice using the global scalars.
        ctx.computeTimer().start();
        for (std::size_t e = 0; e < centers.size(); ++e) {
          const auto emb = slice(graph::Label::kEmbedding, contexts[e]);
          std::fill(neu1e.begin(), neu1e.end(), 0.0f);
          for (unsigned j = 0; j < targetsPerExample; ++j) {
            const std::size_t t = e * targetsPerExample + j;
            const float f = static_cast<float>(dots[t]);
            const float label = j == 0 ? 1.0f : 0.0f;
            const float g = (label - sigmoid(f)) * alpha;
            if (opts.trackLoss && host == 0) {
              const float p = util::SigmoidTable::exact(label > 0.5f ? f : -f);
              lossSum += -std::log(p > 1e-7f ? p : 1e-7f);
            }
            const auto trn = slice(graph::Label::kTraining, targets[t]);
            util::axpy(g, trn, neu1e);
            util::axpy(g, emb, trn);
          }
          util::add(neu1e, emb);
        }
        ctx.computeTimer().stop();
        centers.clear();
        contexts.clear();
        targets.clear();
      };

      // Identical RNG on every host: all hosts walk the same example stream
      // (data replicated, model partitioned — the inverse of GraphWord2Vec).
      util::Rng rng(util::hash64(opts.seed ^ (0xc01ULL + epoch)));
      ctx.computeTimer().start();
      core::forEachTrainingStep(
          corpus, opts.sgns, subsampler, negSampler, rng,
          [&](text::WordId center, text::WordId context, std::span<const text::WordId> negs) {
            centers.push_back(center);
            contexts.push_back(context);
            targets.push_back(center);
            targets.insert(targets.end(), negs.begin(), negs.end());
            ++examples;
            if (centers.size() >= opts.batchExamples) {
              ctx.computeTimer().stop();
              flushBatch();
              ctx.computeTimer().start();
            }
          });
      ctx.computeTimer().stop();
      flushBatch();

      if (host == 0) {
        epochLoss[epoch] = examples > 0 ? lossSum * targetsPerExample /
                                              static_cast<double>(examples * targetsPerExample)
                                        : 0.0;
      }
      hostExamples = examples;  // identical stream on every host
    }
    if (host == 0) totalExamples = hostExamples * opts.epochs;
  };

  sim::ClusterOptions copts;
  copts.numHosts = numHosts;
  copts.networkModel = opts.netModel;

  ColumnParallelResult result;
  result.cluster = sim::runCluster(copts, body);
  result.epochLoss = std::move(epochLoss);
  result.totalExamples = totalExamples;

  // Assemble the full model from per-host dimension slices. Every replica
  // started from the identical seeded init and its tables recorded which
  // rows the batches actually touched, so seed the result the same way and
  // overlay only the dirty rows' slices instead of copying the whole model.
  result.model.init(vocabSize, dim);
  result.model.randomizeEmbeddings(opts.seed);
  for (unsigned h = 0; h < numHosts; ++h) {
    const auto [dlo, dhi] = runtime::blockRange(dim, numHosts, h);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto label = static_cast<graph::Label>(l);
      replicas[h]->touched(label).forEachSet([&](std::size_t n32) {
        const auto n = static_cast<std::uint32_t>(n32);
        const auto src = replicas[h]->row(label, n).subspan(dlo, dhi - dlo);
        util::copyInto(src, result.model.untrackedRow(label, n).subspan(dlo, dhi - dlo));
      });
    }
  }
  return result;
}

}  // namespace gw2v::baselines
