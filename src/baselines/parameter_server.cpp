#include "baselines/parameter_server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/serialize.h"
#include "comm/transport.h"
#include "runtime/do_all.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/bitvector.h"
#include "util/sigmoid_table.h"
#include "util/vecmath.h"

namespace gw2v::baselines {

namespace {
constexpr int kTagRequest = 100;  // worker -> server (pull request or push)
constexpr int kTagReply = 101;    // server -> worker (pulled rows)
constexpr std::uint8_t kMsgPull = 0;
constexpr std::uint8_t kMsgPush = 1;
}  // namespace

ParameterServerResult trainParameterServer(const text::Vocabulary& vocab,
                                           std::span<const text::WordId> corpus,
                                           const ParameterServerOptions& opts) {
  if (opts.numHosts < 2)
    throw std::invalid_argument("trainParameterServer: needs >= 2 hosts (1 server + workers)");
  const unsigned numWorkers = opts.numHosts - 1;
  const std::uint32_t vocabSize = vocab.size();
  const std::uint32_t dim = opts.sgns.dim;

  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;
  const auto parts = text::partitionCorpus(corpus, numWorkers);

  ParameterServerResult result;
  result.model.init(vocabSize, dim);
  result.model.randomizeEmbeddings(opts.seed);
  graph::ModelGraph& serverModel = result.model;

  std::vector<std::uint64_t> perWorkerExamples(numWorkers, 0);
  const std::uint64_t totalRounds = static_cast<std::uint64_t>(opts.epochs) * opts.roundsPerEpoch;

  const auto body = [&](sim::HostContext& ctx) {
    // Point-to-point only: the PS pattern is asynchronous request/reply, so it
    // sits directly on the Transport seam rather than on Collectives.
    comm::SimTransport net(ctx.network());
    if (ctx.id() == 0) {
      // ---- Server: handle pulls and pushes in arrival order. ----
      std::uint64_t pending = totalRounds * numWorkers * 2;  // each round: 1 pull + 1 push
      while (pending > 0) {
        auto [src, payload] = net.recvAny(0, kTagRequest, sim::CommPhase::kControl);
        comm::ByteReader r(payload);
        const auto kind = r.get<std::uint8_t>();
        if (kind == kMsgPull) {
          const std::uint32_t count = r.get<std::uint32_t>();
          comm::ByteWriter w;
          ctx.computeTimer().start();
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint32_t n = r.get<std::uint32_t>();
            w.put(n);
            w.putSpan(std::span<const float>(serverModel.row(graph::Label::kEmbedding, n)));
            w.putSpan(std::span<const float>(serverModel.row(graph::Label::kTraining, n)));
          }
          ctx.computeTimer().stop();
          net.send(0, src, kTagReply, w.take(), sim::CommPhase::kBroadcast);
        } else {
          // Push: apply the raw delta immediately — no reconciliation. The
          // server's copy is the authority, so the write bumps row versions
          // without entering any dirty set.
          ctx.computeTimer().start();
          const std::uint32_t count = r.get<std::uint32_t>();
          for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint32_t n = r.get<std::uint32_t>();
            util::add(r.view<float>(dim), serverModel.overwriteRow(graph::Label::kEmbedding, n));
            util::add(r.view<float>(dim), serverModel.overwriteRow(graph::Label::kTraining, n));
          }
          ctx.computeTimer().stop();
        }
        --pending;
      }
      return;
    }

    // ---- Worker. ----
    const unsigned worker = ctx.id() - 1;
    const std::span<const text::WordId> tokens = parts[worker];
    graph::ModelGraph local(vocabSize, dim);
    local.randomizeEmbeddings(opts.seed);
    core::SgnsScratch scratch(dim);
    util::BitVector access(vocabSize);
    std::vector<std::uint32_t> accessList;

    for (unsigned epoch = 0; epoch < opts.epochs; ++epoch) {
      for (unsigned s = 0; s < opts.roundsPerEpoch; ++s) {
        const std::uint64_t round = static_cast<std::uint64_t>(epoch) * opts.roundsPerEpoch + s;
        const float frac = 1.0f - static_cast<float>(round) / static_cast<float>(totalRounds);
        const float alpha = opts.sgns.alpha * std::max(frac, opts.minAlphaFraction);
        const auto [lo, hi] = runtime::blockRange(tokens.size(), opts.roundsPerEpoch, s);
        const auto chunk = tokens.subspan(lo, hi - lo);
        const std::uint64_t rngSeed = util::hash64(
            opts.seed ^ (0x4242ULL + worker) ^ (round << 8));

        // Inspect to build the pull set (same trick as PullModel).
        ctx.computeTimer().start();
        access.reset();
        {
          util::Rng rng(rngSeed);
          core::forEachTrainingStep(chunk, opts.sgns, subsampler, negSampler, rng,
                                    [&](text::WordId center, text::WordId context,
                                        std::span<const text::WordId> negs) {
                                      access.set(center);
                                      access.set(context);
                                      for (const auto n : negs) access.set(n);
                                    });
        }
        accessList.clear();
        access.forEachSet([&](std::size_t n) { accessList.push_back(static_cast<std::uint32_t>(n)); });
        ctx.computeTimer().stop();

        // Pull.
        {
          comm::ByteWriter w;
          w.put(kMsgPull);
          w.put(static_cast<std::uint32_t>(accessList.size()));
          for (const auto n : accessList) w.put(n);
          net.send(ctx.id(), 0, kTagRequest, w.take(), sim::CommPhase::kControl);
        }
        // Pulled values are the server's canonical bits; the round's dirty
        // set was cleared after the last push, so the DeltaLog's first-touch
        // captures during training snapshot exactly these values — no
        // separate pulledBase array needed.
        {
          const auto payload = net.recv(ctx.id(), 0, kTagReply, sim::CommPhase::kBroadcast);
          comm::ByteReader r(payload);
          for (std::size_t i = 0; i < accessList.size(); ++i) {
            const std::uint32_t n = r.get<std::uint32_t>();
            util::copyInto(r.view<float>(dim), local.overwriteRow(graph::Label::kEmbedding, n));
            util::copyInto(r.view<float>(dim), local.overwriteRow(graph::Label::kTraining, n));
          }
        }

        // Compute on (stale) pulled parameters.
        ctx.computeTimer().start();
        {
          util::Rng rng(rngSeed);
          core::forEachTrainingStep(chunk, opts.sgns, subsampler, negSampler, rng,
                                    [&](text::WordId center, text::WordId context,
                                        std::span<const text::WordId> negs) {
                                      core::sgnsStep(local, center, context, negs, alpha,
                                                     sigmoid, scratch, false);
                                      ++perWorkerExamples[worker];
                                    });
        }
        // Push deltas relative to the pulled snapshot: the tables' baselines
        // serve dirty rows from the DeltaLog capture (= pulled bits) and
        // clean access-list rows from the unchanged row itself (zero delta,
        // exactly as the old dense snapshot produced).
        comm::ByteWriter w;
        w.put(kMsgPush);
        w.put(static_cast<std::uint32_t>(accessList.size()));
        std::vector<float> delta(dim);
        const auto& embTable = local.table(graph::Label::kEmbedding);
        const auto& trnTable = local.table(graph::Label::kTraining);
        for (const std::uint32_t n : accessList) {
          w.put(n);
          util::sub(local.row(graph::Label::kEmbedding, n), embTable.baselineRow(n), delta);
          w.putSpan(std::span<const float>(delta));
          util::sub(local.row(graph::Label::kTraining, n), trnTable.baselineRow(n), delta);
          w.putSpan(std::span<const float>(delta));
        }
        ctx.computeTimer().stop();
        net.send(ctx.id(), 0, kTagRequest, w.take(), sim::CommPhase::kReduce);
        local.clearTouched();
      }
    }
  };

  sim::ClusterOptions copts;
  copts.numHosts = opts.numHosts;
  copts.workerThreadsPerHost = 1;
  copts.networkModel = opts.netModel;
  result.cluster = sim::runCluster(copts, body);
  for (const auto e : perWorkerExamples) result.totalExamples += e;
  return result;
}

}  // namespace gw2v::baselines
