#include "baselines/parameter_server.h"

#include <stdexcept>
#include <utility>

#include "ps/trainer.h"

namespace gw2v::baselines {

ParameterServerResult trainParameterServer(const text::Vocabulary& vocab,
                                           std::span<const text::WordId> corpus,
                                           const ParameterServerOptions& opts) {
  if (opts.numHosts < 2)
    throw std::invalid_argument("trainParameterServer: needs >= 2 hosts (1 server + workers)");

  // The historical strawman, expressed as a configuration of the ps::
  // subsystem: one server, zero staleness (every round a window), raw-SUM
  // folds, fp32 wire, no row cache. What the rewrite deliberately drops is
  // the old arrival-order racy apply — folds are now deterministic, which
  // the baseline gains for free.
  ps::PsTrainOptions po;
  po.sgns = opts.sgns;
  po.epochs = opts.epochs;
  po.roundsPerEpoch = opts.roundsPerEpoch;
  po.numHosts = opts.numHosts;
  po.numServers = 1;
  po.staleness = 0;
  po.reduction = core::Reduction::kSum;
  po.codec = comm::SyncCodec::kFp32;
  po.cacheRows = 0;
  po.trackLoss = false;
  po.seed = opts.seed;
  po.minAlphaFraction = opts.minAlphaFraction;
  po.netModel = opts.netModel;

  auto r = ps::trainAsyncPs(vocab, corpus, po);
  ParameterServerResult result;
  result.model = std::move(r.model);
  result.cluster = std::move(r.cluster);
  result.totalExamples = r.totalExamples;
  return result;
}

}  // namespace gw2v::baselines
