#pragma once

// Shared-memory Skip-Gram baselines (paper Section 5.1/5.2):
//
//  * SequentialSGNS  — "W2V": faithful single-thread port of the word2vec.c
//    training loop (sigmoid table, unigram^0.75 sampling, random window
//    shrink, linear alpha decay).
//  * HogwildSGNS     — "SM": word2vec.c's multi-threaded mode — threads own
//    contiguous corpus slices and race on the shared model (Hogwild!).
//  * BatchedSGNS     — "GEM" stand-in for Gensim: mini-batched execution
//    that accumulates gradients for a batch against a frozen model snapshot
//    and applies them together (the vectorized-batch style of Gensim/BLAS
//    implementations; also the paper's mini-batch strawman of Section 2.3).
//
// All reuse the exact kernel (core/sgns.h) the distributed system uses, so
// time/accuracy comparisons are apples-to-apples.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "graph/model_graph.h"
#include "text/vocabulary.h"

namespace gw2v::baselines {

struct SharedMemoryOptions {
  core::SgnsParams sgns;
  unsigned epochs = 16;
  unsigned threads = 1;
  std::uint64_t seed = 42;
  bool trackLoss = true;
  float minAlphaFraction = 1e-4f;
};

struct SmEpochStats {
  unsigned epoch = 0;
  double avgLoss = 0.0;
  std::uint64_t examples = 0;
};

struct SharedMemoryResult {
  graph::ModelGraph model;
  std::vector<SmEpochStats> epochs;
  /// CPU busy time summed over worker threads (the 1-host "computation
  /// time" comparable with the cluster's per-host compute seconds).
  double cpuSeconds = 0.0;
  double wallSeconds = 0.0;
  std::uint64_t totalExamples = 0;
};

using SmEpochObserver =
    std::function<void(const SmEpochStats&, const graph::ModelGraph&)>;

/// Hogwild trainer; threads == 1 gives the exact sequential W2V baseline.
SharedMemoryResult trainHogwild(const text::Vocabulary& vocab,
                                std::span<const text::WordId> corpus,
                                const SharedMemoryOptions& opts,
                                const SmEpochObserver& observer = nullptr);

struct BatchedOptions {
  core::SgnsParams sgns;
  unsigned epochs = 16;
  std::uint32_t batchExamples = 1024;  // examples per mini-batch
  std::uint64_t seed = 42;
  bool trackLoss = true;
  float minAlphaFraction = 1e-4f;
};

/// Mini-batched trainer (gradients w.r.t. a frozen snapshot, averaged and
/// applied per batch).
SharedMemoryResult trainBatched(const text::Vocabulary& vocab,
                                std::span<const text::WordId> corpus,
                                const BatchedOptions& opts,
                                const SmEpochObserver& observer = nullptr);

}  // namespace gw2v::baselines
