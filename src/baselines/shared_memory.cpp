#include "baselines/shared_memory.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "core/cbow.h"
#include "core/huffman.h"

#include "runtime/do_all.h"
#include "runtime/per_thread.h"
#include "runtime/thread_pool.h"
#include "text/sampling.h"
#include "util/sigmoid_table.h"
#include "util/timer.h"
#include "util/vecmath.h"

namespace gw2v::baselines {

namespace {

float decayedAlpha(float alpha0, unsigned epoch, unsigned epochs, float minFraction) {
  const float frac = 1.0f - static_cast<float>(epoch) / static_cast<float>(epochs);
  return alpha0 * std::max(frac, minFraction);
}

}  // namespace

SharedMemoryResult trainHogwild(const text::Vocabulary& vocab,
                                std::span<const text::WordId> corpus,
                                const SharedMemoryOptions& opts,
                                const SmEpochObserver& observer) {
  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;

  SharedMemoryResult result;
  result.model.init(vocab.size(), opts.sgns.dim);
  result.model.randomizeEmbeddings(opts.seed);

  runtime::ThreadPool pool(opts.threads == 0 ? 1 : opts.threads);
  const unsigned numThreads = pool.numThreads();
  const bool cbow = opts.sgns.architecture == core::Architecture::kCbow;
  const bool hs = opts.sgns.objective == core::Objective::kHierarchicalSoftmax;
  if (cbow && hs)
    throw std::invalid_argument("trainHogwild: CBOW + hierarchical softmax not supported");
  const std::unique_ptr<core::HuffmanTree> huffman =
      hs ? std::make_unique<core::HuffmanTree>(vocab.counts()) : nullptr;
  core::SgnsParams driverParams = opts.sgns;
  if (hs) driverParams.negatives = 0;
  std::vector<core::SgnsScratch> scratch;
  std::vector<core::CbowScratch> cbowScratch;
  scratch.reserve(numThreads);
  cbowScratch.reserve(numThreads);
  for (unsigned t = 0; t < numThreads; ++t) {
    scratch.emplace_back(opts.sgns.dim);
    cbowScratch.emplace_back(opts.sgns.dim);
  }

  util::WallTimer wall;
  runtime::PerThread<double> cpuSeconds(numThreads, 0.0);

  for (unsigned epoch = 0; epoch < opts.epochs; ++epoch) {
    const float alpha = decayedAlpha(opts.sgns.alpha, epoch, opts.epochs, opts.minAlphaFraction);
    runtime::PerThread<double> lossAcc(numThreads, 0.0);
    runtime::PerThread<std::uint64_t> exampleAcc(numThreads, 0);

    pool.onEach([&](unsigned t) {
      util::ThreadCpuTimer cpu;
      const auto [lo, hi] = runtime::blockRange(corpus.size(), numThreads, t);
      util::Rng rng(util::hash64(opts.seed ^ (static_cast<std::uint64_t>(epoch) << 16) ^
                                 (0x5151ULL + t)));
      double loss = 0.0;
      std::uint64_t examples = 0;
      if (cbow) {
        core::forEachCbowStep(
            corpus.subspan(lo, hi - lo), opts.sgns, subsampler, negSampler, rng,
            [&](text::WordId center, std::span<const text::WordId> contexts,
                std::span<const text::WordId> negs) {
              loss += core::cbowStep(result.model, center, contexts, negs, alpha, sigmoid,
                                     cbowScratch[t], opts.trackLoss);
              ++examples;
            });
      } else {
        core::forEachTrainingStep(
            corpus.subspan(lo, hi - lo), driverParams, subsampler, negSampler, rng,
            [&](text::WordId center, text::WordId context,
                std::span<const text::WordId> negs) {
              loss += hs ? core::hsStep(result.model, center, context, *huffman, alpha,
                                        sigmoid, scratch[t], opts.trackLoss)
                         : core::sgnsStep(result.model, center, context, negs, alpha,
                                          sigmoid, scratch[t], opts.trackLoss);
              ++examples;
            });
      }
      lossAcc.local(t) += loss;
      exampleAcc.local(t) += examples;
      cpuSeconds.local(t) += cpu.seconds();
    });

    SmEpochStats st;
    st.epoch = epoch + 1;
    st.examples = exampleAcc.reduce(std::uint64_t{0},
                                    [](std::uint64_t a, std::uint64_t b) { return a + b; });
    const double loss = lossAcc.reduce(0.0, [](double a, double b) { return a + b; });
    st.avgLoss = st.examples > 0 ? loss / static_cast<double>(st.examples) : 0.0;
    result.epochs.push_back(st);
    result.totalExamples += st.examples;
    if (observer) observer(st, result.model);
  }

  result.model.clearTouched();
  result.wallSeconds = wall.seconds();
  result.cpuSeconds = cpuSeconds.reduce(0.0, [](double a, double b) { return a + b; });
  return result;
}

SharedMemoryResult trainBatched(const text::Vocabulary& vocab,
                                std::span<const text::WordId> corpus,
                                const BatchedOptions& opts, const SmEpochObserver& observer) {
  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;
  const std::uint32_t dim = opts.sgns.dim;

  SharedMemoryResult result;
  result.model.init(vocab.size(), dim);
  result.model.randomizeEmbeddings(opts.seed);
  graph::ModelGraph& model = result.model;

  // Sparse per-batch delta overlay: reads see the frozen pre-batch model,
  // writes accumulate here and are applied when the batch closes.
  std::unordered_map<std::uint64_t, std::uint32_t> rowIndex;
  std::vector<float> arena;
  std::vector<std::uint64_t> arenaKeys;
  const auto deltaRow = [&](graph::Label label, text::WordId node) -> float* {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(label == graph::Label::kTraining) << 32) | node;
    const auto [it, inserted] = rowIndex.try_emplace(
        key, static_cast<std::uint32_t>(arenaKeys.size()));
    if (inserted) {
      arenaKeys.push_back(key);
      arena.resize(arena.size() + dim, 0.0f);
    }
    return arena.data() + static_cast<std::size_t>(it->second) * dim;
  };
  const auto flushBatch = [&] {
    for (std::size_t i = 0; i < arenaKeys.size(); ++i) {
      const std::uint64_t key = arenaKeys[i];
      const auto label =
          (key >> 32) != 0 ? graph::Label::kTraining : graph::Label::kEmbedding;
      const auto node = static_cast<text::WordId>(key & 0xffffffffu);
      util::add(std::span<const float>(arena.data() + i * dim, dim),
                model.mutableRow(label, node));
    }
    rowIndex.clear();
    arena.clear();
    arenaKeys.clear();
  };

  util::WallTimer wall;
  util::ThreadCpuTimer cpu;
  std::vector<float> neu1e(dim);

  for (unsigned epoch = 0; epoch < opts.epochs; ++epoch) {
    const float alpha = decayedAlpha(opts.sgns.alpha, epoch, opts.epochs, opts.minAlphaFraction);
    util::Rng rng(util::hash64(opts.seed ^ (static_cast<std::uint64_t>(epoch) << 16) ^ 0x9292ULL));
    double loss = 0.0;
    std::uint64_t examples = 0;
    std::uint32_t inBatch = 0;

    core::forEachTrainingStep(
        corpus, opts.sgns, subsampler, negSampler, rng,
        [&](text::WordId center, text::WordId context, std::span<const text::WordId> negs) {
          const auto emb = model.row(graph::Label::kEmbedding, context);
          std::fill(neu1e.begin(), neu1e.end(), 0.0f);

          const auto trainTarget = [&](text::WordId target, float label) {
            const auto trn = model.row(graph::Label::kTraining, target);
            const float f = util::dot(emb, trn);
            const float g = (label - sigmoid(f)) * alpha;
            if (opts.trackLoss) {
              const float p = util::SigmoidTable::exact(label > 0.5f ? f : -f);
              loss += -std::log(p > 1e-7f ? p : 1e-7f);
            }
            float* __restrict__ trnDelta = deltaRow(graph::Label::kTraining, target);
            for (std::uint32_t d = 0; d < dim; ++d) {
              neu1e[d] += g * trn[d];
              trnDelta[d] += g * emb[d];
            }
          };
          trainTarget(center, 1.0f);
          for (const text::WordId neg : negs) trainTarget(neg, 0.0f);
          // Fetch the embedding delta row only now: deltaRow() grows the
          // arena while targets are added, invalidating earlier pointers.
          float* __restrict__ embDelta = deltaRow(graph::Label::kEmbedding, context);
          for (std::uint32_t d = 0; d < dim; ++d) embDelta[d] += neu1e[d];

          ++examples;
          if (++inBatch >= opts.batchExamples) {
            flushBatch();
            inBatch = 0;
          }
        });
    flushBatch();

    SmEpochStats st;
    st.epoch = epoch + 1;
    st.examples = examples;
    st.avgLoss = examples > 0 ? loss / static_cast<double>(examples) : 0.0;
    result.epochs.push_back(st);
    result.totalExamples += examples;
    if (observer) observer(st, result.model);
  }

  result.wallSeconds = wall.seconds();
  result.cpuSeconds = cpu.seconds();
  return result;
}

}  // namespace gw2v::baselines
