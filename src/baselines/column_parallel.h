#pragma once

// Column-parallel (vertically partitioned) distributed Word2Vec — the
// Ordentlich et al. CIKM'16 design the paper's Section 6 contrasts against:
// "they partition the model vertically with each machine containing part of
// the embedding and training vector for each word. These partitions compute
// partial dot products locally but communicate to compute global dot
// products."
//
// Every host sees the full (replicated) training-pair stream but owns only a
// contiguous slice of the embedding dimensions. For each batch of examples,
// hosts compute partial dot products over their slice, sum-allreduce the
// batch's scalars, then apply the gradient to their slice locally. Scalars
// within a batch are computed before any of the batch's updates (mini-batch
// staleness), which is what makes the allreduce batchable.
//
// The point of carrying this baseline: its communication volume scales with
// the *number of training examples* (scalars per pair per target), while
// GraphWord2Vec's scales with the *model size touched per round* — the
// trade the paper's design argument hinges on.

#include <cstdint>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "graph/model_graph.h"
#include "sim/cluster.h"
#include "text/vocabulary.h"

namespace gw2v::baselines {

struct ColumnParallelOptions {
  core::SgnsParams sgns;
  unsigned epochs = 4;
  unsigned numHosts = 4;
  /// Examples whose dot products are allreduced together.
  std::uint32_t batchExamples = 256;
  std::uint64_t seed = 42;
  float minAlphaFraction = 1e-4f;
  bool trackLoss = true;
  sim::NetworkModel netModel{};
};

struct ColumnParallelResult {
  /// Full model assembled from the per-host dimension slices.
  graph::ModelGraph model;
  sim::ClusterReport cluster;
  std::vector<double> epochLoss;  // mean loss per example, per epoch
  std::uint64_t totalExamples = 0;
};

ColumnParallelResult trainColumnParallel(const text::Vocabulary& vocab,
                                         std::span<const text::WordId> corpus,
                                         const ColumnParallelOptions& opts);

}  // namespace gw2v::baselines
