#pragma once

// The Skip-Gram-with-negative-sampling operator (paper Section 2.1/4.2).
//
// Edges of the word graph are generated on the fly: positive edges from a
// randomized sliding window over the corpus, negative edges from the
// unigram^0.75 sampler. forEachTrainingStep() is the single source of truth
// for that edge stream — both the compute phase (gradient updates) and the
// PullModel inspection phase (access-set recording) drive it with identically
// seeded RNGs, so inspection predicts exactly the nodes compute will touch.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/model_graph.h"
#include "text/sampling.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/sigmoid_table.h"
#include "util/vecmath.h"

namespace gw2v::core {

/// Which Word2Vec architecture the operator implements. The paper evaluates
/// Skip-Gram (the stronger model, Section 2.1) but notes the formulation
/// carries over; CBOW is provided as that extension.
enum class Architecture : int { kSkipGram = 0, kCbow = 1 };
const char* architectureName(Architecture a) noexcept;

/// Output-layer objective: negative sampling (the paper's choice) or
/// hierarchical softmax over a Huffman-coded vocabulary (the word2vec.c
/// alternative the paper's related-work section cites). Under HS the
/// training label's rows hold *inner-node* vectors instead of per-word
/// output vectors.
enum class Objective : int { kNegativeSampling = 0, kHierarchicalSoftmax = 1 };
const char* objectiveName(Objective o) noexcept;

struct SgnsParams {
  std::uint32_t dim = 200;       // embedding size (paper default 200)
  unsigned window = 5;           // max window each side (paper default 5)
  unsigned negatives = 15;       // negative samples per pair (paper default 15)
  float alpha = 0.025f;          // initial learning rate
  double subsample = 1e-4;       // frequent-word downsampling threshold
  std::uint32_t maxSentence = 10'000;  // sentence length (paper: 10K)
  /// Context words per shared-negative batch (pWord2Vec scheme; see
  /// core/sgns_batched.h). 1 = the word2vec.c per-pair stream, bit-identical
  /// to sgnsStep; >1 trades exact Hogwild update ordering for the batched
  /// kernel's cache reuse. Skip-gram + negative sampling only.
  std::uint32_t batchSize = 1;
  Architecture architecture = Architecture::kSkipGram;
  Objective objective = Objective::kNegativeSampling;
};

/// Drive the SGNS edge stream over `tokens`, calling
///   fn(center, context, negatives)
/// for every generated training example. The RNG is consumed identically
/// regardless of what fn does (subsampling, window shrink b, and negative
/// draws all happen here), which is what makes inspection == compute.
template <typename Fn>
void forEachTrainingStep(std::span<const text::WordId> tokens, const SgnsParams& params,
                         const text::SubsampleFilter& subsampler,
                         const text::NegativeSampler& negSampler, util::Rng& rng, Fn&& fn) {
  std::vector<text::WordId> sentence;
  sentence.reserve(params.maxSentence);
  std::vector<text::WordId> negs(params.negatives);

  std::size_t cursor = 0;
  while (cursor < tokens.size()) {
    // Fill the sentence buffer, applying frequent-word subsampling exactly
    // as word2vec.c does while reading.
    sentence.clear();
    while (cursor < tokens.size() && sentence.size() < params.maxSentence) {
      const text::WordId w = tokens[cursor++];
      if (subsampler.keep(w, rng)) sentence.push_back(w);
    }

    const std::size_t len = sentence.size();
    for (std::size_t pos = 0; pos < len; ++pos) {
      const text::WordId center = sentence[pos];
      // Random window shrink: effective window is [b, window] (word2vec.c's
      // `b = next_random % window`).
      const unsigned b = static_cast<unsigned>(rng.bounded(params.window));
      for (unsigned a = b; a < params.window * 2 + 1 - b; ++a) {
        if (a == params.window) continue;
        const std::ptrdiff_t off =
            static_cast<std::ptrdiff_t>(pos) - params.window + static_cast<std::ptrdiff_t>(a);
        if (off < 0 || off >= static_cast<std::ptrdiff_t>(len)) continue;
        const text::WordId context = sentence[static_cast<std::size_t>(off)];
        for (unsigned k = 0; k < params.negatives; ++k) {
          negs[k] = negSampler.sample(rng, center);
        }
        fn(center, context, std::span<const text::WordId>(negs));
      }
    }
  }
}

/// Per-thread scratch for the gradient step (avoids per-pair allocation).
struct SgnsScratch {
  std::vector<float> neu1e;  // accumulated gradient for the embedding row
  explicit SgnsScratch(std::uint32_t dim) : neu1e(dim) {}
};

/// One SGD step on a (center, context, negatives) example — word2vec.c's
/// inner loop. Updates model in place (Hogwild: benign races across
/// threads), marks touched rows for sparse sync, and returns the SGNS loss
/// for this example when collectLoss is set (costs two logs per target).
float sgnsStep(graph::ModelGraph& model, text::WordId center, text::WordId context,
               std::span<const text::WordId> negatives, float alpha,
               const util::SigmoidTable& sigmoid, SgnsScratch& scratch,
               bool collectLoss = false);

class HuffmanTree;

/// One hierarchical-softmax SGD step for the (center, context) pair: walks
/// center's Huffman path, training the binary classifier at each inner node
/// (word2vec.c's hs branch). Inner node i lives in training row i.
float hsStep(graph::ModelGraph& model, text::WordId center, text::WordId context,
             const HuffmanTree& tree, float alpha, const util::SigmoidTable& sigmoid,
             SgnsScratch& scratch, bool collectLoss = false);

}  // namespace gw2v::core
