#pragma once

// GraphWord2Vec — Algorithm 1 of the paper.
//
// Each simulated host owns a contiguous partition of the corpus (its
// worklist) and a full replica of the model graph. An epoch is S sync
// rounds; each round Hogwild-trains the round's worklist chunk and then
// bulk-synchronizes the model through the Gluon-lite SyncEngine with the
// configured reduction (model combiner / AVG / SUM) and communication
// strategy (RepModel-Naive / RepModel-Opt / PullModel). The learning rate
// decays linearly with global progress, floored at minAlphaFraction * alpha,
// following word2vec.c.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/sync_engine.h"
#include "core/sgns.h"
#include "graph/model_graph.h"
#include "sim/cluster.h"
#include "text/corpus_source.h"
#include "text/vocabulary.h"

namespace gw2v::core {

enum class Reduction : int { kModelCombiner = 0, kAverage = 1, kSum = 2 };
const char* reductionName(Reduction r) noexcept;

/// The streaming comm::Reducer implementing a Reduction (model combiner /
/// AVG / SUM) — shared by the BSP sync engine and the ps:: server fold.
std::unique_ptr<comm::Reducer> makeReducer(Reduction r);

struct TrainOptions {
  SgnsParams sgns;
  unsigned epochs = 16;
  /// Sync rounds per epoch. 0 = the paper's rule of thumb: grows roughly
  /// linearly with hosts (Section 5.4) — we use max(1, 3*hosts/2), which
  /// matches the paper's 1(1), 2(3), 4(6), ..., 64(96) sweep.
  unsigned syncRoundsPerEpoch = 0;
  comm::SyncStrategy strategy = comm::SyncStrategy::kRepModelOpt;
  Reduction reduction = Reduction::kModelCombiner;
  unsigned numHosts = 1;
  unsigned workerThreadsPerHost = 1;
  std::uint64_t seed = 42;
  /// Collect SGNS loss during training (small overhead; on by default).
  bool trackLoss = true;
  /// Shuffle training order before every epoch (the standard SGD trick
  /// Section 2.2 mentions). Contract, by ingestion path:
  ///  - Materialized (span / SpanCorpusSource) shards: the host's whole
  ///    worklist is Fisher-Yates shuffled in place before each epoch,
  ///    deterministic per (seed, host, epoch) and cumulative across epochs —
  ///    unchanged from the pre-streaming API, bit-for-bit.
  ///  - Streaming shards: a full-worklist shuffle would require materializing
  ///    the epoch, so each pulled chunk is shuffled *within itself* instead,
  ///    deterministic per (seed, host, epoch, chunk index). Training bits
  ///    therefore depend on the producer's chunk size when this is set (with
  ///    it off, streaming is bit-identical to the materialized path at any
  ///    chunk size).
  bool shuffleEachEpoch = false;
  /// Learning-rate floor as a fraction of the initial rate (word2vec.c: 1e-4).
  float minAlphaFraction = 1e-4f;
  sim::NetworkModel netModel{};
  /// Sync-round execution knobs: pipelined chunking, the serial reference
  /// path, and the wire codec (sync.codec = fp32/fp16/int8 with
  /// sync.errorFeedback residual compensation). The parallel path always
  /// matches the serial one bit-for-bit at any codec; only fp32 is
  /// byte-exact with the historical goldens.
  comm::SyncOptions sync{};
  /// Resume from this model instead of random initialization (e.g. a
  /// graph::loadCheckpoint result). Must match vocabulary size and sgns.dim;
  /// not owned, must outlive train().
  const graph::ModelGraph* initialModel = nullptr;
  /// Called once per host replica after initialization, before any worker
  /// runs — the seam the out-of-core tier uses to spill replicas to disk
  /// (store::spillModel) without the trainer knowing about storage. The
  /// replica reference stays valid for the whole train() call.
  std::function<void(unsigned host, graph::ModelGraph&)> replicaHook;
};

/// Resolve the rule-of-thumb sync frequency for a host count.
unsigned defaultSyncRounds(unsigned numHosts) noexcept;

struct EpochStats {
  unsigned epoch = 0;       // 1-based
  double avgLoss = 0.0;     // mean SGNS loss per example across all hosts
  std::uint64_t examples = 0;
  float alphaEnd = 0.0f;    // learning rate after this epoch's decay
};

/// Called on host 0 after each epoch's final sync with host 0's replica.
/// Under Naive/Opt that replica is the canonical model; under PullModel it
/// may be stale (documented — the timing experiments do not use observers).
using EpochObserver = std::function<void(const EpochStats&, const graph::ModelGraph&)>;

struct TrainResult {
  sim::ClusterReport cluster;
  std::vector<EpochStats> epochs;
  /// Canonical final model, composed from each host's master range.
  graph::ModelGraph model;
  std::uint64_t totalExamples = 0;
  /// Upper bound on corpus bytes resident at once during training: the
  /// source's own buffers (ring slots / full corpus if materialized) plus
  /// every host's round-assembly scratch. The streaming-vs-materialized
  /// memory gate in bench/graph_embeddings compares this across paths.
  std::uint64_t corpusResidentBytesPeak = 0;
};

class GraphWord2Vec {
 public:
  GraphWord2Vec(const text::Vocabulary& vocab, TrainOptions opts);

  /// Train on a materialized id-encoded corpus (Algorithm 1 end-to-end:
  /// partition, replicate, train, synchronize). Thread-safe w.r.t. other
  /// instances. Wraps the corpus in a SpanCorpusSource; bit-identical to the
  /// pre-streaming API.
  TrainResult train(std::span<const text::WordId> corpus,
                    const EpochObserver& observer = nullptr) const;

  /// Train from a pull-based corpus source (one shard per host; shard h
  /// feeds host h's worklist). Each sync round consumes its blockRange share
  /// of the shard's tokensPerEpoch(), assembled from whatever chunks the
  /// source yields — materialized shards take the exact pre-streaming code
  /// path (round = zero-copy subspan), streaming shards are drained
  /// concurrently with production (bounded scratch, backpressure upstream).
  /// The source is reused across epochs via CorpusShard::beginEpoch.
  TrainResult train(text::CorpusSource& source,
                    const EpochObserver& observer = nullptr) const;

  const TrainOptions& options() const noexcept { return opts_; }

 private:
  const text::Vocabulary& vocab_;
  TrainOptions opts_;
};

}  // namespace gw2v::core
