#pragma once

// The model combiner (paper Section 3) — the headline contribution.
//
// Given independently computed per-host steps ("gradients") g_1..g_k for the
// same parameter vector, the combiner folds them left-to-right: each incoming
// gradient is projected onto the orthogonal complement of the running
// combination g, and the projection is added:
//
//     g'_i = g_i - (g^T g_i / ||g||^2) g        (Fig 2c)
//     g   <- g + g'_i
//
// Properties (proved in the paper, unit-tested here):
//   * parallel gradients collapse:  combine(g, g) = g      (not 2g — no blowup)
//   * orthogonal gradients add:     combine(g1, g2) = g1 + g2
//   * validity: ||g'_i|| <= ||g_i|| and the step still decreases L_i
//     (Eqs 3-4), so the combined step is equivalent to a sequential SGD
//     that under-decays some losses (Eq 6) — it never diverges the way SUM
//     does, and never slows to batch-GD the way AVG does.

#include <span>

#include "comm/reducer.h"
#include "util/vecmath.h"

namespace gw2v::core {

/// Fold `next` into the running combination `acc` by orthogonal projection.
inline void combineGradient(std::span<float> acc, std::span<const float> next) noexcept {
  const float g2 = util::squaredNorm(acc);
  if (g2 <= 1e-30f) {
    // Degenerate running combination: nothing to project against.
    util::add(next, acc);
    return;
  }
  const float proj = util::dot(acc, next) / g2;
  float* __restrict__ pa = acc.data();
  const float* __restrict__ pn = next.data();
  const std::size_t n = acc.size();
  const float keep = 1.0f - proj;
  for (std::size_t i = 0; i < n; ++i) pa[i] = keep * pa[i] + pn[i];
}

/// The projected component g' of `next` w.r.t. combination `g` (exposed for
/// property tests of Eqs 3-4).
inline void projectedComponent(std::span<const float> g, std::span<const float> next,
                               std::span<float> out) noexcept {
  const float g2 = util::squaredNorm(g);
  if (g2 <= 1e-30f) {
    util::copyInto(next, out);
    return;
  }
  const float proj = util::dot(g, next) / g2;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = next[i] - proj * g[i];
}

/// Gluon reduction operator wrapping the combiner (paper Section 4.3: "we
/// use our model combiner function instead" of averaging/adding).
class ModelCombinerReducer final : public comm::Reducer {
 public:
  void accumulate(std::span<float> acc, std::span<const float> next) const override {
    combineGradient(acc, next);
  }
  const char* name() const override { return "MC"; }
};

}  // namespace gw2v::core
