#pragma once

// The model combiner (paper Section 3) — the headline contribution.
//
// Given independently computed per-host steps ("gradients") g_1..g_k for the
// same parameter vector, the combiner folds them left-to-right: each incoming
// gradient is projected onto the orthogonal complement of the running
// combination g, and the projection is added:
//
//     g'_i = g_i - (g^T g_i / ||g||^2) g        (Fig 2c)
//     g   <- g + g'_i
//
// Properties (proved in the paper, unit-tested here):
//   * parallel gradients collapse:  combine(g, g) = g      (not 2g — no blowup)
//   * orthogonal gradients add:     combine(g1, g2) = g1 + g2
//   * validity: ||g'_i|| <= ||g_i|| and the step still decreases L_i
//     (Eqs 3-4), so the combined step is equivalent to a sequential SGD
//     that under-decays some losses (Eq 6) — it never diverges the way SUM
//     does, and never slows to batch-GD the way AVG does.

#include <span>

#include "comm/reducer.h"
#include "util/simd.h"
#include "util/vecmath.h"

namespace gw2v::core {

/// Fold `next` into the running combination `acc` by orthogonal projection.
/// The two reductions the projection needs (g.next and ||g||^2) come from one
/// fused pass over `acc`, then a single axpby applies the fold.
inline void combineGradient(std::span<float> acc, std::span<const float> next) noexcept {
  const std::size_t n = util::detail::pairedSize(acc.size(), next.size());
  float gd = 0.0f, g2 = 0.0f;
  util::simd::activeKernels().dotNormAccum(acc.data(), next.data(), n, &gd, &g2);
  if (g2 <= 1e-30f) {
    // Degenerate running combination: nothing to project against.
    util::add(next, acc);
    return;
  }
  // acc = next + (1 - proj) * acc
  util::axpby(1.0f, next, 1.0f - gd / g2, acc);
}

/// The projected component g' of `next` w.r.t. combination `g` (exposed for
/// property tests of Eqs 3-4).
inline void projectedComponent(std::span<const float> g, std::span<const float> next,
                               std::span<float> out) noexcept {
  const float g2 = util::squaredNorm(g);
  if (g2 <= 1e-30f) {
    util::copyInto(next, out);
    return;
  }
  const float proj = util::dot(g, next) / g2;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = next[i] - proj * g[i];
}

/// Gluon reduction operator wrapping the combiner (paper Section 4.3: "we
/// use our model combiner function instead" of averaging/adding).
class ModelCombinerReducer final : public comm::Reducer {
 public:
  void accumulate(std::span<float> acc, std::span<const float> next) const override {
    combineGradient(acc, next);
  }
  const char* name() const override { return "MC"; }
};

}  // namespace gw2v::core
