#pragma once

// Continuous Bag-of-Words (CBOW), the other Word2Vec architecture (paper
// Section 2.1: "the ideas introduced in this paper will work with other
// models as well"). One training example averages the window's embedding
// vectors and classifies the center word against it (plus negatives); the
// same graph formulation applies — the example touches the embedding rows of
// the window and the training rows of center + negatives.

#include <cstdint>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "graph/model_graph.h"
#include "text/sampling.h"
#include "util/rng.h"
#include "util/sigmoid_table.h"

namespace gw2v::core {

/// Per-thread scratch: averaged window vector + its gradient.
struct CbowScratch {
  std::vector<float> neu1;
  std::vector<float> neu1e;
  explicit CbowScratch(std::uint32_t dim) : neu1(dim), neu1e(dim) {}
};

/// Drive CBOW examples over `tokens`:
///   fn(center, contexts, negatives)
/// with the same RNG-consumption discipline as forEachTrainingStep (window
/// shrink, subsampling and negative draws all happen here, so a dry run
/// predicts compute's accesses exactly).
template <typename Fn>
void forEachCbowStep(std::span<const text::WordId> tokens, const SgnsParams& params,
                     const text::SubsampleFilter& subsampler,
                     const text::NegativeSampler& negSampler, util::Rng& rng, Fn&& fn) {
  std::vector<text::WordId> sentence;
  sentence.reserve(params.maxSentence);
  std::vector<text::WordId> contexts;
  std::vector<text::WordId> negs(params.negatives);

  std::size_t cursor = 0;
  while (cursor < tokens.size()) {
    sentence.clear();
    while (cursor < tokens.size() && sentence.size() < params.maxSentence) {
      const text::WordId w = tokens[cursor++];
      if (subsampler.keep(w, rng)) sentence.push_back(w);
    }
    const std::size_t len = sentence.size();
    for (std::size_t pos = 0; pos < len; ++pos) {
      const text::WordId center = sentence[pos];
      const unsigned b = static_cast<unsigned>(rng.bounded(params.window));
      contexts.clear();
      for (unsigned a = b; a < params.window * 2 + 1 - b; ++a) {
        if (a == params.window) continue;
        const std::ptrdiff_t off =
            static_cast<std::ptrdiff_t>(pos) - params.window + static_cast<std::ptrdiff_t>(a);
        if (off < 0 || off >= static_cast<std::ptrdiff_t>(len)) continue;
        contexts.push_back(sentence[static_cast<std::size_t>(off)]);
      }
      if (contexts.empty()) continue;
      for (unsigned k = 0; k < params.negatives; ++k) negs[k] = negSampler.sample(rng, center);
      fn(center, std::span<const text::WordId>(contexts), std::span<const text::WordId>(negs));
    }
  }
}

/// One CBOW SGD step (word2vec.c's cbow branch with cbow_mean=1): the
/// window mean classifies center vs negatives; the shared gradient flows
/// back into every window row. Returns the example loss when collectLoss.
float cbowStep(graph::ModelGraph& model, text::WordId center,
               std::span<const text::WordId> contexts,
               std::span<const text::WordId> negatives, float alpha,
               const util::SigmoidTable& sigmoid, CbowScratch& scratch,
               bool collectLoss = false);

}  // namespace gw2v::core
