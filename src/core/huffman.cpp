#include "core/huffman.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gw2v::core {

HuffmanTree::HuffmanTree(std::span<const std::uint64_t> counts) {
  vocabSize_ = static_cast<std::uint32_t>(counts.size());
  if (vocabSize_ == 0) throw std::invalid_argument("HuffmanTree: empty vocabulary");
  offsets_.assign(vocabSize_, 0);
  lengths_.assign(vocabSize_, 0);
  if (vocabSize_ == 1) return;  // single word: empty path

  // Two-queue Huffman construction. Leaves are node ids [0, V); inner nodes
  // are [V, 2V-1) created in ascending-weight order, so a simple cursor over
  // each queue always yields the global minimum.
  const std::uint32_t totalNodes = 2 * vocabSize_ - 1;
  std::vector<std::uint64_t> weight(totalNodes, 0);
  std::vector<std::uint32_t> parent(totalNodes, 0);
  std::vector<std::uint8_t> branch(totalNodes, 0);

  std::vector<std::uint32_t> leaves(vocabSize_);
  std::iota(leaves.begin(), leaves.end(), 0u);
  std::stable_sort(leaves.begin(), leaves.end(), [&](std::uint32_t a, std::uint32_t b) {
    return counts[a] < counts[b];
  });
  for (std::uint32_t i = 0; i < vocabSize_; ++i) weight[i] = counts[i];

  std::size_t leafCursor = 0;
  std::uint32_t innerConsume = vocabSize_;  // next existing inner node to consume
  std::uint32_t innerNext = vocabSize_;     // next inner node id to create
  const auto popMin = [&]() -> std::uint32_t {
    const bool leafAvailable = leafCursor < leaves.size();
    const bool innerAvailable = innerConsume < innerNext;
    if (leafAvailable &&
        (!innerAvailable || weight[leaves[leafCursor]] <= weight[innerConsume])) {
      return leaves[leafCursor++];
    }
    return innerConsume++;
  };

  for (std::uint32_t a = 0; a < vocabSize_ - 1; ++a) {
    const std::uint32_t min1 = popMin();
    const std::uint32_t min2 = popMin();
    weight[innerNext] = weight[min1] + weight[min2];
    parent[min1] = innerNext;
    parent[min2] = innerNext;
    branch[min2] = 1;
    ++innerNext;
  }

  // Extract root-first code/point paths per word.
  const std::uint32_t root = totalNodes - 1;
  std::uint8_t codeBuf[kMaxCodeLength];
  std::uint32_t pointBuf[kMaxCodeLength];
  for (std::uint32_t w = 0; w < vocabSize_; ++w) {
    unsigned depth = 0;
    for (std::uint32_t node = w; node != root; node = parent[node]) {
      if (depth >= kMaxCodeLength)
        throw std::runtime_error("HuffmanTree: code length exceeds kMaxCodeLength");
      codeBuf[depth] = branch[node];
      pointBuf[depth] = parent[node] - vocabSize_;  // inner-node id
      ++depth;
    }
    offsets_[w] = static_cast<std::uint32_t>(codeStorage_.size());
    lengths_[w] = static_cast<std::uint8_t>(depth);
    // Reverse so paths read root -> leaf.
    for (unsigned i = 0; i < depth; ++i) {
      codeStorage_.push_back(codeBuf[depth - 1 - i]);
      pointStorage_.push_back(pointBuf[depth - 1 - i]);
    }
  }
}

}  // namespace gw2v::core
