#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "comm/collectives.h"
#include "comm/transport.h"
#include "core/cbow.h"
#include "core/huffman.h"
#include "core/model_combiner.h"
#include "core/sgns_batched.h"
#include "graph/partition.h"
#include "runtime/do_all.h"
#include "runtime/per_thread.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/sigmoid_table.h"

namespace gw2v::core {

const char* reductionName(Reduction r) noexcept {
  switch (r) {
    case Reduction::kModelCombiner: return "MC";
    case Reduction::kAverage: return "AVG";
    case Reduction::kSum: return "SUM";
  }
  return "?";
}

unsigned defaultSyncRounds(unsigned numHosts) noexcept {
  const unsigned s = numHosts * 3 / 2;
  return s == 0 ? 1 : s;
}

std::unique_ptr<comm::Reducer> makeReducer(Reduction r) {
  switch (r) {
    case Reduction::kModelCombiner: return std::make_unique<ModelCombinerReducer>();
    case Reduction::kAverage: return std::make_unique<comm::AvgReducer>();
    case Reduction::kSum: return std::make_unique<comm::SumReducer>();
  }
  throw std::invalid_argument("unknown reduction");
}

GraphWord2Vec::GraphWord2Vec(const text::Vocabulary& vocab, TrainOptions opts)
    : vocab_(vocab), opts_(opts) {
  if (!vocab.finalized()) throw std::invalid_argument("GraphWord2Vec: vocabulary not finalized");
  if (vocab.size() == 0) throw std::invalid_argument("GraphWord2Vec: empty vocabulary");
  if (opts_.numHosts == 0) throw std::invalid_argument("GraphWord2Vec: numHosts must be >= 1");
  if (opts_.epochs == 0) throw std::invalid_argument("GraphWord2Vec: epochs must be >= 1");
  if (opts_.sgns.window == 0) throw std::invalid_argument("GraphWord2Vec: window must be >= 1");
  if (opts_.sgns.batchSize == 0)
    throw std::invalid_argument("GraphWord2Vec: batchSize must be >= 1");
  if (opts_.sgns.architecture == Architecture::kCbow &&
      opts_.sgns.objective == Objective::kHierarchicalSoftmax) {
    throw std::invalid_argument("GraphWord2Vec: CBOW + hierarchical softmax not supported");
  }
  if (opts_.syncRoundsPerEpoch == 0)
    opts_.syncRoundsPerEpoch = defaultSyncRounds(opts_.numHosts);
}

namespace {

/// Assembles per-sync-round token spans from a streaming CorpusShard's
/// chunks. Round s of an epoch covers the blockRange(total, rounds, s) slice
/// of the shard's declared tokensPerEpoch; whenever that slice lies inside
/// the currently-pulled chunk it is returned zero-copy, otherwise it is
/// stitched into a scratch buffer bounded by the round size (corpus /
/// (hosts * rounds) tokens — the trainer-side share of streaming memory).
/// Chunk ids are validated at pull time; with chunk shuffling on, each chunk
/// is re-ordered in a private copy, deterministic per
/// (seed, host, epoch, chunk index).
class RoundFeeder {
 public:
  RoundFeeder(text::CorpusShard& shard, unsigned rounds, std::uint32_t vocabSize,
              bool shuffleChunks, std::uint64_t seed, unsigned host)
      : shard_(shard),
        rounds_(rounds),
        total_(shard.tokensPerEpoch()),
        vocabSize_(vocabSize),
        shuffleChunks_(shuffleChunks),
        seed_(seed),
        host_(host) {}

  void beginEpoch(unsigned epoch) {
    shard_.beginEpoch(epoch);
    epoch_ = epoch;
    chunkIdx_ = 0;
    cur_ = {};
    off_ = 0;
  }

  /// Tokens of round `s`; rounds must be requested in order 0..rounds-1.
  /// The span is valid until the next round()/beginEpoch() call.
  std::span<const text::WordId> round(unsigned s) {
    const auto [lo, hi] = runtime::blockRange(total_, rounds_, s);
    const std::uint64_t need = hi - lo;
    if (need == 0) return {};
    if (off_ == cur_.size()) pullOrThrow();
    if (cur_.size() - off_ >= need) {
      const auto out = cur_.subspan(off_, need);
      off_ += need;
      return out;
    }
    buf_.clear();
    buf_.reserve(need);
    while (buf_.size() < need) {
      if (off_ == cur_.size()) pullOrThrow();
      const std::uint64_t take =
          std::min<std::uint64_t>(need - buf_.size(), cur_.size() - off_);
      const auto piece = cur_.subspan(off_, take);
      buf_.insert(buf_.end(), piece.begin(), piece.end());
      off_ += take;
    }
    return buf_;
  }

  /// Scratch this feeder holds onto (round-assembly + chunk-shuffle copies).
  std::uint64_t bufferedBytesPeak() const noexcept {
    return (buf_.capacity() + copy_.capacity()) * sizeof(text::WordId);
  }

 private:
  void pullOrThrow() {
    const auto chunk = shard_.nextChunk();
    if (chunk.empty()) {
      throw std::runtime_error(
          "GraphWord2Vec: corpus shard under-delivered its declared tokensPerEpoch");
    }
    for (const text::WordId w : chunk) {
      if (w >= vocabSize_)
        throw std::out_of_range("GraphWord2Vec: corpus id out of vocabulary");
    }
    if (shuffleChunks_ && chunk.size() > 1) {
      copy_.assign(chunk.begin(), chunk.end());
      std::uint64_t x = util::hash64(seed_ ^ (0xC0FFEEULL + host_));
      x = util::hash64(x ^ ((static_cast<std::uint64_t>(epoch_) << 32) | chunkIdx_));
      util::Rng rng(x);
      for (std::size_t i = copy_.size(); i > 1; --i) {
        std::swap(copy_[i - 1], copy_[rng.bounded(i)]);
      }
      cur_ = copy_;
    } else {
      cur_ = chunk;
    }
    off_ = 0;
    ++chunkIdx_;
  }

  text::CorpusShard& shard_;
  const unsigned rounds_;
  const std::uint64_t total_;
  const std::uint32_t vocabSize_;
  const bool shuffleChunks_;
  const std::uint64_t seed_;
  const unsigned host_;
  unsigned epoch_ = 0;
  std::uint64_t chunkIdx_ = 0;
  std::span<const text::WordId> cur_;
  std::uint64_t off_ = 0;
  std::vector<text::WordId> buf_;
  std::vector<text::WordId> copy_;
};

}  // namespace

TrainResult GraphWord2Vec::train(std::span<const text::WordId> corpus,
                                 const EpochObserver& observer) const {
  // Validate before launching anything — the exact pre-streaming API error
  // behavior for materialized corpora.
  for (const text::WordId w : corpus) {
    if (w >= vocab_.size())
      throw std::out_of_range("GraphWord2Vec: corpus id out of vocabulary");
  }
  text::SpanCorpusSource source(corpus, opts_.numHosts);
  return train(source, observer);
}

TrainResult GraphWord2Vec::train(text::CorpusSource& source,
                                 const EpochObserver& observer) const {
  const unsigned numHosts = opts_.numHosts;
  const unsigned rounds = opts_.syncRoundsPerEpoch;
  const unsigned epochs = opts_.epochs;
  const std::uint32_t vocabSize = vocab_.size();
  const std::uint32_t dim = opts_.sgns.dim;
  const bool pull = opts_.strategy == comm::SyncStrategy::kPullModel;

  if (source.numShards() != numHosts) {
    throw std::invalid_argument("GraphWord2Vec: corpus source shard count != numHosts");
  }

  // Shared read-only state; real hosts would build identical copies from
  // their vocabulary pass (deterministic), so sharing is safe and faithful.
  const text::SubsampleFilter subsampler(vocab_.counts(), opts_.sgns.subsample);
  const text::NegativeSampler negSampler(vocab_.counts());
  const util::SigmoidTable sigmoid;
  const std::unique_ptr<comm::Reducer> reducer = makeReducer(opts_.reduction);
  const bool hs = opts_.sgns.objective == Objective::kHierarchicalSoftmax;
  const std::unique_ptr<HuffmanTree> huffman =
      hs ? std::make_unique<HuffmanTree>(vocab_.counts()) : nullptr;
  // Under HS the driver must not draw (or consume RNG for) negatives.
  SgnsParams driverParams = opts_.sgns;
  if (hs) driverParams.negatives = 0;

  const graph::BlockedPartition partition(vocabSize, numHosts);

  // Full replica per host, identically initialized (deterministic per-node
  // seeding means no init broadcast is needed, as in the paper). A resumed
  // run copies the checkpoint instead.
  if (opts_.initialModel != nullptr &&
      (opts_.initialModel->numNodes() != vocabSize || opts_.initialModel->dim() != dim)) {
    throw std::invalid_argument("GraphWord2Vec: initialModel shape mismatch");
  }
  std::vector<std::unique_ptr<graph::ModelGraph>> replicas(numHosts);
  for (unsigned h = 0; h < numHosts; ++h) {
    replicas[h] = std::make_unique<graph::ModelGraph>(vocabSize, dim);
    if (opts_.initialModel != nullptr) {
      for (std::uint32_t n = 0; n < vocabSize; ++n) {
        for (int l = 0; l < graph::kNumLabels; ++l) {
          const auto label = static_cast<graph::Label>(l);
          util::copyInto(opts_.initialModel->row(label, n),
                         replicas[h]->untrackedRow(label, n));
        }
      }
    } else {
      replicas[h]->randomizeEmbeddings(opts_.seed);
    }
    if (opts_.replicaHook) opts_.replicaHook(h, *replicas[h]);
  }

  std::vector<EpochStats> epochStats(epochs);
  std::vector<std::uint64_t> perHostExamples(numHosts, 0);
  std::vector<std::uint64_t> perHostScratchPeak(numHosts, 0);

  const auto body = [&](sim::HostContext& ctx) {
    const unsigned host = ctx.id();
    graph::ModelGraph& model = *replicas[host];
    comm::SyncEngine sync(ctx, model, partition, *reducer, opts_.strategy, opts_.netModel,
                          opts_.sync);
    comm::SimTransport transport(ctx.network());
    comm::Collectives coll(transport, host, comm::TagSpace::kTrainer);

    text::CorpusShard& shard = source.shard(host);
    const auto wholeEpoch = shard.materializedEpoch();

    // Materialized path: the shard's stable epoch span, exactly the
    // pre-streaming worklist slice. With shuffling on, the host re-permutes
    // a private copy each epoch (cumulatively — the epoch-e order composes
    // the shuffles of epochs 1..e, as the span API always has).
    std::vector<text::WordId> shuffled;
    std::span<const text::WordId> tokens;
    if (wholeEpoch.has_value()) {
      for (const text::WordId w : *wholeEpoch) {
        if (w >= vocabSize)
          throw std::out_of_range("GraphWord2Vec: corpus id out of vocabulary");
      }
      if (opts_.shuffleEachEpoch) {
        shuffled.assign(wholeEpoch->begin(), wholeEpoch->end());
        tokens = shuffled;
      } else {
        tokens = *wholeEpoch;
      }
    }
    // Streaming path: rounds are assembled on demand from producer chunks.
    RoundFeeder feeder(shard, rounds, vocabSize, opts_.shuffleEachEpoch, opts_.seed, host);
    const unsigned numThreads = ctx.pool().numThreads();

    const bool cbow = opts_.sgns.architecture == Architecture::kCbow;
    const std::uint32_t batch = opts_.sgns.batchSize;
    std::vector<SgnsScratch> scratch;
    std::vector<SgnsBatchScratch> batchScratch;
    std::vector<CbowScratch> cbowScratch;
    scratch.reserve(numThreads);
    batchScratch.reserve(numThreads);
    cbowScratch.reserve(numThreads);
    for (unsigned t = 0; t < numThreads; ++t) {
      scratch.emplace_back(dim);
      batchScratch.emplace_back(dim, batch, opts_.sgns.negatives);
      cbowScratch.emplace_back(dim);
    }

    util::BitVector willAccess(vocabSize);

    const std::uint64_t totalRounds = static_cast<std::uint64_t>(epochs) * rounds;
    const auto alphaFor = [&](std::uint64_t roundIdx) {
      const float frac =
          1.0f - static_cast<float>(roundIdx) / static_cast<float>(totalRounds);
      return opts_.sgns.alpha * std::max(frac, opts_.minAlphaFraction);
    };
    const auto threadSeed = [&](unsigned epoch, unsigned s, unsigned t) {
      std::uint64_t x = opts_.seed;
      x = util::hash64(x ^ (0x1111ULL + host));
      x = util::hash64(x ^ ((static_cast<std::uint64_t>(epoch) << 20) | s));
      x = util::hash64(x ^ (0x7777ULL + t));
      return x;
    };
    // PullModel inspection: dry-run the edge stream of round (epoch, s) with
    // the exact RNG seeds compute will use, recording every node accessed.
    const auto inspect = [&](std::span<const text::WordId> chunk, unsigned epoch,
                             unsigned s) {
      willAccess.reset();
      for (unsigned t = 0; t < numThreads; ++t) {
        const auto [lo, hi] = runtime::blockRange(chunk.size(), numThreads, t);
        util::Rng rng(threadSeed(epoch, s, t));
        if (cbow) {
          forEachCbowStep(chunk.subspan(lo, hi - lo), opts_.sgns, subsampler, negSampler, rng,
                          [&](text::WordId center, std::span<const text::WordId> contexts,
                              std::span<const text::WordId> negs) {
                            willAccess.set(center);
                            for (const text::WordId c : contexts) willAccess.set(c);
                            for (const text::WordId n : negs) willAccess.set(n);
                          });
        } else if (hs) {
          forEachTrainingStep(
              chunk.subspan(lo, hi - lo), driverParams, subsampler, negSampler, rng,
              [&](text::WordId center, text::WordId context,
                  std::span<const text::WordId>) {
                willAccess.set(context);
                for (const std::uint32_t p : huffman->points(center)) willAccess.set(p);
              });
        } else {
          forEachTrainingBatch(
              chunk.subspan(lo, hi - lo), driverParams, batch, subsampler, negSampler, rng,
              [&](text::WordId center, std::span<const text::WordId> contexts,
                  std::span<const text::WordId> negs) {
                for (const text::WordId c : contexts) willAccess.set(c);
                willAccess.set(center);
                for (const text::WordId n : negs) willAccess.set(n);
              });
        }
      }
    };

    std::uint64_t hostExamples = 0;
    for (unsigned epoch = 0; epoch < epochs; ++epoch) {
      if (!wholeEpoch.has_value()) {
        // Streaming: rewind/kick the producer for this epoch's stream.
        feeder.beginEpoch(epoch);
      } else if (opts_.shuffleEachEpoch) {
        ctx.computeTimer().start();
        util::Rng rng(util::hash64(opts_.seed ^ 0xf00dULL ^
                                   ((static_cast<std::uint64_t>(host) << 32) | epoch)));
        for (std::size_t i = shuffled.size(); i > 1; --i) {
          std::swap(shuffled[i - 1], shuffled[rng.bounded(i)]);
        }
        ctx.computeTimer().stop();
      }
      runtime::PerThread<double> lossAcc(numThreads, 0.0);
      runtime::PerThread<std::uint64_t> exampleAcc(numThreads, 0);

      for (unsigned s = 0; s < rounds; ++s) {
        // The round's worklist: zero-copy subspan on the materialized path,
        // bounded chunk drain (charged as host compute) on the streaming one.
        std::span<const text::WordId> chunk;
        if (wholeEpoch.has_value()) {
          const auto [lo, hi] = runtime::blockRange(tokens.size(), rounds, s);
          chunk = tokens.subspan(lo, hi - lo);
        } else {
          ctx.computeTimer().start();
          chunk = feeder.round(s);
          ctx.computeTimer().stop();
        }

        if (pull) {
          // Inspection is host CPU work — it is PullModel's overhead and is
          // charged to compute time, as in the paper's accounting.
          ctx.computeTimer().start();
          inspect(chunk, epoch, s);
          ctx.computeTimer().stop();
          sync.sync(willAccess);  // reduces the previous round, pulls this one
        }

        const float alpha = alphaFor(static_cast<std::uint64_t>(epoch) * rounds + s);
        ctx.computeTimer().start();
        ctx.pool().onEach([&](unsigned t) {
          const auto [lo, hi] = runtime::blockRange(chunk.size(), numThreads, t);
          util::Rng rng(threadSeed(epoch, s, t));
          double loss = 0.0;
          std::uint64_t examples = 0;
          if (cbow) {
            forEachCbowStep(chunk.subspan(lo, hi - lo), opts_.sgns, subsampler, negSampler,
                            rng,
                            [&](text::WordId center, std::span<const text::WordId> contexts,
                                std::span<const text::WordId> negs) {
                              loss += cbowStep(model, center, contexts, negs, alpha, sigmoid,
                                               cbowScratch[t], opts_.trackLoss);
                              ++examples;
                            });
          } else if (hs) {
            forEachTrainingStep(
                chunk.subspan(lo, hi - lo), driverParams, subsampler, negSampler, rng,
                [&](text::WordId center, text::WordId context,
                    std::span<const text::WordId>) {
                  loss += hsStep(model, center, context, *huffman, alpha, sigmoid,
                                 scratch[t], opts_.trackLoss);
                  ++examples;
                });
          } else {
            // Both the Hogwild (threads) and distributed (hosts) paths go
            // through the batched kernel; batch == 1 delegates to sgnsStep.
            forEachTrainingBatch(
                chunk.subspan(lo, hi - lo), driverParams, batch, subsampler, negSampler, rng,
                [&](text::WordId center, std::span<const text::WordId> contexts,
                    std::span<const text::WordId> negs) {
                  loss += sgnsStepBatched(model, center, contexts, negs, alpha, sigmoid,
                                          batchScratch[t], opts_.trackLoss);
                  examples += contexts.size();
                });
          }
          lossAcc.local(t) += loss;
          exampleAcc.local(t) += examples;
        });
        ctx.computeTimer().stop();

        if (!pull) sync.sync();
      }

      const double hostLoss = lossAcc.reduce(0.0, [](double a, double b) { return a + b; });
      const std::uint64_t hostEpochExamples = exampleAcc.reduce(
          std::uint64_t{0}, [](std::uint64_t a, std::uint64_t b) { return a + b; });
      hostExamples += hostEpochExamples;

      if (opts_.trackLoss) {
        double sums[2] = {hostLoss, static_cast<double>(hostEpochExamples)};
        coll.allReduceSum(sums);
        if (host == 0) {
          EpochStats& st = epochStats[epoch];
          st.epoch = epoch + 1;
          st.examples = static_cast<std::uint64_t>(sums[1]);
          st.avgLoss = sums[1] > 0 ? sums[0] / sums[1] : 0.0;
          st.alphaEnd = alphaFor(static_cast<std::uint64_t>(epoch + 1) * rounds);
        }
      } else if (host == 0) {
        EpochStats& st = epochStats[epoch];
        st.epoch = epoch + 1;
        st.examples = hostEpochExamples;  // host 0 share only (loss untracked)
        st.alphaEnd = alphaFor(static_cast<std::uint64_t>(epoch + 1) * rounds);
      }

      if (observer && host == 0) observer(epochStats[epoch], model);
    }

    if (pull) {
      // Flush the final round's deltas to the masters (empty pull set: no
      // broadcast needed — the canonical model is composed host-side below).
      util::BitVector none(vocabSize);
      sync.sync(none);
    }
    perHostExamples[host] = hostExamples;
    perHostScratchPeak[host] =
        feeder.bufferedBytesPeak() + shuffled.capacity() * sizeof(text::WordId);
  };

  sim::ClusterOptions copts;
  copts.numHosts = numHosts;
  copts.workerThreadsPerHost = opts_.workerThreadsPerHost;
  copts.networkModel = opts_.netModel;

  TrainResult result;
  result.cluster = sim::runCluster(copts, body);
  result.epochs = std::move(epochStats);

  // Compose the canonical model: each host's master range is authoritative.
  result.model.init(vocabSize, dim);
  for (unsigned h = 0; h < numHosts; ++h) {
    const auto [lo, hi] = partition.masterRange(h);
    for (std::uint32_t n = lo; n < hi; ++n) {
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const auto label = static_cast<graph::Label>(l);
        util::copyInto(replicas[h]->row(label, n), result.model.untrackedRow(label, n));
      }
    }
  }
  for (const auto e : perHostExamples) result.totalExamples += e;
  result.corpusResidentBytesPeak = source.bufferedBytesPeak();
  for (const auto b : perHostScratchPeak) result.corpusResidentBytesPeak += b;
  return result;
}

}  // namespace gw2v::core
