#include "core/sgns.h"

#include <cmath>

#include "core/huffman.h"

namespace gw2v::core {

const char* architectureName(Architecture a) noexcept {
  return a == Architecture::kSkipGram ? "skip-gram" : "cbow";
}

const char* objectiveName(Objective o) noexcept {
  return o == Objective::kNegativeSampling ? "negative-sampling" : "hierarchical-softmax";
}

float sgnsStep(graph::ModelGraph& model, text::WordId center, text::WordId context,
               std::span<const text::WordId> negatives, float alpha,
               const util::SigmoidTable& sigmoid, SgnsScratch& scratch, bool collectLoss) {
  const std::uint32_t dim = model.dim();
  auto emb = model.mutableRow(graph::Label::kEmbedding, context);
  float* __restrict__ neu1e = scratch.neu1e.data();
  for (std::uint32_t d = 0; d < dim; ++d) neu1e[d] = 0.0f;

  float loss = 0.0f;
  const auto trainTarget = [&](text::WordId target, float label) {
    auto trn = model.mutableRow(graph::Label::kTraining, target);
    const float f = util::dot(emb, trn);
    const float sig = sigmoid(f);
    const float g = (label - sig) * alpha;
    if (collectLoss) {
      // -log sigma(f) for positives, -log(1 - sigma(f)) for negatives, with
      // the exact sigmoid so the loss is comparable across runs.
      const float p = util::SigmoidTable::exact(label > 0.5f ? f : -f);
      loss += -std::log(p > 1e-7f ? p : 1e-7f);
    }
    // neu1e += g * training[target]; training[target] += g * embedding.
    const float* __restrict__ pt = trn.data();
    for (std::uint32_t d = 0; d < dim; ++d) neu1e[d] += g * pt[d];
    util::axpy(g, emb, trn);
    model.markTouched(graph::Label::kTraining, target);
  };

  trainTarget(center, 1.0f);
  for (const text::WordId neg : negatives) trainTarget(neg, 0.0f);

  float* __restrict__ pe = emb.data();
  for (std::uint32_t d = 0; d < dim; ++d) pe[d] += neu1e[d];
  model.markTouched(graph::Label::kEmbedding, context);
  return loss;
}

float hsStep(graph::ModelGraph& model, text::WordId center, text::WordId context,
             const HuffmanTree& tree, float alpha, const util::SigmoidTable& sigmoid,
             SgnsScratch& scratch, bool collectLoss) {
  const std::uint32_t dim = model.dim();
  auto emb = model.mutableRow(graph::Label::kEmbedding, context);
  float* __restrict__ neu1e = scratch.neu1e.data();
  for (std::uint32_t d = 0; d < dim; ++d) neu1e[d] = 0.0f;

  const auto code = tree.code(center);
  const auto points = tree.points(center);
  float loss = 0.0f;
  for (std::size_t i = 0; i < code.size(); ++i) {
    auto trn = model.mutableRow(graph::Label::kTraining, points[i]);
    const float f = util::dot(emb, trn);
    // label = 1 - code: branch bit 0 means "predict sigma(f) -> 1".
    const float label = 1.0f - static_cast<float>(code[i]);
    const float g = (label - sigmoid(f)) * alpha;
    if (collectLoss) {
      const float p = util::SigmoidTable::exact(label > 0.5f ? f : -f);
      loss += -std::log(p > 1e-7f ? p : 1e-7f);
    }
    const float* __restrict__ pt = trn.data();
    for (std::uint32_t d = 0; d < dim; ++d) neu1e[d] += g * pt[d];
    util::axpy(g, emb, trn);
    model.markTouched(graph::Label::kTraining, points[i]);
  }

  float* __restrict__ pe = emb.data();
  for (std::uint32_t d = 0; d < dim; ++d) pe[d] += neu1e[d];
  model.markTouched(graph::Label::kEmbedding, context);
  return loss;
}

}  // namespace gw2v::core
