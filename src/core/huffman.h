#pragma once

// Huffman coding of the vocabulary for hierarchical softmax — the word2vec.c
// alternative to negative sampling (paper Section 6: "using hierarchical
// softmax instead of full softmax ... improves both the quality of the
// vectors and the training speed"). Each word gets a root-to-leaf path of
// inner nodes (`points`) and branch directions (`code` bits); frequent words
// get short codes, so expected update cost is O(log V) weighted toward the
// head of the distribution.

#include <cstdint>
#include <span>
#include <vector>

namespace gw2v::core {

class HuffmanTree {
 public:
  static constexpr unsigned kMaxCodeLength = 64;

  /// Build from per-word counts (any order; zero counts allowed).
  explicit HuffmanTree(std::span<const std::uint64_t> counts);

  std::uint32_t vocabSize() const noexcept { return vocabSize_; }
  /// Number of inner nodes (= vocabSize - 1 for vocab >= 2).
  std::uint32_t innerNodes() const noexcept { return vocabSize_ > 1 ? vocabSize_ - 1 : 0; }

  /// Branch directions from the root for word w (0 = toward the combined
  /// lighter subtree, 1 = heavier, following word2vec.c's convention).
  std::span<const std::uint8_t> code(std::uint32_t w) const noexcept {
    return {codeStorage_.data() + offsets_[w], lengths_[w]};
  }

  /// Inner-node ids along the path for word w (same length as code(w)).
  /// Ids are in [0, innerNodes()) with the root always at id innerNodes()-1.
  std::span<const std::uint32_t> points(std::uint32_t w) const noexcept {
    return {pointStorage_.data() + offsets_[w], lengths_[w]};
  }

  unsigned codeLength(std::uint32_t w) const noexcept { return lengths_[w]; }

 private:
  std::uint32_t vocabSize_ = 0;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint8_t> codeStorage_;
  std::vector<std::uint32_t> pointStorage_;
};

}  // namespace gw2v::core
