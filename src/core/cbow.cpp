#include "core/cbow.h"

#include <cmath>

#include "util/vecmath.h"

namespace gw2v::core {

float cbowStep(graph::ModelGraph& model, text::WordId center,
               std::span<const text::WordId> contexts,
               std::span<const text::WordId> negatives, float alpha,
               const util::SigmoidTable& sigmoid, CbowScratch& scratch, bool collectLoss) {
  const std::uint32_t dim = model.dim();
  float* __restrict__ neu1 = scratch.neu1.data();
  float* __restrict__ neu1e = scratch.neu1e.data();
  for (std::uint32_t d = 0; d < dim; ++d) {
    neu1[d] = 0.0f;
    neu1e[d] = 0.0f;
  }

  for (const text::WordId c : contexts) {
    const auto row = model.row(graph::Label::kEmbedding, c);
    for (std::uint32_t d = 0; d < dim; ++d) neu1[d] += row[d];
  }
  const float inv = 1.0f / static_cast<float>(contexts.size());
  for (std::uint32_t d = 0; d < dim; ++d) neu1[d] *= inv;

  float loss = 0.0f;
  const auto trainTarget = [&](text::WordId target, float label) {
    auto trn = model.mutableRow(graph::Label::kTraining, target);
    const float f = util::dot(scratch.neu1, trn);
    const float g = (label - sigmoid(f)) * alpha;
    if (collectLoss) {
      const float p = util::SigmoidTable::exact(label > 0.5f ? f : -f);
      loss += -std::log(p > 1e-7f ? p : 1e-7f);
    }
    const float* __restrict__ pt = trn.data();
    for (std::uint32_t d = 0; d < dim; ++d) neu1e[d] += g * pt[d];
    util::axpy(g, scratch.neu1, trn);
    model.markTouched(graph::Label::kTraining, target);
  };
  trainTarget(center, 1.0f);
  for (const text::WordId neg : negatives) trainTarget(neg, 0.0f);

  for (const text::WordId c : contexts) {
    util::add(scratch.neu1e, model.mutableRow(graph::Label::kEmbedding, c));
    model.markTouched(graph::Label::kEmbedding, c);
  }
  return loss;
}

}  // namespace gw2v::core
