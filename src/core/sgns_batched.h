#pragma once

// Batched SGNS with shared negative samples (pWord2Vec scheme, Ji et al.
// arXiv:1604.04661), on top of the runtime-dispatched SIMD layer.
//
// Per-pair sgnsStep streams dim-long dot/axpy calls over scattered model
// rows — level-1 BLAS with no reuse. Batching B context words of one window
// against a single shared set of N negatives converts the same work into a
// B x (1+N) logit matrix over two small row tiles that live in L1:
//
//   gather   ctx tile (B rows)  <- embedding rows of the context batch
//            tgt tile (1+N rows) <- training rows of center + shared negatives
//   logits   F = Ctx . Tgt^T      (register-blocked mini-GEMM, dot4 kernels)
//   grads    G[i][j] = (label_j - sigma(F[i][j])) * alpha
//   update   Ctx += G . Tgt_old,  Tgt += G^T . Ctx_old   (axpy4 rank-1 blocks)
//   scatter  add both deltas back to the model, markTouched per row
//
// Updates are computed against the gathered snapshot (as in pWord2Vec), so a
// batch is one "parallel" SGD step; with B=1 the kernel delegates to the
// per-pair sgnsStep and is bit-identical to it. forEachTrainingBatch consumes
// the RNG exactly like forEachTrainingStep at B=1, so default-configured runs
// (batchSize=1) reproduce the unbatched edge stream bit-for-bit — including
// the PullModel inspection dry-runs.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "util/aligned.h"

namespace gw2v::core {

/// Per-thread scratch tiles for the batched kernel. Rows are padded to the
/// 64-byte stride so every tile row takes aligned full-width SIMD loads.
struct SgnsBatchScratch {
  SgnsBatchScratch(std::uint32_t dim, std::uint32_t maxBatch, std::uint32_t maxNegatives);

  std::uint32_t stride = 0;            // dim rounded up to 16 floats
  util::AlignedVector<float> ctxTile;  // maxBatch x stride context embeddings
  util::AlignedVector<float> tgtTile;  // (1+maxNegatives) x stride training rows
  util::AlignedVector<float> ctxDelta;
  util::AlignedVector<float> tgtDelta;
  std::vector<float> grad;             // maxBatch x (1+maxNegatives) coefficients
  SgnsScratch pair;                    // B==1 delegation to sgnsStep
};

/// One shared-negative batched SGD step: every context word in `contexts`
/// trains against `center` (label 1) and the one shared `negatives` set
/// (label 0). Returns the summed SGNS loss over the batch when collectLoss
/// is set. B == contexts.size() must be >= 1 and <= scratch maxBatch;
/// B == 1 is bit-identical to sgnsStep.
float sgnsStepBatched(graph::ModelGraph& model, text::WordId center,
                      std::span<const text::WordId> contexts,
                      std::span<const text::WordId> negatives, float alpha,
                      const util::SigmoidTable& sigmoid, SgnsBatchScratch& scratch,
                      bool collectLoss = false);

/// Drive the SGNS edge stream like forEachTrainingStep, but group each
/// center's window into batches of at most `batchSize` context words sharing
/// one negative set, calling
///   fn(center, contexts, negatives)
/// per batch. At batchSize == 1 the RNG consumption and emitted pairs are
/// identical to forEachTrainingStep (one negative set per context), which is
/// what keeps inspection == compute and the default path regression-locked.
template <typename Fn>
void forEachTrainingBatch(std::span<const text::WordId> tokens, const SgnsParams& params,
                          std::uint32_t batchSize, const text::SubsampleFilter& subsampler,
                          const text::NegativeSampler& negSampler, util::Rng& rng, Fn&& fn) {
  std::vector<text::WordId> sentence;
  sentence.reserve(params.maxSentence);
  std::vector<text::WordId> contexts;
  contexts.reserve(2 * params.window);
  std::vector<text::WordId> negs(params.negatives);
  if (batchSize == 0) batchSize = 1;

  std::size_t cursor = 0;
  while (cursor < tokens.size()) {
    sentence.clear();
    while (cursor < tokens.size() && sentence.size() < params.maxSentence) {
      const text::WordId w = tokens[cursor++];
      if (subsampler.keep(w, rng)) sentence.push_back(w);
    }

    const std::size_t len = sentence.size();
    for (std::size_t pos = 0; pos < len; ++pos) {
      const text::WordId center = sentence[pos];
      const unsigned b = static_cast<unsigned>(rng.bounded(params.window));
      contexts.clear();
      for (unsigned a = b; a < params.window * 2 + 1 - b; ++a) {
        if (a == params.window) continue;
        const std::ptrdiff_t off =
            static_cast<std::ptrdiff_t>(pos) - params.window + static_cast<std::ptrdiff_t>(a);
        if (off < 0 || off >= static_cast<std::ptrdiff_t>(len)) continue;
        contexts.push_back(sentence[static_cast<std::size_t>(off)]);
      }
      for (std::size_t lo = 0; lo < contexts.size(); lo += batchSize) {
        const std::size_t hi = std::min(contexts.size(), lo + batchSize);
        for (unsigned k = 0; k < params.negatives; ++k) {
          negs[k] = negSampler.sample(rng, center);
        }
        fn(center, std::span<const text::WordId>(contexts.data() + lo, hi - lo),
           std::span<const text::WordId>(negs));
      }
    }
  }
}

}  // namespace gw2v::core
