#include "core/sgns_batched.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "util/simd.h"

namespace gw2v::core {

SgnsBatchScratch::SgnsBatchScratch(std::uint32_t dim, std::uint32_t maxBatch,
                                   std::uint32_t maxNegatives)
    : stride(static_cast<std::uint32_t>(util::rowStrideFloats(dim))),
      ctxTile(static_cast<std::size_t>(maxBatch) * stride, 0.0f),
      tgtTile(static_cast<std::size_t>(1 + maxNegatives) * stride, 0.0f),
      ctxDelta(static_cast<std::size_t>(maxBatch) * stride, 0.0f),
      tgtDelta(static_cast<std::size_t>(1 + maxNegatives) * stride, 0.0f),
      grad(static_cast<std::size_t>(maxBatch) * (1 + maxNegatives), 0.0f),
      pair(dim) {}

float sgnsStepBatched(graph::ModelGraph& model, text::WordId center,
                      std::span<const text::WordId> contexts,
                      std::span<const text::WordId> negatives, float alpha,
                      const util::SigmoidTable& sigmoid, SgnsBatchScratch& scratch,
                      bool collectLoss) {
  const std::size_t B = contexts.size();
  assert(B >= 1 && B * scratch.stride <= scratch.ctxTile.size());
  if (B == 1) {
    // Regression-locked fast path: a batch of one is exactly one per-pair
    // step, so delegate for bit-identical default behaviour.
    return sgnsStep(model, center, contexts[0], negatives, alpha, sigmoid, scratch.pair,
                    collectLoss);
  }

  const std::uint32_t dim = model.dim();
  const std::size_t stride = scratch.stride;
  const std::size_t T = 1 + negatives.size();
  assert(T * stride <= scratch.tgtTile.size());
  const auto& kern = util::simd::activeKernels();
  // The tiles honor the same layout contract as model rows (util/aligned.h):
  // 64B-aligned base, rowStrideFloats rows — the SIMD kernels below rely on it.
  float* ctx = util::checkedRow(scratch.ctxTile.data());
  float* tgt = util::checkedRow(scratch.tgtTile.data());
  float* dCtx = util::checkedRow(scratch.ctxDelta.data());
  float* dTgt = util::checkedRow(scratch.tgtDelta.data());
  float* grad = scratch.grad.data();

  // Gather snapshots of the touched rows into the L1-resident tiles.
  for (std::size_t i = 0; i < B; ++i) {
    std::memcpy(ctx + i * stride, model.row(graph::Label::kEmbedding, contexts[i]).data(),
                dim * sizeof(float));
  }
  std::memcpy(tgt, model.row(graph::Label::kTraining, center).data(), dim * sizeof(float));
  for (std::size_t k = 0; k < negatives.size(); ++k) {
    std::memcpy(tgt + (1 + k) * stride,
                model.row(graph::Label::kTraining, negatives[k]).data(), dim * sizeof(float));
  }
  std::memset(dCtx, 0, B * stride * sizeof(float));
  std::memset(dTgt, 0, T * stride * sizeof(float));

  // Logit matrix F = Ctx . Tgt^T: each context row streams once against four
  // target rows per pass (dot4), the mini-GEMM's register blocking.
  for (std::size_t i = 0; i < B; ++i) {
    const float* ci = ctx + i * stride;
    float* fi = grad + i * T;
    std::size_t j = 0;
    for (; j + 4 <= T; j += 4) {
      kern.dot4(ci, tgt + j * stride, tgt + (j + 1) * stride, tgt + (j + 2) * stride,
                tgt + (j + 3) * stride, dim, fi + j);
    }
    for (; j < T; ++j) fi[j] = kern.dot(ci, tgt + j * stride, dim);
  }

  // Gradient scaling (in place over the logits) + optional loss accounting.
  float loss = 0.0f;
  for (std::size_t i = 0; i < B; ++i) {
    for (std::size_t j = 0; j < T; ++j) {
      const float f = grad[i * T + j];
      const float label = j == 0 ? 1.0f : 0.0f;
      if (collectLoss) {
        const float p = util::SigmoidTable::exact(j == 0 ? f : -f);
        loss += -std::log(p > 1e-7f ? p : 1e-7f);
      }
      grad[i * T + j] = (label - sigmoid(f)) * alpha;
    }
  }

  // Rank-1 update blocks against the snapshots:
  //   dCtx_i = sum_j G[i][j] * tgt_j      (four targets per pass)
  for (std::size_t i = 0; i < B; ++i) {
    float* di = dCtx + i * stride;
    const float* gi = grad + i * T;
    std::size_t j = 0;
    for (; j + 4 <= T; j += 4) {
      kern.axpy4(gi + j, tgt + j * stride, tgt + (j + 1) * stride, tgt + (j + 2) * stride,
                 tgt + (j + 3) * stride, di, dim);
    }
    for (; j < T; ++j) kern.axpy(gi[j], tgt + j * stride, di, dim);
  }
  //   dTgt_j = sum_i G[i][j] * ctx_i      (four contexts per pass)
  for (std::size_t j = 0; j < T; ++j) {
    float* dj = dTgt + j * stride;
    std::size_t i = 0;
    for (; i + 4 <= B; i += 4) {
      const float c[4] = {grad[i * T + j], grad[(i + 1) * T + j], grad[(i + 2) * T + j],
                          grad[(i + 3) * T + j]};
      kern.axpy4(c, ctx + i * stride, ctx + (i + 1) * stride, ctx + (i + 2) * stride,
                 ctx + (i + 3) * stride, dj, dim);
    }
    for (; i < B; ++i) kern.axpy(grad[i * T + j], ctx + i * stride, dj, dim);
  }

  // Scatter-add both deltas back. Adding (rather than storing the tile)
  // keeps Hogwild semantics when a row appears more than once in the batch
  // (duplicate negatives, or a context word drawn as a negative).
  for (std::size_t i = 0; i < B; ++i) {
    kern.axpy(1.0f, dCtx + i * stride,
              model.mutableRow(graph::Label::kEmbedding, contexts[i]).data(), dim);
    model.markTouched(graph::Label::kEmbedding, contexts[i]);
  }
  kern.axpy(1.0f, dTgt, model.mutableRow(graph::Label::kTraining, center).data(), dim);
  model.markTouched(graph::Label::kTraining, center);
  for (std::size_t k = 0; k < negatives.size(); ++k) {
    kern.axpy(1.0f, dTgt + (1 + k) * stride,
              model.mutableRow(graph::Label::kTraining, negatives[k]).data(), dim);
    model.markTouched(graph::Label::kTraining, negatives[k]);
  }
  return loss;
}

}  // namespace gw2v::core
