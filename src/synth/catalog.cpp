#include "synth/catalog.h"

#include <stdexcept>

namespace gw2v::synth {

std::vector<DatasetInfo> datasetCatalog(double scale) {
  const auto scaled = [&](std::uint64_t tokens) {
    const auto t = static_cast<std::uint64_t>(static_cast<double>(tokens) * scale);
    return t < 20'000 ? std::uint64_t{20'000} : t;
  };

  std::vector<DatasetInfo> out;

  {
    DatasetInfo d;
    d.paperName = "1-billion";
    d.paperVocab = "399.0K";
    d.paperTokens = "665.5M";
    d.paperSize = "3.7GB";
    d.spec.name = "tiny-1billion";
    d.spec.fillerVocab = 1200;
    d.spec.totalTokens = scaled(400'000);
    d.spec.relations = defaultRelations(20);
    d.spec.seed = 1001;
    out.push_back(std::move(d));
  }
  {
    DatasetInfo d;
    d.paperName = "news";
    d.paperVocab = "479.3K";
    d.paperTokens = "714.1M";
    d.paperSize = "3.9GB";
    d.spec.name = "tiny-news";
    d.spec.fillerVocab = 1450;
    d.spec.totalTokens = scaled(430'000);
    d.spec.relations = defaultRelations(20);
    d.spec.seed = 2002;
    out.push_back(std::move(d));
  }
  {
    DatasetInfo d;
    d.paperName = "wiki";
    d.paperVocab = "2759.5K";
    d.paperTokens = "3594.1M";
    d.paperSize = "21GB";
    d.spec.name = "tiny-wiki";
    d.spec.fillerVocab = 8400;
    d.spec.totalTokens = scaled(2'160'000);
    d.spec.relations = defaultRelations(24);
    d.spec.seed = 3003;
    out.push_back(std::move(d));
  }
  return out;
}

DatasetInfo datasetByName(const std::string& paperName, double scale) {
  for (auto& d : datasetCatalog(scale)) {
    if (d.paperName == paperName) return d;
  }
  throw std::invalid_argument("datasetByName: unknown dataset " + paperName);
}

}  // namespace gw2v::synth
