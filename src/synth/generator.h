#pragma once

// Synthetic corpus generator (see spec.h for the model).

#include <cstdint>
#include <string>
#include <vector>

#include "synth/spec.h"

namespace gw2v::synth {

/// One analogy question a : b :: c : expected.
struct AnalogyQuestion {
  std::string a, b, c, expected;
};

struct AnalogyCategory {
  std::string name;
  bool semantic = true;
  std::vector<AnalogyQuestion> questions;
};

/// Graded similarity judgement derived from the planted structure (for the
/// WordSim-style evaluation): higher gold = more related by construction.
struct SimilarityJudgement {
  std::string first, second;
  double gold = 0.0;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(CorpusSpec spec);

  /// Generate the whole corpus as whitespace-separated text (exercises the
  /// same streaming-tokenize -> vocab -> encode path a file corpus would).
  std::string generateText() const;

  /// Analogy evaluation suite derived from the planted relations: all
  /// ordered pairs (i, j), i != j, within each relation, capped per category.
  std::vector<AnalogyCategory> analogySuite(unsigned maxQuestionsPerCategory = 240) const;

  /// Word-similarity suite: gold 3 = same planted pair (a_i, b_i); gold 2 =
  /// same relation, same side (a_i, a_j); gold 1 = planted words of
  /// different relations; gold 0 = planted word vs filler.
  std::vector<SimilarityJudgement> similaritySuite(unsigned pairsPerLevel = 60) const;

  const CorpusSpec& spec() const noexcept { return spec_; }

  // Planted word surface forms (exposed for tests).
  std::string aWord(unsigned relation, unsigned pair) const;
  std::string bWord(unsigned relation, unsigned pair) const;
  std::string contextWord(unsigned relation, char side, unsigned k) const;
  std::string identityWord(unsigned relation, unsigned pair, unsigned k) const;
  std::string fillerWord(std::uint32_t rank) const;

 private:
  CorpusSpec spec_;
};

}  // namespace gw2v::synth
