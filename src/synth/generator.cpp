#include "synth/generator.h"

#include <cmath>
#include <stdexcept>

#include "util/alias_sampler.h"
#include "util/rng.h"

namespace gw2v::synth {

std::vector<RelationSpec> defaultRelations(unsigned pairsPerRelation) {
  // Names follow question-words.txt's 14 categories.
  const std::pair<const char*, bool> cats[] = {
      {"capital-common-countries", true},
      {"capital-world", true},
      {"currency", true},
      {"city-in-state", true},
      {"family", true},
      {"gram1-adjective-to-adverb", false},
      {"gram2-opposite", false},
      {"gram3-comparative", false},
      {"gram4-superlative", false},
      {"gram5-present-participle", false},
      {"gram6-nationality-adjective", false},
      {"gram7-past-tense", false},
      {"gram8-plural", false},
      {"gram9-plural-verbs", false},
  };
  std::vector<RelationSpec> out;
  out.reserve(std::size(cats));
  for (const auto& [name, semantic] : cats) {
    out.push_back(RelationSpec{name, semantic, pairsPerRelation});
  }
  return out;
}

CorpusGenerator::CorpusGenerator(CorpusSpec spec) : spec_(std::move(spec)) {
  if (spec_.relations.empty()) throw std::invalid_argument("CorpusGenerator: no relations");
  if (spec_.fillerVocab == 0) throw std::invalid_argument("CorpusGenerator: fillerVocab == 0");
}

std::string CorpusGenerator::aWord(unsigned r, unsigned p) const {
  return "r" + std::to_string(r) + "a" + std::to_string(p);
}
std::string CorpusGenerator::bWord(unsigned r, unsigned p) const {
  return "r" + std::to_string(r) + "b" + std::to_string(p);
}
std::string CorpusGenerator::contextWord(unsigned r, char side, unsigned k) const {
  return "r" + std::to_string(r) + "c" + std::string(1, side) + std::to_string(k);
}
std::string CorpusGenerator::identityWord(unsigned r, unsigned p, unsigned k) const {
  return "r" + std::to_string(r) + "i" + std::to_string(p) + "x" + std::to_string(k);
}
std::string CorpusGenerator::fillerWord(std::uint32_t rank) const {
  return "w" + std::to_string(rank);
}

std::string CorpusGenerator::generateText() const {
  util::Rng rng(spec_.seed);

  // Zipf alias over the filler vocabulary.
  std::vector<double> zipf(spec_.fillerVocab);
  for (std::uint32_t i = 0; i < spec_.fillerVocab; ++i) {
    zipf[i] = 1.0 / std::pow(static_cast<double>(i) + 1.0, spec_.zipfExponent);
  }
  const util::AliasSampler fillerDist{std::span<const double>(zipf)};

  std::string out;
  out.reserve(spec_.totalTokens * 8);
  std::uint64_t emitted = 0;
  const auto emit = [&](const std::string& word) {
    out += word;
    out += ' ';
    ++emitted;
  };
  const auto emitFiller = [&] { emit(fillerWord(fillerDist.sample(rng))); };

  const unsigned numRelations = static_cast<unsigned>(spec_.relations.size());
  const unsigned ctxN = spec_.contextWordsPerSide;
  const unsigned idN = spec_.identityWordsPerPair;

  while (emitted < spec_.totalTokens) {
    if (rng.uniformDouble() < spec_.factProbability) {
      // Fact sentence: ~12 tokens binding (a_i, b_i) to the relation's
      // shared side contexts and the pair's identity words. The token order
      // keeps a_i within window of A-side words and b_i within window of
      // B-side words, with the identity words bridging both.
      const unsigned r = static_cast<unsigned>(rng.bounded(numRelations));
      const unsigned p = static_cast<unsigned>(rng.bounded(spec_.relations[r].pairs));
      const auto ctx = [&](char side) {
        return contextWord(r, side, static_cast<unsigned>(rng.bounded(ctxN)));
      };
      const auto ident = [&] {
        return identityWord(r, p, static_cast<unsigned>(rng.bounded(idN)));
      };
      // Layout keeps the A-segment and B-segment more than a max window
      // (5) apart so e(a) absorbs only A-side context and e(b) only B-side;
      // the shared identity words appear in both segments and bind the pair.
      emitFiller();
      emit(ctx('a'));
      emit(aWord(r, p));
      emit(ident());
      emit(ctx('a'));
      emitFiller();
      emitFiller();
      emitFiller();
      emitFiller();
      emit(ctx('b'));
      emit(bWord(r, p));
      emit(ident());
      emit(ctx('b'));
      emitFiller();
    } else {
      // Background sentence: 12 Zipf tokens.
      for (int k = 0; k < 12; ++k) emitFiller();
    }
    out.back() = '\n';  // sentence boundary (cosmetic; training re-chunks)
  }
  return out;
}

std::vector<AnalogyCategory> CorpusGenerator::analogySuite(
    unsigned maxQuestionsPerCategory) const {
  std::vector<AnalogyCategory> suite;
  suite.reserve(spec_.relations.size());
  for (unsigned r = 0; r < spec_.relations.size(); ++r) {
    const RelationSpec& rel = spec_.relations[r];
    AnalogyCategory cat;
    cat.name = rel.name;
    cat.semantic = rel.semantic;
    for (unsigned i = 0; i < rel.pairs && cat.questions.size() < maxQuestionsPerCategory; ++i) {
      for (unsigned j = 0; j < rel.pairs && cat.questions.size() < maxQuestionsPerCategory; ++j) {
        if (i == j) continue;
        cat.questions.push_back(
            AnalogyQuestion{aWord(r, i), bWord(r, i), aWord(r, j), bWord(r, j)});
      }
    }
    suite.push_back(std::move(cat));
  }
  return suite;
}

std::vector<SimilarityJudgement> CorpusGenerator::similaritySuite(
    unsigned pairsPerLevel) const {
  std::vector<SimilarityJudgement> out;
  util::Rng rng(spec_.seed ^ 0x51515151ULL);
  const unsigned numRelations = static_cast<unsigned>(spec_.relations.size());
  const auto randomRelation = [&] { return static_cast<unsigned>(rng.bounded(numRelations)); };
  const auto randomPair = [&](unsigned r) {
    return static_cast<unsigned>(rng.bounded(spec_.relations[r].pairs));
  };

  for (unsigned k = 0; k < pairsPerLevel; ++k) {
    {
      const unsigned r = randomRelation();
      const unsigned p = randomPair(r);
      out.push_back({aWord(r, p), bWord(r, p), 3.0});
    }
    {
      const unsigned r = randomRelation();
      const unsigned p = randomPair(r);
      unsigned q = randomPair(r);
      if (q == p) q = (q + 1) % spec_.relations[r].pairs;
      if (q != p) out.push_back({aWord(r, p), aWord(r, q), 2.0});
    }
    {
      const unsigned r = randomRelation();
      unsigned s = randomRelation();
      if (s == r) s = (s + 1) % numRelations;
      if (s != r) out.push_back({aWord(r, randomPair(r)), aWord(s, randomPair(s)), 1.0});
    }
    {
      const unsigned r = randomRelation();
      // Mid-rank filler: frequent enough to survive min-count, not a stopword.
      const auto filler = fillerWord(static_cast<std::uint32_t>(
          5 + rng.bounded(spec_.fillerVocab > 50 ? 45 : spec_.fillerVocab - 5)));
      out.push_back({aWord(r, randomPair(r)), filler, 0.0});
    }
  }
  return out;
}

}  // namespace gw2v::synth
