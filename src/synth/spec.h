#pragma once

// Specification of the synthetic corpora.
//
// The paper trains on 1-billion / news / wiki, which are multi-GB downloads
// we cannot ship; DESIGN.md documents the substitution. The generator plants
// *analogy structure*: each of 14 relation categories (mirroring the 14
// categories of question-words.txt) has word pairs (a_i, b_i) where every
// a-word co-occurs with the relation's shared "A-side" context words, every
// b-word with the shared "B-side" context words, and each pair with its own
// identity words. SGNS then learns e(b_i) - e(a_i) ~ const per relation —
// exactly the additive offset structure real analogies exploit — so the
// analogical-reasoning accuracy is a meaningful convergence metric.

#include <cstdint>
#include <string>
#include <vector>

namespace gw2v::synth {

struct RelationSpec {
  std::string name;
  bool semantic = true;  // paper buckets categories into semantic/syntactic
  unsigned pairs = 20;
};

/// The 14 categories of the original question-words.txt (5 semantic,
/// 9 syntactic), reproduced by name.
std::vector<RelationSpec> defaultRelations(unsigned pairsPerRelation = 20);

struct CorpusSpec {
  std::string name = "tiny";
  std::vector<RelationSpec> relations = defaultRelations();
  /// Filler (background) vocabulary size; drawn Zipf(s).
  std::uint32_t fillerVocab = 1500;
  double zipfExponent = 1.0;
  /// Total tokens to generate.
  std::uint64_t totalTokens = 400'000;
  /// Probability that a sentence is a "fact" (relation-bearing) sentence.
  double factProbability = 0.5;
  /// Shared context words per relation side, identity words per pair.
  unsigned contextWordsPerSide = 3;
  unsigned identityWordsPerPair = 2;
  std::uint64_t seed = 42;
};

}  // namespace gw2v::synth
