#pragma once

// Named dataset configurations mirroring the paper's Table 1.
//
// Scaled-down stand-ins (see DESIGN.md): relative ordering of vocabulary and
// token counts follows the paper (wiki has ~7x the vocab and ~5x the tokens
// of 1-billion; news is slightly larger than 1-billion).

#include <cstdint>
#include <string>
#include <vector>

#include "synth/spec.h"

namespace gw2v::synth {

struct DatasetInfo {
  std::string paperName;   // dataset it stands in for
  std::string paperVocab;  // Table 1 figures, for the bench printout
  std::string paperTokens;
  std::string paperSize;
  CorpusSpec spec;
};

/// The three datasets of Table 1 at simulation scale. `scale` multiplies
/// token counts (benches use < 1.0 for quick runs, tests even smaller).
std::vector<DatasetInfo> datasetCatalog(double scale = 1.0);

/// Look up one dataset by its paper name ("1-billion", "news", "wiki").
DatasetInfo datasetByName(const std::string& paperName, double scale = 1.0);

}  // namespace gw2v::synth
