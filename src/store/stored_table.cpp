#include "store/stored_table.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "graph/model_graph.h"

namespace gw2v::store {

namespace {

const float* readTableRow(void* ctx, std::uint32_t row) {
  return static_cast<const model::EmbeddingTable*>(ctx)->row(row).data();
}

std::size_t budgetToBlocks(std::uint64_t budgetBytes, std::size_t blockBytes,
                           std::size_t floorBlocks) {
  const auto fromBytes = static_cast<std::size_t>(budgetBytes / blockBytes);
  return std::max(fromBytes, floorBlocks);
}

}  // namespace

StoredEmbeddingTable* spillTable(model::EmbeddingTable& table, const StoreOptions& opts) {
  if (table.numRows() == 0) throw std::invalid_argument("spillTable: empty table");
  if (opts.path.empty()) throw std::invalid_argument("spillTable: path required");

  BlockFile file = BlockFile::create(opts.path, table.numRows(), table.dim(), opts.rowsPerBlock,
                                     &readTableRow, &table);
  const std::size_t budget = budgetToBlocks(opts.budgetBytes, file.blockBytes(),
                                            StoredEmbeddingTable::kMinAttachedBlocks);
  std::unique_ptr<StoredEmbeddingTable> backend(
      new StoredEmbeddingTable(std::move(file), budget, opts.policy, opts.pinnedFraction,
                               opts.metrics));
  StoredEmbeddingTable* raw = backend.get();
  table.attachStore(std::move(backend));
  return raw;
}

ModelSpill spillModel(graph::ModelGraph& model, const std::string& dir, StoreOptions opts) {
  std::filesystem::create_directories(dir);
  // Both labels are the same shape, so the model budget splits evenly.
  opts.budgetBytes /= 2;

  ModelSpill spill;
  opts.path = dir + "/embedding.blocks";
  spill.embedding = spillTable(model.table(graph::Label::kEmbedding), opts);
  opts.path = dir + "/training.blocks";
  spill.training = spillTable(model.table(graph::Label::kTraining), opts);
  return spill;
}

}  // namespace gw2v::store
