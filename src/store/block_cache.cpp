#include "store/block_cache.h"

#include <algorithm>
#include <cassert>

namespace gw2v::store {

const char* evictionPolicyName(EvictionPolicy p) noexcept {
  switch (p) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kZipfPinned: return "zipf-pinned";
  }
  return "?";
}

BlockCache::BlockCache(BlockFile& file, std::size_t budgetBlocks, EvictionPolicy policy,
                       double pinnedFraction, StoreMetrics* sink)
    : file_(file), policy_(policy), lru_(0), sink_(sink) {
  const std::size_t total = file.numBlocks();
  frames_ = std::clamp<std::size_t>(budgetBlocks, 1, std::max<std::size_t>(total, 1));
  if (policy == EvictionPolicy::kZipfPinned && frames_ > 1) {
    const auto want = static_cast<std::size_t>(pinnedFraction * static_cast<double>(frames_));
    // At least one LRU frame must remain or cold blocks could never fault.
    pinnedFrames_ = std::min({want, frames_ - 1, total});
  }
  arena_.assign(frames_ * file.blockFloats(), 0.0f);
  pinnedFrameOf_.assign(pinnedFrames_, -1);
  lru_ = util::LruCache<std::uint32_t, std::uint32_t>(frames_ - pinnedFrames_);
  freeFrames_.reserve(frames_ - pinnedFrames_);
  // Hand out high frames first so pinned blocks land on the low, stable ones.
  for (std::size_t i = frames_; i > pinnedFrames_; --i)
    freeFrames_.push_back(static_cast<std::uint32_t>(i - 1));
  dirty_.assign(frames_, false);
  blockOfFrame_.assign(frames_, 0);
}

float* BlockCache::resolveRow(std::uint32_t row, bool forWrite) noexcept {
  const std::uint32_t block = file_.blockOfRow(row);
  const std::size_t rowOffset =
      static_cast<std::size_t>(row % file_.rowsPerBlock()) * file_.strideFloats();
  std::lock_guard<std::mutex> lock(mu_);
  float* base = faultLocked(block, forWrite);
  return base + rowOffset;
}

float* BlockCache::faultLocked(std::uint32_t block, bool forWrite) noexcept {
  const auto count = [&](auto member) {
    (metrics_.*member).fetch_add(1, std::memory_order_relaxed);
    if (sink_ != nullptr) (sink_->*member).fetch_add(1, std::memory_order_relaxed);
  };

  // Pinned section: dedicated frame, faulted once, never evicted.
  if (block < pinnedFrames_) {
    const std::uint32_t f = block;  // frames [0, pinnedFrames_) mirror block ids
    if (pinnedFrameOf_[block] < 0) {
      file_.readBlock(block, frame(f));
      pinnedFrameOf_[block] = static_cast<std::int32_t>(f);
      blockOfFrame_[f] = block;
      count(&StoreMetrics::misses);
      count(&StoreMetrics::pinnedResident);
    } else {
      count(&StoreMetrics::hits);
    }
    if (forWrite) dirty_[f] = true;
    return frame(f);
  }

  if (const auto hit = lru_.get(block)) {
    if (forWrite) dirty_[*hit] = true;
    count(&StoreMetrics::hits);
    return frame(*hit);
  }

  std::uint32_t f;
  if (!freeFrames_.empty()) {
    f = freeFrames_.back();
    freeFrames_.pop_back();
  } else {
    // Full: take the LRU victim *before* inserting the newcomer, writing its
    // bytes back first when dirty — the write-back-before-eviction ordering.
    const auto victimBlock = lru_.lruKey();
    assert(victimBlock.has_value() && "cache has neither free frames nor entries");
    f = *lru_.take(*victimBlock);
    if (dirty_[f]) {
      file_.writeBlock(*victimBlock, frame(f));
      dirty_[f] = false;
      count(&StoreMetrics::writeBacks);
    }
    count(&StoreMetrics::evictions);
  }
  file_.readBlock(block, frame(f));
  blockOfFrame_[f] = block;
  dirty_[f] = forWrite;
  lru_.put(block, f);
  count(&StoreMetrics::misses);
  return frame(f);
}

void BlockCache::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t flushed = 0;
  for (std::size_t f = 0; f < frames_; ++f) {
    if (!dirty_[f]) continue;
    file_.writeBlock(blockOfFrame_[f], frame(f));
    dirty_[f] = false;
    ++flushed;
  }
  metrics_.writeBacks.fetch_add(flushed, std::memory_order_relaxed);
  if (sink_ != nullptr) sink_->writeBacks.fetch_add(flushed, std::memory_order_relaxed);
  file_.sync();
}

std::size_t BlockCache::residentBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pinned = 0;
  for (const auto f : pinnedFrameOf_) pinned += f >= 0 ? 1 : 0;
  return pinned + lru_.size();
}

}  // namespace gw2v::store
