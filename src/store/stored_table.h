#pragma once

// StoredEmbeddingTable — the out-of-core backend model::EmbeddingTable
// delegates row residency to (model/row_store.h), plus the spill helpers
// that move a live table/model onto it.
//
// spillTable() writes the table's current rows to a BlockFile (crash-safe
// create: tmp + fsync + rename), wraps it in a budgeted BlockCache, and
// attaches the backend; from then on every row access in the table — a
// training mutableRow, a sync pack, a snapshot build, a checkpoint save —
// read-throughs on row fault and write-back happens on dirty-block eviction
// and flush(). The table's change tracking (dirty set, DeltaLog first-touch
// capture, clearDirty rebaseline, row versions) stays in RAM and untouched,
// so the sync engine, wire codecs, the parameter server, and incremental
// EmbeddingSnapshot::fromModel all run unchanged on top, bit-identically to
// the in-RAM table: faulted bytes round-trip the file exactly.
//
// The backend is owned by the table (attachStore takes a unique_ptr) and
// dies with it — or with detachStore(), which rematerializes the matrix in
// RAM. Wire StoreOptions::metrics to a caller-owned sink when the counters
// must outlive the table (bench aggregation across a training run's
// per-host replicas).

#include <cstdint>
#include <memory>
#include <string>

#include "model/embedding_table.h"
#include "model/row_store.h"
#include "store/block_cache.h"
#include "store/block_file.h"
#include "store/store_metrics.h"

namespace gw2v::graph {
class ModelGraph;
}

namespace gw2v::store {

struct StoreOptions {
  /// Backing block file path (created by spill, reopened by the cache).
  std::string path;
  /// Rows per block. Default 64 rows ≈ 32 KB blocks at dim 100.
  std::uint32_t rowsPerBlock = 64;
  /// Cache budget in bytes; translated to blocks (floor 1, and spillTable
  /// floors attached-to-a-live-table budgets at kMinAttachedBlocks so spans
  /// handed to training kernels are never evicted while held).
  std::uint64_t budgetBytes = 0;
  EvictionPolicy policy = EvictionPolicy::kLru;
  /// kZipfPinned: share of the budget reserved for the hottest (lowest-id,
  /// i.e. most frequent vocabulary) blocks.
  double pinnedFraction = 0.5;
  /// Optional external counter sink, additionally updated on every event.
  /// Not owned; must outlive the cache.
  StoreMetrics* metrics = nullptr;
};

class StoredEmbeddingTable final : public model::RowStoreBackend {
 public:
  /// Callers in this codebase hold at most a couple of row spans per table
  /// at once (model/row_store.h); eight blocks of slack keeps every held
  /// span resident even under a few Hogwild workers.
  static constexpr std::size_t kMinAttachedBlocks = 8;

  float* resolveRow(std::uint32_t row, bool forWrite) noexcept override {
    return cache_.resolveRow(row, forWrite);
  }

  /// Write every dirty resident block back and fsync the backing file —
  /// after this the file alone holds the current model bits.
  void flush() { cache_.flush(); }

  const StoreMetrics& metrics() const noexcept { return cache_.metrics(); }
  const BlockCache& cache() const noexcept { return cache_; }
  const BlockFile& file() const noexcept { return file_; }

 private:
  friend StoredEmbeddingTable* spillTable(model::EmbeddingTable&, const StoreOptions&);

  StoredEmbeddingTable(BlockFile file, std::size_t budgetBlocks, EvictionPolicy policy,
                       double pinnedFraction, StoreMetrics* sink)
      : file_(std::move(file)),
        cache_(file_, budgetBlocks, policy, pinnedFraction, sink) {}

  BlockFile file_;
  BlockCache cache_;
};

/// Spill `table`'s current rows to opts.path and attach the block-cached
/// backend. Returns the backend (owned by the table) for counter access.
/// The table must outlive any spans already handed out (spill between
/// rounds, not mid-kernel).
StoredEmbeddingTable* spillTable(model::EmbeddingTable& table, const StoreOptions& opts);

/// Both labels of a ModelGraph spilled under `dir` (created if missing) as
/// embedding.blocks / training.blocks. opts.budgetBytes is the budget for
/// the whole model, split across the labels proportionally to their bytes.
struct ModelSpill {
  StoredEmbeddingTable* embedding = nullptr;
  StoredEmbeddingTable* training = nullptr;
};
ModelSpill spillModel(graph::ModelGraph& model, const std::string& dir, StoreOptions opts);

}  // namespace gw2v::store
