#pragma once

// The resident half of the out-of-core tier: a budgeted cache of row blocks
// over one BlockFile, with a pluggable eviction policy.
//
//   kLru        — every frame managed by one util::LruCache (the same
//                 structure behind the serving query cache and the ps row
//                 cache); least-recently-faulted block is the victim.
//   kZipfPinned — Zipfian-aware split: vocabulary ids are frequency-sorted
//                 (id 0 = hottest word), so the lowest-id blocks carry most
//                 of a Zipf-skewed access stream. A pinnedFraction share of
//                 the budget is reserved for blocks 0..P-1, faulted on first
//                 touch and never evicted; the remaining frames run LRU for
//                 the long tail.
//
// Fault protocol (resolveRow): hit → promote + return; miss → pick a frame
// (free list, else LRU victim: write the victim back first if dirty, then
// recycle its frame), read the block from the file, return. Dirtiness is
// tracked per frame and set by forWrite resolves, so every mutated byte
// reaches the file before its frame is reused — the write-back-before-
// eviction ordering the crash tests pin.
//
// Returned row pointers stay valid until enough *distinct* blocks fault to
// cycle the whole budget (see model/row_store.h); spillTable floors attached
// budgets accordingly. A mutex serializes fault metadata; writes through
// returned pointers stay lock-free (Hogwild discipline).

#include <cstdint>
#include <mutex>
#include <vector>

#include "store/block_file.h"
#include "store/store_metrics.h"
#include "util/aligned.h"
#include "util/lru_cache.h"

namespace gw2v::store {

enum class EvictionPolicy : int { kLru = 0, kZipfPinned = 1 };
const char* evictionPolicyName(EvictionPolicy p) noexcept;

class BlockCache {
 public:
  /// Budget is in *blocks* (≥ 1; callers translate bytes). For kZipfPinned,
  /// pinnedFraction of the budget (rounded down, capped so at least one
  /// frame stays in the LRU section) is reserved for the lowest-id blocks.
  /// `sink`, when non-null, receives every counter update in addition to
  /// the cache's own metrics (it must outlive the cache).
  BlockCache(BlockFile& file, std::size_t budgetBlocks, EvictionPolicy policy,
             double pinnedFraction, StoreMetrics* sink);

  /// Fault the row's block resident and return the row's pointer
  /// (strideFloats floats, 64B-aligned). forWrite marks the block dirty.
  float* resolveRow(std::uint32_t row, bool forWrite) noexcept;

  /// Write every dirty resident block back (clearing dirtiness) and fsync.
  void flush();

  std::size_t budgetBlocks() const noexcept { return frames_; }
  std::size_t pinnedBudgetBlocks() const noexcept { return pinnedFrames_; }
  std::size_t residentBlocks() const;
  EvictionPolicy policy() const noexcept { return policy_; }
  const StoreMetrics& metrics() const noexcept { return metrics_; }

 private:
  float* frame(std::size_t idx) noexcept { return arena_.data() + idx * file_.blockFloats(); }
  float* faultLocked(std::uint32_t block, bool forWrite) noexcept;

  BlockFile& file_;
  EvictionPolicy policy_;
  std::size_t frames_ = 0;        // total budget
  std::size_t pinnedFrames_ = 0;  // frames [0, pinnedFrames_) reserved for blocks [0, pinnedFrames_)
  util::AlignedVector<float> arena_;
  std::vector<std::int32_t> pinnedFrameOf_;  // block -> frame for pinned blocks (-1 = not resident)
  util::LruCache<std::uint32_t, std::uint32_t> lru_;  // unpinned block -> frame
  std::vector<std::uint32_t> freeFrames_;             // unpinned frames not yet in use
  std::vector<bool> dirty_;                           // per frame
  std::vector<std::uint32_t> blockOfFrame_;           // per frame (for flush)
  StoreMetrics metrics_;
  StoreMetrics* sink_ = nullptr;
  mutable std::mutex mu_;
};

}  // namespace gw2v::store
