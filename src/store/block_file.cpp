#include "store/block_file.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/aligned.h"

namespace gw2v::store {

namespace {

/// On-disk header, exactly one cache line.
struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t dim;
  std::uint32_t numRows;
  std::uint32_t rowsPerBlock;
  std::uint32_t strideFloats;
  std::uint32_t reserved[9];
};
static_assert(sizeof(Header) == BlockFile::kHeaderBytes, "header must be one cache line");

void writeOrThrow(std::FILE* f, const void* data, std::size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("BlockFile: write failed for " + path);
}

[[noreturn]] void ioAbort(const char* what, const std::string& path) noexcept {
  std::fprintf(stderr, "BlockFile: fatal %s on %s (errno %d: %s)\n", what, path.c_str(), errno,
               std::strerror(errno));
  std::abort();
}

}  // namespace

BlockFile BlockFile::create(const std::string& path, std::uint32_t numRows, std::uint32_t dim,
                            std::uint32_t rowsPerBlock, RowReader reader, void* ctx) {
  if (dim == 0) throw std::invalid_argument("BlockFile::create: dim must be >= 1");
  if (rowsPerBlock == 0) throw std::invalid_argument("BlockFile::create: rowsPerBlock must be >= 1");
  const auto stride = static_cast<std::uint32_t>(util::rowStrideFloats(dim));

  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<std::FILE, FileCloser> f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw std::runtime_error("BlockFile::create: cannot open " + tmp);

    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kVersion;
    h.dim = dim;
    h.numRows = numRows;
    h.rowsPerBlock = rowsPerBlock;
    h.strideFloats = stride;
    writeOrThrow(f.get(), &h, sizeof(h), tmp);

    // Stage one block at a time: rows copied dim floats each onto a zeroed
    // padding tail, the last block zero-filled past numRows.
    std::vector<float> block(static_cast<std::size_t>(rowsPerBlock) * stride, 0.0f);
    const std::uint32_t blocks = numRows == 0 ? 0 : (numRows + rowsPerBlock - 1) / rowsPerBlock;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      std::fill(block.begin(), block.end(), 0.0f);
      const std::uint32_t lo = b * rowsPerBlock;
      const std::uint32_t hi = std::min(numRows, lo + rowsPerBlock);
      for (std::uint32_t r = lo; r < hi; ++r) {
        std::memcpy(block.data() + static_cast<std::size_t>(r - lo) * stride, reader(ctx, r),
                    static_cast<std::size_t>(dim) * sizeof(float));
      }
      writeOrThrow(f.get(), block.data(), block.size() * sizeof(float), tmp);
    }

    if (std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0)
      throw std::runtime_error("BlockFile::create: fsync failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("BlockFile::create: rename to " + path + " failed");
  return open(path);
}

BlockFile BlockFile::open(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "r+b"));
  if (!f) throw std::runtime_error("BlockFile::open: cannot open " + path);

  Header h{};
  if (std::fread(&h, 1, sizeof(h), f.get()) != sizeof(h))
    throw std::runtime_error("BlockFile::open: torn header in " + path);
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("BlockFile::open: bad magic in " + path);
  if (h.version == 0 || h.version > kVersion)
    throw std::runtime_error("BlockFile::open: unsupported version in " + path);
  if (h.dim == 0 || h.rowsPerBlock == 0 ||
      h.strideFloats != static_cast<std::uint32_t>(util::rowStrideFloats(h.dim))) {
    throw std::runtime_error("BlockFile::open: corrupt geometry in " + path);
  }

  const std::uint32_t blocks =
      h.numRows == 0 ? 0 : (h.numRows + h.rowsPerBlock - 1) / h.rowsPerBlock;
  const std::size_t blockBytes =
      static_cast<std::size_t>(h.rowsPerBlock) * h.strideFloats * sizeof(float);
  const long expected = static_cast<long>(kHeaderBytes + static_cast<std::size_t>(blocks) * blockBytes);
  if (std::fseek(f.get(), 0, SEEK_END) != 0)
    throw std::runtime_error("BlockFile::open: seek failed on " + path);
  if (std::ftell(f.get()) != expected)
    throw std::runtime_error("BlockFile::open: truncated or oversized file " + path);

  return BlockFile(std::move(f), path, h.numRows, h.dim, h.strideFloats, h.rowsPerBlock);
}

void BlockFile::readBlock(std::uint32_t b, float* dst) noexcept {
  if (std::fseek(file_.get(), blockOffset(b), SEEK_SET) != 0 ||
      std::fread(dst, 1, blockBytes(), file_.get()) != blockBytes()) {
    ioAbort("block read", path_);
  }
}

void BlockFile::writeBlock(std::uint32_t b, const float* src) noexcept {
  if (std::fseek(file_.get(), blockOffset(b), SEEK_SET) != 0 ||
      std::fwrite(src, 1, blockBytes(), file_.get()) != blockBytes()) {
    ioAbort("block write", path_);
  }
}

void BlockFile::sync() {
  if (std::fflush(file_.get()) != 0 || ::fsync(::fileno(file_.get())) != 0)
    throw std::runtime_error("BlockFile::sync: fsync failed for " + path_);
}

}  // namespace gw2v::store
