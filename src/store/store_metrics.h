#pragma once

// Out-of-core cache telemetry, ServeMetrics-style (serve/metrics.h): plain
// atomic counters one BlockCache accumulates over its lifetime. A shared
// sink can additionally be wired through StoreOptions::metrics so counters
// survive the cache they came from (bench harnesses aggregate across the
// per-host, per-label caches a training run spills).

#include <atomic>
#include <cstdint>

namespace gw2v::store {

struct StoreMetrics {
  std::atomic<std::uint64_t> hits{0};        // row faults served by a resident block
  std::atomic<std::uint64_t> misses{0};      // row faults that read a block from disk
  std::atomic<std::uint64_t> evictions{0};   // frames recycled to make room
  std::atomic<std::uint64_t> writeBacks{0};  // dirty blocks flushed (eviction or flush())
  std::atomic<std::uint64_t> pinnedResident{0};  // pinned blocks faulted resident (gauge;
                                                 // pins are never evicted, so it only grows)

  double hitRate() const noexcept {
    const std::uint64_t h = hits.load(std::memory_order_relaxed);
    const std::uint64_t m = misses.load(std::memory_order_relaxed);
    return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }

  void reset() noexcept {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    writeBacks.store(0, std::memory_order_relaxed);
    pinnedResident.store(0, std::memory_order_relaxed);
  }

  /// Fold `o` into this sink (for aggregating per-table metrics post-hoc).
  void add(const StoreMetrics& o) noexcept {
    hits.fetch_add(o.hits.load(std::memory_order_relaxed), std::memory_order_relaxed);
    misses.fetch_add(o.misses.load(std::memory_order_relaxed), std::memory_order_relaxed);
    evictions.fetch_add(o.evictions.load(std::memory_order_relaxed), std::memory_order_relaxed);
    writeBacks.fetch_add(o.writeBacks.load(std::memory_order_relaxed), std::memory_order_relaxed);
    pinnedResident.fetch_add(o.pinnedResident.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  }
};

}  // namespace gw2v::store
