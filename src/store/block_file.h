#pragma once

// The durable half of the out-of-core tier: a fixed-geometry row-block file.
//
// Layout: one 64-byte magic-versioned header, then numBlocks() blocks of
// rowsPerBlock rows each, every row util::rowStrideFloats(dim) floats
// (padding bytes are always written as zero, so two files holding the same
// model are byte-identical). Block b starts at byte 64 + b * blockBytes() —
// the header is exactly one cache line, so every block (and therefore every
// row) keeps the 64B alignment contract when mapped or read into an aligned
// frame. The last block is zero-padded to full size; file size is exact and
// checked on open, which is what catches truncation.
//
// Crash safety: create() builds the whole file at `path + ".tmp"`, fsyncs,
// and atomically renames over `path` — a crash mid-create leaves either the
// old file or none, never a torn one (the stray .tmp is ignored by open and
// harmless to re-create over). In-place writeBlock() during training is
// deliberately not atomic: the working spill file is scratch state, and
// durability points go through checkpoints (graph/model_io v3), which use
// the same write-then-rename protocol.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

namespace gw2v::store {

class BlockFile {
 public:
  static constexpr char kMagic[8] = {'G', 'W', '2', 'V', 'B', 'L', 'K', '1'};
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 64;

  BlockFile() = default;
  BlockFile(BlockFile&&) = default;
  BlockFile& operator=(BlockFile&&) = default;

  /// Reads one row's current bits (strideFloats() floats) into `dst`; the
  /// padding tail must be zero (create() writes it so).
  using RowReader = const float* (*)(void* ctx, std::uint32_t row);

  /// Create the file at `path` (write header + every block to path+".tmp",
  /// fsync, rename). reader(ctx, row) must return a pointer to at least
  /// dim floats; the stride padding is zero-filled by create. Throws
  /// std::runtime_error on I/O failure, std::invalid_argument on bad shape.
  static BlockFile create(const std::string& path, std::uint32_t numRows, std::uint32_t dim,
                          std::uint32_t rowsPerBlock, RowReader reader, void* ctx);

  /// Open an existing file read-write, validating magic, version, geometry,
  /// and exact file size. Throws std::runtime_error on any mismatch.
  static BlockFile open(const std::string& path);

  /// Read block `b` (blockFloats() floats) into dst. Aborts the process on
  /// I/O failure — faults happen under noexcept row accessors and have no
  /// recovery path mid-training.
  void readBlock(std::uint32_t b, float* dst) noexcept;

  /// Write block `b` from src, in place. Same failure contract as readBlock.
  void writeBlock(std::uint32_t b, const float* src) noexcept;

  /// fflush + fsync the backing file (flush() durability point).
  void sync();

  std::uint32_t numRows() const noexcept { return numRows_; }
  std::uint32_t dim() const noexcept { return dim_; }
  std::uint32_t strideFloats() const noexcept { return stride_; }
  std::uint32_t rowsPerBlock() const noexcept { return rowsPerBlock_; }
  std::uint32_t numBlocks() const noexcept {
    return (numRows_ + rowsPerBlock_ - 1) / rowsPerBlock_;
  }
  std::size_t blockFloats() const noexcept {
    return static_cast<std::size_t>(rowsPerBlock_) * stride_;
  }
  std::size_t blockBytes() const noexcept { return blockFloats() * sizeof(float); }
  std::uint32_t blockOfRow(std::uint32_t row) const noexcept { return row / rowsPerBlock_; }
  const std::string& path() const noexcept { return path_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const noexcept { std::fclose(f); }
  };

  BlockFile(std::unique_ptr<std::FILE, FileCloser> f, std::string path, std::uint32_t numRows,
            std::uint32_t dim, std::uint32_t stride, std::uint32_t rowsPerBlock)
      : file_(std::move(f)),
        path_(std::move(path)),
        numRows_(numRows),
        dim_(dim),
        stride_(stride),
        rowsPerBlock_(rowsPerBlock) {}

  long blockOffset(std::uint32_t b) const noexcept {
    return static_cast<long>(kHeaderBytes + static_cast<std::size_t>(b) * blockBytes());
  }

  std::unique_ptr<std::FILE, FileCloser> file_;
  std::string path_;
  std::uint32_t numRows_ = 0;
  std::uint32_t dim_ = 0;
  std::uint32_t stride_ = 0;
  std::uint32_t rowsPerBlock_ = 0;
};

}  // namespace gw2v::store
