#pragma once

// Concurrent bit vector used by Gluon-style sparse synchronization to track
// which graph nodes were touched since the last sync round.
//
// set() is thread-safe (relaxed atomic RMW: the bits are consumed only after
// a barrier, so no ordering beyond the barrier's is required). Iteration and
// reset happen single-threaded between rounds.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gw2v::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, Word{});
  }

  std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    words_[i >> 6].v.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  /// Atomically set bit i; returns true when it was already set. The single
  /// "false" winner per (bit, epoch) is what EmbeddingTable uses to elect the
  /// one thread that snapshots a row's old value into the DeltaLog.
  bool testAndSet(std::size_t i) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    return (words_[i >> 6].v.fetch_or(mask, std::memory_order_relaxed) & mask) != 0;
  }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6].v.load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  void reset() noexcept {
    for (auto& w : words_) w.v.store(0, std::memory_order_relaxed);
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto& w : words_) c += __builtin_popcountll(w.v.load(std::memory_order_relaxed));
    return c;
  }

  /// Invoke fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].v.load(std::memory_order_relaxed);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Invoke fn(index) for every set bit in [lo, hi), in increasing index
  /// order. Word-skipping like forEachSet — the edge words are masked so the
  /// inner loop never tests bits outside the range one at a time — which is
  /// what makes per-master-range delta iteration O(set bits), not O(range).
  template <typename Fn>
  void forEachSetInRange(std::size_t lo, std::size_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    const std::size_t wLo = lo >> 6;
    const std::size_t wHi = (hi - 1) >> 6;
    for (std::size_t wi = wLo; wi <= wHi; ++wi) {
      std::uint64_t w = words_[wi].v.load(std::memory_order_relaxed);
      if (wi == wLo) w &= ~0ULL << (lo & 63);
      if (wi == wHi && (hi & 63) != 0) w &= ~0ULL >> (64 - (hi & 63));
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Number of set bits in [lo, hi).
  std::size_t countInRange(std::size_t lo, std::size_t hi) const noexcept {
    if (lo >= hi) return 0;
    const std::size_t wLo = lo >> 6;
    const std::size_t wHi = (hi - 1) >> 6;
    std::size_t c = 0;
    for (std::size_t wi = wLo; wi <= wHi; ++wi) {
      std::uint64_t w = words_[wi].v.load(std::memory_order_relaxed);
      if (wi == wLo) w &= ~0ULL << (lo & 63);
      if (wi == wHi && (hi & 63) != 0) w &= ~0ULL >> (64 - (hi & 63));
      c += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return c;
  }

  /// this |= other (sizes must match). Not thread-safe.
  void orWith(const BitVector& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i].v.store(words_[i].v.load(std::memory_order_relaxed) |
                            other.words_[i].v.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }

 private:
  struct Word {
    std::atomic<std::uint64_t> v{0};
    Word() = default;
    Word(const Word& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  std::size_t bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace gw2v::util
