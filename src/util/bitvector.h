#pragma once

// Concurrent bit vector used by Gluon-style sparse synchronization to track
// which graph nodes were touched since the last sync round.
//
// set() is thread-safe (relaxed atomic RMW: the bits are consumed only after
// a barrier, so no ordering beyond the barrier's is required). Iteration and
// reset happen single-threaded between rounds.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gw2v::util {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, Word{});
  }

  std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept {
    words_[i >> 6].v.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  bool test(std::size_t i) const noexcept {
    return (words_[i >> 6].v.load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  void reset() noexcept {
    for (auto& w : words_) w.v.store(0, std::memory_order_relaxed);
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto& w : words_) c += __builtin_popcountll(w.v.load(std::memory_order_relaxed));
    return c;
  }

  /// Invoke fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi].v.load(std::memory_order_relaxed);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// this |= other (sizes must match). Not thread-safe.
  void orWith(const BitVector& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i].v.store(words_[i].v.load(std::memory_order_relaxed) |
                            other.words_[i].v.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }

 private:
  struct Word {
    std::atomic<std::uint64_t> v{0};
    Word() = default;
    Word(const Word& o) : v(o.v.load(std::memory_order_relaxed)) {}
    Word& operator=(const Word& o) {
      v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  std::size_t bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace gw2v::util
