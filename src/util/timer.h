#pragma once

// Wall-clock and per-thread CPU timers.
//
// The distributed experiments report *simulated* cluster time: each host
// thread measures its own CPU busy time (CLOCK_THREAD_CPUTIME_ID) so that
// "computation time per host" is meaningful even when all hosts share one
// physical core, and communication time comes from the NetworkModel.

#include <chrono>
#include <cstdint>
#include <ctime>

namespace gw2v::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() noexcept { start_ = Clock::now(); }
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the *calling thread* since construction/reset.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}
  void reset() noexcept { start_ = now(); }
  double seconds() const noexcept { return now() - start_; }

  static double now() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_;
};

/// Accumulates time across many start/stop sections.
template <typename TimerT>
class Stopwatch {
 public:
  void start() noexcept { timer_.reset(); }
  void stop() noexcept { total_ += timer_.seconds(); }
  double seconds() const noexcept { return total_; }
  void clear() noexcept { total_ = 0.0; }

 private:
  TimerT timer_{};
  double total_ = 0.0;
};

using CpuStopwatch = Stopwatch<ThreadCpuTimer>;
using WallStopwatch = Stopwatch<WallTimer>;

}  // namespace gw2v::util
