#pragma once

// Precomputed sigmoid lookup table, following word2vec.c's EXP_TABLE.
//
// The SGNS inner loop evaluates sigma(x) for every (center, context) pair and
// every negative sample; a 1000-entry table over [-6, 6] is what the original
// implementation ships and what the paper's baselines use, so we reproduce it
// exactly (including the clamping behaviour at the boundaries).

#include <cmath>
#include <cstddef>
#include <vector>

namespace gw2v::util {

class SigmoidTable {
 public:
  static constexpr float kMaxExp = 6.0f;
  static constexpr std::size_t kDefaultSize = 1000;

  explicit SigmoidTable(std::size_t size = kDefaultSize) : table_(size) {
    for (std::size_t i = 0; i < size; ++i) {
      // Matches word2vec.c: exp((i/size*2-1) * MAX_EXP), then x/(x+1).
      const double e =
          std::exp((static_cast<double>(i) / static_cast<double>(size) * 2.0 - 1.0) * kMaxExp);
      table_[i] = static_cast<float>(e / (e + 1.0));
    }
  }

  /// sigma(x) with clamping: x <= -6 -> ~0, x >= 6 -> ~1.
  float operator()(float x) const noexcept {
    if (x >= kMaxExp) return 1.0f;
    if (x <= -kMaxExp) return 0.0f;
    const auto idx = static_cast<std::size_t>((x + kMaxExp) *
                                              (static_cast<float>(table_.size()) / kMaxExp / 2.0f));
    return table_[idx < table_.size() ? idx : table_.size() - 1];
  }

  /// Exact sigmoid, for tests and for code paths where table error matters.
  static float exact(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

  std::size_t size() const noexcept { return table_.size(); }

 private:
  std::vector<float> table_;
};

}  // namespace gw2v::util
