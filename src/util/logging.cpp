#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace gw2v::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel logThreshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }
void setLogThreshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void emitLogLine(LogLevel level, const std::string& msg) {
  std::string line = "[gw2v:";
  line += levelName(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}
}  // namespace detail

}  // namespace gw2v::util
