#include "util/simd.h"

// Three implementations of every kernel, selected once at runtime.
//
// The AVX paths are compiled with per-function target attributes rather than
// per-file flags, so this translation unit builds with any -march and the
// binary picks the widest tier the machine (and GW2V_FORCE_SCALAR) allows.
// The scalar tier keeps the exact loop shapes vecmath.h shipped with, so the
// dispatch refactor does not change the reference semantics.

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <immintrin.h>

namespace gw2v::util::simd {

namespace {

// ---------------------------------------------------------------- scalar --

float dotScalar(const float* __restrict__ a, const float* __restrict__ b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void dot4Scalar(const float* __restrict__ a, const float* __restrict__ b0,
                const float* __restrict__ b1, const float* __restrict__ b2,
                const float* __restrict__ b3, std::size_t n, float* out) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = a[i];
    s0 += v * b0[i];
    s1 += v * b1[i];
    s2 += v * b2[i];
    s3 += v * b3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

void axpyScalar(float alpha, const float* __restrict__ x, float* __restrict__ y,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpy4Scalar(const float* c, const float* __restrict__ x0, const float* __restrict__ x1,
                 const float* __restrict__ x2, const float* __restrict__ x3,
                 float* __restrict__ y, std::size_t n) {
  const float c0 = c[0], c1 = c[1], c2 = c[2], c3 = c[3];
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += c0 * x0[i] + c1 * x1[i] + c2 * x2[i] + c3 * x3[i];
  }
}

void axpbyScalar(float alpha, const float* __restrict__ x, float beta, float* __restrict__ y,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void scaleScalar(float alpha, float* __restrict__ x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void dotNormAccumScalar(const float* __restrict__ acc, const float* __restrict__ next,
                        std::size_t n, float* dotOut, float* norm2Out) {
  float d = 0.0f, g2 = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    d += acc[i] * next[i];
    g2 += acc[i] * acc[i];
  }
  *dotOut = d;
  *norm2Out = g2;
}

// --------------------------------------------------- codec converts, scalar

// One-element helpers shared by every tier's tail loop, so tails are bitwise
// identical to the scalar tier by construction.

/// float -> IEEE binary16, round-to-nearest-even. Bit-compatible with
/// VCVTPS2PH under the default rounding mode, including subnormal halves,
/// overflow to infinity, and NaN quieting.
inline std::uint16_t f32ToF16One(float f) noexcept {
  std::uint32_t x;
  std::memcpy(&x, &f, 4);
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN: keep top payload bits, force quiet
    const std::uint16_t payload = static_cast<std::uint16_t>((abs & 0x7fffffu) >> 13);
    return abs > 0x7f800000u ? static_cast<std::uint16_t>(sign | 0x7e00u | payload)
                             : static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  const int exp = static_cast<int>(abs >> 23) - 127 + 15;  // rebias to binary16
  std::uint32_t mant = abs & 0x7fffffu;
  if (exp >= 31) return sign | 0x7c00u;  // >= 2^16: infinity
  if (exp <= 0) {
    // Subnormal half (or zero): shift the 24-bit significand down and round.
    if (exp < -10) return sign;  // < 2^-25: underflows to zero even after RNE
    mant |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);  // 14..24
    std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    if (rem > half || (rem == half && (q & 1u))) ++q;
    return static_cast<std::uint16_t>(sign | q);
  }
  std::uint32_t q = mant >> 13;
  const std::uint32_t rem = mant & 0x1fffu;
  std::uint16_t h = static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) | q);
  // RNE increment; a mantissa carry rolls into the exponent (and, at the very
  // top, correctly produces infinity).
  if (rem > 0x1000u || (rem == 0x1000u && (q & 1u))) ++h;
  return h;
}

/// IEEE binary16 -> float (every half is exactly representable).
inline float f16ToF32One(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;
    } else {
      // Subnormal half: renormalize into a normal float.
      const int k = 31 - __builtin_clz(mant);  // 0..9
      out = sign | ((static_cast<std::uint32_t>(k) + 103u) << 23) |
            ((mant << (23 - k)) & 0x7fffffu);
    }
  } else if (exp == 31) {
    out = sign | 0x7f800000u | (mant << 13);
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, 4);
  return f;
}

inline std::int8_t f32ToI8One(float v, float invScale) noexcept {
  float p = v * invScale;
  if (p > 127.0f) p = 127.0f;
  if (p < -127.0f) p = -127.0f;
  return static_cast<std::int8_t>(std::lrintf(p));  // RNE under default FE_TONEAREST
}

void fp32ToFp16Scalar(const float* __restrict__ src, std::uint16_t* __restrict__ dst,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32ToF16One(src[i]);
}

void fp16ToFp32Scalar(const std::uint16_t* __restrict__ src, float* __restrict__ dst,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16ToF32One(src[i]);
}

float maxAbsScalar(const float* __restrict__ x, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

void fp32ToInt8Scalar(const float* __restrict__ src, float invScale,
                      std::int8_t* __restrict__ dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32ToI8One(src[i], invScale);
}

void int8ToFp32Scalar(const std::int8_t* __restrict__ src, float scale,
                      float* __restrict__ dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

// ------------------------------------------------------------- AVX2+FMA --

__attribute__((target("avx2,fma"))) inline float hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float dotAvx2(const float* a, const float* b,
                                                  std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float acc = hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Per-query accumulation mirrors dotAvx2 exactly (same unroll, same fold,
// same tail), so dot4(a, b0..b3) is bitwise-equal to four dot(a, bk) calls.
// The serving tier's determinism contract (batched scoring == per-query
// scoring == sharded + merged scoring) depends on this equivalence.
__attribute__((target("avx2,fma"))) void dot4Avx2(const float* a, const float* b0,
                                                  const float* b1, const float* b2,
                                                  const float* b3, std::size_t n, float* out) {
  __m256 s0a = _mm256_setzero_ps(), s0b = _mm256_setzero_ps();
  __m256 s1a = _mm256_setzero_ps(), s1b = _mm256_setzero_ps();
  __m256 s2a = _mm256_setzero_ps(), s2b = _mm256_setzero_ps();
  __m256 s3a = _mm256_setzero_ps(), s3b = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 va0 = _mm256_loadu_ps(a + i);
    const __m256 va1 = _mm256_loadu_ps(a + i + 8);
    s0a = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0 + i), s0a);
    s0b = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b0 + i + 8), s0b);
    s1a = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b1 + i), s1a);
    s1b = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1 + i + 8), s1b);
    s2a = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b2 + i), s2a);
    s2b = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b2 + i + 8), s2b);
    s3a = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b3 + i), s3a);
    s3b = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b3 + i + 8), s3b);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    s0a = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + i), s0a);
    s1a = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + i), s1a);
    s2a = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + i), s2a);
    s3a = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + i), s3a);
  }
  float r0 = hsum256(_mm256_add_ps(s0a, s0b));
  float r1 = hsum256(_mm256_add_ps(s1a, s1b));
  float r2 = hsum256(_mm256_add_ps(s2a, s2b));
  float r3 = hsum256(_mm256_add_ps(s3a, s3b));
  for (; i < n; ++i) {
    const float v = a[i];
    r0 += v * b0[i];
    r1 += v * b1[i];
    r2 += v * b2[i];
    r3 += v * b3[i];
  }
  out[0] = r0;
  out[1] = r1;
  out[2] = r2;
  out[3] = r3;
}

__attribute__((target("avx2,fma"))) void axpyAvx2(float alpha, const float* x, float* y,
                                                  std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) void axpy4Avx2(const float* c, const float* x0,
                                                   const float* x1, const float* x2,
                                                   const float* x3, float* y, std::size_t n) {
  const __m256 c0 = _mm256_set1_ps(c[0]), c1 = _mm256_set1_ps(c[1]);
  const __m256 c2 = _mm256_set1_ps(c[2]), c3 = _mm256_set1_ps(c[3]);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(c0, _mm256_loadu_ps(x0 + i), vy);
    vy = _mm256_fmadd_ps(c1, _mm256_loadu_ps(x1 + i), vy);
    vy = _mm256_fmadd_ps(c2, _mm256_loadu_ps(x2 + i), vy);
    vy = _mm256_fmadd_ps(c3, _mm256_loadu_ps(x3 + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) {
    y[i] += c[0] * x0[i] + c[1] * x1[i] + c[2] * x2[i] + c[3] * x3[i];
  }
}

__attribute__((target("avx2,fma"))) void axpbyAvx2(float alpha, const float* x, float beta,
                                                   float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vy = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
  }
  for (; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

__attribute__((target("avx2,fma"))) void scaleAvx2(float alpha, float* x, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) void dotNormAccumAvx2(const float* acc, const float* next,
                                                          std::size_t n, float* dotOut,
                                                          float* norm2Out) {
  __m256 vd = _mm256_setzero_ps();
  __m256 vn = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(acc + i);
    vd = _mm256_fmadd_ps(va, _mm256_loadu_ps(next + i), vd);
    vn = _mm256_fmadd_ps(va, va, vn);
  }
  float d = hsum256(vd), g2 = hsum256(vn);
  for (; i < n; ++i) {
    d += acc[i] * next[i];
    g2 += acc[i] * acc[i];
  }
  *dotOut = d;
  *norm2Out = g2;
}

// ----------------------------------------------- codec converts, AVX2+F16C

// The fp16 pair needs F16C on top of AVX2; cpuTier() requires all three
// before selecting the AVX2 tier (every AVX2 part since Haswell has F16C).

__attribute__((target("avx2,fma,f16c"))) void fp32ToFp16Avx2(const float* src,
                                                             std::uint16_t* dst,
                                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f32ToF16One(src[i]);
}

__attribute__((target("avx2,fma,f16c"))) void fp16ToFp32Avx2(const std::uint16_t* src,
                                                             float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = f16ToF32One(src[i]);
}

__attribute__((target("avx2,fma"))) float maxAbsAvx2(const float* x, std::size_t n) {
  const __m256 absMask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vm = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vm = _mm256_max_ps(vm, _mm256_and_ps(absMask, _mm256_loadu_ps(x + i)));
  }
  const __m128 lo = _mm256_castps256_ps128(vm);
  const __m128 hi = _mm256_extractf128_ps(vm, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_movehdup_ps(s));
  float m = _mm_cvtss_f32(s);
  for (; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx2,fma"))) void fp32ToInt8Avx2(const float* src, float invScale,
                                                        std::int8_t* dst, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(invScale);
  const __m256 hi = _mm256_set1_ps(127.0f);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 p = _mm256_mul_ps(_mm256_loadu_ps(src + i), vs);
    p = _mm256_min_ps(hi, _mm256_max_ps(lo, p));
    const __m256i q = _mm256_cvtps_epi32(p);  // RNE under default MXCSR
    const __m128i q16 =
        _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
    const __m128i q8 = _mm_packs_epi16(q16, q16);  // clamp made saturation a no-op
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i), q8);
  }
  for (; i < n; ++i) dst[i] = f32ToI8One(src[i], invScale);
}

__attribute__((target("avx2,fma"))) void int8ToFp32Avx2(const std::int8_t* src, float scale,
                                                        float* dst, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_cvtepi8_epi32(b);
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_cvtepi32_ps(w), vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

// ------------------------------------------------------------- AVX-512F --

__attribute__((target("avx512f"))) inline __mmask16 tailMask(std::size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

__attribute__((target("avx512f"))) float dotAvx512(const float* a, const float* b,
                                                   std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i), _mm512_maskz_loadu_ps(m, b + i),
                           acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

// Mirrors dotAvx512's per-query reduction exactly (32-wide main loop into
// acc0/acc1, 16-wide into acc0, masked tail into acc1) for the same
// bitwise-equivalence contract as dot4Avx2.
__attribute__((target("avx512f"))) void dot4Avx512(const float* a, const float* b0,
                                                   const float* b1, const float* b2,
                                                   const float* b3, std::size_t n,
                                                   float* out) {
  __m512 s0a = _mm512_setzero_ps(), s0b = _mm512_setzero_ps();
  __m512 s1a = _mm512_setzero_ps(), s1b = _mm512_setzero_ps();
  __m512 s2a = _mm512_setzero_ps(), s2b = _mm512_setzero_ps();
  __m512 s3a = _mm512_setzero_ps(), s3b = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 va0 = _mm512_loadu_ps(a + i);
    const __m512 va1 = _mm512_loadu_ps(a + i + 16);
    s0a = _mm512_fmadd_ps(va0, _mm512_loadu_ps(b0 + i), s0a);
    s0b = _mm512_fmadd_ps(va1, _mm512_loadu_ps(b0 + i + 16), s0b);
    s1a = _mm512_fmadd_ps(va0, _mm512_loadu_ps(b1 + i), s1a);
    s1b = _mm512_fmadd_ps(va1, _mm512_loadu_ps(b1 + i + 16), s1b);
    s2a = _mm512_fmadd_ps(va0, _mm512_loadu_ps(b2 + i), s2a);
    s2b = _mm512_fmadd_ps(va1, _mm512_loadu_ps(b2 + i + 16), s2b);
    s3a = _mm512_fmadd_ps(va0, _mm512_loadu_ps(b3 + i), s3a);
    s3b = _mm512_fmadd_ps(va1, _mm512_loadu_ps(b3 + i + 16), s3b);
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    s0a = _mm512_fmadd_ps(va, _mm512_loadu_ps(b0 + i), s0a);
    s1a = _mm512_fmadd_ps(va, _mm512_loadu_ps(b1 + i), s1a);
    s2a = _mm512_fmadd_ps(va, _mm512_loadu_ps(b2 + i), s2a);
    s3a = _mm512_fmadd_ps(va, _mm512_loadu_ps(b3 + i), s3a);
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    const __m512 va = _mm512_maskz_loadu_ps(m, a + i);
    s0b = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, b0 + i), s0b);
    s1b = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, b1 + i), s1b);
    s2b = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, b2 + i), s2b);
    s3b = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, b3 + i), s3b);
  }
  out[0] = _mm512_reduce_add_ps(_mm512_add_ps(s0a, s0b));
  out[1] = _mm512_reduce_add_ps(_mm512_add_ps(s1a, s1b));
  out[2] = _mm512_reduce_add_ps(_mm512_add_ps(s2a, s2b));
  out[3] = _mm512_reduce_add_ps(_mm512_add_ps(s3a, s3b));
}

__attribute__((target("avx512f"))) void axpyAvx512(float alpha, const float* x, float* y,
                                                   std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    const __m512 vy = _mm512_maskz_loadu_ps(m, y + i);
    _mm512_mask_storeu_ps(y + i, m, _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, x + i), vy));
  }
}

__attribute__((target("avx512f"))) void axpy4Avx512(const float* c, const float* x0,
                                                    const float* x1, const float* x2,
                                                    const float* x3, float* y, std::size_t n) {
  const __m512 c0 = _mm512_set1_ps(c[0]), c1 = _mm512_set1_ps(c[1]);
  const __m512 c2 = _mm512_set1_ps(c[2]), c3 = _mm512_set1_ps(c[3]);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vy = _mm512_loadu_ps(y + i);
    vy = _mm512_fmadd_ps(c0, _mm512_loadu_ps(x0 + i), vy);
    vy = _mm512_fmadd_ps(c1, _mm512_loadu_ps(x1 + i), vy);
    vy = _mm512_fmadd_ps(c2, _mm512_loadu_ps(x2 + i), vy);
    vy = _mm512_fmadd_ps(c3, _mm512_loadu_ps(x3 + i), vy);
    _mm512_storeu_ps(y + i, vy);
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    __m512 vy = _mm512_maskz_loadu_ps(m, y + i);
    vy = _mm512_fmadd_ps(c0, _mm512_maskz_loadu_ps(m, x0 + i), vy);
    vy = _mm512_fmadd_ps(c1, _mm512_maskz_loadu_ps(m, x1 + i), vy);
    vy = _mm512_fmadd_ps(c2, _mm512_maskz_loadu_ps(m, x2 + i), vy);
    vy = _mm512_fmadd_ps(c3, _mm512_maskz_loadu_ps(m, x3 + i), vy);
    _mm512_mask_storeu_ps(y + i, m, vy);
  }
}

__attribute__((target("avx512f"))) void axpbyAvx512(float alpha, const float* x, float beta,
                                                    float* y, std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vb = _mm512_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vy = _mm512_mul_ps(vb, _mm512_loadu_ps(y + i));
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), vy));
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    const __m512 vy = _mm512_mul_ps(vb, _mm512_maskz_loadu_ps(m, y + i));
    _mm512_mask_storeu_ps(y + i, m, _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, x + i), vy));
  }
}

__attribute__((target("avx512f"))) void scaleAvx512(float alpha, float* x, std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(x + i, _mm512_mul_ps(va, _mm512_loadu_ps(x + i)));
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    _mm512_mask_storeu_ps(x + i, m, _mm512_mul_ps(va, _mm512_maskz_loadu_ps(m, x + i)));
  }
}

__attribute__((target("avx512f"))) void dotNormAccumAvx512(const float* acc, const float* next,
                                                           std::size_t n, float* dotOut,
                                                           float* norm2Out) {
  __m512 vd = _mm512_setzero_ps();
  __m512 vn = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 va = _mm512_loadu_ps(acc + i);
    vd = _mm512_fmadd_ps(va, _mm512_loadu_ps(next + i), vd);
    vn = _mm512_fmadd_ps(va, va, vn);
  }
  if (i < n) {
    const __mmask16 m = tailMask(n - i);
    const __m512 va = _mm512_maskz_loadu_ps(m, acc + i);
    vd = _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(m, next + i), vd);
    vn = _mm512_fmadd_ps(va, va, vn);
  }
  *dotOut = _mm512_reduce_add_ps(vd);
  *norm2Out = _mm512_reduce_add_ps(vn);
}

// --------------------------------------------- codec converts, AVX-512F --

__attribute__((target("avx512f"))) void fp32ToFp16Avx512(const float* src,
                                                         std::uint16_t* dst,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f32ToF16One(src[i]);
}

__attribute__((target("avx512f"))) void fp16ToFp32Avx512(const std::uint16_t* src, float* dst,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = f16ToF32One(src[i]);
}

__attribute__((target("avx512f"))) float maxAbsAvx512(const float* x, std::size_t n) {
  // _mm512_and_ps needs AVX512DQ, which the tier probe does not check; the
  // integer and is plain AVX512F and clears the sign bit identically.
  const __m512i absMask = _mm512_set1_epi32(0x7fffffff);
  __m512 vm = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vm = _mm512_max_ps(vm, _mm512_castsi512_ps(_mm512_and_si512(
                               absMask, _mm512_castps_si512(_mm512_loadu_ps(x + i)))));
  }
  float m = _mm512_reduce_max_ps(vm);
  for (; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

__attribute__((target("avx512f"))) void fp32ToInt8Avx512(const float* src, float invScale,
                                                         std::int8_t* dst, std::size_t n) {
  const __m512 vs = _mm512_set1_ps(invScale);
  const __m512 hi = _mm512_set1_ps(127.0f);
  const __m512 lo = _mm512_set1_ps(-127.0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 p = _mm512_mul_ps(_mm512_loadu_ps(src + i), vs);
    p = _mm512_min_ps(hi, _mm512_max_ps(lo, p));
    const __m512i q = _mm512_cvtps_epi32(p);  // RNE under default MXCSR
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm512_cvtsepi32_epi8(q));
  }
  for (; i < n; ++i) dst[i] = f32ToI8One(src[i], invScale);
}

__attribute__((target("avx512f"))) void int8ToFp32Avx512(const std::int8_t* src, float scale,
                                                         float* dst, std::size_t n) {
  const __m512 vs = _mm512_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m512i w = _mm512_cvtepi8_epi32(b);
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_cvtepi32_ps(w), vs));
  }
  for (; i < n; ++i) dst[i] = static_cast<float>(src[i]) * scale;
}

// ------------------------------------------------------------- dispatch --

constexpr KernelTable kScalarTable{dotScalar,      dot4Scalar,     axpyScalar,
                                   axpy4Scalar,    axpbyScalar,    scaleScalar,
                                   dotNormAccumScalar,
                                   fp32ToFp16Scalar, fp16ToFp32Scalar, maxAbsScalar,
                                   fp32ToInt8Scalar, int8ToFp32Scalar};
constexpr KernelTable kAvx2Table{dotAvx2,        dot4Avx2,       axpyAvx2,
                                 axpy4Avx2,      axpbyAvx2,      scaleAvx2,
                                 dotNormAccumAvx2,
                                 fp32ToFp16Avx2, fp16ToFp32Avx2, maxAbsAvx2,
                                 fp32ToInt8Avx2, int8ToFp32Avx2};
constexpr KernelTable kAvx512Table{dotAvx512,        dot4Avx512,       axpyAvx512,
                                   axpy4Avx512,      axpbyAvx512,      scaleAvx512,
                                   dotNormAccumAvx512,
                                   fp32ToFp16Avx512, fp16ToFp32Avx512, maxAbsAvx512,
                                   fp32ToInt8Avx512, int8ToFp32Avx512};

std::atomic<const KernelTable*> gActive{nullptr};

bool envForcesScalar() noexcept {
  const char* v = std::getenv("GW2V_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

const char* tierName(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

Tier cpuTier() noexcept {
  if (__builtin_cpu_supports("avx512f")) return Tier::kAvx512;
  // The AVX2 tier's fp16 converts use F16C; ubiquitous alongside AVX2+FMA,
  // but check anyway so the tier never faults.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c")) {
    return Tier::kAvx2;
  }
  return Tier::kScalar;
}

Tier detectTier() noexcept { return envForcesScalar() ? Tier::kScalar : cpuTier(); }

const KernelTable& kernelsFor(Tier t) noexcept {
  const Tier cap = cpuTier();
  const Tier use = static_cast<int>(t) <= static_cast<int>(cap) ? t : cap;
  switch (use) {
    case Tier::kAvx512: return kAvx512Table;
    case Tier::kAvx2: return kAvx2Table;
    case Tier::kScalar: break;
  }
  return kScalarTable;
}

const KernelTable& activeKernels() noexcept {
  const KernelTable* t = gActive.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = &kernelsFor(detectTier());
    gActive.store(t, std::memory_order_release);
  }
  return *t;
}

Tier activeTier() noexcept {
  const KernelTable* t = &activeKernels();
  if (t == &kAvx512Table) return Tier::kAvx512;
  if (t == &kAvx2Table) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier forceTierForTesting(Tier t) noexcept {
  const KernelTable& table = kernelsFor(t);
  gActive.store(&table, std::memory_order_release);
  return activeTier();
}

}  // namespace gw2v::util::simd
