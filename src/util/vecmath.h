#pragma once

// Dense vector kernels used by the SGNS inner loop and the model combiner.
//
// These are written as simple, restrict-qualified loops; GCC/Clang at -O2
// auto-vectorize them. Keeping them free functions (rather than expression
// templates) makes the Hogwild data races on the underlying floats explicit
// and auditable at the call sites.

#include <cmath>
#include <cstddef>
#include <span>

namespace gw2v::util {

inline float dot(std::span<const float> a, std::span<const float> b) noexcept {
  const float* __restrict__ pa = a.data();
  const float* __restrict__ pb = b.data();
  float acc = 0.0f;
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

/// y += alpha * x
inline void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

/// y = alpha * x + beta * y
inline void axpby(float alpha, std::span<const float> x, float beta,
                  std::span<float> y) noexcept {
  const float* __restrict__ px = x.data();
  float* __restrict__ py = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) py[i] = alpha * px[i] + beta * py[i];
}

inline void scale(float alpha, std::span<float> x) noexcept {
  float* __restrict__ px = x.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) px[i] *= alpha;
}

inline void fill(std::span<float> x, float v) noexcept {
  for (auto& e : x) e = v;
}

inline void copyInto(std::span<const float> src, std::span<float> dst) noexcept {
  const float* __restrict__ ps = src.data();
  float* __restrict__ pd = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) pd[i] = ps[i];
}

/// dst = a - b
inline void sub(std::span<const float> a, std::span<const float> b,
                std::span<float> dst) noexcept {
  const float* __restrict__ pa = a.data();
  const float* __restrict__ pb = b.data();
  float* __restrict__ pd = dst.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) pd[i] = pa[i] - pb[i];
}

inline void add(std::span<const float> a, std::span<float> dst) noexcept {
  axpy(1.0f, a, dst);
}

inline float squaredNorm(std::span<const float> a) noexcept { return dot(a, a); }

inline float norm(std::span<const float> a) noexcept { return std::sqrt(squaredNorm(a)); }

/// Cosine similarity; returns 0 when either vector is (numerically) zero.
inline float cosine(std::span<const float> a, std::span<const float> b) noexcept {
  const float na = squaredNorm(a);
  const float nb = squaredNorm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot(a, b) / std::sqrt(na * nb);
}

}  // namespace gw2v::util
