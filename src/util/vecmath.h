#pragma once

// Dense vector kernels used by the SGNS inner loop and the model combiner.
//
// These wrappers keep the original span-based signatures but dispatch to the
// runtime-selected SIMD tier in util/simd.h (AVX-512F / AVX2+FMA / scalar,
// see simd_dispatch.cpp). Keeping them free functions (rather than expression
// templates) makes the Hogwild data races on the underlying floats explicit
// and auditable at the call sites.
//
// Size contract: binary kernels require a.size() == b.size(). Debug builds
// assert; release builds clamp to the shorter span so a mismatched row dim
// can never read or write out of bounds.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>

#include "util/simd.h"

namespace gw2v::util {

namespace detail {
inline std::size_t pairedSize(std::size_t a, std::size_t b) noexcept {
  assert(a == b && "vecmath: span size mismatch");
  return a < b ? a : b;
}
}  // namespace detail

inline float dot(std::span<const float> a, std::span<const float> b) noexcept {
  const std::size_t n = detail::pairedSize(a.size(), b.size());
  return simd::activeKernels().dot(a.data(), b.data(), n);
}

/// y += alpha * x
inline void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
  const std::size_t n = detail::pairedSize(x.size(), y.size());
  simd::activeKernels().axpy(alpha, x.data(), y.data(), n);
}

/// y = alpha * x + beta * y
inline void axpby(float alpha, std::span<const float> x, float beta,
                  std::span<float> y) noexcept {
  const std::size_t n = detail::pairedSize(x.size(), y.size());
  simd::activeKernels().axpby(alpha, x.data(), beta, y.data(), n);
}

inline void scale(float alpha, std::span<float> x) noexcept {
  simd::activeKernels().scale(alpha, x.data(), x.size());
}

inline void fill(std::span<float> x, float v) noexcept {
  for (auto& e : x) e = v;
}

inline void copyInto(std::span<const float> src, std::span<float> dst) noexcept {
  const std::size_t n = detail::pairedSize(src.size(), dst.size());
  const float* __restrict__ ps = src.data();
  float* __restrict__ pd = dst.data();
  for (std::size_t i = 0; i < n; ++i) pd[i] = ps[i];
}

/// dst = a - b
inline void sub(std::span<const float> a, std::span<const float> b,
                std::span<float> dst) noexcept {
  std::size_t n = detail::pairedSize(a.size(), b.size());
  n = detail::pairedSize(n, dst.size());
  const float* __restrict__ pa = a.data();
  const float* __restrict__ pb = b.data();
  float* __restrict__ pd = dst.data();
  for (std::size_t i = 0; i < n; ++i) pd[i] = pa[i] - pb[i];
}

inline void add(std::span<const float> a, std::span<float> dst) noexcept {
  axpy(1.0f, a, dst);
}

inline float squaredNorm(std::span<const float> a) noexcept { return dot(a, a); }

inline float norm(std::span<const float> a) noexcept { return std::sqrt(squaredNorm(a)); }

/// Cosine similarity; returns 0 when either vector is (numerically) zero.
inline float cosine(std::span<const float> a, std::span<const float> b) noexcept {
  const float na = squaredNorm(a);
  const float nb = squaredNorm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot(a, b) / std::sqrt(na * nb);
}

}  // namespace gw2v::util
