#pragma once

// Deterministic, fast pseudo-random number generation.
//
// All randomness in the library flows through Rng so that experiments are
// reproducible from a single 64-bit seed. Rng is xoshiro256** seeded via
// splitmix64, following the reference implementations by Blackman & Vigna.
// It satisfies std::uniform_random_bit_generator, so it can also be plugged
// into <random> distributions when convenient.

#include <cstdint>
#include <limits>

namespace gw2v::util {

/// Single-step splitmix64; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix, handy for hashing ids into reproducible streams.
constexpr std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Uses Lemire's multiply-shift rejection-free variant
  /// (bias < 2^-64, negligible for our purposes).
  std::uint64_t bounded(std::uint64_t n) noexcept {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform float in [0, 1).
  float uniformFloat() noexcept {
    return static_cast<float>(operator()() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [0, 1).
  double uniformDouble() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniformFloat(float lo, float hi) noexcept {
    return lo + (hi - lo) * uniformFloat();
  }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator state a pure function of call count, simplifying determinism
  /// reasoning across refactors).
  double normal() noexcept {
    for (;;) {
      const double u = 2.0 * uniformDouble() - 1.0;
      const double v = 2.0 * uniformDouble() - 1.0;
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * sqrtLog(s);
      }
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrtLog(double s) noexcept;

  std::uint64_t s_[4]{};
};

}  // namespace gw2v::util
