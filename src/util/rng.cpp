#include "util/rng.h"

#include <cmath>

namespace gw2v::util {

double Rng::sqrtLog(double s) noexcept { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace gw2v::util
