#pragma once

// Minimal leveled logging. Thread-safe at line granularity (single write()).

#include <mutex>
#include <sstream>
#include <string>

namespace gw2v::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
LogLevel logThreshold() noexcept;
void setLogThreshold(LogLevel level) noexcept;

namespace detail {
void emitLogLine(LogLevel level, const std::string& msg);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= logThreshold()) {}
  ~LogLine() {
    if (enabled_) detail::emitLogLine(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

}  // namespace gw2v::util

#define GW2V_LOG_DEBUG ::gw2v::util::LogLine(::gw2v::util::LogLevel::kDebug)
#define GW2V_LOG_INFO ::gw2v::util::LogLine(::gw2v::util::LogLevel::kInfo)
#define GW2V_LOG_WARN ::gw2v::util::LogLine(::gw2v::util::LogLevel::kWarn)
#define GW2V_LOG_ERROR ::gw2v::util::LogLine(::gw2v::util::LogLevel::kError)
