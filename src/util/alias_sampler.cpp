#include "util/alias_sampler.h"

#include <cassert>
#include <stdexcept>

namespace gw2v::util {

void AliasSampler::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weight vector");

  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: all weights zero");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  exact_.assign(n, 0.0);

  // Scaled probabilities; partition into under-full and over-full buckets.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    exact_[i] = weights[i] / total;
    scaled[i] = exact_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are exactly-1 buckets.
  for (const std::uint32_t i : small) prob_[i] = 1.0;
  for (const std::uint32_t i : large) prob_[i] = 1.0;
}

}  // namespace gw2v::util
