#pragma once

// Walker alias method for O(1) sampling from a discrete distribution.
//
// Negative sampling draws from the unigram^0.75 distribution billions of
// times per training run; word2vec.c uses a 100M-entry table, which wastes
// memory at small vocabularies and quantizes probabilities. The alias method
// gives exact probabilities with 2 tables of vocabulary size.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace gw2v::util {

class AliasSampler {
 public:
  AliasSampler() = default;

  /// Build from (non-negative, not-all-zero) weights.
  explicit AliasSampler(std::span<const double> weights) { build(weights); }

  void build(std::span<const double> weights);

  /// Draw an index with probability proportional to its weight.
  std::uint32_t sample(Rng& rng) const noexcept {
    const std::size_t i = static_cast<std::size_t>(rng.bounded(prob_.size()));
    return rng.uniformDouble() < prob_[i] ? static_cast<std::uint32_t>(i) : alias_[i];
  }

  std::size_t size() const noexcept { return prob_.size(); }
  bool empty() const noexcept { return prob_.empty(); }

  /// Exact probability of drawing index i (for tests).
  double probabilityOf(std::size_t i) const noexcept { return exact_[i]; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> exact_;
};

}  // namespace gw2v::util
