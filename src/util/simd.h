#pragma once

// Runtime-dispatched SIMD kernels for the dense level-1 math on the SGNS
// critical path.
//
// The tier (AVX-512F > AVX2+FMA > scalar) is resolved once, on first use,
// from __builtin_cpu_supports — so one binary runs optimally on any x86-64
// host regardless of the -march it was compiled with. Setting the
// GW2V_FORCE_SCALAR environment variable (to anything but "0"/"") pins the
// scalar tier; tests use it to cross-check the vector paths, and
// forceTierForTesting() lets a single process compare tiers directly.
//
// All kernels accept raw pointers + length so they can run over both
// std::span rows (vecmath.h wraps them) and the packed scratch tiles of the
// batched SGNS kernel. Lengths need no particular alignment or multiple —
// tails are masked (AVX-512) or peeled (AVX2). SIMD tiers reassociate the
// reductions, so results may differ from the scalar tier in the last ulps;
// every tier is deterministic for a fixed input.

#include <cstddef>
#include <cstdint>

namespace gw2v::util::simd {

enum class Tier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* tierName(Tier t) noexcept;

/// The dispatch table. dot4/axpy4 are the register-blocked building blocks
/// of the batched SGNS mini-GEMM: they stream one row against four partners
/// in a single pass, quartering the memory traffic of four level-1 calls.
struct KernelTable {
  /// sum_i a[i] * b[i]
  float (*dot)(const float* a, const float* b, std::size_t n);
  /// out[k] = sum_i a[i] * bk[i]  for k in 0..3
  void (*dot4)(const float* a, const float* b0, const float* b1, const float* b2,
               const float* b3, std::size_t n, float* out);
  /// y += alpha * x
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  /// y += c[0]*x0 + c[1]*x1 + c[2]*x2 + c[3]*x3
  void (*axpy4)(const float* c, const float* x0, const float* x1, const float* x2,
                const float* x3, float* y, std::size_t n);
  /// y = alpha * x + beta * y
  void (*axpby)(float alpha, const float* x, float beta, float* y, std::size_t n);
  /// x *= alpha
  void (*scale)(float alpha, float* x, std::size_t n);
  /// Fused single pass: *dotOut = sum_i acc[i]*next[i], *norm2Out = sum_i acc[i]^2.
  /// The model combiner's projection needs exactly these two reductions.
  void (*dotNormAccum)(const float* acc, const float* next, std::size_t n, float* dotOut,
                       float* norm2Out);

  // Sync-codec converts. Unlike the reductions above, these are per-element
  // and therefore bitwise-identical across tiers: the scalar tier is the
  // oracle and the vector tiers must reproduce it exactly (the wire bytes of
  // a quantized sync payload must not depend on the host's ISA).

  /// dst[i] = IEEE binary16 of src[i], round-to-nearest-even (matches F16C).
  void (*fp32ToFp16)(const float* src, std::uint16_t* dst, std::size_t n);
  /// dst[i] = float of the binary16 src[i] (exact).
  void (*fp16ToFp32)(const std::uint16_t* src, float* dst, std::size_t n);
  /// max_i |x[i]| (0 for n == 0).
  float (*maxAbs)(const float* x, std::size_t n);
  /// dst[i] = clamp(rne(src[i] * invScale), -127, 127); rne is round-to-
  /// nearest-even (matches CVTPS2DQ under the default MXCSR rounding mode).
  void (*fp32ToInt8)(const float* src, float invScale, std::int8_t* dst, std::size_t n);
  /// dst[i] = float(src[i]) * scale (the int8->float widen is exact).
  void (*int8ToFp32)(const std::int8_t* src, float scale, float* dst, std::size_t n);
};

/// Kernels for the tier resolved at first use (env override, then CPUID).
const KernelTable& activeKernels() noexcept;

/// Kernels for an explicit tier (benchmarks compare tiers side by side).
/// Requesting a tier the CPU cannot run falls back to the best supported one.
const KernelTable& kernelsFor(Tier t) noexcept;

/// The tier activeKernels() currently dispatches to.
Tier activeTier() noexcept;

/// Re-resolve from GW2V_FORCE_SCALAR + CPUID (does not change the active
/// table; tests assert on the result after mutating the environment).
Tier detectTier() noexcept;

/// Best tier the CPU supports, ignoring the environment override.
Tier cpuTier() noexcept;

/// Pin the active table to `t` (clamped to cpuTier()); returns the tier
/// actually installed. Test-only: not synchronized with concurrent kernels.
Tier forceTierForTesting(Tier t) noexcept;

}  // namespace gw2v::util::simd
