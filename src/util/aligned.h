#pragma once

// Cache-line / SIMD aligned storage for model matrices.
//
// Embedding and training matrices are accessed concurrently by Hogwild
// worker threads; 64-byte alignment keeps each row on distinct cache lines
// for typical dimensions and lets the compiler emit aligned vector loads.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace gw2v::util {

inline constexpr std::size_t kCacheLine = 64;

template <typename T, std::size_t Alignment = kCacheLine>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Round a row width up so consecutive rows start on cache-line boundaries.
constexpr std::size_t paddedRowWidth(std::size_t dim, std::size_t elemSize) noexcept {
  const std::size_t perLine = kCacheLine / elemSize;
  return ((dim + perLine - 1) / perLine) * perLine;
}

/// Widest SIMD vector the kernel layer may use: 16 floats (one AVX-512
/// register = one cache line). Row strides padded with paddedRowWidth keep
/// every row 64-byte aligned, so AVX-512 loads never split cache lines.
inline constexpr std::size_t kSimdFloats = kCacheLine / sizeof(float);
static_assert(paddedRowWidth(1, sizeof(float)) % kSimdFloats == 0,
              "float row stride must be a multiple of the AVX-512 width");
static_assert(paddedRowWidth(200, sizeof(float)) % kSimdFloats == 0,
              "float row stride must be a multiple of the AVX-512 width");

/// True when p sits on a cache-line (= widest SIMD) boundary.
inline bool isSimdAligned(const void* p) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (kCacheLine - 1)) == 0;
}

// ---- The model-row layout contract, checked in one place. -----------------
//
// Every row matrix in the system — EmbeddingTable labels, the batched-SGNS
// scratch tiles, serving snapshots — promises the SIMD kernels the same two
// things: the base of each row is 64-byte aligned, and consecutive rows are
// rowStrideFloats(dim) apart (a multiple of kSimdFloats, so an AVX-512 load
// never splits a cache line). Funnel row-pointer derivation through these
// helpers instead of restating the asserts at each site.

/// Float stride between consecutive rows of a dim-wide matrix.
constexpr std::size_t rowStrideFloats(std::size_t dim) noexcept {
  return paddedRowWidth(dim, sizeof(float));
}
static_assert(rowStrideFloats(7) % kSimdFloats == 0 && rowStrideFloats(32) % kSimdFloats == 0,
              "rowStrideFloats must preserve the 16-float stride contract");

/// Asserted gateway for handing a row pointer to the kernel layer.
inline float* checkedRow(float* p) noexcept {
  assert(isSimdAligned(p) && "model row lost its 64-byte alignment");
  return p;
}
inline const float* checkedRow(const float* p) noexcept {
  assert(isSimdAligned(p) && "model row lost its 64-byte alignment");
  return p;
}

}  // namespace gw2v::util
