#pragma once

// Small intrusive-list LRU shared by the serving query cache
// (serve/query_engine.h), the parameter-server client row cache
// (ps/client_core.h), and the out-of-core block cache (store/block_cache.h).
// Not thread-safe — every owner guards it with its own mutex (the cache sits
// on request/fault paths, never inside the collectives).

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace gw2v::util {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// capacity 0 disables the cache (get misses, put is a no-op).
  explicit LruCache(std::size_t capacity) : cap_(capacity) {}

  std::size_t capacity() const noexcept { return cap_; }
  std::size_t size() const noexcept { return map_.size(); }

  /// Returns the cached value and promotes the entry to most-recent.
  std::optional<V> get(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Removes the entry and returns its value by move — the copy-free
  /// counterpart of get() for callers that will put() the value back (or a
  /// replacement) shortly, e.g. claim-then-refresh round caches.
  std::optional<V> take(const K& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    std::optional<V> out(std::move(it->second->second));
    order_.erase(it->second);
    map_.erase(it);
    return out;
  }

  /// Inserts (or overwrites) and returns whatever value this displaced — the
  /// overwritten value, the evicted LRU victim, or `value` itself when
  /// capacity is 0 — so callers can recycle heap-heavy value storage.
  std::optional<V> put(const K& key, V value) {
    if (cap_ == 0) return std::optional<V>(std::move(value));
    const auto it = map_.find(key);
    if (it != map_.end()) {
      std::optional<V> old(std::move(it->second->second));
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return old;
    }
    std::optional<V> victim;
    if (map_.size() >= cap_) {
      victim.emplace(std::move(order_.back().second));
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    return victim;
  }

  /// Key of the least-recently-used entry, without promoting it. Lets owners
  /// that must act on a victim *before* displacing it (write dirty state
  /// back, recycle its storage) pick it with take() ahead of the put() — the
  /// block cache's write-back-before-eviction protocol.
  std::optional<K> lruKey() const {
    if (order_.empty()) return std::nullopt;
    return order_.back().first;
  }

 private:
  std::size_t cap_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash> map_;
};

}  // namespace gw2v::util
