#include "graph/algorithms.h"

#include <atomic>
#include <cmath>

#include "runtime/do_all.h"
#include "runtime/per_thread.h"
#include "runtime/work_queue.h"

namespace gw2v::graph {

namespace {

/// CAS-min for atomic floats stored as raw float with atomic_ref semantics.
inline bool atomicMinFloat(std::atomic<float>& target, float value) noexcept {
  float cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) return true;
  }
  return false;
}

inline bool atomicMinU32(std::atomic<std::uint32_t>& target, std::uint32_t value) noexcept {
  std::uint32_t cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) return true;
  }
  return false;
}

}  // namespace

std::vector<std::uint32_t> bfs(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool) {
  std::vector<std::atomic<std::uint32_t>> level(g.numNodes());
  for (auto& l : level) l.store(kUnreachedLevel, std::memory_order_relaxed);
  if (g.numNodes() == 0) return {};
  level[source].store(0, std::memory_order_relaxed);

  std::vector<NodeId> frontier{source};
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    runtime::WorkQueue<NodeId> next;
    ++depth;
    runtime::doAll(pool, 0, frontier.size(), [&](std::uint64_t i) {
      const NodeId u = frontier[i];
      for (const NodeId v : g.neighbors(u)) {
        std::uint32_t expect = kUnreachedLevel;
        if (level[v].compare_exchange_strong(expect, depth, std::memory_order_relaxed)) {
          next.push(v);
        }
      }
    });
    frontier = next.drain();
  }

  std::vector<std::uint32_t> out(g.numNodes());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = level[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<float> sssp(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool) {
  std::vector<std::atomic<float>> dist(g.numNodes());
  for (auto& d : dist) d.store(kInfDistance, std::memory_order_relaxed);
  if (g.numNodes() == 0) return {};
  dist[source].store(0.0f, std::memory_order_relaxed);

  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    runtime::doAll(pool, 0, g.numNodes(), [&](std::uint64_t ui) {
      const NodeId u = static_cast<NodeId>(ui);
      const float du = dist[u].load(std::memory_order_relaxed);
      if (du == kInfDistance) return;
      const auto nbrs = g.neighbors(u);
      const auto w = g.weights(u);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (atomicMinFloat(dist[nbrs[e]], du + w[e])) changed.store(true, std::memory_order_relaxed);
      }
    });
  }

  std::vector<float> out(g.numNodes());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = dist[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<float> ssspWorklist(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool) {
  std::vector<std::atomic<float>> dist(g.numNodes());
  for (auto& d : dist) d.store(kInfDistance, std::memory_order_relaxed);
  if (g.numNodes() == 0) return {};
  dist[source].store(0.0f, std::memory_order_relaxed);

  std::vector<NodeId> active{source};
  while (!active.empty()) {
    runtime::WorkQueue<NodeId> next;
    runtime::doAll(pool, 0, active.size(), [&](std::uint64_t i) {
      const NodeId u = active[i];
      const float du = dist[u].load(std::memory_order_relaxed);
      const auto nbrs = g.neighbors(u);
      const auto w = g.weights(u);
      for (std::size_t e = 0; e < nbrs.size(); ++e) {
        if (atomicMinFloat(dist[nbrs[e]], du + w[e])) next.push(nbrs[e]);
      }
    });
    active = next.drain();
  }

  std::vector<float> out(g.numNodes());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = dist[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<float> ssspDeltaStepping(const CSRGraph& g, NodeId source,
                                     runtime::ThreadPool& pool, float delta) {
  std::vector<std::atomic<float>> dist(g.numNodes());
  for (auto& d : dist) d.store(kInfDistance, std::memory_order_relaxed);
  if (g.numNodes() == 0) return {};
  dist[source].store(0.0f, std::memory_order_relaxed);

  // Buckets keyed by floor(dist/delta); lazily grown. A node may appear in
  // several buckets — stale entries are filtered on pop (dist check).
  std::vector<std::vector<NodeId>> buckets(1);
  buckets[0].push_back(source);
  const auto bucketOf = [&](float d) {
    return static_cast<std::size_t>(d / delta);
  };

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    // The current bucket may refill with light-edge relaxations; iterate to
    // fixpoint before moving on.
    while (!buckets[b].empty()) {
      std::vector<NodeId> frontier = std::move(buckets[b]);
      buckets[b] = {};
      runtime::WorkQueue<std::pair<NodeId, float>> relaxed;
      runtime::doAll(pool, 0, frontier.size(), [&](std::uint64_t i) {
        const NodeId u = frontier[i];
        const float du = dist[u].load(std::memory_order_relaxed);
        if (bucketOf(du) != b) return;  // stale entry
        const auto nbrs = g.neighbors(u);
        const auto w = g.weights(u);
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
          const float cand = du + w[e];
          if (atomicMinFloat(dist[nbrs[e]], cand)) relaxed.push({nbrs[e], cand});
        }
      });
      for (const auto& [v, dv] : relaxed.drain()) {
        const std::size_t target = bucketOf(dv);
        if (target >= buckets.size()) buckets.resize(target + 1);
        buckets[target].push_back(v);
      }
    }
  }

  std::vector<float> out(g.numNodes());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = dist[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<double> pagerank(const CSRGraph& g, runtime::ThreadPool& pool, double d, double tol,
                             int maxIters) {
  const std::size_t n = g.numNodes();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n, 0.0);
  if (n == 0) return rank;

  for (int iter = 0; iter < maxIters; ++iter) {
    // Mass from dangling nodes is redistributed uniformly (standard fix).
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (g.degree(u) == 0) dangling += rank[u];
    }

    std::fill(next.begin(), next.end(), 0.0);
    // Pull-style accumulation is race-free only with a transposed graph; we
    // use push-style with per-thread scratch to stay on the forward CSR.
    std::vector<std::vector<double>> scratch(pool.numThreads(),
                                             std::vector<double>(n, 0.0));
    pool.onEach([&](unsigned tid) {
      auto& acc = scratch[tid];
      const auto [lo, hi] = runtime::blockRange(n, pool.numThreads(), tid);
      for (std::uint64_t ui = lo; ui < hi; ++ui) {
        const NodeId u = static_cast<NodeId>(ui);
        const EdgeId deg = g.degree(u);
        if (deg == 0) continue;
        const double share = rank[u] / static_cast<double>(deg);
        for (const NodeId v : g.neighbors(u)) acc[v] += share;
      }
    });
    for (const auto& acc : scratch) {
      for (std::size_t i = 0; i < n; ++i) next[i] += acc[i];
    }

    const double base = (1.0 - d) / static_cast<double>(n) +
                        d * dangling / static_cast<double>(n);
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double updated = base + d * next[i];
      residual += std::abs(updated - rank[i]);
      rank[i] = updated;
    }
    if (residual < tol) break;
  }
  return rank;
}

std::vector<double> pagerankPull(const CSRGraph& transposed, std::span<const EdgeId> outDegree,
                                 runtime::ThreadPool& pool, double d, double tol,
                                 int maxIters) {
  const std::size_t n = transposed.numNodes();
  std::vector<double> rank(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);
  std::vector<double> next(n, 0.0);
  if (n == 0) return rank;

  for (int iter = 0; iter < maxIters; ++iter) {
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (outDegree[u] == 0) dangling += rank[u];
    }
    const double base =
        (1.0 - d) / static_cast<double>(n) + d * dangling / static_cast<double>(n);

    // Each node owns its accumulation: no races, no scratch.
    runtime::PerThread<double> residuals(pool.numThreads(), 0.0);
    pool.onEach([&](unsigned tid) {
      const auto [lo, hi] = runtime::blockRange(n, pool.numThreads(), tid);
      double localResidual = 0.0;
      for (std::uint64_t vi = lo; vi < hi; ++vi) {
        const NodeId v = static_cast<NodeId>(vi);
        double gathered = 0.0;
        for (const NodeId u : transposed.neighbors(v)) {
          gathered += rank[u] / static_cast<double>(outDegree[u]);
        }
        next[v] = base + d * gathered;
        localResidual += std::abs(next[v] - rank[v]);
      }
      residuals.local(tid) += localResidual;
    });
    rank.swap(next);
    const double residual =
        residuals.reduce(0.0, [](double a, double b) { return a + b; });
    if (residual < tol) break;
  }
  return rank;
}

std::vector<NodeId> connectedComponents(const CSRGraph& g, runtime::ThreadPool& pool) {
  const NodeId n = g.numNodes();
  std::vector<std::atomic<std::uint32_t>> comp(n);
  for (NodeId i = 0; i < n; ++i) comp[i].store(i, std::memory_order_relaxed);

  std::atomic<bool> changed{true};
  while (changed.load(std::memory_order_relaxed)) {
    changed.store(false, std::memory_order_relaxed);
    runtime::doAll(pool, 0, n, [&](std::uint64_t ui) {
      const NodeId u = static_cast<NodeId>(ui);
      const std::uint32_t cu = comp[u].load(std::memory_order_relaxed);
      for (const NodeId v : g.neighbors(u)) {
        if (atomicMinU32(comp[v], cu)) changed.store(true, std::memory_order_relaxed);
        const std::uint32_t cv = comp[v].load(std::memory_order_relaxed);
        if (atomicMinU32(comp[u], cv)) changed.store(true, std::memory_order_relaxed);
      }
    });
    // Pointer jumping: comp[u] <- comp[comp[u]] until stable.
    runtime::doAll(pool, 0, n, [&](std::uint64_t ui) {
      const NodeId u = static_cast<NodeId>(ui);
      for (;;) {
        const std::uint32_t c = comp[u].load(std::memory_order_relaxed);
        const std::uint32_t cc = comp[c].load(std::memory_order_relaxed);
        if (cc >= c) break;
        comp[u].store(cc, std::memory_order_relaxed);
        changed.store(true, std::memory_order_relaxed);
      }
    });
  }

  std::vector<NodeId> out(n);
  for (NodeId i = 0; i < n; ++i) out[i] = comp[i].load(std::memory_order_relaxed);
  return out;
}

std::vector<std::uint32_t> coreNumbers(const CSRGraph& g, runtime::ThreadPool& pool) {
  const NodeId n = g.numNodes();
  std::vector<std::atomic<std::uint32_t>> degree(n);
  for (NodeId i = 0; i < n; ++i)
    degree[i].store(static_cast<std::uint32_t>(g.degree(i)), std::memory_order_relaxed);
  std::vector<std::uint32_t> core(n, 0);
  std::vector<std::uint8_t> removed(n, 0);

  // Peel: repeatedly remove all nodes of degree <= k, assigning core k.
  NodeId alive = n;
  std::uint32_t k = 0;
  while (alive > 0) {
    runtime::WorkQueue<NodeId> peel;
    runtime::doAll(pool, 0, n, [&](std::uint64_t i) {
      if (!removed[i] && degree[i].load(std::memory_order_relaxed) <= k) {
        peel.push(static_cast<NodeId>(i));
      }
    });
    std::vector<NodeId> wave = peel.drain();
    if (wave.empty()) {
      ++k;
      continue;
    }
    while (!wave.empty()) {
      std::vector<NodeId> next;
      for (const NodeId u : wave) {
        if (removed[u]) continue;
        removed[u] = 1;
        core[u] = k;
        --alive;
        for (const NodeId v : g.neighbors(u)) {
          if (removed[v]) continue;
          const std::uint32_t before =
              degree[v].fetch_sub(1, std::memory_order_relaxed);
          if (before - 1 <= k) next.push_back(v);
        }
      }
      wave = std::move(next);
    }
  }
  return core;
}

std::uint64_t countTriangles(const CSRGraph& g, runtime::ThreadPool& pool) {
  // Orient edges from lower to higher degree (ties by id) and intersect
  // out-neighbourhoods — the standard work-optimal counting scheme.
  const NodeId n = g.numNodes();
  const auto rank = [&](NodeId a, NodeId b) {
    const EdgeId da = g.degree(a), db = g.degree(b);
    return da != db ? da < db : a < b;
  };
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u != v && rank(u, v)) out[u].push_back(v);
    }
    std::sort(out[u].begin(), out[u].end());
    out[u].erase(std::unique(out[u].begin(), out[u].end()), out[u].end());
  }

  std::atomic<std::uint64_t> total{0};
  runtime::doAll(pool, 0, n, [&](std::uint64_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    std::uint64_t local = 0;
    for (const NodeId v : out[u]) {
      // |out[u] ∩ out[v]| via merge (both sorted).
      std::size_t i = 0, j = 0;
      while (i < out[u].size() && j < out[v].size()) {
        if (out[u][i] == out[v][j]) {
          ++local;
          ++i;
          ++j;
        } else if (out[u][i] < out[v][j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

}  // namespace gw2v::graph
