#include "graph/random_walks.h"

#include "graph/partition.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace gw2v::graph {

NodeVocabulary degreeVocabulary(const CSRGraph& g) {
  NodeVocabulary out;
  // In-degree distinguishes dead-end sinks (reachable, count 1) from fully
  // isolated nodes (dropped).
  std::vector<std::uint32_t> inDeg(g.numNodes(), 0);
  for (NodeId u = 0; u < g.numNodes(); ++u)
    for (const NodeId v : g.neighbors(u)) ++inDeg[v];
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const EdgeId d = g.degree(n);
    if (d > 0) {
      out.vocab.addCount("n" + std::to_string(n), d);
    } else if (inDeg[n] > 0) {
      out.vocab.addCount("n" + std::to_string(n), 1);
    }
  }
  out.vocab.finalize(1);
  out.wordOfNode.assign(g.numNodes(), text::kInvalidWord);
  out.nodeOfWord.assign(out.vocab.size(), 0);
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const auto id = out.vocab.idOf("n" + std::to_string(n));
    if (!id) continue;
    out.wordOfNode[n] = *id;
    out.nodeOfWord[*id] = n;
  }
  return out;
}

RandomWalker::RandomWalker(const CSRGraph& g, const WalkOptions& opts)
    : g_(g), opts_(opts) {
  if (opts_.walkLength == 0) throw std::invalid_argument("RandomWalker: walkLength must be >= 1");
  if (!(opts_.p > 0.0f) || !(opts_.q > 0.0f))
    throw std::invalid_argument("RandomWalker: p and q must be positive");
  firstOrder_.resize(g_.numNodes());
  std::vector<double> w;
  for (NodeId n = 0; n < g_.numNodes(); ++n) {
    const auto ws = g_.weights(n);
    if (ws.empty()) continue;
    w.assign(ws.begin(), ws.end());
    firstOrder_[n].build(w);
  }
  secondOrder_ = opts_.p != 1.0f || opts_.q != 1.0f;
  if (secondOrder_) {
    maxBias_ = std::max({1.0 / opts_.p, 1.0, 1.0 / opts_.q});
    sortedPtr_.assign(static_cast<std::size_t>(g_.numNodes()) + 1, 0);
    sortedAdj_.resize(g_.numEdges());
    std::uint64_t at = 0;
    for (NodeId n = 0; n < g_.numNodes(); ++n) {
      const auto nbrs = g_.neighbors(n);
      sortedPtr_[n] = at;
      std::copy(nbrs.begin(), nbrs.end(), sortedAdj_.begin() + static_cast<std::ptrdiff_t>(at));
      std::sort(sortedAdj_.begin() + static_cast<std::ptrdiff_t>(at),
                sortedAdj_.begin() + static_cast<std::ptrdiff_t>(at + nbrs.size()));
      at += nbrs.size();
    }
    sortedPtr_[g_.numNodes()] = at;
  }
}

bool RandomWalker::adjacent(NodeId u, NodeId x) const noexcept {
  const auto lo = sortedAdj_.begin() + static_cast<std::ptrdiff_t>(sortedPtr_[u]);
  const auto hi = sortedAdj_.begin() + static_cast<std::ptrdiff_t>(sortedPtr_[u + 1]);
  return std::binary_search(lo, hi, x);
}

NodeId RandomWalker::step(NodeId prev, NodeId cur, util::Rng& rng) const {
  const auto nbrs = g_.neighbors(cur);
  const auto& alias = firstOrder_[cur];
  if (!secondOrder_ || prev == kNoPrev) return nbrs[alias.sample(rng)];

  const double invP = 1.0 / opts_.p;
  const double invQ = 1.0 / opts_.q;
  // Rejection sampling: draw first-order, accept with m(x)/M. Expected
  // iterations is M / E[m] >= 1 but small for sane p, q; the cap keeps
  // pathological settings (say q = 1e6) from spinning.
  constexpr int kMaxRejects = 32;
  for (int t = 0; t < kMaxRejects; ++t) {
    const NodeId x = nbrs[alias.sample(rng)];
    const double bias = x == prev ? invP : adjacent(prev, x) ? 1.0 : invQ;
    if (rng.uniformDouble() * maxBias_ < bias) return x;
  }
  // Exact inverse-CDF fallback over the biased weights.
  const auto w = g_.weights(cur);
  double total = 0.0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId x = nbrs[i];
    const double bias = x == prev ? invP : adjacent(prev, x) ? 1.0 : invQ;
    total += static_cast<double>(w[i]) * bias;
  }
  double r = rng.uniformDouble() * total;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const NodeId x = nbrs[i];
    const double bias = x == prev ? invP : adjacent(prev, x) ? 1.0 : invQ;
    r -= static_cast<double>(w[i]) * bias;
    if (r < 0.0) return x;
  }
  return nbrs.back();
}

void RandomWalker::walk(NodeId start, unsigned rep, unsigned epoch,
                        std::span<NodeId> out) const {
  // Content depends only on (seed, start, rep[, epoch]) — hosts and threads
  // that generate the same walk get the same tokens.
  std::uint64_t x = opts_.seed ^ 0x5EEDBA5EDEADBEEFULL;
  x = util::hash64(x ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(start) + 1)));
  x = util::hash64(x ^ ((static_cast<std::uint64_t>(rep) << 32) |
                        (opts_.freshWalksPerEpoch ? epoch : 0u)));
  util::Rng rng(x);

  out[0] = start;
  NodeId prev = kNoPrev;
  NodeId cur = start;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (g_.degree(cur) == 0) {
      prev = kNoPrev;  // dead end: teleport home, restart first-order
      cur = start;
    } else {
      const NodeId nxt = step(prev, cur, rng);
      prev = cur;
      cur = nxt;
    }
    out[i] = cur;
  }
}

std::vector<double> RandomWalker::transitionProbs(NodeId prev, NodeId cur) const {
  const auto nbrs = g_.neighbors(cur);
  const auto w = g_.weights(cur);
  std::vector<double> probs(nbrs.size(), 0.0);
  const bool biased = secondOrder_ && prev != kNoPrev;
  const double invP = 1.0 / opts_.p;
  const double invQ = 1.0 / opts_.q;
  double total = 0.0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    double m = 1.0;
    if (biased) {
      const NodeId x = nbrs[i];
      m = x == prev ? invP : adjacent(prev, x) ? 1.0 : invQ;
    }
    probs[i] = static_cast<double>(w[i]) * m;
    total += probs[i];
  }
  if (total > 0.0)
    for (double& pr : probs) pr /= total;
  return probs;
}

// ---------------------------------------------------------------------------

class RandomWalkCorpus::Shard final : public text::CorpusShard {
 public:
  Shard(const RandomWalker& walker, const NodeVocabulary& nodes, std::vector<NodeId> starts)
      : walker_(walker), nodes_(nodes), starts_(std::move(starts)) {
    const auto& o = walker_.options();
    tokens_ = static_cast<std::uint64_t>(starts_.size()) * o.walksPerNode * o.walkLength;
    walkBuf_.resize(o.walkLength);
  }

  std::uint64_t tokensPerEpoch() const noexcept override { return tokens_; }

  void beginEpoch(unsigned epoch) override {
    epoch_ = epoch;
    cursor_ = 0;
  }

  std::span<const text::WordId> nextChunk() override {
    const auto& o = walker_.options();
    const std::uint64_t totalWalks =
        static_cast<std::uint64_t>(starts_.size()) * o.walksPerNode;
    const std::size_t cap = std::max<std::size_t>(o.chunkTokens, o.walkLength);
    buf_.clear();
    while (cursor_ < totalWalks && buf_.size() + o.walkLength <= cap) {
      const NodeId start = starts_[cursor_ / o.walksPerNode];
      const unsigned rep = static_cast<unsigned>(cursor_ % o.walksPerNode);
      walker_.walk(start, rep, epoch_, walkBuf_);
      for (const NodeId n : walkBuf_) buf_.push_back(nodes_.wordOfNode[n]);
      ++cursor_;
    }
    peakBytes_ = std::max<std::uint64_t>(peakBytes_, buf_.capacity() * sizeof(text::WordId));
    return buf_;
  }

  std::uint64_t peakBytes() const noexcept { return peakBytes_; }

 private:
  const RandomWalker& walker_;
  const NodeVocabulary& nodes_;
  std::vector<NodeId> starts_;
  std::uint64_t tokens_ = 0;
  unsigned epoch_ = 0;
  std::uint64_t cursor_ = 0;  // walk index: node-major, reps within a node
  std::vector<NodeId> walkBuf_;
  std::vector<text::WordId> buf_;
  std::uint64_t peakBytes_ = 0;
};

RandomWalkCorpus::RandomWalkCorpus(const CSRGraph& g, const NodeVocabulary& nodes,
                                   WalkOptions opts, unsigned numHosts)
    : walker_(g, opts), nodes_(nodes) {
  if (numHosts == 0) throw std::invalid_argument("RandomWalkCorpus: numHosts must be >= 1");
  if (nodes_.wordOfNode.size() != g.numNodes())
    throw std::invalid_argument("RandomWalkCorpus: vocabulary/graph node count mismatch");
  const BlockedPartition part(g.numNodes(), numHosts);
  shards_.reserve(numHosts);
  for (unsigned h = 0; h < numHosts; ++h) {
    const auto [lo, hi] = part.masterRange(h);
    std::vector<NodeId> starts;
    for (NodeId n = lo; n < hi; ++n)
      if (g.degree(n) > 0) starts.push_back(n);
    shards_.push_back(std::make_unique<Shard>(walker_, nodes_, std::move(starts)));
  }
}

RandomWalkCorpus::~RandomWalkCorpus() = default;

text::CorpusShard& RandomWalkCorpus::shard(unsigned s) { return *shards_[s]; }

std::uint64_t RandomWalkCorpus::bufferedBytesPeak() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->peakBytes();
  return total;
}

}  // namespace gw2v::graph
