#pragma once

// Binary checkpointing of the full model graph (both labels), so long
// training runs can snapshot after any epoch and resume or ship the exact
// state elsewhere.
//
// Format v2: magic, version, numNodes, dim, hasVocab flag, optional
// vocabulary section (per word: u32 length, bytes, u64 count, in id order),
// then embedding rows and training rows (unpadded little-endian float32).
// The vocabulary section makes a checkpoint self-contained for the serving
// tier (serve::EmbeddingSnapshot::fromCheckpointFile). v1 files (no flag, no
// vocabulary) still load; loadCheckpointFull reports their vocabulary as
// absent and serving rejects them with a clear error.
//
// Format v3 (opt-in, saveCheckpointV3): same prefix and vocabulary section,
// then per label a u32 rowsPerBlock + u32 strideFloats pair followed by the
// rows in store::BlockFile geometry — rowsPerBlock rows per block, each row
// padded to strideFloats with zeros, the last block zero-filled. The blocked
// layout streams through the out-of-core tier's cache block by block (one
// block of working memory on both save and load), where the v2 row-at-a-time
// layout would be equivalent but the explicit geometry lets tooling mmap or
// slice a checkpoint without parsing rows. Default saves stay v2: every
// golden byte lock and external consumer keeps working unchanged.
//
// All saves (v2 and v3) are crash-safe: the file is staged at path + ".tmp",
// fsynced, and atomically renamed into place, so a crash mid-save leaves the
// previous checkpoint (or nothing) — never a torn file.

#include <optional>
#include <string>

#include "graph/model_graph.h"
#include "text/vocabulary.h"

namespace gw2v::graph {

/// Writes format v2. Passing a vocabulary (its size must equal the model's
/// node count) embeds it so the checkpoint can feed the serving tier.
void saveCheckpoint(const std::string& path, const ModelGraph& model,
                    const text::Vocabulary* vocab = nullptr);

/// Writes format v3 (blocked payload, see header comment). rowsPerBlock
/// should match the spill geometry when the model is out-of-core so save
/// faults each block exactly once, but any value >= 1 is valid.
void saveCheckpointV3(const std::string& path, const ModelGraph& model,
                      const text::Vocabulary* vocab = nullptr,
                      std::uint32_t rowsPerBlock = 64);

/// Model only (v1, v2, or v3 input; an embedded vocabulary is validated but
/// dropped). Throws std::runtime_error on missing/corrupt/truncated files.
ModelGraph loadCheckpoint(const std::string& path);

struct Checkpoint {
  ModelGraph model;
  /// Present iff the file carried a vocabulary section.
  std::optional<text::Vocabulary> vocab;
};

/// Model + embedded vocabulary (when present). Same error behaviour as
/// loadCheckpoint.
Checkpoint loadCheckpointFull(const std::string& path);

}  // namespace gw2v::graph
