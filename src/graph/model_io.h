#pragma once

// Binary checkpointing of the full model graph (both labels), so long
// training runs can snapshot after any epoch and resume or ship the exact
// state elsewhere.
//
// Format v2: magic, version, numNodes, dim, hasVocab flag, optional
// vocabulary section (per word: u32 length, bytes, u64 count, in id order),
// then embedding rows and training rows (unpadded little-endian float32).
// The vocabulary section makes a checkpoint self-contained for the serving
// tier (serve::EmbeddingSnapshot::fromCheckpointFile). v1 files (no flag, no
// vocabulary) still load; loadCheckpointFull reports their vocabulary as
// absent and serving rejects them with a clear error.

#include <optional>
#include <string>

#include "graph/model_graph.h"
#include "text/vocabulary.h"

namespace gw2v::graph {

/// Writes format v2. Passing a vocabulary (its size must equal the model's
/// node count) embeds it so the checkpoint can feed the serving tier.
void saveCheckpoint(const std::string& path, const ModelGraph& model,
                    const text::Vocabulary* vocab = nullptr);

/// Model only (v1 or v2 input; an embedded vocabulary is validated but
/// dropped). Throws std::runtime_error on missing/corrupt/truncated files.
ModelGraph loadCheckpoint(const std::string& path);

struct Checkpoint {
  ModelGraph model;
  /// Present iff the file carried a vocabulary section.
  std::optional<text::Vocabulary> vocab;
};

/// Model + embedded vocabulary (when present). Same error behaviour as
/// loadCheckpoint.
Checkpoint loadCheckpointFull(const std::string& path);

}  // namespace gw2v::graph
