#pragma once

// Binary checkpointing of the full model graph (both labels), so long
// training runs can snapshot after any epoch and resume or ship the exact
// state elsewhere. Format: magic, version, numNodes, dim, embedding rows,
// training rows (unpadded little-endian float32).

#include <string>

#include "graph/model_graph.h"

namespace gw2v::graph {

void saveCheckpoint(const std::string& path, const ModelGraph& model);

/// Throws std::runtime_error on missing/corrupt/truncated files.
ModelGraph loadCheckpoint(const std::string& path);

}  // namespace gw2v::graph
