#pragma once

// Random-walk corpus generation for node embeddings (DeepWalk / node2vec).
//
// The paper trains word embeddings, but the same Any2Vec machinery embeds
// graph nodes once walks stand in for sentences: each node becomes a "word"
// whose frequency is its degree, and truncated random walks over the CSR
// partition become the training corpus. Walks are generated per host over
// the BlockedPartition's contiguous master range and exposed through the
// text::CorpusSource pull interface, so the GraphWord2Vec trainer consumes
// them unchanged — materialized, or pipelined through text::streamSource.
//
// Sampling follows node2vec (Grover & Leskovec, KDD'16): the first step of a
// walk draws from the weighted first-order distribution via a per-node alias
// table; subsequent steps apply the second-order bias
//   m(x) = 1/p  if x == prev
//          1    if x adjacent to prev
//          1/q  otherwise
// by rejection sampling against the first-order alias draw (accept with
// probability m(x)/max(1/p, 1, 1/q)), falling back to exact inverse-CDF
// sampling after a capped number of rejections so walks stay O(1) expected
// per step and always terminate. p = q = 1 short-circuits to pure
// first-order DeepWalk sampling (one alias draw per step).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "text/corpus_source.h"
#include "text/vocabulary.h"
#include "util/alias_sampler.h"
#include "util/rng.h"

namespace gw2v::graph {

struct WalkOptions {
  unsigned walksPerNode = 10;  ///< r in DeepWalk — walks started per node
  unsigned walkLength = 40;    ///< tokens per walk (exact; see dead-end note)
  float p = 1.0f;              ///< node2vec return parameter (1/p return bias)
  float q = 1.0f;              ///< node2vec in-out parameter (1/q explore bias)
  std::uint64_t seed = 1;
  /// When set, walk content also mixes in the epoch number, so every epoch
  /// trains on fresh walks (tokensPerEpoch is unchanged). Off by default:
  /// replayed epochs see identical walks, matching a materialized corpus.
  bool freshWalksPerEpoch = false;
  /// Target tokens per pulled chunk; chunks hold whole walks, so the actual
  /// size is rounded up to a multiple of walkLength.
  std::size_t chunkTokens = std::size_t{1} << 15;
};

/// Vocabulary over graph nodes plus the id maps between the two spaces.
/// Vocabulary::finalize sorts by count (= degree), so WordId != NodeId.
struct NodeVocabulary {
  text::Vocabulary vocab;
  /// NodeId -> WordId; text::kInvalidWord for isolated nodes (no edges).
  std::vector<text::WordId> wordOfNode;
  /// WordId -> NodeId (size vocab.size()).
  std::vector<NodeId> nodeOfWord;
};

/// Degree-derived vocabulary: node n becomes word "n<id>" with frequency
/// max(out-degree, 1), so unigram^0.75 negative sampling weights nodes by
/// connectivity. Dead-end sinks (in-degree > 0, out-degree 0) get count 1 —
/// walks can visit them, so they must stay sampleable. Fully isolated nodes
/// are dropped. `inDegree` of node n is taken from transpose(g) only when
/// the graph is directed; pass the graph's transpose yourself to avoid the
/// rebuild if you already have it.
NodeVocabulary degreeVocabulary(const CSRGraph& g);

/// Deterministic walk generator over a CSRGraph. Walk content is a pure
/// function of (options.seed, start node, repetition index [, epoch]) —
/// independent of host count, thread count, and call order.
class RandomWalker {
 public:
  RandomWalker(const CSRGraph& g, const WalkOptions& opts);

  const WalkOptions& options() const noexcept { return opts_; }
  const CSRGraph& graph() const noexcept { return g_; }

  /// Sentinel "no previous node" for the first step of a walk.
  static constexpr NodeId kNoPrev = 0xffffffffu;

  /// Draw the next node of a walk at `cur` having arrived from `prev`
  /// (kNoPrev => first-order step). Requires degree(cur) > 0.
  NodeId step(NodeId prev, NodeId cur, util::Rng& rng) const;

  /// Fill `out` (length = options().walkLength) with the walk started at
  /// `start` for repetition `rep`; `epoch` is mixed into the stream only
  /// when freshWalksPerEpoch is set. Requires degree(start) > 0. If the walk
  /// reaches a node with no out-edges it teleports back to `start` and
  /// continues, so every walk is exactly walkLength tokens (the trainer's
  /// round accounting needs exact per-epoch token counts).
  void walk(NodeId start, unsigned rep, unsigned epoch, std::span<NodeId> out) const;

  /// Exact second-order transition distribution over neighbors(cur), in
  /// adjacency order, given the walk arrived from `prev` (kNoPrev =>
  /// first-order). Reference for testing the samplers; O(degree) per call.
  std::vector<double> transitionProbs(NodeId prev, NodeId cur) const;

 private:
  bool adjacent(NodeId u, NodeId x) const noexcept;

  const CSRGraph& g_;
  WalkOptions opts_;
  std::vector<util::AliasSampler> firstOrder_;  // per node, over edge weights
  // Sorted adjacency (node2vec only) for O(log d) membership tests.
  std::vector<NodeId> sortedAdj_;
  std::vector<std::uint64_t> sortedPtr_;
  bool secondOrder_ = false;
  double maxBias_ = 1.0;  // max(1/p, 1, 1/q)
};

/// CorpusSource emitting random walks: shard h generates walks for the
/// non-isolated start nodes inside BlockedPartition(numNodes, H)'s master
/// range of host h, node-major (all repetitions of a node, then the next
/// node). Concatenating the H shard streams therefore reproduces the H = 1
/// stream exactly. tokensPerEpoch is exact: starts * walksPerNode *
/// walkLength. Generation is synchronous with the pull — wrap in
/// text::streamSource to overlap it with training.
class RandomWalkCorpus final : public text::CorpusSource {
 public:
  /// `g` and `nodes` must outlive the corpus.
  RandomWalkCorpus(const CSRGraph& g, const NodeVocabulary& nodes, WalkOptions opts,
                   unsigned numHosts);
  ~RandomWalkCorpus() override;

  unsigned numShards() const noexcept override {
    return static_cast<unsigned>(shards_.size());
  }
  text::CorpusShard& shard(unsigned s) override;

  /// Peak bytes held across all shard chunk buffers.
  std::uint64_t bufferedBytesPeak() const noexcept override;

  const RandomWalker& walker() const noexcept { return walker_; }

 private:
  class Shard;
  RandomWalker walker_;
  const NodeVocabulary& nodes_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gw2v::graph
