#pragma once

// Classic graph-analytics kernels on the Galois-lite runtime.
//
// These validate that the substrate GraphWord2Vec sits on is a genuine
// graph-analytics framework (the paper's framing): topology-driven rounds
// (Bellman-Ford SSSP, label-propagation CC, PageRank) and data-driven
// worklists (BFS), all expressed with doAll + atomics exactly as the paper's
// Section 2.4 describes.

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.h"
#include "runtime/thread_pool.h"

namespace gw2v::graph {

inline constexpr std::uint32_t kUnreachedLevel = std::numeric_limits<std::uint32_t>::max();
inline constexpr float kInfDistance = std::numeric_limits<float>::infinity();

/// Level-synchronous parallel BFS; returns per-node level (kUnreachedLevel
/// for unreachable nodes).
std::vector<std::uint32_t> bfs(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool);

/// Bellman-Ford style topology-driven SSSP with relaxation operator.
std::vector<float> sssp(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool);

/// Data-driven (worklist) SSSP; identical results, different schedule.
std::vector<float> ssspWorklist(const CSRGraph& g, NodeId source, runtime::ThreadPool& pool);

/// Delta-stepping SSSP (the data-driven bucketed schedule Section 2.4 names):
/// active nodes live in buckets of width `delta`; light relaxations stay in
/// the current bucket, heavier ones land in later buckets.
std::vector<float> ssspDeltaStepping(const CSRGraph& g, NodeId source,
                                     runtime::ThreadPool& pool, float delta = 1.0f);

/// Topology-driven PageRank with damping d, run until L1 residual < tol or
/// maxIters rounds (push-style over the forward graph).
std::vector<double> pagerank(const CSRGraph& g, runtime::ThreadPool& pool, double d = 0.85,
                             double tol = 1e-9, int maxIters = 100);

/// Pull-style PageRank (Gemini's dense mode): each node gathers from its
/// in-neighbours, race-free without per-thread scratch. Pass the transposed
/// graph plus the forward graph's out-degrees.
std::vector<double> pagerankPull(const CSRGraph& transposed,
                                 std::span<const EdgeId> outDegree,
                                 runtime::ThreadPool& pool, double d = 0.85,
                                 double tol = 1e-9, int maxIters = 100);

/// Connected components by pointer-jumping label propagation (treats the
/// graph as undirected; callers should pass a symmetrized graph).
std::vector<NodeId> connectedComponents(const CSRGraph& g, runtime::ThreadPool& pool);

/// Per-node core number by iterative peeling (pass a symmetrized graph).
std::vector<std::uint32_t> coreNumbers(const CSRGraph& g, runtime::ThreadPool& pool);

/// Total triangle count (each triangle counted once; pass a symmetrized
/// graph without parallel edges or self loops for exact results).
std::uint64_t countTriangles(const CSRGraph& g, runtime::ThreadPool& pool);

}  // namespace gw2v::graph
