#pragma once

// Master/mirror partitioning policies (CuSP-style, simplified).
//
// GraphWord2Vec replicates every node on every host ("we modified Gluon to
// customize the partitioning and enable this" — Section 4.2), so the only
// per-node decision is which host owns the *master* proxy. We provide the
// blocked policy the paper illustrates (contiguous chunks, Figure 4) plus a
// hash policy for load-balance comparisons.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace gw2v::graph {

class NodePartition {
 public:
  NodePartition(std::uint32_t numNodes, unsigned numHosts)
      : numNodes_(numNodes), numHosts_(numHosts) {
    if (numHosts == 0) throw std::invalid_argument("NodePartition: numHosts must be >= 1");
  }
  virtual ~NodePartition() = default;

  std::uint32_t numNodes() const noexcept { return numNodes_; }
  unsigned numHosts() const noexcept { return numHosts_; }

  /// Host owning the master proxy of `node`.
  virtual unsigned masterOf(std::uint32_t node) const noexcept = 0;

  /// Number of masters owned by `host`.
  std::uint32_t mastersOf(unsigned host) const noexcept {
    std::uint32_t c = 0;
    for (std::uint32_t n = 0; n < numNodes_; ++n) c += masterOf(n) == host ? 1 : 0;
    return c;
  }

 protected:
  std::uint32_t numNodes_;
  unsigned numHosts_;
};

/// Contiguous blocks of node ids per host (Figure 4's P1..P4 layout).
class BlockedPartition final : public NodePartition {
 public:
  using NodePartition::NodePartition;

  unsigned masterOf(std::uint32_t node) const noexcept override {
    // Host h owns [floor(n*h/H), floor(n*(h+1)/H)). Start from the obvious
    // candidate and nudge; rounding puts it at most one host off.
    const std::uint64_t n = numNodes_;
    unsigned host =
        n == 0 ? 0
               : static_cast<unsigned>(static_cast<std::uint64_t>(node) * numHosts_ / n);
    if (host >= numHosts_) host = numHosts_ - 1;
    while (host > 0 && node < blockLo(host)) --host;
    while (host + 1 < numHosts_ && node >= blockLo(host + 1)) ++host;
    return host;
  }

  /// [lo, hi) of masters owned by `host`.
  std::pair<std::uint32_t, std::uint32_t> masterRange(unsigned host) const noexcept {
    return {blockLo(host), blockLo(host + 1)};
  }

 private:
  std::uint32_t blockLo(unsigned host) const noexcept {
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(numNodes_) * host / numHosts_);
  }
};

/// Hash-based master assignment (decorrelates ownership from word frequency,
/// since vocab ids are frequency-sorted).
class HashPartition final : public NodePartition {
 public:
  HashPartition(std::uint32_t numNodes, unsigned numHosts, std::uint64_t salt = 0x9e3779b9ULL)
      : NodePartition(numNodes, numHosts), salt_(salt) {}

  unsigned masterOf(std::uint32_t node) const noexcept override {
    return static_cast<unsigned>(util::hash64(node ^ salt_) % numHosts_);
  }

 private:
  std::uint64_t salt_;
};

}  // namespace gw2v::graph
