#pragma once

// The Word2Vec model as a graph: every vocabulary word is a node carrying two
// dense labels — the embedding vector (hidden layer) and the training vector
// (output layer) — exactly as Figure 1 (bottom) of the paper lays out. Edges
// are never materialized: the Skip-Gram operator generates positive pairs by
// sliding a window over the corpus and negative pairs by sampling.
//
// ModelGraph is a thin façade over one model::EmbeddingTable per label; the
// table owns storage, the dirty set, and the row-granular DeltaLog the sync
// layer measures deltas against (see model/embedding_table.h). Rows are
// cache-line padded; Hogwild workers update rows concurrently and benignly
// race within a row (the word2vec.c discipline).

#include <cstdint>
#include <span>

#include "model/embedding_table.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace gw2v::graph {

enum class Label : int { kEmbedding = 0, kTraining = 1 };
inline constexpr int kNumLabels = 2;

class ModelGraph {
 public:
  ModelGraph() = default;

  ModelGraph(std::uint32_t numNodes, std::uint32_t dim) { init(numNodes, dim); }

  void init(std::uint32_t numNodes, std::uint32_t dim) {
    for (auto& t : tables_) t.init(numNodes, dim);
  }

  std::uint32_t numNodes() const noexcept { return tables_[0].numRows(); }
  std::uint32_t dim() const noexcept { return tables_[0].dim(); }

  /// The backing table for one label — sync, serving, and checkpoint code
  /// work against tables directly (baselines, deltas, versions).
  model::EmbeddingTable& table(Label label) noexcept {
    return tables_[static_cast<int>(label)];
  }
  const model::EmbeddingTable& table(Label label) const noexcept {
    return tables_[static_cast<int>(label)];
  }

  /// word2vec.c initialization: embeddings uniform in [-0.5/dim, 0.5/dim),
  /// training vectors zero. Seeded per node so the layout is reproducible
  /// regardless of traversal order (hosts must agree bit-for-bit). Bulk init
  /// is not a training update, so it writes untracked.
  void randomizeEmbeddings(std::uint64_t seed) {
    auto& emb = table(Label::kEmbedding);
    const float inv = 0.5f / static_cast<float>(dim());
    for (std::uint32_t n = 0; n < numNodes(); ++n) {
      util::Rng rng(util::hash64(seed ^ (0xabcdULL + n)));
      auto row = emb.untrackedRow(n);
      for (auto& v : row) v = rng.uniformFloat(-inv, inv);
    }
  }

  std::span<const float> row(Label label, std::uint32_t node) const noexcept {
    return table(label).row(node);
  }

  /// Tracked write: first touch after a sync round snapshots the row into
  /// the label's DeltaLog (model/embedding_table.h).
  std::span<float> mutableRow(Label label, std::uint32_t node) noexcept {
    return table(label).mutableRow(node);
  }

  /// Untracked write for bulk loads / model composition.
  std::span<float> untrackedRow(Label label, std::uint32_t node) noexcept {
    return table(label).untrackedRow(node);
  }

  /// Write of an externally-canonical value (sync apply/broadcast, pulls).
  std::span<float> overwriteRow(Label label, std::uint32_t node) noexcept {
    return table(label).overwriteRow(node);
  }

  /// Sparse-sync support: mark and query the per-label dirty bit-vector.
  void markTouched(Label label, std::uint32_t node) noexcept { table(label).markDirty(node); }
  bool isTouched(Label label, std::uint32_t node) const noexcept {
    return table(label).isDirty(node);
  }
  const util::BitVector& touched(Label label) const noexcept { return table(label).dirty(); }
  void clearTouched() noexcept {
    for (auto& t : tables_) t.clearDirty();
  }

  /// Bytes a full replica of the model occupies (both labels, unpadded) —
  /// the quantity the paper's "model fits in ~4GB" discussion refers to.
  std::uint64_t modelBytes() const noexcept {
    return static_cast<std::uint64_t>(numNodes()) * dim() * sizeof(float) * kNumLabels;
  }

 private:
  model::EmbeddingTable tables_[kNumLabels];
};

}  // namespace gw2v::graph
