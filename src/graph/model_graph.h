#pragma once

// The Word2Vec model as a graph: every vocabulary word is a node carrying two
// dense labels — the embedding vector (hidden layer) and the training vector
// (output layer) — exactly as Figure 1 (bottom) of the paper lays out. Edges
// are never materialized: the Skip-Gram operator generates positive pairs by
// sliding a window over the corpus and negative pairs by sampling.
//
// Rows are cache-line padded; Hogwild workers update rows concurrently and
// benignly race within a row (the word2vec.c discipline).

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "util/aligned.h"
#include "util/bitvector.h"
#include "util/rng.h"

namespace gw2v::graph {

enum class Label : int { kEmbedding = 0, kTraining = 1 };
inline constexpr int kNumLabels = 2;

class ModelGraph {
 public:
  ModelGraph() = default;

  ModelGraph(std::uint32_t numNodes, std::uint32_t dim) { init(numNodes, dim); }

  void init(std::uint32_t numNodes, std::uint32_t dim) {
    if (dim == 0) throw std::invalid_argument("ModelGraph: dim must be >= 1");
    numNodes_ = numNodes;
    dim_ = dim;
    stride_ = static_cast<std::uint32_t>(util::paddedRowWidth(dim, sizeof(float)));
    const std::size_t total = static_cast<std::size_t>(numNodes) * stride_;
    embedding_.assign(total, 0.0f);
    training_.assign(total, 0.0f);
    for (auto& bv : touched_) bv.resize(numNodes);
  }

  std::uint32_t numNodes() const noexcept { return numNodes_; }
  std::uint32_t dim() const noexcept { return dim_; }

  /// word2vec.c initialization: embeddings uniform in [-0.5/dim, 0.5/dim),
  /// training vectors zero. Seeded per node so the layout is reproducible
  /// regardless of traversal order (hosts must agree bit-for-bit).
  void randomizeEmbeddings(std::uint64_t seed) {
    const float inv = 0.5f / static_cast<float>(dim_);
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
      util::Rng rng(util::hash64(seed ^ (0xabcdULL + n)));
      auto row = mutableRow(Label::kEmbedding, n);
      for (auto& v : row) v = rng.uniformFloat(-inv, inv);
    }
  }

  std::span<const float> row(Label label, std::uint32_t node) const noexcept {
    const auto& m = label == Label::kEmbedding ? embedding_ : training_;
    return {m.data() + static_cast<std::size_t>(node) * stride_, dim_};
  }

  std::span<float> mutableRow(Label label, std::uint32_t node) noexcept {
    auto& m = label == Label::kEmbedding ? embedding_ : training_;
    float* p = m.data() + static_cast<std::size_t>(node) * stride_;
    // The SIMD kernels rely on rows never splitting a cache line: the matrix
    // base is 64-byte aligned (AlignedVector) and stride_ is a multiple of
    // 16 floats (static_assert in util/aligned.h), so every row is too.
    assert(util::isSimdAligned(p) && "ModelGraph row lost its 64-byte alignment");
    return {p, dim_};
  }

  /// Sparse-sync support: mark and query the per-label dirty bit-vector.
  void markTouched(Label label, std::uint32_t node) noexcept {
    touched_[static_cast<int>(label)].set(node);
  }
  bool isTouched(Label label, std::uint32_t node) const noexcept {
    return touched_[static_cast<int>(label)].test(node);
  }
  const util::BitVector& touched(Label label) const noexcept {
    return touched_[static_cast<int>(label)];
  }
  void clearTouched() noexcept {
    for (auto& bv : touched_) bv.reset();
  }

  /// Bytes a full replica of the model occupies (both labels, unpadded) —
  /// the quantity the paper's "model fits in ~4GB" discussion refers to.
  std::uint64_t modelBytes() const noexcept {
    return static_cast<std::uint64_t>(numNodes_) * dim_ * sizeof(float) * kNumLabels;
  }

 private:
  std::uint32_t numNodes_ = 0;
  std::uint32_t dim_ = 0;
  std::uint32_t stride_ = 0;
  util::AlignedVector<float> embedding_;
  util::AlignedVector<float> training_;
  util::BitVector touched_[kNumLabels];
};

}  // namespace gw2v::graph
