#pragma once

// Distributed graph analytics on the simulated cluster — the D-Galois/Gemini
// execution model of paper Section 2.4: nodes are partitioned into blocked
// master ranges, every host holds a replica of all labels, each host applies
// the operator to edges whose source it owns, and rounds end with a Gluon
// bulk-synchronization using a MIN reduction. These validate that the exact
// substrate GraphWord2Vec runs on executes classic graph algorithms
// correctly.

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "sim/cluster.h"
#include "sim/network_model.h"

namespace gw2v::graph {

struct DistributedResult {
  /// Converged label per node (distance / level / component id as float).
  std::vector<float> values;
  sim::ClusterReport cluster;
  std::uint64_t rounds = 0;
};

/// Bellman-Ford SSSP across `numHosts` simulated hosts.
DistributedResult distributedSssp(const CSRGraph& g, NodeId source, unsigned numHosts,
                                  sim::NetworkModel netModel = {});

/// BFS levels (SSSP over unit weights, computed on integral level labels).
DistributedResult distributedBfs(const CSRGraph& g, NodeId source, unsigned numHosts,
                                 sim::NetworkModel netModel = {});

/// Connected components by min-label propagation; pass a symmetrized graph.
DistributedResult distributedCc(const CSRGraph& g, unsigned numHosts,
                                sim::NetworkModel netModel = {});

struct DistributedPagerankResult {
  std::vector<double> ranks;
  sim::ClusterReport cluster;
  std::uint64_t rounds = 0;
};

/// PageRank with per-round dense sum-allreduce of the partial contribution
/// vectors (the "dense matrix codes map quite efficiently to MPI
/// collectives" pattern of paper Section 4.4). Each host pushes mass along
/// the edges of its owned source range.
DistributedPagerankResult distributedPagerank(const CSRGraph& g, unsigned numHosts,
                                              double damping = 0.85, double tol = 1e-9,
                                              int maxIters = 100,
                                              sim::NetworkModel netModel = {});

}  // namespace gw2v::graph
