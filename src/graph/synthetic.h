#pragma once

// Synthetic graphs for the node-embedding workload: a planted-partition
// ("community") generator whose ground truth makes embedding quality
// checkable without external data. Nodes split into k equal communities;
// each node draws many more edges inside its community than across, so a
// good embedding places same-community nodes near each other — the
// neighbor-recall / link-prediction gates in bench/graph_embeddings.cpp
// measure exactly that against the planted structure.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/csr.h"
#include "util/rng.h"

namespace gw2v::graph {

struct CommunityGraphSpec {
  unsigned communities = 16;
  unsigned nodesPerCommunity = 64;
  /// Undirected intra-community edges drawn per node (>= 1 so no node is
  /// isolated). Multi-edges are possible and act as edge weights.
  unsigned intraEdgesPerNode = 8;
  /// Undirected cross-community edges drawn per node (noise).
  unsigned interEdgesPerNode = 1;
  std::uint64_t seed = 1;
};

struct CommunityGraph {
  /// Symmetrized directed edge list (both directions of every drawn edge).
  std::vector<Edge> edges;
  std::vector<unsigned> communityOf;  // size numNodes
  NodeId numNodes = 0;

  CSRGraph csr() const { return CSRGraph(numNodes, edges); }
};

inline CommunityGraph makeCommunityGraph(const CommunityGraphSpec& spec) {
  if (spec.communities == 0 || spec.nodesPerCommunity < 2)
    throw std::invalid_argument("makeCommunityGraph: need >= 1 community of >= 2 nodes");
  if (spec.intraEdgesPerNode == 0)
    throw std::invalid_argument("makeCommunityGraph: intraEdgesPerNode must be >= 1");
  CommunityGraph g;
  g.numNodes = spec.communities * spec.nodesPerCommunity;
  g.communityOf.resize(g.numNodes);
  util::Rng rng(util::hash64(spec.seed ^ 0xC0337C0337ULL));
  std::vector<Edge> undirected;
  undirected.reserve(static_cast<std::size_t>(g.numNodes) *
                     (spec.intraEdgesPerNode + spec.interEdgesPerNode));
  for (NodeId u = 0; u < g.numNodes; ++u) {
    const unsigned cu = u / spec.nodesPerCommunity;
    g.communityOf[u] = cu;
    const NodeId base = cu * spec.nodesPerCommunity;
    for (unsigned e = 0; e < spec.intraEdgesPerNode; ++e) {
      // Uniform community member != u.
      NodeId v = base + static_cast<NodeId>(rng.bounded(spec.nodesPerCommunity - 1));
      if (v >= u) ++v;
      undirected.push_back({u, v, 1.0f});
    }
    if (spec.communities > 1) {
      for (unsigned e = 0; e < spec.interEdgesPerNode; ++e) {
        // Uniform node of a different community.
        unsigned cv = static_cast<unsigned>(rng.bounded(spec.communities - 1));
        if (cv >= cu) ++cv;
        const NodeId v = cv * spec.nodesPerCommunity +
                         static_cast<NodeId>(rng.bounded(spec.nodesPerCommunity));
        undirected.push_back({u, v, 1.0f});
      }
    }
  }
  g.edges = symmetrize(undirected);
  return g;
}

}  // namespace gw2v::graph
