#include "graph/distributed.h"

#include <functional>
#include <limits>

#include "comm/collectives.h"
#include "comm/scalar_sync.h"
#include "comm/transport.h"
#include "graph/algorithms.h"
#include "graph/partition.h"
#include "util/bitvector.h"

namespace gw2v::graph {

namespace {

/// Shared BSP driver: `relax(u, values, touched)` applies the operator to
/// one owned node, returning how many labels it improved.
DistributedResult runBsp(const CSRGraph& g, unsigned numHosts, sim::NetworkModel netModel,
                         const std::function<void(std::vector<float>&)>& init,
                         const std::function<std::uint64_t(NodeId, std::vector<float>&,
                                                           util::BitVector&)>& relax) {
  const BlockedPartition partition(g.numNodes(), numHosts);
  std::vector<std::vector<float>> replicas(numHosts);
  std::vector<std::uint64_t> roundsOut(numHosts, 0);
  for (auto& r : replicas) {
    r.resize(g.numNodes());
    init(r);
  }

  sim::ClusterOptions copts;
  copts.numHosts = numHosts;
  copts.networkModel = netModel;
  DistributedResult result;
  result.cluster = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    std::vector<float>& values = replicas[ctx.id()];
    util::BitVector touched(g.numNodes());
    comm::ScalarSyncEngine sync(ctx, values, touched, partition,
                                comm::ScalarReduceOp::kMin, netModel);
    comm::SimTransport transport(ctx.network());
    comm::Collectives coll(transport, ctx.id(), comm::TagSpace::kGraphAnalytics);
    const auto [lo, hi] = partition.masterRange(ctx.id());

    for (;;) {
      ctx.computeTimer().start();
      std::uint64_t localWork = 0;
      for (NodeId u = lo; u < hi; ++u) localWork += relax(u, values, touched);
      ctx.computeTimer().stop();

      const std::uint64_t received = sync.sync();
      double total[1] = {static_cast<double>(localWork + received)};
      coll.allReduceSum(total);
      if (total[0] == 0.0) break;
    }
    roundsOut[ctx.id()] = sync.rounds();
  });

  result.values = std::move(replicas[0]);
  result.rounds = roundsOut[0];
  return result;
}

}  // namespace

DistributedResult distributedSssp(const CSRGraph& g, NodeId source, unsigned numHosts,
                                  sim::NetworkModel netModel) {
  return runBsp(
      g, numHosts, netModel,
      [&](std::vector<float>& values) {
        std::fill(values.begin(), values.end(), kInfDistance);
        if (source < g.numNodes()) values[source] = 0.0f;
      },
      [&](NodeId u, std::vector<float>& values, util::BitVector& touched) -> std::uint64_t {
        const float du = values[u];
        if (du == kInfDistance) return 0;
        std::uint64_t improved = 0;
        const auto nbrs = g.neighbors(u);
        const auto w = g.weights(u);
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
          const float cand = du + w[e];
          if (cand < values[nbrs[e]]) {
            values[nbrs[e]] = cand;
            touched.set(nbrs[e]);
            ++improved;
          }
        }
        return improved;
      });
}

DistributedResult distributedBfs(const CSRGraph& g, NodeId source, unsigned numHosts,
                                 sim::NetworkModel netModel) {
  return runBsp(
      g, numHosts, netModel,
      [&](std::vector<float>& values) {
        std::fill(values.begin(), values.end(), kInfDistance);
        if (source < g.numNodes()) values[source] = 0.0f;
      },
      [&](NodeId u, std::vector<float>& values, util::BitVector& touched) -> std::uint64_t {
        const float lu = values[u];
        if (lu == kInfDistance) return 0;
        std::uint64_t improved = 0;
        for (const NodeId v : g.neighbors(u)) {
          if (lu + 1.0f < values[v]) {
            values[v] = lu + 1.0f;
            touched.set(v);
            ++improved;
          }
        }
        return improved;
      });
}

DistributedResult distributedCc(const CSRGraph& g, unsigned numHosts,
                                sim::NetworkModel netModel) {
  return runBsp(
      g, numHosts, netModel,
      [&](std::vector<float>& values) {
        for (NodeId n = 0; n < g.numNodes(); ++n) values[n] = static_cast<float>(n);
      },
      [&](NodeId u, std::vector<float>& values, util::BitVector& touched) -> std::uint64_t {
        std::uint64_t improved = 0;
        float cu = values[u];
        // Pull the min neighbour label into u, then push u's label out.
        for (const NodeId v : g.neighbors(u)) {
          if (values[v] < cu) cu = values[v];
        }
        if (cu < values[u]) {
          values[u] = cu;
          touched.set(u);
          ++improved;
        }
        for (const NodeId v : g.neighbors(u)) {
          if (cu < values[v]) {
            values[v] = cu;
            touched.set(v);
            ++improved;
          }
        }
        return improved;
      });
}

DistributedPagerankResult distributedPagerank(const CSRGraph& g, unsigned numHosts,
                                              double damping, double tol, int maxIters,
                                              sim::NetworkModel netModel) {
  const BlockedPartition partition(g.numNodes(), numHosts);
  const std::size_t n = g.numNodes();
  std::vector<std::vector<double>> replicaRanks(
      numHosts, std::vector<double>(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0));
  std::vector<std::uint64_t> roundsOut(numHosts, 0);

  sim::ClusterOptions copts;
  copts.numHosts = numHosts;
  copts.networkModel = netModel;
  DistributedPagerankResult result;
  result.cluster = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    std::vector<double>& rank = replicaRanks[ctx.id()];
    std::vector<double> partial(n, 0.0);
    comm::SimTransport transport(ctx.network());
    comm::Collectives coll(transport, ctx.id(), comm::TagSpace::kGraphAnalytics);
    const auto [lo, hi] = partition.masterRange(ctx.id());

    for (int iter = 0; iter < maxIters; ++iter) {
      ctx.computeTimer().start();
      std::fill(partial.begin(), partial.end(), 0.0);
      double dangling = 0.0;
      for (NodeId u = static_cast<NodeId>(lo); u < hi; ++u) {
        const EdgeId deg = g.degree(u);
        if (deg == 0) {
          dangling += rank[u];
          continue;
        }
        const double share = rank[u] / static_cast<double>(deg);
        for (const NodeId v : g.neighbors(u)) partial[v] += share;
      }
      ctx.computeTimer().stop();

      // Dense exchange: contribution vector + dangling mass in one reduce.
      const sim::CommSnapshot before = sim::snapshot(ctx.commStats());
      partial.push_back(dangling);
      coll.allReduceSum(partial);
      ctx.addModelledCommSeconds(netModel.exchangeSeconds(
          sim::delta(before, sim::snapshot(ctx.commStats()))));
      const double globalDangling = partial.back();
      partial.pop_back();

      ctx.computeTimer().start();
      const double base = (1.0 - damping) / static_cast<double>(n) +
                          damping * globalDangling / static_cast<double>(n);
      double residual = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double updated = base + damping * partial[i];
        residual += std::abs(updated - rank[i]);
        rank[i] = updated;
      }
      ctx.computeTimer().stop();
      ++roundsOut[ctx.id()];
      // Every host computed the identical residual from identical data, so
      // the loop exit is consistent without further coordination.
      if (residual < tol) break;
    }
  });

  result.ranks = std::move(replicaRanks[0]);
  result.rounds = roundsOut[0];
  return result;
}

}  // namespace gw2v::graph
