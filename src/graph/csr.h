#pragma once

// Compressed-sparse-row graph and a builder from edge lists.
//
// The Word2Vec "graph" itself is dense-and-implicit (edges are sampled on the
// fly), but the substrate must be a real graph-analytics framework; CSR is
// the representation the validation algorithms (BFS/SSSP/PageRank/CC) run on.

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace gw2v::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

struct Edge {
  NodeId src;
  NodeId dst;
  float weight = 1.0f;
};

class CSRGraph {
 public:
  CSRGraph() = default;

  /// Build from an (unsorted) edge list over `numNodes` nodes.
  CSRGraph(NodeId numNodes, std::span<const Edge> edges) { build(numNodes, edges); }

  void build(NodeId numNodes, std::span<const Edge> edges) {
    numNodes_ = numNodes;
    rowPtr_.assign(static_cast<std::size_t>(numNodes) + 1, 0);
    for (const Edge& e : edges) {
      if (e.src >= numNodes || e.dst >= numNodes)
        throw std::out_of_range("CSRGraph: edge endpoint out of range");
      ++rowPtr_[e.src + 1];
    }
    for (std::size_t i = 1; i < rowPtr_.size(); ++i) rowPtr_[i] += rowPtr_[i - 1];
    edgeDst_.resize(edges.size());
    edgeWeight_.resize(edges.size());
    std::vector<EdgeId> cursor(rowPtr_.begin(), rowPtr_.end() - 1);
    for (const Edge& e : edges) {
      const EdgeId at = cursor[e.src]++;
      edgeDst_[at] = e.dst;
      edgeWeight_[at] = e.weight;
    }
  }

  NodeId numNodes() const noexcept { return numNodes_; }
  EdgeId numEdges() const noexcept { return edgeDst_.size(); }

  std::span<const NodeId> neighbors(NodeId n) const noexcept {
    return {edgeDst_.data() + rowPtr_[n], edgeDst_.data() + rowPtr_[n + 1]};
  }
  std::span<const float> weights(NodeId n) const noexcept {
    return {edgeWeight_.data() + rowPtr_[n], edgeWeight_.data() + rowPtr_[n + 1]};
  }
  EdgeId degree(NodeId n) const noexcept { return rowPtr_[n + 1] - rowPtr_[n]; }

 private:
  NodeId numNodes_ = 0;
  std::vector<EdgeId> rowPtr_;
  std::vector<NodeId> edgeDst_;
  std::vector<float> edgeWeight_;
};

/// Reverse every edge — gives the incoming-neighbour view pull-mode
/// algorithms (Gemini-style) iterate over.
inline CSRGraph transpose(const CSRGraph& g) {
  std::vector<Edge> reversed;
  reversed.reserve(g.numEdges());
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto w = g.weights(u);
    for (std::size_t e = 0; e < nbrs.size(); ++e) reversed.push_back({nbrs[e], u, w[e]});
  }
  return CSRGraph(g.numNodes(), reversed);
}

/// Undirected helper: emit both directions for each input edge.
inline std::vector<Edge> symmetrize(std::span<const Edge> edges) {
  std::vector<Edge> out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back(Edge{e.dst, e.src, e.weight});
  }
  return out;
}

}  // namespace gw2v::graph
