#include "graph/model_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

namespace gw2v::graph {

namespace {
constexpr char kMagic[8] = {'G', 'W', '2', 'V', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 2;
/// Longest word the vocabulary section will accept; anything bigger is a
/// corrupt length field, not a plausible token.
constexpr std::uint32_t kMaxWordBytes = 1u << 16;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void writeOrThrow(std::FILE* f, const void* data, std::size_t bytes) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("saveCheckpoint: write failed");
}

void readOrThrow(std::FILE* f, void* data, std::size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error("loadCheckpoint: truncated file " + path);
}
}  // namespace

void saveCheckpoint(const std::string& path, const ModelGraph& model,
                    const text::Vocabulary* vocab) {
  if (vocab != nullptr && vocab->size() != model.numNodes()) {
    throw std::invalid_argument("saveCheckpoint: vocabulary size " +
                                std::to_string(vocab->size()) + " != model nodes " +
                                std::to_string(model.numNodes()));
  }
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("saveCheckpoint: cannot open " + path);
  const std::uint32_t header[2] = {model.numNodes(), model.dim()};
  const std::uint32_t hasVocab = vocab != nullptr ? 1 : 0;
  writeOrThrow(f.get(), kMagic, sizeof(kMagic));
  writeOrThrow(f.get(), &kVersion, sizeof(kVersion));
  writeOrThrow(f.get(), header, sizeof(header));
  writeOrThrow(f.get(), &hasVocab, sizeof(hasVocab));
  if (vocab != nullptr) {
    for (text::WordId w = 0; w < vocab->size(); ++w) {
      const std::string& word = vocab->wordOf(w);
      const std::uint32_t len = static_cast<std::uint32_t>(word.size());
      const std::uint64_t count = vocab->countOf(w);
      writeOrThrow(f.get(), &len, sizeof(len));
      writeOrThrow(f.get(), word.data(), word.size());
      writeOrThrow(f.get(), &count, sizeof(count));
    }
  }
  for (int l = 0; l < kNumLabels; ++l) {
    for (std::uint32_t n = 0; n < model.numNodes(); ++n) {
      const auto row = model.row(static_cast<Label>(l), n);
      writeOrThrow(f.get(), row.data(), row.size_bytes());
    }
  }
}

Checkpoint loadCheckpointFull(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("loadCheckpoint: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t header[2] = {0, 0};
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("loadCheckpoint: bad magic in " + path);
  }
  readOrThrow(f.get(), &version, sizeof(version), path);
  if (version == 0 || version > kVersion)
    throw std::runtime_error("loadCheckpoint: unsupported version in " + path);
  readOrThrow(f.get(), header, sizeof(header), path);
  if (header[1] == 0) throw std::runtime_error("loadCheckpoint: bad header in " + path);

  Checkpoint ck{ModelGraph(header[0], header[1]), std::nullopt};

  if (version >= 2) {
    std::uint32_t hasVocab = 0;
    readOrThrow(f.get(), &hasVocab, sizeof(hasVocab), path);
    if (hasVocab > 1)
      throw std::runtime_error("loadCheckpoint: corrupt vocabulary flag in " + path);
    if (hasVocab == 1) {
      std::vector<std::string> words(header[0]);
      text::Vocabulary vocab;
      for (std::uint32_t w = 0; w < header[0]; ++w) {
        std::uint32_t len = 0;
        readOrThrow(f.get(), &len, sizeof(len), path);
        if (len == 0 || len > kMaxWordBytes)
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
        words[w].resize(len);
        readOrThrow(f.get(), words[w].data(), len, path);
        std::uint64_t count = 0;
        readOrThrow(f.get(), &count, sizeof(count), path);
        if (count == 0)
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
        vocab.addCount(words[w], count);
      }
      vocab.finalize(1);
      // finalize() re-sorts by (count desc, word asc) — the exact order ids
      // were assigned in, so a well-formed section reproduces itself.
      // Duplicated or reordered words cannot, and mean corruption.
      if (vocab.size() != header[0])
        throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
      for (std::uint32_t w = 0; w < header[0]; ++w) {
        if (vocab.wordOf(w) != words[w])
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
      }
      ck.vocab = std::move(vocab);
    }
  }

  // Bulk load into a fresh model: nothing to track, no deltas to capture.
  for (int l = 0; l < kNumLabels; ++l) {
    for (std::uint32_t n = 0; n < ck.model.numNodes(); ++n) {
      auto row = ck.model.untrackedRow(static_cast<Label>(l), n);
      readOrThrow(f.get(), row.data(), row.size_bytes(), path);
    }
  }
  // Any trailing bytes indicate corruption.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw std::runtime_error("loadCheckpoint: trailing bytes in " + path);
  return ck;
}

ModelGraph loadCheckpoint(const std::string& path) {
  return loadCheckpointFull(path).model;
}

}  // namespace gw2v::graph
