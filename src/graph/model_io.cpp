#include "graph/model_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace gw2v::graph {

namespace {
constexpr char kMagic[8] = {'G', 'W', '2', 'V', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

void saveCheckpoint(const std::string& path, const ModelGraph& model) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("saveCheckpoint: cannot open " + path);
  const std::uint32_t header[2] = {model.numNodes(), model.dim()};
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, f.get()) != 1 ||
      std::fwrite(header, sizeof(header), 1, f.get()) != 1) {
    throw std::runtime_error("saveCheckpoint: write failed");
  }
  for (int l = 0; l < kNumLabels; ++l) {
    for (std::uint32_t n = 0; n < model.numNodes(); ++n) {
      const auto row = model.row(static_cast<Label>(l), n);
      if (std::fwrite(row.data(), sizeof(float), row.size(), f.get()) != row.size())
        throw std::runtime_error("saveCheckpoint: write failed");
    }
  }
}

ModelGraph loadCheckpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("loadCheckpoint: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t header[2] = {0, 0};
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("loadCheckpoint: bad magic in " + path);
  }
  if (std::fread(&version, sizeof(version), 1, f.get()) != 1 || version != kVersion)
    throw std::runtime_error("loadCheckpoint: unsupported version in " + path);
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 || header[1] == 0)
    throw std::runtime_error("loadCheckpoint: bad header in " + path);

  ModelGraph model(header[0], header[1]);
  for (int l = 0; l < kNumLabels; ++l) {
    for (std::uint32_t n = 0; n < model.numNodes(); ++n) {
      auto row = model.mutableRow(static_cast<Label>(l), n);
      if (std::fread(row.data(), sizeof(float), row.size(), f.get()) != row.size())
        throw std::runtime_error("loadCheckpoint: truncated file " + path);
    }
  }
  // Any trailing bytes indicate corruption.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw std::runtime_error("loadCheckpoint: trailing bytes in " + path);
  return model;
}

}  // namespace gw2v::graph
