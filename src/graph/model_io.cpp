#include "graph/model_io.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/aligned.h"

namespace gw2v::graph {

namespace {
constexpr char kMagic[8] = {'G', 'W', '2', 'V', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionBlocked = 3;
/// Longest word the vocabulary section will accept; anything bigger is a
/// corrupt length field, not a plausible token.
constexpr std::uint32_t kMaxWordBytes = 1u << 16;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void writeOrThrow(std::FILE* f, const void* data, std::size_t bytes) {
  if (bytes != 0 && std::fwrite(data, 1, bytes, f) != bytes)
    throw std::runtime_error("saveCheckpoint: write failed");
}

void readOrThrow(std::FILE* f, void* data, std::size_t bytes, const std::string& path) {
  if (bytes != 0 && std::fread(data, 1, bytes, f) != bytes)
    throw std::runtime_error("loadCheckpoint: truncated file " + path);
}

/// Common prefix of v2 and v3: magic, version, shape, optional vocabulary.
void writePrefix(std::FILE* f, std::uint32_t version, const ModelGraph& model,
                 const text::Vocabulary* vocab) {
  const std::uint32_t header[2] = {model.numNodes(), model.dim()};
  const std::uint32_t hasVocab = vocab != nullptr ? 1 : 0;
  writeOrThrow(f, kMagic, sizeof(kMagic));
  writeOrThrow(f, &version, sizeof(version));
  writeOrThrow(f, header, sizeof(header));
  writeOrThrow(f, &hasVocab, sizeof(hasVocab));
  if (vocab != nullptr) {
    for (text::WordId w = 0; w < vocab->size(); ++w) {
      const std::string& word = vocab->wordOf(w);
      const std::uint32_t len = static_cast<std::uint32_t>(word.size());
      const std::uint64_t count = vocab->countOf(w);
      writeOrThrow(f, &len, sizeof(len));
      writeOrThrow(f, word.data(), word.size());
      writeOrThrow(f, &count, sizeof(count));
    }
  }
}

/// Crash-safe writer shell: stage at path+".tmp", fsync, rename over path.
template <typename Body>
void saveAtomically(const std::string& path, const Body& body) {
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw std::runtime_error("saveCheckpoint: cannot open " + tmp);
    body(f.get());
    if (std::fflush(f.get()) != 0 || ::fsync(::fileno(f.get())) != 0)
      throw std::runtime_error("saveCheckpoint: fsync failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("saveCheckpoint: rename to " + path + " failed");
}

void checkVocabShape(const ModelGraph& model, const text::Vocabulary* vocab) {
  if (vocab != nullptr && vocab->size() != model.numNodes()) {
    throw std::invalid_argument("saveCheckpoint: vocabulary size " +
                                std::to_string(vocab->size()) + " != model nodes " +
                                std::to_string(model.numNodes()));
  }
}
}  // namespace

void saveCheckpoint(const std::string& path, const ModelGraph& model,
                    const text::Vocabulary* vocab) {
  checkVocabShape(model, vocab);
  saveAtomically(path, [&](std::FILE* f) {
    writePrefix(f, kVersion, model, vocab);
    for (int l = 0; l < kNumLabels; ++l) {
      for (std::uint32_t n = 0; n < model.numNodes(); ++n) {
        const auto row = model.row(static_cast<Label>(l), n);
        writeOrThrow(f, row.data(), row.size_bytes());
      }
    }
  });
}

void saveCheckpointV3(const std::string& path, const ModelGraph& model,
                      const text::Vocabulary* vocab, std::uint32_t rowsPerBlock) {
  checkVocabShape(model, vocab);
  if (rowsPerBlock == 0)
    throw std::invalid_argument("saveCheckpointV3: rowsPerBlock must be >= 1");
  const std::uint32_t numRows = model.numNodes();
  const auto stride = static_cast<std::uint32_t>(util::rowStrideFloats(model.dim()));
  const std::uint32_t blocks = numRows == 0 ? 0 : (numRows + rowsPerBlock - 1) / rowsPerBlock;

  saveAtomically(path, [&](std::FILE* f) {
    writePrefix(f, kVersionBlocked, model, vocab);
    std::vector<float> block(static_cast<std::size_t>(rowsPerBlock) * stride);
    for (int l = 0; l < kNumLabels; ++l) {
      const std::uint32_t geometry[2] = {rowsPerBlock, stride};
      writeOrThrow(f, geometry, sizeof(geometry));
      // One block of working memory: rows faulted in order, so a spilled
      // model with matching geometry streams each cache block exactly once.
      for (std::uint32_t b = 0; b < blocks; ++b) {
        std::fill(block.begin(), block.end(), 0.0f);
        const std::uint32_t lo = b * rowsPerBlock;
        const std::uint32_t hi = std::min(numRows, lo + rowsPerBlock);
        for (std::uint32_t n = lo; n < hi; ++n) {
          const auto row = model.row(static_cast<Label>(l), n);
          std::memcpy(block.data() + static_cast<std::size_t>(n - lo) * stride, row.data(),
                      row.size_bytes());
        }
        writeOrThrow(f, block.data(), block.size() * sizeof(float));
      }
    }
  });
}

Checkpoint loadCheckpointFull(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("loadCheckpoint: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t header[2] = {0, 0};
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    throw std::runtime_error("loadCheckpoint: bad magic in " + path);
  }
  readOrThrow(f.get(), &version, sizeof(version), path);
  if (version == 0 || version > kVersionBlocked)
    throw std::runtime_error("loadCheckpoint: unsupported version in " + path);
  readOrThrow(f.get(), header, sizeof(header), path);
  if (header[1] == 0) throw std::runtime_error("loadCheckpoint: bad header in " + path);

  Checkpoint ck{ModelGraph(header[0], header[1]), std::nullopt};

  if (version >= 2) {
    std::uint32_t hasVocab = 0;
    readOrThrow(f.get(), &hasVocab, sizeof(hasVocab), path);
    if (hasVocab > 1)
      throw std::runtime_error("loadCheckpoint: corrupt vocabulary flag in " + path);
    if (hasVocab == 1) {
      std::vector<std::string> words(header[0]);
      text::Vocabulary vocab;
      for (std::uint32_t w = 0; w < header[0]; ++w) {
        std::uint32_t len = 0;
        readOrThrow(f.get(), &len, sizeof(len), path);
        if (len == 0 || len > kMaxWordBytes)
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
        words[w].resize(len);
        readOrThrow(f.get(), words[w].data(), len, path);
        std::uint64_t count = 0;
        readOrThrow(f.get(), &count, sizeof(count), path);
        if (count == 0)
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
        vocab.addCount(words[w], count);
      }
      vocab.finalize(1);
      // finalize() re-sorts by (count desc, word asc) — the exact order ids
      // were assigned in, so a well-formed section reproduces itself.
      // Duplicated or reordered words cannot, and mean corruption.
      if (vocab.size() != header[0])
        throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
      for (std::uint32_t w = 0; w < header[0]; ++w) {
        if (vocab.wordOf(w) != words[w])
          throw std::runtime_error("loadCheckpoint: corrupt vocabulary section in " + path);
      }
      ck.vocab = std::move(vocab);
    }
  }

  // Bulk load into a fresh model: nothing to track, no deltas to capture.
  if (version >= kVersionBlocked) {
    // v3 blocked payload: per label, explicit geometry then zero-padded
    // blocks. One block of working memory, rows copied out stride-wise.
    const std::uint32_t numRows = ck.model.numNodes();
    const std::uint32_t dim = ck.model.dim();
    for (int l = 0; l < kNumLabels; ++l) {
      std::uint32_t geometry[2] = {0, 0};
      readOrThrow(f.get(), geometry, sizeof(geometry), path);
      const std::uint32_t rowsPerBlock = geometry[0];
      const std::uint32_t stride = geometry[1];
      if (rowsPerBlock == 0 || stride < dim || stride - dim >= 16)
        throw std::runtime_error("loadCheckpoint: corrupt block geometry in " + path);
      const std::uint32_t blocks = numRows == 0 ? 0 : (numRows + rowsPerBlock - 1) / rowsPerBlock;
      std::vector<float> block(static_cast<std::size_t>(rowsPerBlock) * stride);
      for (std::uint32_t b = 0; b < blocks; ++b) {
        readOrThrow(f.get(), block.data(), block.size() * sizeof(float), path);
        const std::uint32_t lo = b * rowsPerBlock;
        const std::uint32_t hi = std::min(numRows, lo + rowsPerBlock);
        for (std::uint32_t n = lo; n < hi; ++n) {
          auto row = ck.model.untrackedRow(static_cast<Label>(l), n);
          std::memcpy(row.data(), block.data() + static_cast<std::size_t>(n - lo) * stride,
                      row.size_bytes());
        }
      }
    }
  } else {
    for (int l = 0; l < kNumLabels; ++l) {
      for (std::uint32_t n = 0; n < ck.model.numNodes(); ++n) {
        auto row = ck.model.untrackedRow(static_cast<Label>(l), n);
        readOrThrow(f.get(), row.data(), row.size_bytes(), path);
      }
    }
  }
  // Any trailing bytes indicate corruption.
  char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw std::runtime_error("loadCheckpoint: trailing bytes in " + path);
  return ck;
}

ModelGraph loadCheckpoint(const std::string& path) {
  return loadCheckpointFull(path).model;
}

}  // namespace gw2v::graph
