#include "comm/collectives.h"

namespace gw2v::comm {

const char* collectiveAlgoName(CollectiveAlgo a) noexcept {
  switch (a) {
    case CollectiveAlgo::kAuto: return "auto";
    case CollectiveAlgo::kNaive: return "naive";
    case CollectiveAlgo::kRing: return "ring";
    case CollectiveAlgo::kTree: return "tree";
  }
  return "?";
}

const char* tagSpaceName(TagSpace s) noexcept {
  switch (s) {
    case TagSpace::kDefault: return "default";
    case TagSpace::kModelSync: return "model-sync";
    case TagSpace::kScalarSync: return "scalar-sync";
    case TagSpace::kGraphAnalytics: return "graph-analytics";
    case TagSpace::kTrainer: return "trainer";
    case TagSpace::kBaseline: return "baseline";
    case TagSpace::kTest: return "test";
    case TagSpace::kBench: return "bench";
    case TagSpace::kServe: return "serve";
    case TagSpace::kPs: return "ps";
  }
  return "?";
}

std::vector<std::vector<std::uint8_t>> Collectives::gatherv(std::vector<std::uint8_t> mine,
                                                            RankId root,
                                                            sim::CommPhase phase) {
  std::vector<std::vector<std::uint8_t>> out;
  if (numRanks_ == 1) {
    out.resize(1);
    out[0] = std::move(mine);
    return out;
  }
  const int tag = nextTag();
  if (me_ == root) {
    out.resize(numRanks_);
    out[root] = std::move(mine);
    for (unsigned k = 1; k < numRanks_; ++k) {
      auto [src, payload] = t_.recvAny(me_, tag, phase);
      out[src] = std::move(payload);
    }
    recordRounds(numRanks_ - 1);
  } else {
    t_.send(me_, root, tag, std::move(mine), phase);
    recordRounds(1);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Collectives::allGatherv(std::vector<std::uint8_t> mine,
                                                               sim::CommPhase phase) {
  std::vector<std::vector<std::uint8_t>> out(numRanks_);
  out[me_] = std::move(mine);
  if (numRanks_ == 1) return out;
  const int tag = nextTag();
  const RankId right = (me_ + 1) % numRanks_;
  const RankId left = (me_ + numRanks_ - 1) % numRanks_;
  // Step s: forward the block picked up last step (starting with our own);
  // every block crosses every link exactly once.
  for (unsigned s = 0; s < numRanks_ - 1; ++s) {
    const unsigned sendB = (me_ + numRanks_ - s) % numRanks_;
    const unsigned recvB = (me_ + numRanks_ - s - 1) % numRanks_;
    t_.send(me_, right, tag, out[sendB], phase);
    out[recvB] = t_.recv(me_, left, tag, phase);
  }
  recordRounds(numRanks_ - 1);
  return out;
}

std::vector<std::vector<std::uint8_t>> Collectives::allToAllv(
    std::vector<std::vector<std::uint8_t>> toPeer, sim::CommPhase phase) {
  if (toPeer.size() != numRanks_)
    throw std::invalid_argument("allToAllv: need exactly one payload slot per rank");
  std::vector<std::vector<std::uint8_t>> from(numRanks_);
  if (numRanks_ == 1) return from;
  const int tag = nextTag();
  for (RankId p = 0; p < numRanks_; ++p) {
    if (p == me_) continue;
    t_.send(me_, p, tag, std::move(toPeer[p]), phase);
  }
  for (unsigned k = 1; k < numRanks_; ++k) {
    auto [src, payload] = t_.recvAny(me_, tag, phase);
    from[src] = std::move(payload);
  }
  recordRounds(numRanks_ - 1);
  return from;
}

}  // namespace gw2v::comm
