#pragma once

// Algorithmic collectives built only on the Transport contract.
//
// The substrate's original collectives were star loops through host 0:
// O(H·n) bytes at the root and serialized in-order receives. This layer
// provides the proper MPI-style algorithms:
//
//   allReduce   ring reduce-scatter + all-gather — ~2·n·(H−1)/H bytes per
//               rank, perfectly balanced — or binomial tree reduce+broadcast
//               for payloads too small to chunk; the star survives only as
//               the `kNaive` reference implementation used by tests/benches.
//   broadcast   binomial tree, ceil(log2 H) rounds.
//   reduce      binomial tree to a root (non-root buffers are clobbered
//               with partial folds).
//   gatherv     variable-size payloads to a root, drained with recvAny.
//   allGatherv  ring: every rank forwards each block once.
//   allToAllv   personalized payload per peer, drained with recvAny — the
//               primitive behind the sync engines' sparse exchanges.
//
// Reductions are pluggable: pass a CollOp (Sum/Min/Max) or any callable
// `fold(std::span<T> acc, std::span<const T> incoming)` — the same
// elementwise-fold shape as comm::Reducer::accumulate, so Sum/Avg folds
// share one code path with the sync engine's reducer.
//
// Tag discipline: every operation draws a fresh tag from a per-instance
// sequence, so late receivers can never mix operations. Instances that are
// live concurrently on the same transport must use distinct TagSpaces
// (SPMD code creates the same instances in the same order on every rank,
// so the sequences agree across ranks by construction).
//
// Cost accounting: each collective records its serialized round count
// (ring: 2(H−1), tree: ceil(log2 H), star: 2(H−1) at and behind the root)
// via CommStats::recordCollectiveRounds, and NetworkModel charges
// max(messages, rounds) × latency — tree depth and root serialization show
// up in modelled time even where per-rank message counts would hide them.

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "comm/transport.h"
#include "sim/comm_stats.h"

namespace gw2v::comm {

enum class CollectiveAlgo : int { kAuto = 0, kNaive = 1, kRing = 2, kTree = 3 };
enum class CollOp : int { kSum = 0, kMin = 1, kMax = 2 };

const char* collectiveAlgoName(CollectiveAlgo a) noexcept;

/// Concurrently-live Collectives instances on one transport must not share a
/// tag space (their operation sequences would collide). Each subsystem gets
/// its own.
enum class TagSpace : int {
  kDefault = 0,
  kModelSync = 1,
  kScalarSync = 2,
  kGraphAnalytics = 3,
  kTrainer = 4,
  kBaseline = 5,
  kTest = 6,
  kBench = 7,
  kServe = 8,
  kPs = 9,
};

const char* tagSpaceName(TagSpace s) noexcept;

/// The half-open tag block [base, base + 2^20) a TagSpace owns. Collectives
/// sequences its per-op tags inside this block; the parameter server frames
/// its RPC tags inside tagSpaceRange(TagSpace::kPs). Registered with the
/// transport so cross-subsystem overlaps fail fast (Transport::registerTagRange).
constexpr std::pair<int, int> tagSpaceRange(TagSpace s) noexcept {
  const int base = sim::kInternalTagBase + (static_cast<int>(s) << 20);
  return {base, base + (1 << 20)};
}

class Collectives {
 public:
  Collectives(Transport& transport, RankId me, TagSpace space = TagSpace::kDefault)
      : t_(transport), me_(me), numRanks_(transport.numRanks()),
        spaceBase_(tagSpaceRange(space).first) {
    if (me_ >= numRanks_) throw std::invalid_argument("Collectives: rank out of range");
    const auto [lo, hi] = tagSpaceRange(space);
    t_.registerTagRange(lo, hi, tagSpaceName(space));
  }

  RankId id() const noexcept { return me_; }
  unsigned numRanks() const noexcept { return numRanks_; }

  void barrier() { t_.barrier(me_); }

  // ---- Dense typed collectives. ----

  /// In-place allreduce with a built-in elementwise op.
  template <typename T>
  void allReduce(std::span<T> values, CollOp op, CollectiveAlgo algo = CollectiveAlgo::kAuto,
                 sim::CommPhase phase = sim::CommPhase::kReduce) {
    allReduceWith(
        values,
        [op](std::span<T> acc, std::span<const T> in) { foldOp(op, acc, in); },
        algo, phase);
  }

  /// In-place allreduce with a pluggable elementwise fold
  /// `fold(acc, incoming)`; the result is identical on every rank.
  template <typename T, typename Fold>
  void allReduceWith(std::span<T> values, Fold fold,
                     CollectiveAlgo algo = CollectiveAlgo::kAuto,
                     sim::CommPhase phase = sim::CommPhase::kReduce) {
    if (numRanks_ <= 1 || values.empty()) return;
    switch (resolveAllReduce(algo, values.size())) {
      case CollectiveAlgo::kRing:
        ringAllReduce(values, fold, phase);
        break;
      case CollectiveAlgo::kTree:
        treeReduce(values, 0, fold, phase);
        broadcast(values, 0, CollectiveAlgo::kTree, phase);
        break;
      default:
        naiveAllReduce(values, fold, phase);
        break;
    }
  }

  void allReduceSum(std::span<double> values,
                    CollectiveAlgo algo = CollectiveAlgo::kAuto,
                    sim::CommPhase phase = sim::CommPhase::kReduce) {
    allReduce(values, CollOp::kSum, algo, phase);
  }

  /// In-place broadcast from `root`; non-root buffers are overwritten.
  template <typename T>
  void broadcast(std::span<T> values, RankId root,
                 CollectiveAlgo algo = CollectiveAlgo::kAuto,
                 sim::CommPhase phase = sim::CommPhase::kBroadcast) {
    if (numRanks_ <= 1) return;
    if (algo == CollectiveAlgo::kNaive) {
      naiveBroadcast(values, root, phase);
    } else {
      treeBroadcast(values, root, phase);
    }
  }

  /// Binomial-tree reduce into `root`'s buffer. Non-root buffers hold
  /// unspecified partial folds afterwards.
  template <typename T, typename Fold>
  void reduce(std::span<T> values, RankId root, Fold fold,
              sim::CommPhase phase = sim::CommPhase::kReduce) {
    if (numRanks_ <= 1 || values.empty()) return;
    treeReduce(values, root, fold, phase);
  }

  // ---- Variable-size byte collectives (implemented in collectives.cpp). ----

  /// Gather every rank's payload at `root`, drained with recvAny. Returns a
  /// per-source vector at the root (own payload included); empty elsewhere.
  std::vector<std::vector<std::uint8_t>> gatherv(std::vector<std::uint8_t> mine, RankId root,
                                                 sim::CommPhase phase = sim::CommPhase::kReduce);

  /// Every rank ends up with every rank's payload (ring forwarding: each
  /// block crosses each link exactly once). Indexed by source rank.
  std::vector<std::vector<std::uint8_t>> allGatherv(
      std::vector<std::uint8_t> mine, sim::CommPhase phase = sim::CommPhase::kBroadcast);

  /// Personalized exchange: `toPeer[p]` is delivered to rank p (self slot is
  /// ignored); returns per-source payloads with an empty self slot. The
  /// drain uses recvAny, so a slow peer never blocks faster ones.
  std::vector<std::vector<std::uint8_t>> allToAllv(
      std::vector<std::vector<std::uint8_t>> toPeer,
      sim::CommPhase phase = sim::CommPhase::kOther);

  /// Pipelined personalized exchange in `chunks` slices, double-buffered:
  /// chunk c+1 is packed and posted while chunk c is still in flight, so a
  /// caller's pack/fold CPU overlaps the fabric. Contract per chunk c:
  ///
  ///   pack(c)       fills `toPeer` (self slot ignored); payload vectors are
  ///                 moved out on send, the outer vector is caller-owned and
  ///                 reused — no per-chunk allocation here.
  ///   consume(c)    runs after chunk c is fully drained into `from`
  ///                 (indexed by source, self slot untouched); the callee
  ///                 may steal the payload vectors.
  ///
  /// Call order on every rank: pack(0), send 0, then for each c: [pack(c+1),
  /// send c+1,] drain c, consume(c) — so while chunk c is in flight the host
  /// executes consume(c-1) and pack(c+1). With chunks == 1 the wire traffic
  /// (messages, tags, bytes, recorded rounds) is identical to allToAllv.
  template <typename PackFn, typename ConsumeFn>
  void allToAllvPipelined(unsigned chunks, std::vector<std::vector<std::uint8_t>>& toPeer,
                          std::vector<std::vector<std::uint8_t>>& from, PackFn&& pack,
                          ConsumeFn&& consume, sim::CommPhase phase = sim::CommPhase::kOther) {
    if (chunks == 0) chunks = 1;
    if (toPeer.size() != numRanks_ || from.size() != numRanks_)
      throw std::invalid_argument("allToAllvPipelined: need one slot per rank");
    if (numRanks_ == 1) {
      for (unsigned c = 0; c < chunks; ++c) {
        pack(c);
        consume(c);
      }
      return;
    }
    const auto postChunk = [&](int tag) {
      for (RankId p = 0; p < numRanks_; ++p) {
        if (p == me_) continue;
        t_.send(me_, p, tag, std::move(toPeer[p]), phase);
      }
    };
    pack(0);
    int tagCur = nextTag();
    postChunk(tagCur);
    for (unsigned c = 0; c < chunks; ++c) {
      int tagNext = 0;
      if (c + 1 < chunks) {
        pack(c + 1);
        tagNext = nextTag();
        postChunk(tagNext);  // posted before blocking on chunk c: double buffer
      }
      for (unsigned k = 1; k < numRanks_; ++k) {
        auto [src, payload] = t_.recvAny(me_, tagCur, phase);
        from[src] = std::move(payload);
      }
      recordRounds(numRanks_ - 1);
      consume(c);
      tagCur = tagNext;
    }
  }

  /// Operations issued so far (tags consumed); equal on every rank in SPMD.
  std::uint64_t opsIssued() const noexcept { return seq_; }

 private:
  template <typename T>
  static void foldOp(CollOp op, std::span<T> acc, std::span<const T> in) {
    switch (op) {
      case CollOp::kSum:
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
        break;
      case CollOp::kMin:
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
        break;
      case CollOp::kMax:
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = in[i] > acc[i] ? in[i] : acc[i];
        break;
    }
  }

  /// Ring needs >= 1 element per chunk to beat the tree; tiny payloads take
  /// the 2·ceil(log2 H)-round tree instead. Deterministic in (n, H) so all
  /// ranks agree without coordination.
  CollectiveAlgo resolveAllReduce(CollectiveAlgo algo, std::size_t n) const noexcept {
    if (algo != CollectiveAlgo::kAuto) return algo;
    return n >= 2 * static_cast<std::size_t>(numRanks_) ? CollectiveAlgo::kRing
                                                        : CollectiveAlgo::kTree;
  }

  static unsigned ceilLog2(unsigned v) noexcept {
    unsigned r = 0;
    while ((1u << r) < v) ++r;
    return r;
  }

  /// Fresh tag per operation; the per-instance sequence keeps rounds apart
  /// (wraps far beyond any in-flight window). Each op may use a few adjacent
  /// subtags.
  int nextTag() noexcept {
    const int tag = spaceBase_ + static_cast<int>((seq_ % (1u << 17)) << 3);
    ++seq_;
    return tag;
  }

  void recordRounds(std::uint64_t rounds) noexcept {
    t_.statsFor(me_).recordCollectiveRounds(rounds);
  }

  template <typename T>
  std::span<T> chunkOf(std::span<T> v, unsigned c) const noexcept {
    const std::size_t lo = v.size() * c / numRanks_;
    const std::size_t hi = v.size() * (c + 1) / numRanks_;
    return v.subspan(lo, hi - lo);
  }

  // Ring reduce-scatter + all-gather: step s, rank i sends chunk (i−s) mod H
  // right and folds chunk (i−s−1) mod H from the left; after H−1 steps rank i
  // owns the fully-reduced chunk (i+1) mod H, which the all-gather circulates.
  template <typename T, typename Fold>
  void ringAllReduce(std::span<T> v, Fold& fold, sim::CommPhase phase) {
    const unsigned H = numRanks_;
    const int tag = nextTag();
    const RankId right = (me_ + 1) % H;
    const RankId left = (me_ + H - 1) % H;
    for (unsigned s = 0; s < H - 1; ++s) {
      const auto out = chunkOf(std::span<const T>(v), (me_ + H - s) % H);
      t_.sendElems<T>(me_, right, tag, out, phase);
      const std::vector<T> in = t_.recvElems<T>(me_, left, tag, phase);
      const auto dst = chunkOf(v, (me_ + H - s - 1) % H);
      if (in.size() != dst.size())
        throw std::runtime_error("ring allreduce: chunk size mismatch across ranks");
      fold(dst, std::span<const T>(in));
    }
    for (unsigned s = 0; s < H - 1; ++s) {
      const auto out = chunkOf(std::span<const T>(v), (me_ + 1 + H - s) % H);
      t_.sendElems<T>(me_, right, tag + 1, out, phase);
      const std::vector<T> in = t_.recvElems<T>(me_, left, tag + 1, phase);
      const auto dst = chunkOf(v, (me_ + H - s) % H);
      if (in.size() != dst.size())
        throw std::runtime_error("ring allgather: chunk size mismatch across ranks");
      std::copy(in.begin(), in.end(), dst.begin());
    }
    recordRounds(2 * (H - 1));
  }

  // Binomial tree rooted at `root`, standard MPICH rank-relabelling: the
  // receive loop finds the parent at this rank's lowest set bit; the send
  // loop covers the remaining lower bits.
  template <typename T>
  void treeBroadcast(std::span<T> v, RankId root, sim::CommPhase phase) {
    const unsigned H = numRanks_;
    const int tag = nextTag();
    const unsigned vr = (me_ + H - root) % H;
    unsigned mask = 1;
    while (mask < H) {
      if (vr & mask) {
        const RankId src = (vr - mask + root) % H;
        const std::vector<T> in = t_.recvElems<T>(me_, src, tag, phase);
        if (in.size() != v.size())
          throw std::runtime_error("broadcast: size mismatch across ranks");
        std::copy(in.begin(), in.end(), v.begin());
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vr + mask < H) {
        const RankId dst = (vr + mask + root) % H;
        t_.sendElems<T>(me_, dst, tag, std::span<const T>(v), phase);
      }
      mask >>= 1;
    }
    recordRounds(ceilLog2(H));
  }

  template <typename T, typename Fold>
  void treeReduce(std::span<T> v, RankId root, Fold& fold, sim::CommPhase phase) {
    const unsigned H = numRanks_;
    const int tag = nextTag();
    const unsigned vr = (me_ + H - root) % H;
    unsigned mask = 1;
    while (mask < H) {
      if ((vr & mask) == 0) {
        if (vr + mask < H) {
          const RankId src = (vr + mask + root) % H;
          const std::vector<T> in = t_.recvElems<T>(me_, src, tag, phase);
          if (in.size() != v.size())
            throw std::runtime_error("reduce: size mismatch across ranks");
          fold(v, std::span<const T>(in));
        }
      } else {
        const RankId dst = (vr - mask + root) % H;
        t_.sendElems<T>(me_, dst, tag, std::span<const T>(v), phase);
        break;
      }
      mask <<= 1;
    }
    recordRounds(ceilLog2(H));
  }

  // Star through rank 0 — the reference implementation tests compare the
  // algorithmic collectives against. The root drains contributions in
  // arrival order (recvAny) but folds them in rank order for determinism.
  template <typename T, typename Fold>
  void naiveAllReduce(std::span<T> v, Fold& fold, sim::CommPhase phase) {
    const unsigned H = numRanks_;
    const int tag = nextTag();
    if (me_ == 0) {
      std::vector<std::vector<T>> contrib(H);
      for (unsigned k = 1; k < H; ++k) {
        auto [src, payload] = t_.recvAny(0, tag, phase);
        contrib[src] = Transport::elemsFromBytes<T>(payload);
      }
      for (unsigned src = 1; src < H; ++src) {
        if (contrib[src].size() != v.size())
          throw std::runtime_error("naive allreduce: size mismatch across ranks");
        fold(v, std::span<const T>(contrib[src]));
      }
      for (RankId dst = 1; dst < H; ++dst) {
        t_.sendElems<T>(0, dst, tag + 1, std::span<const T>(v), phase);
      }
    } else {
      t_.sendElems<T>(me_, 0, tag, std::span<const T>(v), phase);
      const std::vector<T> result = t_.recvElems<T>(me_, 0, tag + 1, phase);
      if (result.size() != v.size())
        throw std::runtime_error("naive allreduce: size mismatch across ranks");
      std::copy(result.begin(), result.end(), v.begin());
    }
    // Everyone waits out the root's serialized drain + re-send.
    recordRounds(2 * (H - 1));
  }

  template <typename T>
  void naiveBroadcast(std::span<T> v, RankId root, sim::CommPhase phase) {
    const unsigned H = numRanks_;
    const int tag = nextTag();
    if (me_ == root) {
      for (RankId dst = 0; dst < H; ++dst) {
        if (dst == root) continue;
        t_.sendElems<T>(me_, dst, tag, std::span<const T>(v), phase);
      }
    } else {
      const std::vector<T> in = t_.recvElems<T>(me_, root, tag, phase);
      if (in.size() != v.size())
        throw std::runtime_error("naive broadcast: size mismatch across ranks");
      std::copy(in.begin(), in.end(), v.begin());
    }
    recordRounds(H - 1);
  }

  Transport& t_;
  RankId me_;
  unsigned numRanks_;
  int spaceBase_;
  std::uint64_t seq_ = 0;
};

}  // namespace gw2v::comm
