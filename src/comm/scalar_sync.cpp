#include "comm/scalar_sync.h"

#include <cassert>

#include "comm/codec.h"
#include "comm/serialize.h"

namespace gw2v::comm {

ScalarSyncEngine::ScalarSyncEngine(sim::HostContext& ctx, std::span<float> values,
                                   util::BitVector& touched,
                                   const graph::BlockedPartition& partition,
                                   ScalarReduceOp op, sim::NetworkModel netModel,
                                   SyncCodec codec, bool errorFeedback)
    : ctx_(ctx),
      transport_(ctx.network()),
      coll_(transport_, ctx.id(), TagSpace::kScalarSync),
      values_(values),
      touched_(touched),
      partition_(partition),
      op_(op),
      netModel_(netModel),
      codec_(codec) {
  assert(values_.size() == partition_.numNodes());
  assert(touched_.size() >= partition_.numNodes());
  if (codec_ != SyncCodec::kFp32 && errorFeedback)
    residual_.assign(partition_.numNodes(), 0.0f);
}

std::uint64_t ScalarSyncEngine::sync() {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  const auto better = [this](float candidate, float current) {
    return op_ == ScalarReduceOp::kMin ? candidate < current : candidate > current;
  };
  // Lossy wire encode/decode for one scalar: the row codec helpers on a
  // one-value "row" (exact for BFS/CC-style small integers under fp16 and
  // near-exact under int8's one-value scale), with the node's banked
  // residual folded in when error feedback is on.
  const std::size_t valueBytes = codecValueBytes(codec_, 1);
  alignas(4) std::uint8_t encScratch[16];
  float decScratch;
  assert(valueBytes <= sizeof(encScratch));
  const auto putValue = [&](ByteWriter& w, std::uint32_t n) {
    float v = values_[n];
    if (codec_ == SyncCodec::kFp32) {
      w.put(v);
      return;
    }
    if (!residual_.empty()) v += residual_[n];
    encodeRowValues(codec_, std::span<const float>(&v, 1), encScratch);
    if (!residual_.empty()) {
      decodeRowValues(codec_, encScratch, std::span<float>(&decScratch, 1));
      residual_[n] = v - decScratch;
    }
    w.putSpan(std::span<const std::uint8_t>(encScratch, valueBytes));
  };
  const auto getValue = [&](ByteReader& r) -> float {
    if (codec_ == SyncCodec::kFp32) return r.get<float>();
    if (codec_ == SyncCodec::kFp16) {
      // Via view<u16> so the decode kernel always sees aligned input.
      const auto h = r.view<std::uint16_t>(1);
      float v;
      decodeRowValues(codec_, reinterpret_cast<const std::uint8_t*>(h.data()),
                      std::span<float>(&v, 1));
      return v;
    }
    const auto b = r.view<std::uint8_t>(valueBytes);
    float v;
    decodeRowValues(codec_, b.data(), std::span<float>(&v, 1));
    return v;
  };

  const sim::CommSnapshot before = sim::snapshot(ctx_.commStats());

  // Reduce: touched labels to their masters (personalized exchange).
  std::vector<std::vector<std::uint8_t>> reduceOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    const auto [lo, hi] = partition_.masterRange(peer);
    ByteWriter w;
    w.put(static_cast<std::uint32_t>(touched_.countInRange(lo, hi)));
    touched_.forEachSetInRange(lo, hi, [&](std::size_t n) {
      w.put(static_cast<std::uint32_t>(n));
      putValue(w, static_cast<std::uint32_t>(n));
    });
    reduceOut[peer] = w.take();
  }
  const std::vector<std::vector<std::uint8_t>> reduceIn =
      coll_.allToAllv(std::move(reduceOut), sim::CommPhase::kReduce);

  // Master-side fold. Track which owned labels improved.
  std::uint64_t changed = 0;
  const auto [ownLo, ownHi] = partition_.masterRange(me);
  util::BitVector improved(ownHi - ownLo);
  // The master's own relaxations count as improvements to publish too.
  touched_.forEachSetInRange(ownLo, ownHi, [&](std::size_t n) { improved.set(n - ownLo); });
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(reduceIn[src]);
    const std::uint32_t count = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t n = r.get<std::uint32_t>();
      const float v = getValue(r);
      if (better(v, values_[n])) {
        values_[n] = v;
        improved.set(n - ownLo);
        ++changed;
      }
    }
  }

  // Broadcast improved masters to every host: each host publishes one block,
  // everyone collects all blocks (ring all-gather).
  ByteWriter w;
  w.put(static_cast<std::uint32_t>(improved.count()));
  improved.forEachSet([&](std::size_t off) {
    const auto n = static_cast<std::uint32_t>(ownLo + off);
    w.put(n);
    putValue(w, n);
  });
  const std::vector<std::vector<std::uint8_t>> bcastIn =
      coll_.allGatherv(w.take(), sim::CommPhase::kBroadcast);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(bcastIn[src]);
    const std::uint32_t count = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t n = r.get<std::uint32_t>();
      const float v = getValue(r);
      // Masters are authoritative: their folded value overwrites mirrors
      // (it can only be better-or-equal under an idempotent reduction).
      if (values_[n] != v) {
        values_[n] = v;
        ++changed;
      }
    }
  }

  touched_.reset();
  ++round_;
  ctx_.addModelledCommSeconds(
      netModel_.exchangeSeconds(sim::delta(before, sim::snapshot(ctx_.commStats()))));
  coll_.barrier();
  return changed;
}

}  // namespace gw2v::comm
