#include "comm/scalar_sync.h"

#include <cassert>
#include <stdexcept>

#include "comm/serialize.h"
#include "util/simd.h"

namespace gw2v::comm {

ScalarSyncEngine::ScalarSyncEngine(sim::HostContext& ctx, std::span<float> values,
                                   util::BitVector& touched,
                                   const graph::BlockedPartition& partition,
                                   ScalarReduceOp op, sim::NetworkModel netModel,
                                   SyncCodec codec)
    : ctx_(ctx),
      transport_(ctx.network()),
      coll_(transport_, ctx.id(), TagSpace::kScalarSync),
      values_(values),
      touched_(touched),
      partition_(partition),
      op_(op),
      netModel_(netModel),
      codec_(codec) {
  assert(values_.size() == partition_.numNodes());
  assert(touched_.size() >= partition_.numNodes());
  if (codec_ == SyncCodec::kInt8) {
    throw std::invalid_argument(
        "ScalarSyncEngine: int8 needs a per-row scale and scalar labels have no row");
  }
}

std::uint64_t ScalarSyncEngine::sync() {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  const auto better = [this](float candidate, float current) {
    return op_ == ScalarReduceOp::kMin ? candidate < current : candidate > current;
  };
  // fp16 wire encode/decode for one scalar (exact for BFS/CC-style small
  // integers; a lossy-but-idempotent fold otherwise).
  const auto& kernels = util::simd::activeKernels();
  const auto putValue = [&](ByteWriter& w, float v) {
    if (codec_ == SyncCodec::kFp32) {
      w.put(v);
    } else {
      std::uint16_t h;
      kernels.fp32ToFp16(&v, &h, 1);
      w.put(h);
    }
  };
  const auto getValue = [&](ByteReader& r) -> float {
    if (codec_ == SyncCodec::kFp32) return r.get<float>();
    const std::uint16_t h = r.get<std::uint16_t>();
    float v;
    kernels.fp16ToFp32(&h, &v, 1);
    return v;
  };

  const sim::CommSnapshot before = sim::snapshot(ctx_.commStats());

  // Reduce: touched labels to their masters (personalized exchange).
  std::vector<std::vector<std::uint8_t>> reduceOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    const auto [lo, hi] = partition_.masterRange(peer);
    ByteWriter w;
    w.put(static_cast<std::uint32_t>(touched_.countInRange(lo, hi)));
    touched_.forEachSetInRange(lo, hi, [&](std::size_t n) {
      w.put(static_cast<std::uint32_t>(n));
      putValue(w, values_[n]);
    });
    reduceOut[peer] = w.take();
  }
  const std::vector<std::vector<std::uint8_t>> reduceIn =
      coll_.allToAllv(std::move(reduceOut), sim::CommPhase::kReduce);

  // Master-side fold. Track which owned labels improved.
  std::uint64_t changed = 0;
  const auto [ownLo, ownHi] = partition_.masterRange(me);
  util::BitVector improved(ownHi - ownLo);
  // The master's own relaxations count as improvements to publish too.
  touched_.forEachSetInRange(ownLo, ownHi, [&](std::size_t n) { improved.set(n - ownLo); });
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(reduceIn[src]);
    const std::uint32_t count = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t n = r.get<std::uint32_t>();
      const float v = getValue(r);
      if (better(v, values_[n])) {
        values_[n] = v;
        improved.set(n - ownLo);
        ++changed;
      }
    }
  }

  // Broadcast improved masters to every host: each host publishes one block,
  // everyone collects all blocks (ring all-gather).
  ByteWriter w;
  w.put(static_cast<std::uint32_t>(improved.count()));
  improved.forEachSet([&](std::size_t off) {
    const auto n = static_cast<std::uint32_t>(ownLo + off);
    w.put(n);
    putValue(w, values_[n]);
  });
  const std::vector<std::vector<std::uint8_t>> bcastIn =
      coll_.allGatherv(w.take(), sim::CommPhase::kBroadcast);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(bcastIn[src]);
    const std::uint32_t count = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t n = r.get<std::uint32_t>();
      const float v = getValue(r);
      // Masters are authoritative: their folded value overwrites mirrors
      // (it can only be better-or-equal under an idempotent reduction).
      if (values_[n] != v) {
        values_[n] = v;
        ++changed;
      }
    }
  }

  touched_.reset();
  ++round_;
  ctx_.addModelledCommSeconds(
      netModel_.exchangeSeconds(sim::delta(before, sim::snapshot(ctx_.commStats()))));
  coll_.barrier();
  return changed;
}

}  // namespace gw2v::comm
