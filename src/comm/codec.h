#pragma once

// Sync payload codecs: how many bytes each synced row costs on the wire.
//
// The sync engine ships rows as [u32 row id][encoded values]; the codec
// decides the encoded-value layout:
//
//   fp32  dim * 4 bytes, raw little-endian floats. Byte-identical to the
//         pre-codec wire format — the bit-exact golden path and default.
//   fp16  dim * 2 bytes, IEEE binary16 round-to-nearest-even.
//   int8  4-byte fp32 per-row scale followed by dim signed bytes:
//         q = clamp(rne(v * 127 / maxAbs), -127, 127), decoded as q * scale
//         with scale = maxAbs / 127. An all-zero row encodes scale = 0.
//
// Encode and decode route through the runtime SIMD dispatch layer
// (util/simd.h); the convert kernels are bitwise-identical across tiers, so
// the wire bytes do not depend on the host's ISA. Every consumer decodes the
// same bytes to the same floats, which is what keeps the SPMD replicas in
// lockstep under lossy codecs.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "util/simd.h"

namespace gw2v::comm {

enum class SyncCodec : int { kFp32 = 0, kFp16 = 1, kInt8 = 2 };

inline const char* syncCodecName(SyncCodec c) noexcept {
  switch (c) {
    case SyncCodec::kFp32: return "fp32";
    case SyncCodec::kFp16: return "fp16";
    case SyncCodec::kInt8: return "int8";
  }
  return "?";
}

/// Parse "fp32" / "fp16" / "int8" (as spelled by syncCodecName); returns
/// false and leaves `out` untouched on anything else.
inline bool parseSyncCodec(std::string_view name, SyncCodec& out) noexcept {
  if (name == "fp32") { out = SyncCodec::kFp32; return true; }
  if (name == "fp16") { out = SyncCodec::kFp16; return true; }
  if (name == "int8") { out = SyncCodec::kInt8; return true; }
  return false;
}

/// Encoded bytes for one row's values (excluding the u32 row id).
inline constexpr std::size_t codecValueBytes(SyncCodec c, std::uint32_t dim) noexcept {
  switch (c) {
    case SyncCodec::kFp16: return static_cast<std::size_t>(dim) * 2;
    case SyncCodec::kInt8: return 4 + static_cast<std::size_t>(dim);
    case SyncCodec::kFp32: break;
  }
  return static_cast<std::size_t>(dim) * 4;
}

/// Full wire entry: u32 row id + encoded values.
inline constexpr std::size_t codecEntryBytes(SyncCodec c, std::uint32_t dim) noexcept {
  return 4 + codecValueBytes(c, dim);
}

/// Encode one row's values at `out` (codecValueBytes(c, v.size()) bytes).
/// For fp16, `out` must be 2-byte aligned; the sync payload layout (4-byte
/// label headers, even entry sizes) guarantees that.
inline void encodeRowValues(SyncCodec c, std::span<const float> v, std::uint8_t* out) noexcept {
  const auto& k = util::simd::activeKernels();
  switch (c) {
    case SyncCodec::kFp32:
      std::memcpy(out, v.data(), v.size() * 4);
      break;
    case SyncCodec::kFp16:
      assert(reinterpret_cast<std::uintptr_t>(out) % 2 == 0);
      k.fp32ToFp16(v.data(), reinterpret_cast<std::uint16_t*>(out), v.size());
      break;
    case SyncCodec::kInt8: {
      const float m = k.maxAbs(v.data(), v.size());
      const float scale = m > 0.0f ? m / 127.0f : 0.0f;
      const float invScale = m > 0.0f ? 127.0f / m : 0.0f;
      std::memcpy(out, &scale, 4);
      k.fp32ToInt8(v.data(), invScale, reinterpret_cast<std::int8_t*>(out + 4), v.size());
      break;
    }
  }
}

/// Decode one row's values from `in` into `out` (out.size() == dim).
inline void decodeRowValues(SyncCodec c, const std::uint8_t* in, std::span<float> out) noexcept {
  const auto& k = util::simd::activeKernels();
  switch (c) {
    case SyncCodec::kFp32:
      std::memcpy(out.data(), in, out.size() * 4);
      break;
    case SyncCodec::kFp16:
      assert(reinterpret_cast<std::uintptr_t>(in) % 2 == 0);
      k.fp16ToFp32(reinterpret_cast<const std::uint16_t*>(in), out.data(), out.size());
      break;
    case SyncCodec::kInt8: {
      float scale;
      std::memcpy(&scale, in, 4);
      k.int8ToFp32(reinterpret_cast<const std::int8_t*>(in + 4), scale, out.data(),
                   out.size());
      break;
    }
  }
}

}  // namespace gw2v::comm
