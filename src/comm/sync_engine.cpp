#include "comm/sync_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "comm/serialize.h"
#include "runtime/do_all.h"
#include "sim/network.h"
#include "util/timer.h"
#include "util/vecmath.h"

namespace gw2v::comm {

namespace {

bool isZero(std::span<const float> v) noexcept {
  for (const float x : v) {
    if (x != 0.0f) return false;
  }
  return true;
}

void putU32(std::uint8_t* p, std::uint32_t v) noexcept { std::memcpy(p, &v, 4); }

std::uint32_t getU32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

const char* syncStrategyName(SyncStrategy s) noexcept {
  switch (s) {
    case SyncStrategy::kRepModelNaive: return "RepModel-Naive";
    case SyncStrategy::kRepModelOpt: return "RepModel-Opt";
    case SyncStrategy::kPullModel: return "PullModel";
  }
  return "?";
}

SyncEngine::SyncEngine(sim::HostContext& ctx, graph::ModelGraph& model,
                       const graph::BlockedPartition& partition, const Reducer& reducer,
                       SyncStrategy strategy, sim::NetworkModel netModel, SyncOptions opts)
    : ctx_(ctx),
      transport_(ctx.network()),
      coll_(transport_, ctx.id(), TagSpace::kModelSync),
      model_(model),
      partition_(partition),
      reducer_(reducer),
      strategy_(strategy),
      netModel_(netModel),
      syncOpts_(opts) {
  assert(partition_.numNodes() == model_.numNodes());
  assert(partition_.numHosts() == ctx_.numHosts());
  ensureResiduals(false);
  rebaseline();
}

void SyncEngine::rebaseline() {
  // The model is the baseline; dropping pending captures makes it official.
  // Residuals survive: a rebaseline redefines the delta origin, but
  // quantization error that never made it onto the wire stays owed.
  model_.clearTouched();
}

void SyncEngine::ensureResiduals(bool reset) {
  if (syncOpts_.codec == SyncCodec::kFp32 && !reset) return;
  for (auto& table : residual_) {
    if (table.numRows() != model_.numNodes() || table.dim() != model_.dim()) {
      table.init(model_.numNodes(), model_.dim());  // init zero-fills
    } else if (reset) {
      for (std::uint32_t n = 0; n < table.numRows(); ++n) {
        auto row = table.untrackedRow(n);
        std::fill(row.begin(), row.end(), 0.0f);
      }
    }
  }
}

void SyncEngine::setCodec(SyncCodec codec, bool errorFeedback) {
  const bool changed = codec != syncOpts_.codec;
  syncOpts_.codec = codec;
  syncOpts_.errorFeedback = errorFeedback;
  // Stale error from another codec's quantization grid is meaningless —
  // re-adding it would inject noise, not correct it.
  if (changed) ensureResiduals(true);
  ensureResiduals(false);
}

void SyncEngine::sync() { doSync(nullptr); }

void SyncEngine::sync(const util::BitVector& willAccessNextRound) {
  doSync(&willAccessNextRound);
}

void SyncEngine::doSync(const util::BitVector* willAccess) {
  if (syncOpts_.serial) {
    doSyncSerial(willAccess);
  } else {
    doSyncParallel(willAccess);
  }
}

std::vector<std::uint8_t> SyncEngine::acquireBuf(std::size_t bytes) {
  // Best-fit from the recycle pool: smallest buffer that already fits, else
  // the largest one grows. The pool holds O(H) entries, so a linear scan is
  // cheaper than any ordered structure.
  const std::size_t none = bufPool_.size();
  std::size_t best = none;
  for (std::size_t i = 0; i < bufPool_.size(); ++i) {
    const std::size_t cap = bufPool_[i].capacity();
    if (cap >= bytes && (best == none || cap < bufPool_[best].capacity())) best = i;
  }
  if (best == none) {
    for (std::size_t i = 0; i < bufPool_.size(); ++i) {
      if (best == none || bufPool_[i].capacity() > bufPool_[best].capacity()) best = i;
    }
  }
  std::vector<std::uint8_t> b;
  if (best != none) {
    b = std::move(bufPool_[best]);
    bufPool_[best] = std::move(bufPool_.back());
    bufPool_.pop_back();
  }
  if (b.capacity() < bytes) ++scratchGrowEvents_;
  b.resize(bytes);
  return b;
}

void SyncEngine::releaseBuf(std::vector<std::uint8_t>&& b) {
  if (bufPool_.size() == bufPool_.capacity()) ++scratchGrowEvents_;
  bufPool_.push_back(std::move(b));
}

// PullModel control exchange: tell each master which of its nodes this host
// will access next round; parse the symmetric lists into pullWants_.
void SyncEngine::exchangeWillAccess(const util::BitVector* willAccess) {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  ensureSize(pullWants_, numHosts);
  for (auto& v : pullWants_) v.clear();
  if (numHosts <= 1) return;

  runtime::PhaseStats& phases = ctx_.syncPhases();
  double packW = 0.0, parseW = 0.0;
  util::WallTimer total;
  const auto pack = [&](unsigned /*chunk*/) {
    util::WallTimer t;
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      const auto [lo, hi] = partition_.masterRange(peer);
      const std::uint32_t count =
          willAccess != nullptr ? static_cast<std::uint32_t>(willAccess->countInRange(lo, hi))
                                : hi - lo;
      auto buf = acquireBuf(4 + static_cast<std::size_t>(count) * 4);
      std::uint8_t* p = buf.data();
      putU32(p, count);
      p += 4;
      if (willAccess != nullptr) {
        willAccess->forEachSetInRange(lo, hi, [&](std::size_t n) {
          putU32(p, static_cast<std::uint32_t>(n));
          p += 4;
        });
      } else {
        for (std::uint32_t n = lo; n < hi; ++n) {
          putU32(p, n);
          p += 4;
        }
      }
      sendBufs_[peer] = std::move(buf);
    }
    packW += t.seconds();
  };
  const auto consume = [&](unsigned /*chunk*/) {
    util::WallTimer t;
    for (unsigned src = 0; src < numHosts; ++src) {
      if (src == me) continue;
      auto& buf = recvBufs_[src];
      const std::uint32_t count = getU32(buf.data());
      auto& wants = pullWants_[src];
      if (wants.capacity() < count) ++scratchGrowEvents_;
      wants.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        wants.push_back(getU32(buf.data() + 4 + static_cast<std::size_t>(i) * 4));
      }
      releaseBuf(std::move(buf));
    }
    parseW += t.seconds();
  };
  coll_.allToAllvPipelined(1, sendBufs_, recvBufs_, pack, consume, sim::CommPhase::kControl);
  phases.add(0, runtime::SyncPhase::kPack, packW);
  phases.add(0, runtime::SyncPhase::kFold, parseW);
  phases.add(0, runtime::SyncPhase::kExchange, std::max(0.0, total.seconds() - packW - parseW));
}

// Simulated makespan of one pipelined exchange: the host pays pack(0) up
// front, then per chunk the larger of its transfer and the CPU work the
// pipeline hides behind it (pack of the next chunk + fold of the previous
// one), and finally the last fold — max(compute, transfer) per chunk.
double SyncEngine::chargePipelineSeconds() const noexcept {
  const std::size_t k = chunkPack_.size();
  if (k == 0) return 0.0;
  double t = chunkPack_[0];
  for (std::size_t c = 0; c < k; ++c) {
    const double cpuOverlap =
        (c + 1 < k ? chunkPack_[c + 1] : 0.0) + (c > 0 ? chunkConsume_[c - 1] : 0.0);
    t += std::max(chunkTransfer_[c], cpuOverlap);
  }
  t += chunkConsume_[k - 1];
  return t;
}

// The parallel/pipelined path. Byte- and bit-identical to doSyncSerial at
// any thread count when pipelineChunks == 1 (the default); with K > 1, model
// bits stay identical while byte counts grow by the extra chunk headers and
// message framing. Determinism argument in DESIGN.md §5f.
void SyncEngine::doSyncParallel(const util::BitVector* willAccess) {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  const std::uint32_t dim = model_.dim();
  const std::uint32_t numNodes = model_.numNodes();
  const bool naive = strategy_ == SyncStrategy::kRepModelNaive;
  const bool pull = strategy_ == SyncStrategy::kPullModel;
  runtime::ThreadPool& pool = ctx_.pool();
  const unsigned numThreads = pool.numThreads();
  runtime::PhaseStats& phases = ctx_.syncPhases();
  const SyncCodec codec = syncOpts_.codec;
  const bool lossy = codec != SyncCodec::kFp32;
  const bool ef = lossy && syncOpts_.errorFeedback;
  const std::size_t entryBytes = codecEntryBytes(codec, dim);
  const unsigned chunks = std::max(1u, std::min(syncOpts_.pipelineChunks, numNodes));

  const sim::CommSnapshot before = sim::snapshot(ctx_.commStats());

  // ---- Per-round scratch (reused across rounds; see scratchGrowEvents). ----
  if (bufPool_.capacity() < 2 * numHosts + 2) bufPool_.reserve(2 * numHosts + 2);
  ensureSize(sendBufs_, numHosts);
  ensureSize(recvBufs_, numHosts);
  ensureSize(threadScratch_, numThreads);
  for (auto& s : threadScratch_) ensureSize(s, dim);
  if (lossy) {
    ensureSize(threadDecode_, numThreads);
    for (auto& s : threadDecode_) ensureSize(s, dim);
  }
  ensureSize(segDirs_, static_cast<std::size_t>(numHosts) * graph::kNumLabels);
  ensureSize(chunkPack_, chunks);
  ensureSize(chunkConsume_, chunks);
  ensureSize(chunkTransfer_, chunks);
  ensureSize(chunkBytes_, chunks);

  const auto [ownLo, ownHi] = partition_.masterRange(me);
  const std::uint32_t ownCount = ownHi - ownLo;
  ensureSize(acc_, static_cast<std::size_t>(ownCount) * dim * graph::kNumLabels);
  ensureSize(contrib_, static_cast<std::size_t>(ownCount) * graph::kNumLabels);
  std::fill(contrib_.begin(), contrib_.end(), 0u);

  const auto accRow = [&](int l, std::uint32_t n) -> std::span<float> {
    const std::size_t idx = (static_cast<std::size_t>(l) * ownCount + (n - ownLo)) * dim;
    return {acc_.data() + idx, dim};
  };
  const auto contribAt = [&](int l, std::uint32_t n) -> std::uint32_t& {
    return contrib_[static_cast<std::size_t>(l) * ownCount + (n - ownLo)];
  };
  // Row-disjoint across threads by construction, so plain writes are safe.
  const auto foldContribution = [&](int l, std::uint32_t n, std::span<const float> delta) {
    if (isZero(delta)) return;  // untouched mirror in a Naive round, or a no-op update
    auto a = accRow(l, n);
    if (contribAt(l, n) == 0) {
      util::copyInto(delta, a);
    } else {
      reducer_.accumulate(a, delta);
    }
    ++contribAt(l, n);
  };
  const auto pushTask = [&](const PackTask& t) {
    if (tasks_.size() == tasks_.capacity()) ++scratchGrowEvents_;
    tasks_.push_back(t);
  };
  const auto segAt = [&](unsigned src, int l) -> SegDir& {
    return segDirs_[static_cast<std::size_t>(src) * graph::kNumLabels + l];
  };
  const auto rowAt = [&](const SegDir& s, std::uint32_t j) {
    return getU32(s.base + static_cast<std::size_t>(j) * entryBytes);
  };
  const auto valuesPtr = [&](const SegDir& s, std::uint32_t j) {
    return s.base + static_cast<std::size_t>(j) * entryBytes + 4;
  };
  // Entry values, decoded. fp32 reads the wire bytes in place (they ARE the
  // floats); lossy codecs decode into the caller's scratch.
  const auto entryValues = [&](const SegDir& s, std::uint32_t j,
                               std::span<float> dec) -> std::span<const float> {
    const std::uint8_t* p = valuesPtr(s, j);
    if (!lossy) {
      assert(reinterpret_cast<std::uintptr_t>(p) % alignof(float) == 0);
      return std::span<const float>(reinterpret_cast<const float*>(p), dim);
    }
    decodeRowValues(codec, p, dec);
    return dec;
  };
  // First entry in segment s with row >= `row` (entries ascend by row).
  const auto lowerBoundRow = [&](const SegDir& s, std::uint32_t row) {
    std::uint32_t lo = 0, hi = s.count;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (rowAt(s, mid) < row) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  // Parse one payload into its per-label segment directory; returns bytes
  // charged (payload + fabric framing).
  const auto parseSegments = [&](unsigned src) -> std::uint64_t {
    const auto& buf = recvBufs_[src];
    const std::uint8_t* p = buf.data();
    [[maybe_unused]] const std::uint8_t* endp = p + buf.size();
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const std::uint32_t count = getU32(p);
      p += 4;
      segAt(src, l) = {p, count};
      p += static_cast<std::size_t>(count) * entryBytes;
      assert(p <= endp);
    }
    assert(p == endp);
    return buf.size() + sim::Network::kHeaderBytes;
  };

  // ---- PullModel inspection exchange. ----
  const sim::CommSnapshot beforeData = [&] {
    if (pull) exchangeWillAccess(willAccess);
    return sim::snapshot(ctx_.commStats());
  }();
  const double ctrlCharge =
      netModel_.exchangeSeconds(sim::delta(before, beforeData));

  // ---- Reduce phase: ship touched (or all, for Naive) mirror deltas to
  // masters; fold + apply row-parallel as chunks drain. ----
  double packW = 0.0, foldW = 0.0, applyW = 0.0;
  util::WallTimer reduceWall;
  const auto packReduce = [&](unsigned c) {
    util::WallTimer t;
    const auto [cLo64, cHi64] = runtime::blockRange(numNodes, chunks, c);
    const auto cLo = static_cast<std::uint32_t>(cLo64);
    const auto cHi = static_cast<std::uint32_t>(cHi64);
    std::uint64_t sentBytes = 0;
    tasks_.clear();
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      const auto [mLo, mHi] = partition_.masterRange(peer);
      const std::uint32_t lo = std::max(mLo, cLo);
      const std::uint32_t hi = std::min(mHi, cHi);
      const std::uint32_t len = hi > lo ? hi - lo : 0;
      std::array<std::uint32_t, graph::kNumLabels> counts;
      std::size_t size = 0;
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const auto& table = model_.table(static_cast<graph::Label>(l));
        counts[l] = naive ? len
                          : (len > 0 ? static_cast<std::uint32_t>(
                                           table.dirty().countInRange(lo, hi))
                                     : 0);
        size += 4 + static_cast<std::size_t>(counts[l]) * entryBytes;
      }
      auto buf = acquireBuf(size);
      std::size_t off = 0;
      for (int l = 0; l < graph::kNumLabels; ++l) {
        putU32(buf.data() + off, counts[l]);
        off += 4;
        if (counts[l] == 0) continue;
        // Static split of the row range over workers; each block's byte
        // offset is the entry count before it, so workers write disjoint
        // pre-computed slices and bytes match the sequential writer.
        const auto& dirty = model_.table(static_cast<graph::Label>(l)).dirty();
        std::uint32_t prefix = 0;
        for (unsigned b = 0; b < numThreads; ++b) {
          const auto [bl, bh] = runtime::blockRange(len, numThreads, b);
          const std::uint32_t rl = lo + static_cast<std::uint32_t>(bl);
          const std::uint32_t rh = lo + static_cast<std::uint32_t>(bh);
          const std::uint32_t cnt =
              naive ? rh - rl
                    : static_cast<std::uint32_t>(dirty.countInRange(rl, rh));
          if (cnt > 0) {
            pushTask({peer, l, rl, rh, off + static_cast<std::size_t>(prefix) * entryBytes});
          }
          prefix += cnt;
        }
        assert(prefix == counts[l]);
        off += static_cast<std::size_t>(counts[l]) * entryBytes;
      }
      assert(off == size);
      sentBytes += size + sim::Network::kHeaderBytes;
      sendBufs_[peer] = std::move(buf);
    }
    runtime::doAllTid(
        pool, 0, tasks_.size(),
        [&](unsigned tid, std::uint64_t i) {
          const PackTask& task = tasks_[i];
          const auto& table = model_.table(static_cast<graph::Label>(task.label));
          auto& residual = residual_[task.label];
          std::uint8_t* out = sendBufs_[task.peer].data() + task.byteOff;
          auto& scratch = threadScratch_[tid];
          const auto emitDelta = [&](std::uint32_t n, std::span<const float> oldRow,
                                     std::span<const float> cur) {
            util::sub(cur, oldRow, scratch);
            putU32(out, n);
            if (!lossy) {
              std::memcpy(out + 4, scratch.data(), entryBytes - 4);
            } else {
              // Error feedback: owe = delta + residual; ship Q(owe); remember
              // owe - decode(Q(owe)). Rows are disjoint across pack tasks
              // (each row has one master), so residual writes don't race.
              if (ef) util::add(residual.row(n), scratch);
              encodeRowValues(codec, scratch, out + 4);
              if (ef) {
                auto& dec = threadDecode_[tid];
                decodeRowValues(codec, out + 4, dec);
                util::sub(scratch, dec, residual.untrackedRow(n));
              }
            }
            out += entryBytes;
          };
          if (naive) {
            for (std::uint32_t n = task.lo; n < task.hi; ++n) {
              emitDelta(n, table.baselineRow(n), table.row(n));
            }
          } else {
            table.forEachDeltaInRange(task.lo, task.hi, emitDelta);
          }
        },
        {.chunkSize = 1});
    chunkBytes_[c] = sentBytes;
    chunkPack_[c] = t.seconds();
    packW += chunkPack_[c];
  };
  const auto consumeReduce = [&](unsigned c) {
    util::WallTimer t;
    const auto [cLo64, cHi64] = runtime::blockRange(numNodes, chunks, c);
    const std::uint32_t rLo = std::max(ownLo, static_cast<std::uint32_t>(cLo64));
    const std::uint32_t rHi = std::min(ownHi, static_cast<std::uint32_t>(cHi64));
    std::uint64_t recvBytes = 0;
    for (unsigned src = 0; src < numHosts; ++src) {
      if (src != me) recvBytes += parseSegments(src);
    }
    // Fold: rows partitioned over threads, sources walked in host-id order
    // per row — the per-row contribution order matches the serial engine.
    if (rHi > rLo) {
      runtime::doAllBlocked(pool, rLo, rHi, [&](unsigned tid, std::uint64_t lo64,
                                                std::uint64_t hi64) {
        const auto bLo = static_cast<std::uint32_t>(lo64);
        const auto bHi = static_cast<std::uint32_t>(hi64);
        if (bHi <= bLo) return;
        auto& scratch = threadScratch_[tid];
        for (unsigned src = 0; src < numHosts; ++src) {
          if (src == me) {
            for (int l = 0; l < graph::kNumLabels; ++l) {
              const auto& table = model_.table(static_cast<graph::Label>(l));
              if (naive) {
                for (std::uint32_t n = bLo; n < bHi; ++n) {
                  util::sub(table.row(n), table.baselineRow(n), scratch);
                  foldContribution(l, n, scratch);
                }
              } else {
                table.forEachDeltaInRange(
                    bLo, bHi,
                    [&](std::uint32_t n, std::span<const float> oldRow,
                        std::span<const float> cur) {
                      util::sub(cur, oldRow, scratch);
                      foldContribution(l, n, scratch);
                    });
              }
            }
            continue;
          }
          for (int l = 0; l < graph::kNumLabels; ++l) {
            const SegDir& s = segAt(src, l);
            for (std::uint32_t j = lowerBoundRow(s, bLo); j < s.count; ++j) {
              const std::uint32_t n = rowAt(s, j);
              if (n >= bHi) break;
              // scratch is free in the remote branch; lossy codecs decode
              // into it, fp32 folds the wire bytes in place.
              foldContribution(l, n, entryValues(s, j, scratch));
            }
          }
        }
      });
    }
    const double foldSecs = t.seconds();
    foldW += foldSecs;
    // Apply combined steps to canonical values, row-parallel. The baseline
    // must be copied out before the overwrite: for rows no thread captured,
    // it aliases the row itself.
    util::WallTimer ta;
    if (rHi > rLo) {
      runtime::doAllBlocked(pool, rLo, rHi, [&](unsigned tid, std::uint64_t lo64,
                                                std::uint64_t hi64) {
        auto& scratch = threadScratch_[tid];
        for (int l = 0; l < graph::kNumLabels; ++l) {
          auto& table = model_.table(static_cast<graph::Label>(l));
          for (auto n = static_cast<std::uint32_t>(lo64); n < hi64; ++n) {
            const std::uint32_t cnt = contribAt(l, n);
            if (cnt == 0) continue;
            auto a = accRow(l, n);
            reducer_.finalize(a, cnt);
            util::copyInto(table.baselineRow(n), scratch);
            util::add(a, scratch);
            util::copyInto(scratch, table.overwriteRow(n));
          }
        }
      });
    }
    applyW += ta.seconds();
    for (unsigned src = 0; src < numHosts; ++src) {
      if (src != me) releaseBuf(std::move(recvBufs_[src]));
    }
    chunkConsume_[c] = foldSecs + ta.seconds();
    chunkTransfer_[c] =
        netModel_.transferSeconds(chunkBytes_[c] + recvBytes, numHosts > 0 ? numHosts - 1 : 0);
  };
  coll_.allToAllvPipelined(chunks, sendBufs_, recvBufs_, packReduce, consumeReduce,
                           sim::CommPhase::kReduce);
  const double reducePipelineCharge = chargePipelineSeconds();
  phases.add(0, runtime::SyncPhase::kPack, packW);
  phases.add(0, runtime::SyncPhase::kFold, foldW);
  phases.add(0, runtime::SyncPhase::kApply, applyW);
  phases.add(0, runtime::SyncPhase::kExchange,
             std::max(0.0, reduceWall.seconds() - packW - foldW - applyW));

  // ---- Broadcast phase: ship canonical values to mirrors, apply
  // row-parallel as chunks drain. ----
  double bPackW = 0.0, bApplyW = 0.0;
  util::WallTimer bcastWall;
  const auto packBcast = [&](unsigned c) {
    util::WallTimer t;
    const auto [cLo64, cHi64] = runtime::blockRange(numNodes, chunks, c);
    const std::uint32_t rLo = std::max(ownLo, static_cast<std::uint32_t>(cLo64));
    const std::uint32_t rHi = std::min(ownHi, static_cast<std::uint32_t>(cHi64));
    const std::uint32_t len = rHi > rLo ? rHi - rLo : 0;
    std::uint64_t sentBytes = 0;
    tasks_.clear();
    if (!naive && !pull) {
      // Opt ships rows any host updated: materialize the per-label emit
      // lists once per chunk (ascending, disjoint across chunks).
      for (int l = 0; l < graph::kNumLabels; ++l) {
        auto& list = emit_[l];
        list.clear();
        for (std::uint32_t n = rLo; n < rHi; ++n) {
          if (contribAt(l, n) == 0) continue;
          if (list.size() == list.capacity()) ++scratchGrowEvents_;
          list.push_back(n);
        }
      }
    }
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      // Index domain per label: offsets into the implicit row range (Naive),
      // this peer's pull list (Pull), or the emit list (Opt).
      std::uint32_t domLo[graph::kNumLabels], domHi[graph::kNumLabels];
      for (int l = 0; l < graph::kNumLabels; ++l) {
        if (naive) {
          domLo[l] = 0;
          domHi[l] = len;
        } else if (pull) {
          const auto& wants = pullWants_[peer];
          domLo[l] = static_cast<std::uint32_t>(
              std::lower_bound(wants.begin(), wants.end(), rLo) - wants.begin());
          domHi[l] = static_cast<std::uint32_t>(
              std::lower_bound(wants.begin(), wants.end(), rHi) - wants.begin());
        } else {
          domLo[l] = 0;
          domHi[l] = static_cast<std::uint32_t>(emit_[l].size());
        }
      }
      std::size_t size = 0;
      for (int l = 0; l < graph::kNumLabels; ++l) {
        size += 4 + static_cast<std::size_t>(domHi[l] - domLo[l]) * entryBytes;
      }
      auto buf = acquireBuf(size);
      std::size_t off = 0;
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const std::uint32_t count = domHi[l] - domLo[l];
        putU32(buf.data() + off, count);
        off += 4;
        for (unsigned b = 0; b < numThreads && count > 0; ++b) {
          const auto [bl, bh] = runtime::blockRange(count, numThreads, b);
          if (bh > bl) {
            pushTask({peer, l, domLo[l] + static_cast<std::uint32_t>(bl),
                      domLo[l] + static_cast<std::uint32_t>(bh),
                      off + static_cast<std::size_t>(bl) * entryBytes});
          }
        }
        off += static_cast<std::size_t>(count) * entryBytes;
      }
      assert(off == size);
      sentBytes += size + sim::Network::kHeaderBytes;
      sendBufs_[peer] = std::move(buf);
    }
    runtime::doAllTid(
        pool, 0, tasks_.size(),
        [&](unsigned /*tid*/, std::uint64_t i) {
          const PackTask& task = tasks_[i];
          const auto label = static_cast<graph::Label>(task.label);
          std::uint8_t* out = sendBufs_[task.peer].data() + task.byteOff;
          const auto emitRow = [&](std::uint32_t n) {
            putU32(out, n);
            if (!lossy) {
              std::memcpy(out + 4, model_.row(label, n).data(), entryBytes - 4);
            } else {
              // Canonical values are re-encoded fresh every round, so
              // broadcast error is bounded (one quantization step), never
              // accumulated — no residual on this path.
              encodeRowValues(codec, model_.row(label, n), out + 4);
            }
            out += entryBytes;
          };
          if (naive) {
            for (std::uint32_t idx = task.lo; idx < task.hi; ++idx) emitRow(rLo + idx);
          } else if (pull) {
            const auto& wants = pullWants_[task.peer];
            for (std::uint32_t idx = task.lo; idx < task.hi; ++idx) emitRow(wants[idx]);
          } else {
            const auto& list = emit_[task.label];
            for (std::uint32_t idx = task.lo; idx < task.hi; ++idx) emitRow(list[idx]);
          }
        },
        {.chunkSize = 1});
    chunkBytes_[c] = sentBytes;
    chunkPack_[c] = t.seconds();
    bPackW += chunkPack_[c];
  };
  const auto consumeBcast = [&](unsigned c) {
    util::WallTimer t;
    std::uint64_t recvBytes = 0;
    tasks_.clear();
    for (unsigned src = 0; src < numHosts; ++src) {
      if (src == me) continue;
      recvBytes += parseSegments(src);
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const std::uint32_t count = segAt(src, l).count;
        for (unsigned b = 0; b < numThreads && count > 0; ++b) {
          const auto [bl, bh] = runtime::blockRange(count, numThreads, b);
          if (bh > bl) {
            pushTask({src, l, static_cast<std::uint32_t>(bl),
                      static_cast<std::uint32_t>(bh), 0});
          }
        }
      }
    }
    // Masters own disjoint row ranges, so applying all sources' entries in
    // parallel writes disjoint rows.
    runtime::doAllTid(
        pool, 0, tasks_.size(),
        [&](unsigned /*tid*/, std::uint64_t i) {
          const PackTask& task = tasks_[i];
          const auto label = static_cast<graph::Label>(task.label);
          const SegDir& s = segAt(task.peer, task.label);
          for (std::uint32_t j = task.lo; j < task.hi; ++j) {
            if (!lossy) {
              util::copyInto(entryValues(s, j, {}), model_.overwriteRow(label, rowAt(s, j)));
            } else {
              decodeRowValues(codec, valuesPtr(s, j), model_.overwriteRow(label, rowAt(s, j)));
            }
          }
        },
        {.chunkSize = 1});
    for (unsigned src = 0; src < numHosts; ++src) {
      if (src != me) releaseBuf(std::move(recvBufs_[src]));
    }
    chunkConsume_[c] = t.seconds();
    bApplyW += chunkConsume_[c];
    chunkTransfer_[c] =
        netModel_.transferSeconds(chunkBytes_[c] + recvBytes, numHosts > 0 ? numHosts - 1 : 0);
  };
  coll_.allToAllvPipelined(chunks, sendBufs_, recvBufs_, packBcast, consumeBcast,
                           sim::CommPhase::kBroadcast);
  const double bcastPipelineCharge = chargePipelineSeconds();
  phases.add(0, runtime::SyncPhase::kPack, bPackW);
  phases.add(0, runtime::SyncPhase::kApply, bApplyW);
  phases.add(0, runtime::SyncPhase::kExchange,
             std::max(0.0, bcastWall.seconds() - bPackW - bApplyW));

  // No explicit rebasing anywhere: clearTouched() declares the post-round
  // model the baseline, which covers broadcast-overwritten mirrors, masters,
  // and the locally-touched mirrors a PullModel round never refreshes alike.
  model_.clearTouched();
  ++round_;

  // Modelled communication time. With one chunk this is the historical
  // whole-exchange alpha-beta charge; a pipelined round instead pays
  // max(compute, transfer) per chunk, so overlap shows up in ClusterReport.
  if (chunks == 1) {
    const sim::CommSnapshot after = sim::snapshot(ctx_.commStats());
    ctx_.addModelledCommSeconds(netModel_.exchangeSeconds(sim::delta(before, after)));
  } else {
    ctx_.addModelledCommSeconds(ctrlCharge + reducePipelineCharge + bcastPipelineCharge);
  }

  // BSP rounds end at a barrier: nobody computes ahead of stragglers.
  coll_.barrier();
}

// Single-threaded reference implementation: the historical one-shot
// protocol, kept verbatim (fresh buffers each round) as the oracle the fuzz
// tests cross-check the parallel path against bit-for-bit.
void SyncEngine::doSyncSerial(const util::BitVector* willAccess) {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  const std::uint32_t dim = model_.dim();
  const bool naive = strategy_ == SyncStrategy::kRepModelNaive;
  const bool pull = strategy_ == SyncStrategy::kPullModel;
  runtime::PhaseStats& phases = ctx_.syncPhases();
  const SyncCodec codec = syncOpts_.codec;
  const bool lossy = codec != SyncCodec::kFp32;
  const bool ef = lossy && syncOpts_.errorFeedback;
  const std::size_t valueBytes = codecValueBytes(codec, dim);
  std::vector<std::uint8_t> enc(valueBytes);  // one encoded row
  std::vector<float> dec(dim);                // one decoded row

  const sim::CommSnapshot before = sim::snapshot(ctx_.commStats());
  double packW = 0.0, exchangeW = 0.0, foldW = 0.0, applyW = 0.0;
  util::WallTimer timer;
  const auto lap = [&](double& bucket) {
    bucket += timer.seconds();
    timer.reset();
  };

  // ---- PullModel inspection exchange: tell each master which of its nodes
  // this host will access next round. -----------------------------------
  std::vector<std::vector<std::uint8_t>> ctrlIn;
  if (pull && numHosts > 1) {
    std::vector<std::vector<std::uint8_t>> ctrlOut(numHosts);
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      ByteWriter w;
      std::uint32_t count = 0;
      const auto [lo, hi] = partition_.masterRange(peer);
      if (willAccess != nullptr) {
        for (std::uint32_t n = lo; n < hi; ++n) count += willAccess->test(n) ? 1 : 0;
      } else {
        count = hi - lo;
      }
      w.put(count);
      if (willAccess != nullptr) {
        for (std::uint32_t n = lo; n < hi; ++n) {
          if (willAccess->test(n)) w.put(n);
        }
      } else {
        for (std::uint32_t n = lo; n < hi; ++n) w.put(n);
      }
      ctrlOut[peer] = w.take();
    }
    lap(packW);
    ctrlIn = coll_.allToAllv(std::move(ctrlOut), sim::CommPhase::kControl);
    lap(exchangeW);
  }

  // ---- Reduce phase: ship touched (or all, for Naive) mirror deltas to
  // masters. -------------------------------------------------------------
  const auto [ownLo, ownHi] = partition_.masterRange(me);
  std::vector<float> delta(dim);
  std::vector<std::vector<std::uint8_t>> reduceOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    const auto [lo, hi] = partition_.masterRange(peer);
    ByteWriter w;
    // Same per-entry codec + error-feedback arithmetic as the parallel pack
    // workers, so serial wire bytes stay the oracle at every codec.
    const auto putDelta = [&](int l, std::uint32_t n) {
      w.put(n);
      if (!lossy) {
        w.putSpan(std::span<const float>(delta));
        return;
      }
      if (ef) util::add(residual_[l].row(n), delta);
      encodeRowValues(codec, delta, enc.data());
      if (ef) {
        decodeRowValues(codec, enc.data(), dec);
        util::sub(delta, dec, residual_[l].untrackedRow(n));
      }
      w.putSpan(std::span<const std::uint8_t>(enc));
    };
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto& table = model_.table(static_cast<graph::Label>(l));
      if (naive) {
        w.put(hi - lo);
        for (std::uint32_t n = lo; n < hi; ++n) {
          // Clean rows subtract against themselves and ship exact zeros —
          // the Naive strategy's pay-for-everything byte count.
          util::sub(table.row(n), table.baselineRow(n), delta);
          putDelta(l, n);
        }
      } else {
        w.put(static_cast<std::uint32_t>(table.dirty().countInRange(lo, hi)));
        table.forEachDeltaInRange(
            lo, hi,
            [&](std::uint32_t n, std::span<const float> oldRow, std::span<const float> cur) {
              util::sub(cur, oldRow, delta);
              putDelta(l, n);
            });
      }
    }
    reduceOut[peer] = w.take();
  }
  lap(packW);
  const std::vector<std::vector<std::uint8_t>> reduceIn =
      coll_.allToAllv(std::move(reduceOut), sim::CommPhase::kReduce);
  lap(exchangeW);

  // ---- Master-side accumulation over contributions in host-id order. ----
  const std::uint32_t ownCount = ownHi - ownLo;
  std::vector<float> acc(static_cast<std::size_t>(ownCount) * dim * graph::kNumLabels, 0.0f);
  std::vector<std::uint32_t> contributions(static_cast<std::size_t>(ownCount) * graph::kNumLabels,
                                           0);
  const auto accRow = [&](int l, std::uint32_t n) -> std::span<float> {
    const std::size_t idx =
        (static_cast<std::size_t>(l) * ownCount + (n - ownLo)) * dim;
    return {acc.data() + idx, dim};
  };
  const auto contribAt = [&](int l, std::uint32_t n) -> std::uint32_t& {
    return contributions[static_cast<std::size_t>(l) * ownCount + (n - ownLo)];
  };
  const auto foldContribution = [&](int l, std::uint32_t n, std::span<const float> delta) {
    if (isZero(delta)) return;  // untouched mirror in a Naive round, or a no-op update
    auto a = accRow(l, n);
    if (contribAt(l, n) == 0) {
      util::copyInto(delta, a);
    } else {
      reducer_.accumulate(a, delta);
    }
    ++contribAt(l, n);
  };

  // The exchange drained in arrival order; fold in host-id order so the
  // combined step is deterministic regardless of scheduling.
  std::vector<float> scratch(dim);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) {
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const auto& table = model_.table(static_cast<graph::Label>(l));
        if (naive) {
          for (std::uint32_t n = ownLo; n < ownHi; ++n) {
            util::sub(table.row(n), table.baselineRow(n), scratch);
            foldContribution(l, n, scratch);
          }
        } else {
          table.forEachDeltaInRange(
              ownLo, ownHi,
              [&](std::uint32_t n, std::span<const float> oldRow, std::span<const float> cur) {
                util::sub(cur, oldRow, scratch);
                foldContribution(l, n, scratch);
              });
        }
      }
      continue;
    }
    ByteReader r(reduceIn[src]);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const std::uint32_t count = r.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t n = r.get<std::uint32_t>();
        if (!lossy) {
          foldContribution(l, n, r.view<float>(dim));
        } else {
          decodeRowValues(codec, r.view<std::uint8_t>(valueBytes).data(), dec);
          foldContribution(l, n, dec);
        }
      }
    }
  }
  lap(foldW);

  // Apply combined steps to canonical values. The baseline must be copied
  // out before the overwrite: for rows no thread captured, it aliases the
  // row itself.
  for (int l = 0; l < graph::kNumLabels; ++l) {
    auto& table = model_.table(static_cast<graph::Label>(l));
    for (std::uint32_t n = ownLo; n < ownHi; ++n) {
      const std::uint32_t c = contribAt(l, n);
      if (c == 0) continue;
      auto a = accRow(l, n);
      reducer_.finalize(a, c);
      util::copyInto(table.baselineRow(n), scratch);
      util::add(a, scratch);
      util::copyInto(scratch, table.overwriteRow(n));
    }
  }
  lap(applyW);

  // ---- Parse PullModel recipient lists gathered during the control
  // exchange. --------------------------------------------------------------
  std::vector<std::vector<std::uint32_t>> pullWants;  // per peer: owned nodes it reads
  if (pull && numHosts > 1) {
    pullWants.resize(numHosts);
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      ByteReader r(ctrlIn[peer]);
      const std::uint32_t count = r.get<std::uint32_t>();
      pullWants[peer].reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) pullWants[peer].push_back(r.get<std::uint32_t>());
    }
  }

  // ---- Broadcast phase: ship canonical values to mirrors. ----------------
  std::vector<std::vector<std::uint8_t>> bcastOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    ByteWriter w;
    const auto emit = [&](int l, std::uint32_t n) {
      w.put(n);
      const auto row = model_.row(static_cast<graph::Label>(l), n);
      if (!lossy) {
        w.putSpan(std::span<const float>(row));
      } else {
        encodeRowValues(codec, row, enc.data());
        w.putSpan(std::span<const std::uint8_t>(enc));
      }
    };
    for (int l = 0; l < graph::kNumLabels; ++l) {
      std::uint32_t count = 0;
      if (naive) {
        count = ownCount;
      } else if (pull) {
        count = static_cast<std::uint32_t>(pullWants[peer].size());
      } else {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) count += contribAt(l, n) > 0 ? 1 : 0;
      }
      w.put(count);
      if (naive) {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) emit(l, n);
      } else if (pull) {
        for (const std::uint32_t n : pullWants[peer]) emit(l, n);
      } else {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) {
          if (contribAt(l, n) > 0) emit(l, n);
        }
      }
    }
    bcastOut[peer] = w.take();
  }
  lap(packW);

  // ---- Exchange broadcasts and overwrite mirrors. ------------------------
  // No explicit rebasing anywhere: clearTouched() below declares the
  // post-round model the baseline, which covers broadcast-overwritten
  // mirrors, masters, and the locally-touched mirrors a PullModel round
  // never refreshes (their baseline becomes what they hold) alike.
  const std::vector<std::vector<std::uint8_t>> bcastIn =
      coll_.allToAllv(std::move(bcastOut), sim::CommPhase::kBroadcast);
  lap(exchangeW);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(bcastIn[src]);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto label = static_cast<graph::Label>(l);
      const std::uint32_t count = r.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t n = r.get<std::uint32_t>();
        if (!lossy) {
          util::copyInto(r.view<float>(dim), model_.overwriteRow(label, n));
        } else {
          decodeRowValues(codec, r.view<std::uint8_t>(valueBytes).data(),
                          model_.overwriteRow(label, n));
        }
      }
    }
  }
  lap(applyW);

  model_.clearTouched();
  ++round_;
  phases.add(0, runtime::SyncPhase::kPack, packW);
  phases.add(0, runtime::SyncPhase::kExchange, exchangeW);
  phases.add(0, runtime::SyncPhase::kFold, foldW);
  phases.add(0, runtime::SyncPhase::kApply, applyW);

  // Modelled communication time for this host's share of the exchange.
  const sim::CommSnapshot after = sim::snapshot(ctx_.commStats());
  ctx_.addModelledCommSeconds(netModel_.exchangeSeconds(sim::delta(before, after)));

  // BSP rounds end at a barrier: nobody computes ahead of stragglers.
  coll_.barrier();
}

}  // namespace gw2v::comm
