#include "comm/sync_engine.h"

#include <cassert>

#include "comm/serialize.h"
#include "util/vecmath.h"

namespace gw2v::comm {

namespace {

bool isZero(std::span<const float> v) noexcept {
  for (const float x : v) {
    if (x != 0.0f) return false;
  }
  return true;
}

}  // namespace

const char* syncStrategyName(SyncStrategy s) noexcept {
  switch (s) {
    case SyncStrategy::kRepModelNaive: return "RepModel-Naive";
    case SyncStrategy::kRepModelOpt: return "RepModel-Opt";
    case SyncStrategy::kPullModel: return "PullModel";
  }
  return "?";
}

SyncEngine::SyncEngine(sim::HostContext& ctx, graph::ModelGraph& model,
                       const graph::BlockedPartition& partition, const Reducer& reducer,
                       SyncStrategy strategy, sim::NetworkModel netModel)
    : ctx_(ctx),
      transport_(ctx.network()),
      coll_(transport_, ctx.id(), TagSpace::kModelSync),
      model_(model),
      partition_(partition),
      reducer_(reducer),
      strategy_(strategy),
      netModel_(netModel) {
  assert(partition_.numNodes() == model_.numNodes());
  assert(partition_.numHosts() == ctx_.numHosts());
  rebaseline();
}

void SyncEngine::rebaseline() {
  // The model is the baseline; dropping pending captures makes it official.
  model_.clearTouched();
}

void SyncEngine::sync() { doSync(nullptr); }

void SyncEngine::sync(const util::BitVector& willAccessNextRound) {
  doSync(&willAccessNextRound);
}

void SyncEngine::doSync(const util::BitVector* willAccess) {
  const unsigned numHosts = ctx_.numHosts();
  const sim::HostId me = ctx_.id();
  const std::uint32_t dim = model_.dim();
  const bool naive = strategy_ == SyncStrategy::kRepModelNaive;
  const bool pull = strategy_ == SyncStrategy::kPullModel;

  const sim::CommSnapshot before = sim::snapshot(ctx_.commStats());

  // ---- PullModel inspection exchange: tell each master which of its nodes
  // this host will access next round. -----------------------------------
  std::vector<std::vector<std::uint8_t>> ctrlIn;
  if (pull && numHosts > 1) {
    std::vector<std::vector<std::uint8_t>> ctrlOut(numHosts);
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      ByteWriter w;
      std::uint32_t count = 0;
      const auto [lo, hi] = partition_.masterRange(peer);
      if (willAccess != nullptr) {
        for (std::uint32_t n = lo; n < hi; ++n) count += willAccess->test(n) ? 1 : 0;
      } else {
        count = hi - lo;
      }
      w.put(count);
      if (willAccess != nullptr) {
        for (std::uint32_t n = lo; n < hi; ++n) {
          if (willAccess->test(n)) w.put(n);
        }
      } else {
        for (std::uint32_t n = lo; n < hi; ++n) w.put(n);
      }
      ctrlOut[peer] = w.take();
    }
    ctrlIn = coll_.allToAllv(std::move(ctrlOut), sim::CommPhase::kControl);
  }

  // ---- Reduce phase: ship touched (or all, for Naive) mirror deltas to
  // masters. -------------------------------------------------------------
  const auto [ownLo, ownHi] = partition_.masterRange(me);
  std::vector<float> delta(dim);
  std::vector<std::vector<std::uint8_t>> reduceOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    const auto [lo, hi] = partition_.masterRange(peer);
    ByteWriter w;
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto& table = model_.table(static_cast<graph::Label>(l));
      if (naive) {
        w.put(hi - lo);
        for (std::uint32_t n = lo; n < hi; ++n) {
          // Clean rows subtract against themselves and ship exact zeros —
          // the Naive strategy's pay-for-everything byte count.
          util::sub(table.row(n), table.baselineRow(n), delta);
          w.put(n);
          w.putSpan(std::span<const float>(delta));
        }
      } else {
        w.put(static_cast<std::uint32_t>(table.dirty().countInRange(lo, hi)));
        table.forEachDeltaInRange(
            lo, hi,
            [&](std::uint32_t n, std::span<const float> oldRow, std::span<const float> cur) {
              util::sub(cur, oldRow, delta);
              w.put(n);
              w.putSpan(std::span<const float>(delta));
            });
      }
    }
    reduceOut[peer] = w.take();
  }
  const std::vector<std::vector<std::uint8_t>> reduceIn =
      coll_.allToAllv(std::move(reduceOut), sim::CommPhase::kReduce);

  // ---- Master-side accumulation over contributions in host-id order. ----
  const std::uint32_t ownCount = ownHi - ownLo;
  std::vector<float> acc(static_cast<std::size_t>(ownCount) * dim * graph::kNumLabels, 0.0f);
  std::vector<std::uint32_t> contributions(static_cast<std::size_t>(ownCount) * graph::kNumLabels,
                                           0);
  const auto accRow = [&](int l, std::uint32_t n) -> std::span<float> {
    const std::size_t idx =
        (static_cast<std::size_t>(l) * ownCount + (n - ownLo)) * dim;
    return {acc.data() + idx, dim};
  };
  const auto contribAt = [&](int l, std::uint32_t n) -> std::uint32_t& {
    return contributions[static_cast<std::size_t>(l) * ownCount + (n - ownLo)];
  };
  const auto foldContribution = [&](int l, std::uint32_t n, std::span<const float> delta) {
    if (isZero(delta)) return;  // untouched mirror in a Naive round, or a no-op update
    auto a = accRow(l, n);
    if (contribAt(l, n) == 0) {
      util::copyInto(delta, a);
    } else {
      reducer_.accumulate(a, delta);
    }
    ++contribAt(l, n);
  };

  // The exchange drained in arrival order; fold in host-id order so the
  // combined step is deterministic regardless of scheduling.
  std::vector<float> scratch(dim);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) {
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const auto& table = model_.table(static_cast<graph::Label>(l));
        if (naive) {
          for (std::uint32_t n = ownLo; n < ownHi; ++n) {
            util::sub(table.row(n), table.baselineRow(n), scratch);
            foldContribution(l, n, scratch);
          }
        } else {
          table.forEachDeltaInRange(
              ownLo, ownHi,
              [&](std::uint32_t n, std::span<const float> oldRow, std::span<const float> cur) {
                util::sub(cur, oldRow, scratch);
                foldContribution(l, n, scratch);
              });
        }
      }
      continue;
    }
    ByteReader r(reduceIn[src]);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const std::uint32_t count = r.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t n = r.get<std::uint32_t>();
        foldContribution(l, n, r.view<float>(dim));
      }
    }
  }

  // Apply combined steps to canonical values. The baseline must be copied
  // out before the overwrite: for rows no thread captured, it aliases the
  // row itself.
  for (int l = 0; l < graph::kNumLabels; ++l) {
    auto& table = model_.table(static_cast<graph::Label>(l));
    for (std::uint32_t n = ownLo; n < ownHi; ++n) {
      const std::uint32_t c = contribAt(l, n);
      if (c == 0) continue;
      auto a = accRow(l, n);
      reducer_.finalize(a, c);
      util::copyInto(table.baselineRow(n), scratch);
      util::add(a, scratch);
      util::copyInto(scratch, table.overwriteRow(n));
    }
  }

  // ---- Parse PullModel recipient lists gathered during the control
  // exchange. --------------------------------------------------------------
  std::vector<std::vector<std::uint32_t>> pullWants;  // per peer: owned nodes it reads
  if (pull && numHosts > 1) {
    pullWants.resize(numHosts);
    for (unsigned peer = 0; peer < numHosts; ++peer) {
      if (peer == me) continue;
      ByteReader r(ctrlIn[peer]);
      const std::uint32_t count = r.get<std::uint32_t>();
      pullWants[peer].reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) pullWants[peer].push_back(r.get<std::uint32_t>());
    }
  }

  // ---- Broadcast phase: ship canonical values to mirrors. ----------------
  std::vector<std::vector<std::uint8_t>> bcastOut(numHosts);
  for (unsigned peer = 0; peer < numHosts; ++peer) {
    if (peer == me) continue;
    ByteWriter w;
    const auto emit = [&](int l, std::uint32_t n) {
      w.put(n);
      w.putSpan(std::span<const float>(model_.row(static_cast<graph::Label>(l), n)));
    };
    for (int l = 0; l < graph::kNumLabels; ++l) {
      std::uint32_t count = 0;
      if (naive) {
        count = ownCount;
      } else if (pull) {
        count = static_cast<std::uint32_t>(pullWants[peer].size());
      } else {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) count += contribAt(l, n) > 0 ? 1 : 0;
      }
      w.put(count);
      if (naive) {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) emit(l, n);
      } else if (pull) {
        for (const std::uint32_t n : pullWants[peer]) emit(l, n);
      } else {
        for (std::uint32_t n = ownLo; n < ownHi; ++n) {
          if (contribAt(l, n) > 0) emit(l, n);
        }
      }
    }
    bcastOut[peer] = w.take();
  }

  // ---- Exchange broadcasts and overwrite mirrors. ------------------------
  // No explicit rebasing anywhere: clearTouched() below declares the
  // post-round model the baseline, which covers broadcast-overwritten
  // mirrors, masters, and the locally-touched mirrors a PullModel round
  // never refreshes (their baseline becomes what they hold) alike.
  const std::vector<std::vector<std::uint8_t>> bcastIn =
      coll_.allToAllv(std::move(bcastOut), sim::CommPhase::kBroadcast);
  for (unsigned src = 0; src < numHosts; ++src) {
    if (src == me) continue;
    ByteReader r(bcastIn[src]);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto label = static_cast<graph::Label>(l);
      const std::uint32_t count = r.get<std::uint32_t>();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t n = r.get<std::uint32_t>();
        util::copyInto(r.view<float>(dim), model_.overwriteRow(label, n));
      }
    }
  }

  model_.clearTouched();
  ++round_;

  // Modelled communication time for this host's share of the exchange.
  const sim::CommSnapshot after = sim::snapshot(ctx_.commStats());
  ctx_.addModelledCommSeconds(netModel_.exchangeSeconds(sim::delta(before, after)));

  // BSP rounds end at a barrier: nobody computes ahead of stragglers.
  coll_.barrier();
}

}  // namespace gw2v::comm
