#pragma once

// Transport: the minimal point-to-point contract the collective layer and the
// sync engines are written against.
//
// A Transport moves opaque byte payloads between ranks with (source, tag)
// matching, provides an any-source receive, a global barrier, and per-rank
// per-phase byte/message accounting (sim::CommStats). Blocking calls must
// throw sim::NetworkAborted once the fabric is poisoned so a faulted rank
// can never deadlock its peers — this is the abort-propagation half of the
// contract, and comm::Collectives relies on it.
//
// SimTransport is the first backend: a thin adapter over the in-process
// sim::Network. A socket or MPI backend plugs in by implementing the same
// six virtuals; everything above this seam (Collectives, SyncEngine,
// ScalarSyncEngine, the baselines) is transport-agnostic.

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "sim/comm_stats.h"
#include "sim/network.h"

namespace gw2v::comm {

using RankId = sim::HostId;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual unsigned numRanks() const noexcept = 0;

  /// Enqueue `payload` for `dst`; never blocks on the receiver. Accounts
  /// bytes (payload + framing) and one message under `phase`.
  virtual void send(RankId src, RankId dst, int tag, std::vector<std::uint8_t> payload,
                    sim::CommPhase phase) = 0;

  /// Blocking receive matching (src, tag) at rank `dst`.
  virtual std::vector<std::uint8_t> recv(RankId dst, RankId src, int tag,
                                         sim::CommPhase phase) = 0;

  /// Blocking receive matching any source (MPI_ANY_SOURCE); returns the
  /// sender. Lets root-side drains proceed in arrival order instead of
  /// head-of-line blocking on a fixed rank sequence.
  virtual std::pair<RankId, std::vector<std::uint8_t>> recvAny(RankId dst, int tag,
                                                               sim::CommPhase phase) = 0;

  /// Global barrier across all ranks.
  virtual void barrier(RankId rank) = 0;

  /// True once the fabric is poisoned; blocking calls throw NetworkAborted.
  virtual bool aborted() const noexcept = 0;

  /// Per-rank traffic accounting (bytes/messages per phase + collective
  /// rounds); Collectives records its round counts here.
  virtual sim::CommStats& statsFor(RankId rank) noexcept = 0;

  /// Declare ownership of the half-open tag range [lo, hi). Backends that can
  /// police tag discipline (the simulated network) throw std::logic_error on
  /// a cross-subsystem overlap; backends that cannot may ignore it, so this
  /// is a debugging contract, not a delivery guarantee.
  virtual void registerTagRange(int /*lo*/, int /*hi*/, const char* /*owner*/) {}

  // ---- Typed conveniences (trivially-copyable elements). ----

  template <typename T>
  void sendElems(RankId src, RankId dst, int tag, std::span<const T> data,
                 sim::CommPhase phase) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes(data.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    send(src, dst, tag, std::move(bytes), phase);
  }

  template <typename T>
  std::vector<T> recvElems(RankId dst, RankId src, int tag, sim::CommPhase phase) {
    return elemsFromBytes<T>(recv(dst, src, tag, phase));
  }

  template <typename T>
  static std::vector<T> elemsFromBytes(const std::vector<std::uint8_t>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), out.size() * sizeof(T));
    return out;
  }
};

/// Backend #1: the in-process simulated network. Stateless wrapper — cheap to
/// construct wherever a sim::HostContext is in hand.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Network& net) noexcept : net_(net) {}

  unsigned numRanks() const noexcept override { return net_.numHosts(); }

  void send(RankId src, RankId dst, int tag, std::vector<std::uint8_t> payload,
            sim::CommPhase phase) override {
    net_.send(src, dst, tag, std::move(payload), phase);
  }

  std::vector<std::uint8_t> recv(RankId dst, RankId src, int tag,
                                 sim::CommPhase phase) override {
    return net_.recv(dst, src, tag, phase);
  }

  std::pair<RankId, std::vector<std::uint8_t>> recvAny(RankId dst, int tag,
                                                       sim::CommPhase phase) override {
    return net_.recvAny(dst, tag, phase);
  }

  void barrier(RankId rank) override { net_.barrier(rank); }

  bool aborted() const noexcept override { return net_.aborted(); }

  sim::CommStats& statsFor(RankId rank) noexcept override { return net_.statsFor(rank); }

  void registerTagRange(int lo, int hi, const char* owner) override {
    net_.registerTagRange(lo, hi, owner);
  }

 private:
  sim::Network& net_;
};

}  // namespace gw2v::comm
