#pragma once

// Reduction operators applied when reconciling proxies of the same node.
//
// The sync engine works in *delta space*: each host ships `current - baseline`
// for the rows it touched, and the master folds the incoming deltas into one
// combined step, then applies it to its canonical (baseline) value:
//
//   value' = baseline + finalize(accumulate(d_0, d_1, ..., d_k))
//
// Streaming interface: the first contribution copy-initializes the
// accumulator; each later one is folded by accumulate(); finalize() runs once
// with the contribution count. SUM/AVG reproduce the paper's baselines; the
// model combiner (core/model_combiner.h) implements Section 3.

#include <span>

#include "util/vecmath.h"

namespace gw2v::comm {

class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Fold `next` into `acc` (acc already holds >= 1 contribution).
  virtual void accumulate(std::span<float> acc, std::span<const float> next) const = 0;

  /// Post-process after all contributions are in.
  virtual void finalize(std::span<float> /*acc*/, unsigned /*contributions*/) const {}

  /// Human-readable name for experiment output.
  virtual const char* name() const = 0;
};

/// g = sum_i d_i. The "overly aggressive" reduction: with k near-parallel
/// deltas the effective learning rate is k·alpha — diverges (Section 1).
class SumReducer final : public Reducer {
 public:
  void accumulate(std::span<float> acc, std::span<const float> next) const override {
    util::add(next, acc);
  }
  const char* name() const override { return "SUM"; }
};

/// g = mean_i d_i. Converges but approaches batch gradient descent as hosts
/// grow — slow (Section 2.3).
class AvgReducer final : public Reducer {
 public:
  void accumulate(std::span<float> acc, std::span<const float> next) const override {
    util::add(next, acc);
  }
  void finalize(std::span<float> acc, unsigned contributions) const override {
    if (contributions > 1) util::scale(1.0f / static_cast<float>(contributions), acc);
  }
  const char* name() const override { return "AVG"; }
};

}  // namespace gw2v::comm
