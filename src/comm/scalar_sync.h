#pragma once

// Gluon-lite synchronization for classic graph analytics: scalar node labels
// reconciled in *value space* with an idempotent reduction (MIN for
// SSSP/BFS/CC, MAX for e.g. widest-path) — the reduction-operator flavour the
// paper's Section 2.4 describes for sssp. This complements SyncEngine, which
// reconciles dense model rows in delta space.
//
// Protocol per round (RepModel-Opt style): hosts send touched labels to each
// node's master; the master folds them with the operator and its own value;
// every label improved at the master is broadcast to all hosts. sync()
// returns the number of labels that changed on this host (via fold or
// broadcast), which callers combine across hosts to detect quiescence.
//
// Deliberately single-threaded: scalar payloads are a few bytes per label,
// so this engine stays the simple sequential reference while SyncEngine's
// dense-row path is parallelized/pipelined (the fuzz tests cross-check the
// parallel row engine against SyncEngine's serial mode, which shares this
// file's one-pass protocol shape).

#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "comm/collectives.h"
#include "comm/transport.h"
#include "graph/partition.h"
#include "sim/cluster.h"
#include "sim/network_model.h"
#include "util/bitvector.h"

namespace gw2v::comm {

enum class ScalarReduceOp : int { kMin = 0, kMax = 1 };

class ScalarSyncEngine {
 public:
  /// `values` and `touched` are the host's label array and dirty bits; both
  /// must outlive the engine and have one slot per node.
  ///
  /// `codec` compresses the per-label values on the wire through the same
  /// comm::SyncCodec helpers the row engines use, on one-value "rows". fp32
  /// (default) is the historical byte-exact protocol; fp16 halves value
  /// bytes and is exact for the small-integer labels BFS/CC produce. int8
  /// is supported for codec parity but its one-value scale costs
  /// 4 + 1 = 5 bytes per value — *more* than fp32; the scale also makes a
  /// single value round-trip near-exactly (q = ±127), so it is numerically
  /// the safest lossy choice, just not a compression win here.
  ///
  /// Lossy codecs keep per-node error-feedback residuals (mirroring the row
  /// engines): a send ships Q(value + residual) and banks the new
  /// quantization error. Under an idempotent min/max fold the compensation
  /// can transiently overshoot by at most half a quantization step — unlike
  /// delta-space sync the residual is *not* required for convergence, so
  /// `errorFeedback = false` turns it off and ships plain Q(value).
  ScalarSyncEngine(sim::HostContext& ctx, std::span<float> values, util::BitVector& touched,
                   const graph::BlockedPartition& partition, ScalarReduceOp op,
                   sim::NetworkModel netModel = {}, SyncCodec codec = SyncCodec::kFp32,
                   bool errorFeedback = true);

  /// One BSP sync round; clears the touched bits. Returns how many of this
  /// host's labels changed (master folds + received broadcasts).
  std::uint64_t sync();

  std::uint64_t rounds() const noexcept { return round_; }

  /// Per-node banked quantization error (empty for fp32 or when error
  /// feedback is off). Zero wherever the codec round-trips exactly.
  std::span<const float> residuals() const noexcept { return residual_; }

 private:
  sim::HostContext& ctx_;
  SimTransport transport_;
  Collectives coll_;
  std::span<float> values_;
  util::BitVector& touched_;
  const graph::BlockedPartition& partition_;
  ScalarReduceOp op_;
  sim::NetworkModel netModel_;
  SyncCodec codec_;
  std::vector<float> residual_;  // per-node EF bank, lossy codecs only
  std::uint64_t round_ = 0;
};

}  // namespace gw2v::comm
