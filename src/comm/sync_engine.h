#pragma once

// Gluon-lite bulk-synchronous model synchronization (paper Sections 4.3-4.4).
//
// Every host holds a full replica of the ModelGraph; each node has one master
// host (BlockedPartition) and mirrors everywhere else. A sync round is:
//
//   reduce:    every host ships the *delta* (current - baseline) of rows it
//              touched to the row's master; the master folds deltas with the
//              configured Reducer in host-id order (deterministic) and
//              applies the combined step to its canonical value.
//   broadcast: masters ship fresh canonical values back to mirrors.
//
// Baselines come from the model's row-granular DeltaLog
// (model/embedding_table.h), not a dense snapshot: after every round the
// model IS the baseline (masters canonical, broadcast overwrote receiving
// mirrors, skipped pull-mirrors rebase to what they hold), so the table
// captures a row's pre-round bits lazily on first touch and rebaselining is
// an O(dirty set) clear.
//
// Three strategies reproduce the paper's variants:
//   RepModel-Naive : reduce ships every mirror, broadcast ships every master.
//   RepModel-Opt   : bit-vector tracked — reduce ships only touched mirrors,
//                    broadcast ships only nodes any host updated. (Default.)
//   PullModel      : reduce as Opt; an inspection pass supplies the set of
//                    nodes this host will access next round, masters push
//                    values only to hosts that will read them.
//
// All three produce bit-identical models for the same inputs (verified by
// tests); they differ only in bytes moved — which is the paper's Fig 8/9
// story.
//
// The whole critical path (pack → exchange → fold → apply) runs on the
// host's worker pool: packing partitions each destination's row range over
// threads and serializes into pre-computed offsets, folding partitions the
// owned rows over threads while walking sources in host-id order per row,
// and both applies are row-parallel — so results stay bit-identical to the
// single-threaded reference (SyncOptions::serial) at any thread count.
// SyncOptions::pipelineChunks > 1 additionally slices both exchanges into
// row-range chunks double-buffered through Collectives::allToAllvPipelined
// (chunk c+1 packs while chunk c is in flight and folding). DESIGN.md §5f
// has the determinism argument.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "comm/collectives.h"
#include "comm/reducer.h"
#include "comm/transport.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "model/embedding_table.h"
#include "sim/cluster.h"
#include "sim/network.h"
#include "sim/network_model.h"
#include "util/bitvector.h"

namespace gw2v::comm {

enum class SyncStrategy : int { kRepModelNaive = 0, kRepModelOpt = 1, kPullModel = 2 };

const char* syncStrategyName(SyncStrategy s) noexcept;

struct SyncOptions {
  /// Row-range chunks each exchange (reduce and broadcast) is split into.
  /// 1 = one-shot exchange, byte-identical to the historical protocol (the
  /// golden files lock this). K > 1 pipelines chunks through the fabric;
  /// extra per-chunk count headers and message framing change byte counts,
  /// never model bits.
  unsigned pipelineChunks = 1;
  /// Run the single-threaded reference path regardless of pool size. The
  /// fuzz tests cross-check the parallel path against it bit-for-bit.
  bool serial = false;
  /// Wire codec for reduce deltas and broadcast values (comm/codec.h).
  /// kFp32 is byte-identical to the historical protocol (goldens lock it);
  /// fp16/int8 shrink every value entry ∝ the codec width and are folded
  /// from the *decoded* bytes on every host, so replicas stay in lockstep.
  SyncCodec codec = SyncCodec::kFp32;
  /// Per-row residual error feedback for lossy codecs: quantization error of
  /// each shipped delta is remembered and re-added to the next round's delta
  /// before encoding, so compression noise flushes out instead of biasing
  /// convergence. Ignored under kFp32. Off = the ablation arm.
  bool errorFeedback = true;
};

class SyncEngine {
 public:
  SyncEngine(sim::HostContext& ctx, graph::ModelGraph& model,
             const graph::BlockedPartition& partition, const Reducer& reducer,
             SyncStrategy strategy, sim::NetworkModel netModel = {}, SyncOptions opts = {});

  /// One BSP sync round (Naive/Opt). For PullModel this overload treats
  /// "will access" as "everything" — prefer the BitVector overload there.
  void sync();

  /// PullModel round: `willAccessNextRound` is the inspection result — node
  /// ids this host reads in the upcoming compute round.
  void sync(const util::BitVector& willAccessNextRound);

  /// Rounds completed so far.
  std::uint64_t rounds() const noexcept { return round_; }

  SyncStrategy strategy() const noexcept { return strategy_; }

  /// Declare the current model the baseline (call after any out-of-band
  /// model overwrite, e.g. initial broadcast of host 0's random init).
  /// Forgets pending captures in O(dirty set) — no model copies.
  void rebaseline();

  const SyncOptions& syncOptions() const noexcept { return syncOpts_; }

  SyncCodec codec() const noexcept { return syncOpts_.codec; }

  /// Switch the wire codec (and error-feedback arm) mid-stream. Residuals
  /// are zeroed when the codec actually changes — stale fp16 error is
  /// meaningless to int8 — and kept when it doesn't. All hosts must switch
  /// at the same round boundary (SPMD).
  void setCodec(SyncCodec codec, bool errorFeedback = true);

  /// Pending quantization error for a mirror row (zeros under fp32, with
  /// error feedback off, or for rows this host masters; empty before any
  /// lossy round allocated the residuals). Test hook.
  std::span<const float> residualRow(graph::Label label, std::uint32_t n) const noexcept {
    const auto& t = residual_[static_cast<int>(label)];
    return n < t.numRows() ? t.row(n) : std::span<const float>{};
  }

  /// Extra bytes ONE host pays per exchange phase for each pipeline chunk
  /// past the first: the per-label count headers re-shipped in every chunk
  /// plus fabric framing, on each of its numHosts-1 messages. Entry bytes are
  /// invariant across chunkings (chunks partition row ranges), so
  /// totalBytes(K) - totalBytes(1) over a run is exactly
  /// rounds × phases × hosts × (K-1) × perChunkOverheadBytes(hosts) — the
  /// regression tests hold the accounting to that identity.
  static constexpr std::uint64_t perChunkOverheadBytes(unsigned numHosts) noexcept {
    return numHosts <= 1
               ? 0
               : static_cast<std::uint64_t>(numHosts - 1) *
                     (static_cast<std::uint64_t>(graph::kNumLabels) * 4 +
                      sim::Network::kHeaderBytes);
  }

  /// Times any engine-owned scratch (send buffers, fold accumulators, task
  /// lists) had to grow its capacity. Steady-state rounds with a stable
  /// dirty-set shape must not move this counter — asserted by tests.
  std::uint64_t scratchGrowEvents() const noexcept { return scratchGrowEvents_; }

 private:
  struct PackTask {
    unsigned peer = 0;
    int label = 0;
    std::uint32_t lo = 0;        // row range (reduce) or list/entry index range
    std::uint32_t hi = 0;
    std::size_t byteOff = 0;     // absolute offset of this block's first entry
  };
  struct SegDir {                // one (source, label) segment of a payload
    const std::uint8_t* base = nullptr;
    std::uint32_t count = 0;
  };

  void doSync(const util::BitVector* willAccess);
  void doSyncSerial(const util::BitVector* willAccess);
  void doSyncParallel(const util::BitVector* willAccess);

  std::vector<std::uint8_t> acquireBuf(std::size_t bytes);
  void releaseBuf(std::vector<std::uint8_t>&& b);
  template <typename V>
  void ensureSize(V& v, std::size_t n) {
    if (v.capacity() < n) ++scratchGrowEvents_;
    v.resize(n);
  }

  void exchangeWillAccess(const util::BitVector* willAccess);
  double chargePipelineSeconds() const noexcept;

  /// Allocate (or zero, if `reset`) the per-label residual tables for lossy
  /// codecs. No-op under fp32 unless resetting already-allocated tables.
  void ensureResiduals(bool reset);

  sim::HostContext& ctx_;
  SimTransport transport_;
  Collectives coll_;
  graph::ModelGraph& model_;
  const graph::BlockedPartition& partition_;
  const Reducer& reducer_;
  SyncStrategy strategy_;
  sim::NetworkModel netModel_;
  SyncOptions syncOpts_;

  std::uint64_t round_ = 0;

  // ---- Per-round scratch, reused across rounds (satellite: no per-round
  // allocations in steady state). Buffers cycle through bufPool_: sends move
  // payloads into the fabric, receives bring peer-allocated vectors back, so
  // the pool stays balanced at ~H buffers. ----
  std::uint64_t scratchGrowEvents_ = 0;
  std::vector<std::vector<std::uint8_t>> bufPool_;
  std::vector<std::vector<std::uint8_t>> sendBufs_;  // one slot per peer
  std::vector<std::vector<std::uint8_t>> recvBufs_;  // one slot per source
  std::vector<float> acc_;                   // ownCount × dim × kNumLabels
  std::vector<std::uint32_t> contrib_;       // ownCount × kNumLabels
  std::vector<std::vector<float>> threadScratch_;    // per worker, dim floats
  std::vector<std::vector<float>> threadDecode_;     // per worker, dim floats (lossy codecs)

  // Error-feedback state: per-label residual tables holding the quantization
  // error still owed for each mirror row. Written only through untrackedRow
  // (no dirty tracking — residuals are sync-engine state, not model state)
  // and deliberately NOT touched by rebaseline(): a rebaseline redefines the
  // delta origin, but unshipped error stays owed. Zeroed only when the codec
  // switches. Rows this host masters stay zero (their contributions fold
  // locally at full precision).
  std::array<model::EmbeddingTable, graph::kNumLabels> residual_;
  std::vector<PackTask> tasks_;
  std::vector<SegDir> segDirs_;              // numHosts × kNumLabels
  std::vector<std::vector<std::uint32_t>> pullWants_;
  std::array<std::vector<std::uint32_t>, graph::kNumLabels> emit_;  // bcast rows per label
  std::vector<double> chunkPack_, chunkConsume_, chunkTransfer_;    // per-chunk pipeline costs
  std::vector<std::uint64_t> chunkBytes_;    // bytes this host sent for the chunk (w/ framing)
};

}  // namespace gw2v::comm
