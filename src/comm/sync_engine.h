#pragma once

// Gluon-lite bulk-synchronous model synchronization (paper Sections 4.3-4.4).
//
// Every host holds a full replica of the ModelGraph; each node has one master
// host (BlockedPartition) and mirrors everywhere else. A sync round is:
//
//   reduce:    every host ships the *delta* (current - baseline) of rows it
//              touched to the row's master; the master folds deltas with the
//              configured Reducer in host-id order (deterministic) and
//              applies the combined step to its canonical value.
//   broadcast: masters ship fresh canonical values back to mirrors.
//
// Baselines come from the model's row-granular DeltaLog
// (model/embedding_table.h), not a dense snapshot: after every round the
// model IS the baseline (masters canonical, broadcast overwrote receiving
// mirrors, skipped pull-mirrors rebase to what they hold), so the table
// captures a row's pre-round bits lazily on first touch and rebaselining is
// an O(dirty set) clear.
//
// Three strategies reproduce the paper's variants:
//   RepModel-Naive : reduce ships every mirror, broadcast ships every master.
//   RepModel-Opt   : bit-vector tracked — reduce ships only touched mirrors,
//                    broadcast ships only nodes any host updated. (Default.)
//   PullModel      : reduce as Opt; an inspection pass supplies the set of
//                    nodes this host will access next round, masters push
//                    values only to hosts that will read them.
//
// All three produce bit-identical models for the same inputs (verified by
// tests); they differ only in bytes moved — which is the paper's Fig 8/9
// story.

#include <cstdint>
#include <vector>

#include "comm/collectives.h"
#include "comm/reducer.h"
#include "comm/transport.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "sim/cluster.h"
#include "sim/network_model.h"
#include "util/bitvector.h"

namespace gw2v::comm {

enum class SyncStrategy : int { kRepModelNaive = 0, kRepModelOpt = 1, kPullModel = 2 };

const char* syncStrategyName(SyncStrategy s) noexcept;

class SyncEngine {
 public:
  SyncEngine(sim::HostContext& ctx, graph::ModelGraph& model,
             const graph::BlockedPartition& partition, const Reducer& reducer,
             SyncStrategy strategy, sim::NetworkModel netModel = {});

  /// One BSP sync round (Naive/Opt). For PullModel this overload treats
  /// "will access" as "everything" — prefer the BitVector overload there.
  void sync();

  /// PullModel round: `willAccessNextRound` is the inspection result — node
  /// ids this host reads in the upcoming compute round.
  void sync(const util::BitVector& willAccessNextRound);

  /// Rounds completed so far.
  std::uint64_t rounds() const noexcept { return round_; }

  SyncStrategy strategy() const noexcept { return strategy_; }

  /// Declare the current model the baseline (call after any out-of-band
  /// model overwrite, e.g. initial broadcast of host 0's random init).
  /// Forgets pending captures in O(dirty set) — no model copies.
  void rebaseline();

 private:
  void doSync(const util::BitVector* willAccess);

  sim::HostContext& ctx_;
  SimTransport transport_;
  Collectives coll_;
  graph::ModelGraph& model_;
  const graph::BlockedPartition& partition_;
  const Reducer& reducer_;
  SyncStrategy strategy_;
  sim::NetworkModel netModel_;

  std::uint64_t round_ = 0;
};

}  // namespace gw2v::comm
