#pragma once

// Flat byte (de)serialization for sync messages. Trivially-copyable scalars
// only; all hosts are the same binary so no endianness concerns.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

namespace gw2v::comm {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &v, sizeof(T));
  }

  template <typename T>
  void putSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + v.size_bytes());
    if (!v.empty()) std::memcpy(bytes_.data() + at, v.data(), v.size_bytes());
  }

  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    require(sizeof(T));
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// View of the next n elements of T. Zero-copy when the cursor happens to
  /// be aligned for T; otherwise (e.g. a message that leads with a 1-byte
  /// kind tag) the elements are memcpy'd into owned aligned storage that
  /// lives as long as the reader, so earlier views stay valid too.
  template <typename T>
  std::span<const T> view(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= alignof(std::max_align_t));
    require(n * sizeof(T));
    const std::uint8_t* raw = bytes_.data() + pos_;
    pos_ += n * sizeof(T);
    if (reinterpret_cast<std::uintptr_t>(raw) % alignof(T) == 0) {
      return {reinterpret_cast<const T*>(raw), n};
    }
    std::vector<std::uint8_t>& copy = aligned_.emplace_back(n * sizeof(T));
    if (n != 0) std::memcpy(copy.data(), raw, n * sizeof(T));
    return {reinterpret_cast<const T*>(copy.data()), n};
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw std::runtime_error("ByteReader: truncated message");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  /// Aligned fallback copies handed out by view(); deque so spans into
  /// earlier copies survive later ones.
  std::deque<std::vector<std::uint8_t>> aligned_;
};

}  // namespace gw2v::comm
