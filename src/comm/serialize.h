#pragma once

// Flat byte (de)serialization for sync messages. Trivially-copyable scalars
// only; all hosts are the same binary so no endianness concerns.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace gw2v::comm {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &v, sizeof(T));
  }

  template <typename T>
  void putSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = bytes_.size();
    bytes_.resize(at + v.size_bytes());
    if (!v.empty()) std::memcpy(bytes_.data() + at, v.data(), v.size_bytes());
  }

  std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    require(sizeof(T));
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Zero-copy view of the next n elements of T.
  template <typename T>
  std::span<const T> view(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(n * sizeof(T));
    // The payload buffers we read from are freshly allocated vectors; float
    // alignment within them holds because every field is 4-byte sized.
    const T* p = reinterpret_cast<const T*>(bytes_.data() + pos_);
    pos_ += n * sizeof(T);
    return {p, n};
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw std::runtime_error("ByteReader: truncated message");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace gw2v::comm
