#include "serve/snapshot.h"

#include <cmath>
#include <stdexcept>

#include "graph/model_io.h"
#include "util/vecmath.h"

namespace gw2v::serve {

EmbeddingSnapshot::EmbeddingSnapshot(const graph::ModelGraph& model,
                                     const text::Vocabulary* vocab, std::uint64_t version)
    : EmbeddingSnapshot(model, vocab, version, nullptr, nullptr, nullptr) {}

EmbeddingSnapshot::EmbeddingSnapshot(const graph::ModelGraph& model,
                                     const text::Vocabulary* vocab, std::uint64_t version,
                                     const EmbeddingSnapshot* prev,
                                     const AnnBuildOptions* ann, runtime::ThreadPool* pool)
    : numWords_(model.numNodes()),
      dim_(model.dim()),
      stride_(util::rowStrideFloats(model.dim())),
      version_(version),
      tableVersion_(model.table(graph::Label::kEmbedding).version()) {
  if (vocab != nullptr) {
    if (vocab->size() != numWords_) {
      throw std::invalid_argument("EmbeddingSnapshot: vocabulary size " +
                                  std::to_string(vocab->size()) + " != model nodes " +
                                  std::to_string(numWords_));
    }
    vocab_ = *vocab;
  }
  const auto& table = model.table(graph::Label::kEmbedding);
  const auto renormalize = [&](std::uint32_t w) {
    const auto src = table.row(w);
    float n = util::norm(src);
    if (n <= 0.0f) n = 1.0f;
    float* dst = util::checkedRow(data_.data() + static_cast<std::size_t>(w) * stride_);
    for (std::uint32_t d = 0; d < dim_; ++d) dst[d] = src[d] / n;
  };
  // Renormalization is deterministic per row, so redoing an unchanged row is
  // a bitwise no-op: renormalizing every row with rowVersion >= the previous
  // snapshot's table version (an over-approximation of "changed since") is
  // bit-identical to a from-scratch build.
  bool incremental = false;
  std::vector<std::uint32_t> changed;  // only tracked when an ANN build wants it
  if (prev != nullptr && prev->numWords_ == numWords_ && prev->dim_ == dim_ &&
      prev->tableVersion_ <= tableVersion_ && prev->tableVersion_ > 0) {
    incremental = true;
    data_ = prev->data_;
    for (std::uint32_t w = 0; w < numWords_; ++w) {
      if (table.rowVersion(w) >= prev->tableVersion_) {
        renormalize(w);
        if (ann != nullptr) changed.push_back(w);  // ascending by construction
      }
    }
  } else {
    data_.assign(static_cast<std::size_t>(numWords_) * stride_, 0.0f);
    for (std::uint32_t w = 0; w < numWords_; ++w) renormalize(w);
  }

  if (ann != nullptr) {
    // The index points into data_, which never reallocates past this point.
    // Reuse prev's centroids when the matrix itself was built incrementally,
    // the predecessor carries a compatible index, and the changed fraction is
    // below the retrain threshold; otherwise k-means from scratch.
    const IvfIndex* prevIdx =
        (incremental && prev != nullptr) ? prev->ann_.get() : nullptr;
    const bool sameShape = prevIdx != nullptr && prevIdx->numRows() == numWords_ &&
                           prevIdx->dim() == dim_ &&
                           (ann->numLists == 0 ||
                            std::min(ann->numLists, numWords_) == prevIdx->numLists());
    const bool belowThreshold =
        static_cast<double>(changed.size()) <=
        static_cast<double>(ann->retrainThreshold) * static_cast<double>(numWords_);
    if (sameShape && belowThreshold) {
      ann_ = std::make_unique<const IvfIndex>(*prevIdx, data_.data(), stride_, numWords_,
                                              dim_, version_, changed, pool);
    } else {
      ann_ = std::make_unique<const IvfIndex>(data_.data(), stride_, numWords_, dim_,
                                              version_, *ann, pool);
    }
  }
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromModel(
    const graph::ModelGraph& model, const text::Vocabulary* vocab, std::uint64_t version) {
  return std::make_shared<const EmbeddingSnapshot>(model, vocab, version);
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromModel(
    const graph::ModelGraph& model, const text::Vocabulary* vocab, std::uint64_t version,
    const EmbeddingSnapshot& prev) {
  return std::shared_ptr<const EmbeddingSnapshot>(
      new EmbeddingSnapshot(model, vocab, version, &prev, nullptr, nullptr));
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromModel(
    const graph::ModelGraph& model, const text::Vocabulary* vocab, std::uint64_t version,
    const AnnBuildOptions& ann, runtime::ThreadPool* pool) {
  return std::shared_ptr<const EmbeddingSnapshot>(
      new EmbeddingSnapshot(model, vocab, version, nullptr, &ann, pool));
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromModel(
    const graph::ModelGraph& model, const text::Vocabulary* vocab, std::uint64_t version,
    const EmbeddingSnapshot& prev, const AnnBuildOptions& ann, runtime::ThreadPool* pool) {
  return std::shared_ptr<const EmbeddingSnapshot>(
      new EmbeddingSnapshot(model, vocab, version, &prev, &ann, pool));
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromCheckpointFile(
    const std::string& path, std::uint64_t version) {
  graph::Checkpoint ck = graph::loadCheckpointFull(path);
  if (!ck.vocab.has_value()) {
    throw std::runtime_error(
        "EmbeddingSnapshot: " + path +
        " has no vocabulary section (v1 checkpoint?) — serving needs a self-contained "
        "snapshot; re-save it with graph::saveCheckpoint(path, model, &vocab)");
  }
  return std::make_shared<const EmbeddingSnapshot>(ck.model, &*ck.vocab, version);
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingSnapshot::fromCheckpointFile(
    const std::string& path, std::uint64_t version, const AnnBuildOptions& ann,
    runtime::ThreadPool* pool) {
  graph::Checkpoint ck = graph::loadCheckpointFull(path);
  if (!ck.vocab.has_value()) {
    throw std::runtime_error(
        "EmbeddingSnapshot: " + path +
        " has no vocabulary section (v1 checkpoint?) — serving needs a self-contained "
        "snapshot; re-save it with graph::saveCheckpoint(path, model, &vocab)");
  }
  return std::shared_ptr<const EmbeddingSnapshot>(
      new EmbeddingSnapshot(ck.model, &*ck.vocab, version, nullptr, &ann, pool));
}

const text::Vocabulary& EmbeddingSnapshot::vocab() const {
  if (!vocab_.has_value())
    throw std::logic_error("EmbeddingSnapshot: built without a vocabulary");
  return *vocab_;
}

SnapshotStore::SnapshotStore(unsigned maxReaders)
    : maxReaders_(maxReaders), slots_(std::make_unique<Slot[]>(maxReaders)) {
  if (maxReaders == 0) throw std::invalid_argument("SnapshotStore: maxReaders must be >= 1");
}

void SnapshotStore::Pin::release() noexcept {
  if (store_ != nullptr) {
    store_->slots_[slot_].hazard.store(nullptr, std::memory_order_seq_cst);
    store_ = nullptr;
    snap_ = nullptr;
  }
}

SnapshotStore::Pin SnapshotStore::pin(unsigned readerId) const {
  if (readerId >= maxReaders_)
    throw std::invalid_argument("SnapshotStore::pin: readerId out of range");
  Slot& slot = slots_[readerId];
  assert(slot.hazard.load(std::memory_order_relaxed) == nullptr &&
         "SnapshotStore: one live Pin per readerId");
  // Announce-and-validate (hazard-pointer protocol, seq_cst throughout): if
  // the head moved between our load and our announcement, the publisher may
  // not have seen the hazard, so retry. Once the re-load agrees with the
  // announced pointer, the publisher's reclamation scan is guaranteed to see
  // it (its head store precedes its slot scan in the seq_cst total order).
  for (;;) {
    const EmbeddingSnapshot* p = head_.load(std::memory_order_seq_cst);
    if (p == nullptr) {
      slot.hazard.store(nullptr, std::memory_order_seq_cst);
      return Pin{};
    }
    slot.hazard.store(p, std::memory_order_seq_cst);
    if (head_.load(std::memory_order_seq_cst) == p) return Pin{this, readerId, p};
  }
}

void SnapshotStore::publish(std::shared_ptr<const EmbeddingSnapshot> snap) {
  if (snap == nullptr) throw std::invalid_argument("SnapshotStore::publish: null snapshot");
  std::lock_guard<std::mutex> lock(publishMu_);
  const std::uint64_t cur = version_.load(std::memory_order_relaxed);
  if (snap->version() <= cur) {
    throw std::invalid_argument("SnapshotStore::publish: version " +
                                std::to_string(snap->version()) +
                                " not greater than current " + std::to_string(cur));
  }
  const EmbeddingSnapshot* raw = snap.get();
  retained_.push_back(std::move(snap));
  head_.store(raw, std::memory_order_seq_cst);
  version_.store(raw->version(), std::memory_order_release);

  // Reclaim retirees no hazard slot announces. A reader racing with this
  // scan either validated before our head store (its hazard is visible) or
  // re-reads the new head and pins `raw` instead.
  auto pinned = [&](const EmbeddingSnapshot* p) {
    for (unsigned s = 0; s < maxReaders_; ++s) {
      if (slots_[s].hazard.load(std::memory_order_seq_cst) == p) return true;
    }
    return false;
  };
  std::erase_if(retained_, [&](const std::shared_ptr<const EmbeddingSnapshot>& s) {
    return s.get() != raw && !pinned(s.get());
  });
}

std::shared_ptr<const EmbeddingSnapshot> SnapshotStore::current() const {
  std::lock_guard<std::mutex> lock(publishMu_);
  const EmbeddingSnapshot* raw = head_.load(std::memory_order_seq_cst);
  if (raw == nullptr) return nullptr;
  for (const auto& s : retained_) {
    if (s.get() == raw) return s;
  }
  return nullptr;
}

std::size_t SnapshotStore::retainedCount() const {
  std::lock_guard<std::mutex> lock(publishMu_);
  return retained_.size();
}

}  // namespace gw2v::serve
