#pragma once

// Vocabulary-sharded view over one EmbeddingSnapshot: host h of H scores the
// blocked id range [V*h/H, V*(h+1)/H) — the same contiguous master ranges
// graph::BlockedPartition assigns during training, so a serving host holds
// exactly the rows it was master for. The index does not own the snapshot;
// the caller keeps it alive (typically via a SnapshotStore::Pin), which is
// what ties hot-swap lifetime to in-flight queries.

#include <cstdint>
#include <span>
#include <vector>

#include "serve/snapshot.h"
#include "serve/topk.h"

namespace gw2v::serve {

class ShardedIndex {
 public:
  ShardedIndex() = default;
  ShardedIndex(const EmbeddingSnapshot& snap, unsigned host, unsigned numHosts);

  std::uint32_t lo() const noexcept { return lo_; }
  std::uint32_t hi() const noexcept { return hi_; }
  std::uint32_t numRows() const noexcept { return hi_ - lo_; }
  std::uint64_t version() const noexcept { return snap_ != nullptr ? snap_->version() : 0; }
  const EmbeddingSnapshot* snapshot() const noexcept { return snap_; }

  /// Local top-k of every query over this shard's rows (global word ids).
  std::vector<std::vector<Candidate>> topk(std::span<const TopKQuery> queries) const;

  /// True when the pinned snapshot carries an ANN index (publish-time build).
  bool hasAnn() const noexcept { return snap_ != nullptr && snap_->annIndex() != nullptr; }

  /// Approximate local top-k: restrict the snapshot's global ANN index to
  /// this shard's row range. Requires hasAnn(). Candidate scores are
  /// bit-identical to topk()'s for the same rows, so a mergeTopK over shards
  /// equals a single-host ANN search with the same knobs.
  std::vector<Candidate> annTopk(const TopKQuery& q, std::uint32_t nprobe,
                                 std::uint32_t refine, AnnSearchStats* stats = nullptr) const;

 private:
  const EmbeddingSnapshot* snap_ = nullptr;
  std::uint32_t lo_ = 0;
  std::uint32_t hi_ = 0;
};

}  // namespace gw2v::serve
