#pragma once

// Deprecated shim: LruCache moved to util/lru_cache.h once it became shared
// by serve, ps, and store. Kept for one PR so out-of-tree includes keep
// compiling; include "util/lru_cache.h" and use util::LruCache directly.

#include "util/lru_cache.h"

namespace gw2v::serve {

template <typename K, typename V, typename Hash = std::hash<K>>
using LruCache = util::LruCache<K, V, Hash>;

}  // namespace gw2v::serve
