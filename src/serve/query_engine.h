#pragma once

// Sharded top-k query engine: scatter-gather over the Transport substrate.
//
// SPMD like everything above the comm seam: every rank constructs a
// QueryEngine and calls run(). Rank 0 is the coordinator/front-end — client
// threads call query()/queryWord() (thread-safe, blocking) and a dispatcher
// groups requests into batches (up to maxBatch, waiting at most
// batchWindowMicros after the first arrival to fill up). Each batch is one
// collective round in TagSpace::kServe:
//
//   broadcast  BatchHeader + packed queries (matrix + per-query k/exclude)
//   local      every rank scores its blocked vocabulary shard (SIMD top-k)
//   gatherv    partial top-k lists back to rank 0, merged under the
//              deterministic `better` order — identical to a single-host scan
//
// Query traffic is charged to the normal CommPhase accounting (broadcast /
// reduce), so bytes-per-query falls out of CommStats like every other
// subsystem's volume.
//
// Each rank pins its SnapshotStore's current version for whole batches and
// repins between batches when a publish happened (hot swap: in-flight
// batches finish on the old version, the next batch sees the new one; during
// the one round that straddles a publish, ranks may briefly serve different
// versions of their own shards — bounded by a single batch and surfaced via
// QueryResult::version).
//
// Rank 0 additionally runs a version-keyed LRU in front of the batcher, so
// repeated hot queries (Zipfian traffic) short-circuit the collective round;
// publishing a new snapshot naturally invalidates the cache (the version is
// part of the key).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <vector>

#include "comm/collectives.h"
#include "comm/transport.h"
#include "util/lru_cache.h"
#include "serve/metrics.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"
#include "serve/topk.h"

namespace gw2v::serve {

struct ServeOptions {
  /// Max queries per scatter-gather round.
  unsigned maxBatch = 32;
  /// How long the dispatcher waits after the first request of a batch for
  /// more to arrive (amortizes kernel + collective overhead).
  unsigned batchWindowMicros = 200;
  /// Rank-0 LRU entries; 0 disables the cache.
  std::size_t cacheCapacity = 1024;
};

/// kExact scans every shard row (the recall oracle, and the default). kAnn
/// probes the snapshot's IVF index instead — candidate scores stay bit-exact
/// with brute force, only coverage is approximate. kAnn requests against a
/// snapshot published without an index fall back to exact scoring (counted
/// in ServeMetrics::annFallbacks).
enum class QueryMode : std::uint8_t { kExact = 0, kAnn = 1 };

/// Per-request knobs; meaningful only in kAnn mode (exact requests are
/// canonicalized to nprobe = refine = 0, so the cache treats all exact
/// requests for the same query alike).
struct QueryOptions {
  QueryMode mode = QueryMode::kExact;
  /// Posting lists probed per query (clamped to the index's list count).
  std::uint32_t nprobe = 8;
  /// When > 0: keep probing past nprobe until refine·k global candidates are
  /// covered — a recall floor for queries landing in small clusters.
  std::uint32_t refine = 0;
};

struct QueryResult {
  std::vector<Candidate> neighbors;  // sorted by `better`
  std::uint64_t version = 0;         // snapshot version that served it
  bool cacheHit = false;
};

class QueryEngine {
 public:
  /// `store` outlives the engine; rank `me` uses hazard slot `me`, so the
  /// store needs maxReaders >= numRanks.
  QueryEngine(comm::Transport& transport, comm::RankId me, const SnapshotStore& store,
              ServeOptions opts = {});

  comm::RankId rank() const noexcept { return me_; }
  const ServeOptions& options() const noexcept { return opts_; }

  /// SPMD entry. Rank 0: dispatch batches until shutdown() and the queue is
  /// drained. Other ranks: serve scoring rounds until the stop broadcast.
  /// Requires a published snapshot.
  void run();

  /// Rank 0, thread-safe, blocking. `vec` must have snapshot dim elements;
  /// it is L2-normalized internally, `exclude` need not be sorted.
  QueryResult query(std::vector<float> vec, unsigned k,
                    std::vector<text::WordId> exclude = {}, QueryOptions qopts = {});

  /// Rank 0: top-k neighbours of word `w` (excluding itself). Unknown ids
  /// resolve to an empty result.
  QueryResult queryWord(text::WordId w, unsigned k, QueryOptions qopts = {});

  /// Rank 0, thread-safe: stop accepting queries, serve what is queued, then
  /// broadcast stop so every rank's run() returns.
  void shutdown();

  ServeMetrics& metrics() noexcept { return metrics_; }
  const ServeMetrics& metrics() const noexcept { return metrics_; }

 private:
  struct CacheKey {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  struct Request {
    std::vector<float> vec;                    // empty for by-word requests
    text::WordId word = text::kInvalidWord;    // valid for by-word requests
    unsigned k = 0;
    std::vector<text::WordId> exclude;         // sorted, deduped
    QueryOptions qopts;                        // canonicalized in submit()
    std::chrono::steady_clock::time_point submitted;
    CacheKey key{};
    bool cacheable = false;
    std::promise<QueryResult> promise;
  };

  /// Fixed-size round preamble broadcast before the packed queries.
  struct BatchHeader {
    std::uint32_t stop = 0;
    std::uint32_t count = 0;
    std::uint32_t dim = 0;
    std::uint32_t payloadBytes = 0;
    std::uint64_t version = 0;
  };

  void runCoordinator();
  void runWorker();

  QueryResult submit(Request req);
  /// Blocks for the next batch; empty result means shutdown-and-drained.
  std::vector<Request> nextBatch();
  void refreshPin(SnapshotStore::Pin& pin, ShardedIndex& index);

  /// Score one round's queries against this rank's shard: exact requests go
  /// through the batched brute-force scan, kAnn requests through the
  /// snapshot's IVF index (falling back to exact when the snapshot carries
  /// none). Records the per-stage timing/counter metrics for both paths.
  std::vector<std::vector<Candidate>> scoreLocal(const ShardedIndex& index,
                                                 std::span<const TopKQuery> queries,
                                                 std::span<const QueryOptions> qopts);

  static CacheKey keyOf(std::span<const float> vec, text::WordId word, unsigned k,
                        std::span<const text::WordId> exclude, const QueryOptions& qopts,
                        std::uint64_t version) noexcept;

  comm::RankId me_;
  unsigned numRanks_;
  const SnapshotStore& store_;
  ServeOptions opts_;
  comm::Collectives coll_;
  ServeMetrics metrics_;

  std::mutex queueMu_;
  std::condition_variable queueCv_;
  std::deque<Request> queue_;
  bool stopping_ = false;

  std::mutex cacheMu_;
  util::LruCache<CacheKey, QueryResult, CacheKeyHash> cache_;
};

}  // namespace gw2v::serve
