#include "serve/topk.h"

#include <algorithm>
#include <cmath>

#include "util/simd.h"

namespace gw2v::serve {

namespace {

bool candidateLess(const Candidate& a, const Candidate& b) noexcept { return better(a, b); }

/// Bounded min-heap under the `better` total order: with candidateLess as
/// the heap comparator the *worst* retained candidate sits at the front,
/// so admission is a single compare against front().
struct BoundedHeap {
  std::vector<Candidate> v;
  unsigned k = 0;

  void offer(text::WordId id, float score, std::span<const text::WordId> sortedExclude) {
    if (k == 0) return;
    const Candidate c{id, score};
    if (v.size() >= k) {
      if (!better(c, v.front())) return;
      if (std::binary_search(sortedExclude.begin(), sortedExclude.end(), id)) return;
      std::pop_heap(v.begin(), v.end(), candidateLess);
      v.back() = c;
      std::push_heap(v.begin(), v.end(), candidateLess);
    } else {
      if (std::binary_search(sortedExclude.begin(), sortedExclude.end(), id)) return;
      v.push_back(c);
      std::push_heap(v.begin(), v.end(), candidateLess);
    }
  }

  std::vector<Candidate> sortedTake() {
    std::sort(v.begin(), v.end(), candidateLess);
    return std::move(v);
  }
};

}  // namespace

std::vector<std::vector<Candidate>> topkScore(const float* rows, std::size_t rowStride,
                                              std::uint32_t numRows, text::WordId idBase,
                                              std::uint32_t dim,
                                              std::span<const TopKQuery> queries) {
  const auto& kern = util::simd::activeKernels();
  const std::size_t numQ = queries.size();

  std::vector<BoundedHeap> heaps(numQ);
  for (std::size_t q = 0; q < numQ; ++q) {
    heaps[q].k = queries[q].k;
    heaps[q].v.reserve(std::min<std::size_t>(queries[q].k, numRows) + 1);
  }

  // Stream the matrix once; score each row against four queries per dot4
  // pass (the row is the shared operand, so its memory traffic is amortized
  // over the query block).
  for (std::uint32_t r = 0; r < numRows; ++r) {
    const float* row = rows + static_cast<std::size_t>(r) * rowStride;
    const text::WordId id = idBase + r;
    std::size_t q = 0;
    for (; q + 4 <= numQ; q += 4) {
      float s[4];
      kern.dot4(row, queries[q].vec, queries[q + 1].vec, queries[q + 2].vec,
                queries[q + 3].vec, dim, s);
      for (int j = 0; j < 4; ++j) heaps[q + j].offer(id, s[j], queries[q + j].sortedExclude);
    }
    for (; q < numQ; ++q) {
      heaps[q].offer(id, kern.dot(row, queries[q].vec, dim), queries[q].sortedExclude);
    }
  }

  std::vector<std::vector<Candidate>> out(numQ);
  for (std::size_t q = 0; q < numQ; ++q) out[q] = heaps[q].sortedTake();
  return out;
}

std::vector<Candidate> topkScoreIds(const float* rows, std::size_t rowStride,
                                    std::uint32_t dim, std::span<const text::WordId> ids,
                                    const TopKQuery& q) {
  const auto& kern = util::simd::activeKernels();
  BoundedHeap heap;
  heap.k = q.k;
  heap.v.reserve(std::min<std::size_t>(q.k, ids.size()) + 1);

  const auto rowPtr = [&](text::WordId id) {
    return rows + static_cast<std::size_t>(id) * rowStride;
  };
  std::size_t i = 0;
  for (; i + 4 <= ids.size(); i += 4) {
    float s[4];
    kern.dot4(q.vec, rowPtr(ids[i]), rowPtr(ids[i + 1]), rowPtr(ids[i + 2]),
              rowPtr(ids[i + 3]), dim, s);
    for (int j = 0; j < 4; ++j) heap.offer(ids[i + j], s[j], q.sortedExclude);
  }
  for (; i < ids.size(); ++i) {
    // Same operand order as topkScore's tail: dot(row, query).
    heap.offer(ids[i], kern.dot(rowPtr(ids[i]), q.vec, dim), q.sortedExclude);
  }
  return heap.sortedTake();
}

std::vector<Candidate> mergeTopK(std::span<const std::vector<Candidate>> parts, unsigned k) {
  std::vector<Candidate> all;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  all.reserve(total);
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end(), candidateLess);
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<float> normalizedCopy(std::span<const float> v) {
  std::vector<float> out(v.begin(), v.end());
  const float n2 = util::simd::activeKernels().dot(out.data(), out.data(), out.size());
  if (n2 > 0.0f) {
    const float inv = 1.0f / std::sqrt(n2);
    util::simd::activeKernels().scale(inv, out.data(), out.size());
  }
  return out;
}

}  // namespace gw2v::serve
