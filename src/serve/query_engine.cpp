#include "serve/query_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "comm/serialize.h"
#include "util/rng.h"

namespace gw2v::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsedMicros(Clock::time_point since) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - since).count());
}

/// Flat wire format for per-query partial top-k lists: per query a u32 count
/// followed by that many Candidates.
std::vector<std::uint8_t> serializeParts(const std::vector<std::vector<Candidate>>& parts) {
  comm::ByteWriter w;
  for (const auto& p : parts) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(p.size()));
    w.putSpan<Candidate>(p);
  }
  return w.take();
}

std::vector<std::vector<Candidate>> parseParts(std::span<const std::uint8_t> bytes,
                                               std::size_t numQueries) {
  comm::ByteReader r(bytes);
  std::vector<std::vector<Candidate>> parts(numQueries);
  for (std::size_t q = 0; q < numQueries; ++q) {
    const std::uint32_t n = r.get<std::uint32_t>();
    const auto v = r.view<Candidate>(n);
    parts[q].assign(v.begin(), v.end());
  }
  if (!r.done()) throw std::runtime_error("QueryEngine: trailing bytes in partial top-k");
  return parts;
}

}  // namespace

QueryEngine::QueryEngine(comm::Transport& transport, comm::RankId me,
                         const SnapshotStore& store, ServeOptions opts)
    : me_(me),
      numRanks_(transport.numRanks()),
      store_(store),
      opts_(opts),
      coll_(transport, me, comm::TagSpace::kServe),
      cache_(me == 0 ? opts.cacheCapacity : 0) {
  if (opts_.maxBatch == 0) throw std::invalid_argument("QueryEngine: maxBatch must be >= 1");
  if (store.maxReaders() < numRanks_)
    throw std::invalid_argument("QueryEngine: SnapshotStore needs maxReaders >= numRanks");
}

void QueryEngine::run() {
  if (me_ == 0) {
    runCoordinator();
  } else {
    runWorker();
  }
}

QueryResult QueryEngine::query(std::vector<float> vec, unsigned k,
                               std::vector<text::WordId> exclude, QueryOptions qopts) {
  Request req;
  req.vec = normalizedCopy(vec);
  req.k = k;
  req.exclude = std::move(exclude);
  req.qopts = qopts;
  return submit(std::move(req));
}

QueryResult QueryEngine::queryWord(text::WordId w, unsigned k, QueryOptions qopts) {
  Request req;
  req.word = w;
  req.k = k;
  req.exclude = {w};
  req.qopts = qopts;
  return submit(std::move(req));
}

QueryResult QueryEngine::submit(Request req) {
  if (me_ != 0)
    throw std::logic_error("QueryEngine: queries enter at the rank-0 front-end only");
  req.submitted = Clock::now();
  std::sort(req.exclude.begin(), req.exclude.end());
  req.exclude.erase(std::unique(req.exclude.begin(), req.exclude.end()), req.exclude.end());
  // Canonicalize so identical exact requests share one cache entry no matter
  // what ANN knobs the caller left set.
  if (req.qopts.mode == QueryMode::kExact) {
    req.qopts.nprobe = 0;
    req.qopts.refine = 0;
  }

  if (opts_.cacheCapacity > 0) {
    req.cacheable = true;
    req.key = keyOf(req.vec, req.word, req.k, req.exclude, req.qopts, store_.currentVersion());
    std::lock_guard<std::mutex> lock(cacheMu_);
    if (auto hit = cache_.get(req.key)) {
      metrics_.cacheHits.fetch_add(1, std::memory_order_relaxed);
      metrics_.queries.fetch_add(1, std::memory_order_relaxed);
      metrics_.latency.record(elapsedMicros(req.submitted));
      hit->cacheHit = true;
      return *std::move(hit);
    }
    metrics_.cacheMisses.fetch_add(1, std::memory_order_relaxed);
  }

  auto future = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    if (stopping_) throw std::runtime_error("QueryEngine: shutting down");
    queue_.push_back(std::move(req));
  }
  queueCv_.notify_all();
  return future.get();
}

void QueryEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    stopping_ = true;
  }
  queueCv_.notify_all();
}

std::vector<QueryEngine::Request> QueryEngine::nextBatch() {
  std::unique_lock<std::mutex> lock(queueMu_);
  queueCv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
  if (queue_.empty()) return {};  // stopping and drained

  std::vector<Request> batch;
  batch.reserve(opts_.maxBatch);
  const auto deadline =
      Clock::now() + std::chrono::microseconds(opts_.batchWindowMicros);
  for (;;) {
    while (!queue_.empty() && batch.size() < opts_.maxBatch) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (batch.size() >= opts_.maxBatch || stopping_) break;
    if (queueCv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      while (!queue_.empty() && batch.size() < opts_.maxBatch) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      break;
    }
  }
  return batch;
}

void QueryEngine::refreshPin(SnapshotStore::Pin& pin, ShardedIndex& index) {
  if (store_.currentVersion() != pin->version()) {
    pin.release();
    pin = store_.pin(me_);
    index = ShardedIndex(*pin, me_, numRanks_);
    metrics_.snapshotSwaps.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryEngine::runCoordinator() {
  SnapshotStore::Pin pin = store_.pin(me_);
  if (!pin) throw std::runtime_error("QueryEngine::run: no snapshot published");
  ShardedIndex index(*pin, me_, numRanks_);

  for (;;) {
    std::vector<Request> batch = nextBatch();
    if (batch.empty()) {
      BatchHeader stop;
      stop.stop = 1;
      coll_.broadcast(std::span<BatchHeader>(&stop, 1), 0, comm::CollectiveAlgo::kAuto,
                      sim::CommPhase::kControl);
      break;
    }
    refreshPin(pin, index);
    const EmbeddingSnapshot& snap = *pin;

    // Resolve by-word requests against the pinned snapshot; answer unknown
    // ids and malformed vectors without spending a collective round.
    std::vector<Request> live;
    live.reserve(batch.size());
    for (auto& r : batch) {
      if (r.vec.empty() && r.word != text::kInvalidWord) {
        if (r.word >= snap.vocabSize()) {
          QueryResult miss;
          miss.version = snap.version();
          metrics_.queries.fetch_add(1, std::memory_order_relaxed);
          metrics_.latency.record(elapsedMicros(r.submitted));
          r.promise.set_value(std::move(miss));
          continue;
        }
        // normalizedCopy (not a raw row copy) keeps this path bit-identical
        // to eval::EmbeddingView::nearestTo, which re-normalizes the same row.
        r.vec = normalizedCopy(snap.row(r.word));
      }
      if (r.vec.size() != snap.dim()) {
        r.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
            "QueryEngine: query vector has " + std::to_string(r.vec.size()) +
            " elements, snapshot dim is " + std::to_string(snap.dim()))));
        continue;
      }
      live.push_back(std::move(r));
    }
    if (live.empty()) continue;

    // Pack the round: query matrix first, then per-query k + mode/ANN knobs
    // + exclude list.
    comm::ByteWriter w;
    for (const auto& r : live) w.putSpan<float>(r.vec);
    for (const auto& r : live) {
      w.put<std::uint32_t>(r.k);
      w.put<std::uint32_t>(static_cast<std::uint32_t>(r.qopts.mode));
      w.put<std::uint32_t>(r.qopts.nprobe);
      w.put<std::uint32_t>(r.qopts.refine);
      w.put<std::uint32_t>(static_cast<std::uint32_t>(r.exclude.size()));
      w.putSpan<text::WordId>(r.exclude);
    }
    std::vector<std::uint8_t> payload = w.take();

    BatchHeader h;
    h.count = static_cast<std::uint32_t>(live.size());
    h.dim = snap.dim();
    h.payloadBytes = static_cast<std::uint32_t>(payload.size());
    h.version = snap.version();
    coll_.broadcast(std::span<BatchHeader>(&h, 1), 0, comm::CollectiveAlgo::kAuto,
                    sim::CommPhase::kControl);
    coll_.broadcast(std::span<std::uint8_t>(payload), 0, comm::CollectiveAlgo::kAuto,
                    sim::CommPhase::kBroadcast);
    metrics_.batches.fetch_add(1, std::memory_order_relaxed);
    metrics_.batchedQueries.fetch_add(live.size(), std::memory_order_relaxed);

    std::vector<TopKQuery> queries;
    std::vector<QueryOptions> qopts;
    queries.reserve(live.size());
    qopts.reserve(live.size());
    for (const auto& r : live) {
      queries.push_back({r.vec.data(), r.k, r.exclude});
      qopts.push_back(r.qopts);
    }
    const auto mine = scoreLocal(index, queries, qopts);

    const auto perRank =
        coll_.gatherv(serializeParts(mine), 0, sim::CommPhase::kReduce);
    std::vector<std::vector<std::vector<Candidate>>> parts(numRanks_);
    for (unsigned r = 0; r < numRanks_; ++r) parts[r] = parseParts(perRank[r], live.size());

    const auto mergeStart = Clock::now();
    std::vector<std::vector<Candidate>> shardLists(numRanks_);
    for (std::size_t q = 0; q < live.size(); ++q) {
      for (unsigned r = 0; r < numRanks_; ++r) shardLists[r] = std::move(parts[r][q]);
      QueryResult res;
      res.neighbors = mergeTopK(shardLists, live[q].k);
      res.version = snap.version();
      if (live[q].cacheable) {
        // Key on the version that actually served the request, so lookups
        // after a hot swap miss instead of returning stale neighbours. For
        // by-word requests the key covers the word id, not the resolved row
        // (lookups happen before resolution, when req.vec is still empty).
        const std::span<const float> keyVec =
            live[q].word != text::kInvalidWord ? std::span<const float>{}
                                               : std::span<const float>(live[q].vec);
        const CacheKey key = keyOf(keyVec, live[q].word, live[q].k, live[q].exclude,
                                   live[q].qopts, res.version);
        std::lock_guard<std::mutex> lock(cacheMu_);
        cache_.put(key, res);
      }
      metrics_.queries.fetch_add(1, std::memory_order_relaxed);
      metrics_.latency.record(elapsedMicros(live[q].submitted));
      live[q].promise.set_value(std::move(res));
    }
    metrics_.mergeMicros.fetch_add(elapsedMicros(mergeStart), std::memory_order_relaxed);
  }
}

std::vector<std::vector<Candidate>> QueryEngine::scoreLocal(
    const ShardedIndex& index, std::span<const TopKQuery> queries,
    std::span<const QueryOptions> qopts) {
  std::vector<std::vector<Candidate>> out(queries.size());

  // Split the round: exact requests (plus kAnn fallbacks against an
  // index-less snapshot) keep the batched four-queries-per-row scan; ANN
  // requests probe the index one query at a time (each carries its own
  // nprobe/refine).
  std::vector<std::size_t> exactIdx;
  exactIdx.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (qopts[q].mode == QueryMode::kAnn) {
      if (!index.hasAnn()) {
        metrics_.annFallbacks.fetch_add(1, std::memory_order_relaxed);
        exactIdx.push_back(q);
        continue;
      }
      AnnSearchStats stats;
      out[q] = index.annTopk(queries[q], qopts[q].nprobe, qopts[q].refine, &stats);
      metrics_.annQueries.fetch_add(1, std::memory_order_relaxed);
      metrics_.annProbeCount.fetch_add(stats.probes, std::memory_order_relaxed);
      metrics_.annCandidates.fetch_add(stats.candidates, std::memory_order_relaxed);
      metrics_.annRowsTotal.fetch_add(index.numRows(), std::memory_order_relaxed);
      metrics_.annCentroidMicros.fetch_add(stats.centroidMicros, std::memory_order_relaxed);
      metrics_.annScoreMicros.fetch_add(stats.scoreMicros, std::memory_order_relaxed);
    } else {
      exactIdx.push_back(q);
    }
  }
  if (!exactIdx.empty()) {
    std::vector<TopKQuery> exactQ;
    exactQ.reserve(exactIdx.size());
    for (const std::size_t q : exactIdx) exactQ.push_back(queries[q]);
    const auto t0 = Clock::now();
    auto exactOut = index.topk(exactQ);
    metrics_.exactScanMicros.fetch_add(elapsedMicros(t0), std::memory_order_relaxed);
    metrics_.exactScanQueries.fetch_add(exactIdx.size(), std::memory_order_relaxed);
    for (std::size_t i = 0; i < exactIdx.size(); ++i) out[exactIdx[i]] = std::move(exactOut[i]);
  }
  return out;
}

void QueryEngine::runWorker() {
  SnapshotStore::Pin pin = store_.pin(me_);
  if (!pin) throw std::runtime_error("QueryEngine::run: no snapshot published");
  ShardedIndex index(*pin, me_, numRanks_);

  for (;;) {
    BatchHeader h;
    coll_.broadcast(std::span<BatchHeader>(&h, 1), 0, comm::CollectiveAlgo::kAuto,
                    sim::CommPhase::kControl);
    if (h.stop != 0) break;
    std::vector<std::uint8_t> payload(h.payloadBytes);
    coll_.broadcast(std::span<std::uint8_t>(payload), 0, comm::CollectiveAlgo::kAuto,
                    sim::CommPhase::kBroadcast);
    refreshPin(pin, index);
    if (h.dim != pin->dim())
      throw std::runtime_error("QueryEngine: batch dim does not match local snapshot");

    comm::ByteReader rd(payload);
    const auto matrix = rd.view<float>(static_cast<std::size_t>(h.count) * h.dim);
    std::vector<TopKQuery> queries;
    std::vector<QueryOptions> qopts;
    queries.reserve(h.count);
    qopts.reserve(h.count);
    for (std::uint32_t q = 0; q < h.count; ++q) {
      TopKQuery tq;
      tq.vec = matrix.data() + static_cast<std::size_t>(q) * h.dim;
      tq.k = rd.get<std::uint32_t>();
      QueryOptions qo;
      qo.mode = static_cast<QueryMode>(rd.get<std::uint32_t>());
      qo.nprobe = rd.get<std::uint32_t>();
      qo.refine = rd.get<std::uint32_t>();
      const std::uint32_t exLen = rd.get<std::uint32_t>();
      tq.sortedExclude = rd.view<text::WordId>(exLen);
      queries.push_back(tq);
      qopts.push_back(qo);
    }
    if (!rd.done()) throw std::runtime_error("QueryEngine: trailing bytes in query batch");

    coll_.gatherv(serializeParts(scoreLocal(index, queries, qopts)), 0,
                  sim::CommPhase::kReduce);
  }
}

QueryEngine::CacheKey QueryEngine::keyOf(std::span<const float> vec, text::WordId word,
                                         unsigned k, std::span<const text::WordId> exclude,
                                         const QueryOptions& qopts,
                                         std::uint64_t version) noexcept {
  CacheKey key{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
  const auto mix = [&key](std::uint64_t v) noexcept {
    key.lo = util::hash64(key.lo ^ v);
    key.hi = util::hash64(key.hi + (v * 0xff51afd7ed558ccdULL | 1));
  };
  mix(word == text::kInvalidWord ? 0x1ULL : 0x2ULL);  // domain-separate vec/word keys
  mix(word);
  mix(k);
  mix(static_cast<std::uint64_t>(qopts.mode));
  mix(qopts.nprobe);
  mix(qopts.refine);
  mix(version);
  mix(vec.size());
  for (const float f : vec) mix(std::bit_cast<std::uint32_t>(f));
  mix(exclude.size());
  for (const text::WordId id : exclude) mix(id);
  return key;
}

}  // namespace gw2v::serve
