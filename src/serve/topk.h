#pragma once

// Brute-force top-k scoring over L2-normalized embedding matrices — the one
// code path shared by the offline evaluator (eval::EmbeddingView) and the
// online serving tier (serve::ShardedIndex / serve::QueryEngine).
//
// The scorer is batched: each 64B-aligned row is streamed once and scored
// against up to four queries per pass through the dot4 kernel of the runtime
// SIMD dispatch (util/simd.h), instead of one dot per (row, query) pair.
// Candidate ordering is a total order (score desc, then word id asc), so
// sharded top-k + merge returns bit-identical results to a single-host scan
// regardless of shard count or scan order.
//
// Exclusion lists are sorted; membership is only checked when a row would
// actually enter a heap (i.e. O(log |exclude|) on the rare insert path, not
// per scanned row — the fix for the O(|exclude|) std::find the old
// EmbeddingView did on every row).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "text/vocabulary.h"

namespace gw2v::serve {

/// One scored word. Trivially copyable on purpose: partial top-k lists cross
/// the transport as flat Candidate arrays.
struct Candidate {
  text::WordId id;
  float score;
};
static_assert(sizeof(Candidate) == 8);

/// Total order on candidates: higher score first, ties broken by the lower
/// word id. Every consumer (heaps, merges, final sorts) uses this one
/// predicate, which is what makes sharded results deterministic.
inline bool better(const Candidate& a, const Candidate& b) noexcept {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// One query against a row matrix: a normalized vector, a result budget k,
/// and a sorted-ascending exclude list of global word ids.
struct TopKQuery {
  const float* vec = nullptr;
  unsigned k = 0;
  std::span<const text::WordId> sortedExclude{};
};

/// Score `queries` against rows [idBase, idBase + numRows) of a matrix whose
/// rows are L2-normalized, `rowStride` floats apart and 64B-aligned (an
/// EmbeddingSnapshot shard). Returns one list per query, sorted by `better`,
/// of at most k candidates carrying *global* word ids.
std::vector<std::vector<Candidate>> topkScore(const float* rows, std::size_t rowStride,
                                              std::uint32_t numRows, text::WordId idBase,
                                              std::uint32_t dim,
                                              std::span<const TopKQuery> queries);

/// Score one query against an explicit (globally-id'd) candidate row list —
/// the ANN candidate path. Each candidate's score is bit-identical to what
/// topkScore computes for the same row: candidates are blocked four rows per
/// dot4 pass with the query as the shared operand, and dot4(q, r) ==
/// dot(r, q) bitwise (products commute elementwise and both kernels use the
/// same index-ordered reduction — locked by serve_ann_test across tiers).
/// `ids` need not be sorted or unique; duplicates cost a wasted offer only.
std::vector<Candidate> topkScoreIds(const float* rows, std::size_t rowStride,
                                    std::uint32_t dim, std::span<const text::WordId> ids,
                                    const TopKQuery& q);

/// Merge per-shard partial top-k lists (each sorted by `better`) into the
/// global top-k. Identical to scoring all shards' rows in one pass.
std::vector<Candidate> mergeTopK(std::span<const std::vector<Candidate>> parts, unsigned k);

/// L2-normalized copy of an arbitrary query vector (zero vectors pass
/// through unscaled, matching EmbeddingView's historical behaviour).
std::vector<float> normalizedCopy(std::span<const float> v);

}  // namespace gw2v::serve
