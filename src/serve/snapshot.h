#pragma once

// Versioned, immutable embedding snapshots and the store that hot-swaps them.
//
// An EmbeddingSnapshot is the serving-side artifact a training run publishes:
// every embedding row copied out of the ModelGraph, L2-normalized, laid out
// 64B-aligned at a padded stride (so the SIMD top-k scorer gets the same
// layout guarantees ModelGraph gives the training kernels), plus an optional
// embedded vocabulary so the snapshot is self-contained — a v2 checkpoint
// (graph/model_io) round-trips the whole thing through one file.
//
// SnapshotStore publishes snapshots with atomic hot-swap. The query path is
// lock-free: readers never touch the publish mutex. Safe reclamation uses
// per-reader hazard slots (classic hazard-pointer discipline): a reader
// announces the snapshot pointer in its slot, re-validates the head, and the
// publisher only frees retired versions no slot announces. In-flight queries
// therefore keep the version they pinned while new queries see the new one.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/model_graph.h"
#include "serve/ann_index.h"
#include "text/vocabulary.h"
#include "util/aligned.h"

namespace gw2v::runtime {
class ThreadPool;
}

namespace gw2v::serve {

class EmbeddingSnapshot {
 public:
  /// Copies and L2-normalizes every embedding row of `model` into an aligned
  /// padded matrix. `vocab` may be null (the offline evaluator skips the
  /// copy); serving from the snapshot by word requires it. When given, its
  /// size must equal the model's node count.
  EmbeddingSnapshot(const graph::ModelGraph& model, const text::Vocabulary* vocab,
                    std::uint64_t version);

  /// Full build (same work as the constructor), as a shared_ptr ready to
  /// publish.
  static std::shared_ptr<const EmbeddingSnapshot> fromModel(const graph::ModelGraph& model,
                                                            const text::Vocabulary* vocab,
                                                            std::uint64_t version);

  /// Incremental build: copy prev's normalized matrix and renormalize only
  /// rows the model's embedding table wrote since prev was built (tracked by
  /// EmbeddingTable row versions — an over-approximation within the current
  /// epoch, never an under-approximation, so the result is bit-identical to
  /// a from-scratch build). prev must have been built from the same table;
  /// falls back to a full build on shape mismatch or a rewound table
  /// version. Untracked bulk rewrites of the model are not covered — publish
  /// a full snapshot after those.
  static std::shared_ptr<const EmbeddingSnapshot> fromModel(const graph::ModelGraph& model,
                                                            const text::Vocabulary* vocab,
                                                            std::uint64_t version,
                                                            const EmbeddingSnapshot& prev);

  /// fromModel variants that additionally build the ANN index (§5k) as part
  /// of the snapshot, so it travels through SnapshotStore's hot swap with
  /// the matrix — readers can never observe an index/matrix version skew.
  /// `pool` parallelizes the k-means build (null = serial; the result is
  /// bit-identical either way). The incremental variant reuses the previous
  /// snapshot's centroids and reassigns only rows changed since (per the
  /// EmbeddingTable row versions), retraining from scratch past
  /// AnnBuildOptions::retrainThreshold or when prev carries no index.
  static std::shared_ptr<const EmbeddingSnapshot> fromModel(const graph::ModelGraph& model,
                                                            const text::Vocabulary* vocab,
                                                            std::uint64_t version,
                                                            const AnnBuildOptions& ann,
                                                            runtime::ThreadPool* pool = nullptr);
  static std::shared_ptr<const EmbeddingSnapshot> fromModel(const graph::ModelGraph& model,
                                                            const text::Vocabulary* vocab,
                                                            std::uint64_t version,
                                                            const EmbeddingSnapshot& prev,
                                                            const AnnBuildOptions& ann,
                                                            runtime::ThreadPool* pool = nullptr);

  /// Rebuild a snapshot from a checkpoint file. The checkpoint must be v2
  /// with a vocabulary section (saveCheckpoint(path, model, &vocab)); a
  /// vocab-less v1 file throws with a message saying how to re-save it.
  static std::shared_ptr<const EmbeddingSnapshot> fromCheckpointFile(const std::string& path,
                                                                     std::uint64_t version);
  static std::shared_ptr<const EmbeddingSnapshot> fromCheckpointFile(const std::string& path,
                                                                     std::uint64_t version,
                                                                     const AnnBuildOptions& ann,
                                                                     runtime::ThreadPool* pool = nullptr);

  std::uint64_t version() const noexcept { return version_; }

  /// The embedding table's version when this snapshot was built — what the
  /// next incremental fromModel measures "changed since" against.
  std::uint64_t modelTableVersion() const noexcept { return tableVersion_; }
  std::uint32_t vocabSize() const noexcept { return numWords_; }
  std::uint32_t dim() const noexcept { return dim_; }
  std::size_t rowStride() const noexcept { return stride_; }

  /// Base of the row matrix (rowStride() floats per row, 64B-aligned).
  const float* rows() const noexcept { return data_.data(); }

  std::span<const float> row(text::WordId w) const noexcept {
    return {data_.data() + static_cast<std::size_t>(w) * stride_, dim_};
  }

  bool hasVocab() const noexcept { return vocab_.has_value(); }
  /// Throws std::logic_error when the snapshot was built without one.
  const text::Vocabulary& vocab() const;

  /// The ANN index built for this snapshot version, or nullptr when the
  /// snapshot was published without one (exact-only serving).
  const AnnIndex* annIndex() const noexcept { return ann_.get(); }

  /// Resident bytes of the row matrix (the serving-capacity quantity).
  std::uint64_t matrixBytes() const noexcept {
    return static_cast<std::uint64_t>(numWords_) * stride_ * sizeof(float);
  }

 private:
  EmbeddingSnapshot(const graph::ModelGraph& model, const text::Vocabulary* vocab,
                    std::uint64_t version, const EmbeddingSnapshot* prev,
                    const AnnBuildOptions* ann, runtime::ThreadPool* pool);

  std::uint32_t numWords_;
  std::uint32_t dim_;
  std::size_t stride_;
  std::uint64_t version_;
  std::uint64_t tableVersion_;
  util::AlignedVector<float> data_;
  std::optional<text::Vocabulary> vocab_;
  std::unique_ptr<const IvfIndex> ann_;  // points into data_; built last
};

class SnapshotStore {
 public:
  static constexpr unsigned kDefaultMaxReaders = 64;

  explicit SnapshotStore(unsigned maxReaders = kDefaultMaxReaders);

  /// RAII hazard over one snapshot version. While a Pin is live its snapshot
  /// cannot be reclaimed; release (or destruction) clears the hazard slot.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        release();
        store_ = o.store_;
        slot_ = o.slot_;
        snap_ = o.snap_;
        o.store_ = nullptr;
        o.snap_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    explicit operator bool() const noexcept { return snap_ != nullptr; }
    const EmbeddingSnapshot* get() const noexcept { return snap_; }
    const EmbeddingSnapshot* operator->() const noexcept { return snap_; }
    const EmbeddingSnapshot& operator*() const noexcept { return *snap_; }

    void release() noexcept;

   private:
    friend class SnapshotStore;
    Pin(const SnapshotStore* store, unsigned slot, const EmbeddingSnapshot* snap) noexcept
        : store_(store), slot_(slot), snap_(snap) {}

    const SnapshotStore* store_ = nullptr;
    unsigned slot_ = 0;
    const EmbeddingSnapshot* snap_ = nullptr;
  };

  /// Lock-free read path: announce-and-validate on the caller's hazard slot.
  /// Each readerId owns one slot and may hold at most one live Pin at a time
  /// (the query engine uses its rank, tests use thread indices). Returns an
  /// empty Pin while nothing has been published.
  Pin pin(unsigned readerId) const;

  /// Version of the snapshot new pins will observe (0 = nothing published).
  std::uint64_t currentVersion() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// The currently-published snapshot (nullptr before the first publish) —
  /// the natural `prev` for an incremental fromModel + publish chain.
  std::shared_ptr<const EmbeddingSnapshot> current() const;

  /// Install `snap` as the current version and reclaim every retired version
  /// no reader has pinned. Versions must be strictly increasing. Publishers
  /// serialize on an internal mutex; readers never touch it.
  void publish(std::shared_ptr<const EmbeddingSnapshot> snap);

  /// Snapshots the store still keeps alive (current + pinned retirees).
  std::size_t retainedCount() const;

  unsigned maxReaders() const noexcept { return maxReaders_; }

 private:
  friend class Pin;

  struct alignas(util::kCacheLine) Slot {
    std::atomic<const EmbeddingSnapshot*> hazard{nullptr};
  };

  unsigned maxReaders_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<const EmbeddingSnapshot*> head_{nullptr};
  std::atomic<std::uint64_t> version_{0};
  mutable std::mutex publishMu_;  // publisher/bookkeeping side only
  std::vector<std::shared_ptr<const EmbeddingSnapshot>> retained_;
};

}  // namespace gw2v::serve
