#include "serve/sharded_index.h"

#include <stdexcept>

#include "graph/partition.h"

namespace gw2v::serve {

ShardedIndex::ShardedIndex(const EmbeddingSnapshot& snap, unsigned host, unsigned numHosts)
    : snap_(&snap) {
  if (numHosts == 0 || host >= numHosts)
    throw std::invalid_argument("ShardedIndex: host out of range");
  const auto range = graph::BlockedPartition(snap.vocabSize(), numHosts).masterRange(host);
  lo_ = range.first;
  hi_ = range.second;
}

std::vector<std::vector<Candidate>> ShardedIndex::topk(
    std::span<const TopKQuery> queries) const {
  if (snap_ == nullptr) return std::vector<std::vector<Candidate>>(queries.size());
  return topkScore(snap_->rows() + static_cast<std::size_t>(lo_) * snap_->rowStride(),
                   snap_->rowStride(), numRows(), lo_, snap_->dim(), queries);
}

std::vector<Candidate> ShardedIndex::annTopk(const TopKQuery& q, std::uint32_t nprobe,
                                             std::uint32_t refine,
                                             AnnSearchStats* stats) const {
  if (!hasAnn()) throw std::logic_error("ShardedIndex::annTopk: snapshot has no ANN index");
  return snap_->annIndex()->search(q, nprobe, refine, lo_, hi_, stats);
}

}  // namespace gw2v::serve
