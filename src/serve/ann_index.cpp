#include "serve/ann_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "runtime/do_all.h"
#include "runtime/thread_pool.h"
#include "util/simd.h"

namespace gw2v::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t microsSince(Clock::time_point t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count());
}

std::uint32_t autoLists(std::uint32_t numRows) noexcept {
  std::uint32_t l = 1;
  while (static_cast<std::uint64_t>(l) * l < numRows) ++l;
  return std::min(l, numRows);
}

}  // namespace

IvfIndex::IvfIndex(const float* rows, std::size_t rowStride, std::uint32_t numRows,
                   std::uint32_t dim, std::uint64_t snapshotVersion,
                   const AnnBuildOptions& opts, runtime::ThreadPool* pool)
    : rows_(rows),
      rowStride_(rowStride),
      numRows_(numRows),
      dim_(dim),
      stride_(util::rowStrideFloats(dim)),
      version_(snapshotVersion) {
  const auto t0 = Clock::now();
  std::optional<runtime::ThreadPool> serial;
  if (pool == nullptr) pool = &serial.emplace(1);

  if (numRows_ == 0) {
    listOffsets_.assign(1, 0);
    buildMicros_ = microsSince(t0);
    return;
  }
  numLists_ = opts.numLists != 0 ? std::min(opts.numLists, numRows_) : autoLists(numRows_);

  // Deterministic init: centroid c seeds from the evenly-strided row
  // floor(c·N/L). Rows are unit vectors already, so the seeds are too.
  centroids_.assign(static_cast<std::size_t>(numLists_) * stride_, 0.0f);
  for (std::uint32_t c = 0; c < numLists_; ++c) {
    const std::uint32_t seedRow = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(c) * numRows_ / numLists_);
    const float* src = rows_ + static_cast<std::size_t>(seedRow) * rowStride_;
    float* dst = centroids_.data() + static_cast<std::size_t>(c) * stride_;
    for (std::uint32_t d = 0; d < dim_; ++d) dst[d] = src[d];
  }

  assign_.assign(numRows_, 0);
  const std::uint32_t iters = std::max(opts.kmeansIters, 1u);
  for (std::uint32_t it = 0; it < iters; ++it) {
    const std::uint64_t changed = assignAll(*pool);
    if (changed == 0 && it > 0) break;  // converged: centroids stable too
    // The loop always *ends* on an assignment pass so the posting lists are
    // consistent with the final centroids; update only when another
    // assignment follows.
    if (it + 1 < iters) updateCentroids(*pool);
  }
  rebuildLists();
  buildMicros_ = microsSince(t0);
}

IvfIndex::IvfIndex(const IvfIndex& prev, const float* rows, std::size_t rowStride,
                   std::uint32_t numRows, std::uint32_t dim, std::uint64_t snapshotVersion,
                   std::span<const std::uint32_t> changedRows, runtime::ThreadPool* pool)
    : rows_(rows),
      rowStride_(rowStride),
      numRows_(numRows),
      dim_(dim),
      stride_(prev.stride_),
      numLists_(prev.numLists_),
      version_(snapshotVersion),
      reusedCentroids_(true),
      centroids_(prev.centroids_),
      assign_(prev.assign_) {
  assert(prev.numRows_ == numRows_ && prev.dim_ == dim_ &&
         "IvfIndex incremental build requires an identically-shaped predecessor");
  const auto t0 = Clock::now();
  std::optional<runtime::ThreadPool> serial;
  if (pool == nullptr) pool = &serial.emplace(1);
  assignPass(changedRows, *pool);
  rebuildLists();
  buildMicros_ = microsSince(t0);
}

std::uint32_t IvfIndex::assignOne(std::uint32_t row) const noexcept {
  const auto& kern = util::simd::activeKernels();
  const float* r = rows_ + static_cast<std::size_t>(row) * rowStride_;
  std::uint32_t best = 0;
  float bestScore = -std::numeric_limits<float>::infinity();
  std::uint32_t c = 0;
  // Scan centroids ascending with a strict `>` replace, so ties resolve to
  // the lowest list id — deterministic regardless of SIMD tier reassociation
  // within each individual dot.
  for (; c + 4 <= numLists_; c += 4) {
    const float* base = centroids_.data() + static_cast<std::size_t>(c) * stride_;
    float s[4];
    kern.dot4(r, base, base + stride_, base + 2 * stride_, base + 3 * stride_, dim_, s);
    for (int j = 0; j < 4; ++j) {
      if (s[j] > bestScore) {
        bestScore = s[j];
        best = c + static_cast<std::uint32_t>(j);
      }
    }
  }
  for (; c < numLists_; ++c) {
    const float s =
        kern.dot(r, centroids_.data() + static_cast<std::size_t>(c) * stride_, dim_);
    if (s > bestScore) {
      bestScore = s;
      best = c;
    }
  }
  return best;
}

std::uint64_t IvfIndex::assignPass(std::span<const std::uint32_t> rowsToAssign,
                                   runtime::ThreadPool& pool) {
  std::atomic<std::uint64_t> changed{0};
  runtime::doAll(pool, 0, rowsToAssign.size(), [&](std::uint64_t i) {
    const std::uint32_t row = rowsToAssign[i];
    const std::uint32_t a = assignOne(row);
    if (a != assign_[row]) {
      assign_[row] = a;
      changed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return changed.load(std::memory_order_relaxed);
}

std::uint64_t IvfIndex::assignAll(runtime::ThreadPool& pool) {
  std::atomic<std::uint64_t> changed{0};
  runtime::doAll(pool, 0, numRows_, [&](std::uint64_t row) {
    const std::uint32_t a = assignOne(static_cast<std::uint32_t>(row));
    if (a != assign_[row]) {
      assign_[row] = a;
      changed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return changed.load(std::memory_order_relaxed);
}

void IvfIndex::updateCentroids(runtime::ThreadPool& pool) {
  // Members gathered by counting sort: ascending row ids per list, so each
  // centroid's reduction order — and therefore its float value — does not
  // depend on the pool size.
  rebuildLists();
  runtime::doAll(
      pool, 0, numLists_,
      [&](std::uint64_t list) {
        std::vector<double> sum(dim_, 0.0);
        const std::uint32_t lo = listOffsets_[list];
        const std::uint32_t hi = listOffsets_[list + 1];
        if (lo == hi) return;  // empty cluster: keep the previous centroid
        for (std::uint32_t i = lo; i < hi; ++i) {
          const float* r = rows_ + static_cast<std::size_t>(listRows_[i]) * rowStride_;
          for (std::uint32_t d = 0; d < dim_; ++d) sum[d] += r[d];
        }
        double n2 = 0.0;
        for (std::uint32_t d = 0; d < dim_; ++d) n2 += sum[d] * sum[d];
        if (n2 <= 0.0) return;  // degenerate (rows cancelled): keep previous
        const double inv = 1.0 / std::sqrt(n2);
        float* dst = centroids_.data() + static_cast<std::size_t>(list) * stride_;
        for (std::uint32_t d = 0; d < dim_; ++d)
          dst[d] = static_cast<float>(sum[d] * inv);
      },
      {.chunkSize = 1});
}

void IvfIndex::rebuildLists() {
  listOffsets_.assign(numLists_ + 1, 0);
  for (std::uint32_t r = 0; r < numRows_; ++r) ++listOffsets_[assign_[r] + 1];
  for (std::uint32_t c = 0; c < numLists_; ++c) listOffsets_[c + 1] += listOffsets_[c];
  listRows_.assign(numRows_, 0);
  std::vector<std::uint32_t> cursor(listOffsets_.begin(), listOffsets_.end() - 1);
  for (std::uint32_t r = 0; r < numRows_; ++r)
    listRows_[cursor[assign_[r]]++] = static_cast<text::WordId>(r);
}

std::uint64_t IvfIndex::memoryBytes() const noexcept {
  return centroids_.size() * sizeof(float) + assign_.size() * sizeof(std::uint32_t) +
         listOffsets_.size() * sizeof(std::uint32_t) + listRows_.size() * sizeof(text::WordId);
}

std::vector<Candidate> IvfIndex::search(const TopKQuery& q, std::uint32_t nprobe,
                                        std::uint32_t refine, std::uint32_t rowLo,
                                        std::uint32_t rowHi, AnnSearchStats* stats) const {
  if (q.k == 0 || numRows_ == 0 || numLists_ == 0 || rowLo >= rowHi) return {};
  const auto t0 = Clock::now();

  // Probe selection: score every centroid, then order only the prefix that
  // will actually be probed. partial_sort under `better` — the same total
  // order the row scorer uses (score desc, list id asc) — yields the exact
  // prefix a full sort would, so the probe order stays deterministic while
  // skipping the heap-and-full-sort cost of a k = L topkScore call.
  const auto& kern = util::simd::activeKernels();
  std::vector<Candidate> order(numLists_);
  {
    std::uint32_t c = 0;
    for (; c + 4 <= numLists_; c += 4) {
      const float* base = centroids_.data() + static_cast<std::size_t>(c) * stride_;
      float s[4];
      kern.dot4(q.vec, base, base + stride_, base + 2 * stride_, base + 3 * stride_,
                dim_, s);
      for (int j = 0; j < 4; ++j)
        order[c + static_cast<std::uint32_t>(j)] = {c + static_cast<std::uint32_t>(j),
                                                    s[j]};
    }
    for (; c < numLists_; ++c)
      order[c] = {c, kern.dot(centroids_.data() + static_cast<std::size_t>(c) * stride_,
                              q.vec, dim_)};
  }

  std::uint32_t probes = std::min(std::max(nprobe, 1u), numLists_);
  std::uint32_t sorted = std::min(probes, numLists_);
  std::partial_sort(order.begin(), order.begin() + sorted, order.end(), better);
  if (refine > 0) {
    // Extend probing until the *global* candidate budget refine·k is met.
    // Global list sizes are identical on every host, so shards extend by the
    // same amount and the sharded candidate union stays host-count invariant.
    const std::uint64_t budget = static_cast<std::uint64_t>(refine) * q.k;
    for (;;) {
      std::uint64_t seen = 0;
      std::uint32_t p = 0;
      while (p < sorted && (p < probes || seen < budget)) {
        seen += listSize(order[p].id);
        ++p;
      }
      if ((p < sorted || sorted == numLists_) && (seen >= budget || sorted == numLists_)) {
        probes = p;
        break;
      }
      // Budget not met inside the sorted prefix: widen it and re-sort. The
      // prefix of a partial_sort under a strict total order is unique, so
      // widening never reorders already-chosen probes.
      sorted = sorted >= numLists_ / 2 ? numLists_ : sorted * 2;
      std::partial_sort(order.begin(), order.begin() + sorted, order.end(), better);
    }
  }
  const auto t1 = Clock::now();

  // Gather this shard's slice of each probed list (ids ascending per list)
  // and score the candidates exactly.
  std::vector<text::WordId> cand;
  for (std::uint32_t p = 0; p < probes; ++p) {
    const std::uint32_t c = order[p].id;
    const auto beg = listRows_.begin() + listOffsets_[c];
    const auto end = listRows_.begin() + listOffsets_[c + 1];
    const auto lo = std::lower_bound(beg, end, rowLo);
    const auto hi = std::lower_bound(lo, end, rowHi);
    cand.insert(cand.end(), lo, hi);
  }
  auto out = topkScoreIds(rows_, rowStride_, dim_, cand, q);

  if (stats != nullptr) {
    stats->probes += probes;
    stats->candidates += cand.size();
    stats->centroidMicros += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
    stats->scoreMicros += microsSince(t1);
  }
  return out;
}

}  // namespace gw2v::serve
