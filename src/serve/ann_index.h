#pragma once

// Approximate top-k index built over an EmbeddingSnapshot's row matrix at
// publish time — the serving-side answer to "brute force is O(rows·dim) per
// query regardless of k".
//
// The concrete implementation is cluster-pruned IVF: spherical k-means over
// the snapshot's L2-normalized rows produces `numLists` unit centroids, and
// every row is filed in the posting list of its nearest centroid (by dot
// product — rows are unit vectors, so nearest-by-cosine). A query scores all
// centroids, probes the `nprobe` best lists, and exactly scores only the
// rows they contain — the same bit-exact dot/dot4 SIMD kernels and the same
// (score desc, id asc) total order as the brute-force path, so an ANN answer
// is always a subset of candidates scored identically to the oracle.
//
// Sharding and host-count invariance: the index is *global* — one centroid
// set and one posting-list structure per snapshot, built once at publish.
// A serving shard restricts `search` to its blocked row range [rowLo, rowHi)
// (posting lists keep row ids ascending, so the restriction is a binary
// search per probed list). Probe selection depends only on (query, global
// centroids), so every host probes the same lists and the union of per-shard
// candidates is exactly the H=1 candidate set: merged sharded ANN answers
// are bit-identical at any host count, for a fixed snapshot + knobs.
//
// Lifetime: the index does not own the row matrix; the EmbeddingSnapshot
// that built it owns both, which is what makes a hot swap atomic — readers
// pin a snapshot and get its matching index for free, no version skew.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/topk.h"
#include "util/aligned.h"

namespace gw2v::runtime {
class ThreadPool;
}

namespace gw2v::serve {

struct AnnBuildOptions {
  /// Posting lists / k-means centroids; 0 = auto (ceil(sqrt(numRows))).
  std::uint32_t numLists = 0;
  /// Lloyd iterations. The build always ends on an assignment pass, so the
  /// posting lists are consistent with the final centroids; it stops early
  /// once an assignment pass changes nothing.
  std::uint32_t kmeansIters = 8;
  /// Incremental builds reuse the previous index's centroids and reassign
  /// only changed rows; above this changed-row fraction they retrain from
  /// scratch instead (stale centroids eventually cost recall).
  float retrainThreshold = 0.5f;
};

/// Per-search accounting, accumulated into ServeMetrics by the query engine.
struct AnnSearchStats {
  std::uint64_t probes = 0;          // posting lists scanned
  std::uint64_t candidates = 0;      // rows exactly scored
  std::uint64_t centroidMicros = 0;  // centroid scan + probe selection
  std::uint64_t scoreMicros = 0;     // candidate gather + scoring
};

class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  virtual const char* name() const noexcept = 0;
  /// Version of the snapshot this index was built for — readers assert it
  /// matches their pinned snapshot's version (it cannot legally differ: the
  /// snapshot owns the index).
  virtual std::uint64_t snapshotVersion() const noexcept = 0;
  virtual std::uint32_t numRows() const noexcept = 0;
  virtual std::uint32_t dim() const noexcept = 0;
  virtual std::uint64_t memoryBytes() const noexcept = 0;
  virtual std::uint64_t buildMicros() const noexcept = 0;

  /// Approximate top-k of `q` over rows [rowLo, rowHi) (a shard's master
  /// range; pass [0, numRows()) for the whole snapshot). `nprobe` lists are
  /// scanned (clamped to the list count); when `refine` > 0, probing extends
  /// past nprobe until the *global* candidate budget refine·k is reached —
  /// computed from global list sizes, so every shard extends identically.
  /// Deterministic given (index, query, knobs); candidates carry exact
  /// brute-force-identical scores in the `better` total order.
  virtual std::vector<Candidate> search(const TopKQuery& q, std::uint32_t nprobe,
                                        std::uint32_t refine, std::uint32_t rowLo,
                                        std::uint32_t rowHi,
                                        AnnSearchStats* stats = nullptr) const = 0;
};

/// Cluster-pruned inverted-file index (see file comment). Build cost:
/// kmeansIters · numRows · numLists dots (the assignment passes, parallel
/// over rows on the thread pool) + O(numRows) per-iteration counting sorts;
/// memory: numLists padded centroid rows + 2 u32 per row.
class IvfIndex final : public AnnIndex {
 public:
  /// Full build: spherical k-means over all rows. `rows` must outlive the
  /// index (the owning snapshot guarantees this); `pool` may be null for a
  /// serial build. Deterministic for fixed inputs regardless of pool size:
  /// assignment is per-row independent and each centroid update reduces its
  /// members in ascending row order on one worker.
  IvfIndex(const float* rows, std::size_t rowStride, std::uint32_t numRows, std::uint32_t dim,
           std::uint64_t snapshotVersion, const AnnBuildOptions& opts,
           runtime::ThreadPool* pool);

  /// Incremental build: copy `prev`'s centroids and assignments, reassign
  /// only `changedRows` (ascending row ids), rebuild the posting lists.
  /// Equivalent to assigning every row of the new matrix against prev's
  /// centroids — unchanged rows keep their assignment by definition.
  IvfIndex(const IvfIndex& prev, const float* rows, std::size_t rowStride,
           std::uint32_t numRows, std::uint32_t dim, std::uint64_t snapshotVersion,
           std::span<const std::uint32_t> changedRows, runtime::ThreadPool* pool);

  const char* name() const noexcept override { return "ivf"; }
  std::uint64_t snapshotVersion() const noexcept override { return version_; }
  std::uint32_t numRows() const noexcept override { return numRows_; }
  std::uint32_t dim() const noexcept override { return dim_; }
  std::uint64_t memoryBytes() const noexcept override;
  std::uint64_t buildMicros() const noexcept override { return buildMicros_; }

  std::vector<Candidate> search(const TopKQuery& q, std::uint32_t nprobe, std::uint32_t refine,
                                std::uint32_t rowLo, std::uint32_t rowHi,
                                AnnSearchStats* stats = nullptr) const override;

  std::uint32_t numLists() const noexcept { return numLists_; }
  /// True when this index reused a predecessor's centroids (incremental).
  bool reusedCentroids() const noexcept { return reusedCentroids_; }
  std::uint32_t assignmentOf(std::uint32_t row) const noexcept { return assign_[row]; }
  std::uint32_t listSize(std::uint32_t list) const noexcept {
    return listOffsets_[list + 1] - listOffsets_[list];
  }
  std::span<const float> centroid(std::uint32_t list) const noexcept {
    return {centroids_.data() + static_cast<std::size_t>(list) * stride_, dim_};
  }

 private:
  std::uint32_t assignOne(std::uint32_t row) const noexcept;
  /// One assignment pass over `rowsToAssign` (parallel); returns how many
  /// assignments changed.
  std::uint64_t assignPass(std::span<const std::uint32_t> rowsToAssign,
                           runtime::ThreadPool& pool);
  std::uint64_t assignAll(runtime::ThreadPool& pool);
  void updateCentroids(runtime::ThreadPool& pool);
  void rebuildLists();

  const float* rows_ = nullptr;
  std::size_t rowStride_ = 0;
  std::uint32_t numRows_ = 0;
  std::uint32_t dim_ = 0;
  std::size_t stride_ = 0;  // centroid row stride (padded like snapshot rows)
  std::uint32_t numLists_ = 0;
  std::uint64_t version_ = 0;
  bool reusedCentroids_ = false;
  std::uint64_t buildMicros_ = 0;

  util::AlignedVector<float> centroids_;    // numLists_ rows of stride_ floats
  std::vector<std::uint32_t> assign_;       // row -> list
  std::vector<std::uint32_t> listOffsets_;  // CSR over listRows_, numLists_+1
  std::vector<text::WordId> listRows_;      // ascending row ids within each list
};

}  // namespace gw2v::serve
