#pragma once

// Serving-side telemetry: a lock-free log-bucketed latency histogram
// (hdr-style: 8 sub-buckets per power of two, ≤ 12.5% relative bucket error)
// plus the counters the load generator reports — QPS is derived by the
// caller from queries()/wall-time, batch occupancy and cache hit-rate fall
// out of the counters below. Everything is atomic so client threads record
// concurrently with the dispatcher.

#include <atomic>
#include <bit>
#include <cstdint>

namespace gw2v::serve {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr unsigned kNumBuckets = (64 - kSubBits + 1) << kSubBits;

  void record(std::uint64_t micros) noexcept {
    buckets_[bucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

  double meanMicros() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum_.load(std::memory_order_relaxed)) / n;
  }

  /// Approximate q-quantile (q in [0, 1]) in microseconds: the midpoint of
  /// the bucket holding the ceil(q*count)-th sample.
  double quantileMicros(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (target >= n) target = n - 1;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > target) return bucketMidpoint(b);
    }
    return bucketMidpoint(kNumBuckets - 1);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  static unsigned bucketOf(std::uint64_t v) noexcept {
    if (v < (1u << kSubBits)) return static_cast<unsigned>(v);  // exact below 8µs
    const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const unsigned sub = static_cast<unsigned>(v >> shift) & ((1u << kSubBits) - 1);
    return ((shift + 1) << kSubBits) + sub;
  }

  static double bucketMidpoint(unsigned b) noexcept {
    if (b < (1u << kSubBits)) return static_cast<double>(b);
    const unsigned shift = (b >> kSubBits) - 1;
    const std::uint64_t lo =
        (static_cast<std::uint64_t>((1u << kSubBits) + (b & ((1u << kSubBits) - 1)))) << shift;
    return static_cast<double>(lo) + 0.5 * static_cast<double>(1ull << shift);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Counters one QueryEngine instance accumulates over its lifetime.
struct ServeMetrics {
  LatencyHistogram latency;  // per-request, microseconds, cache hits included

  std::atomic<std::uint64_t> queries{0};        // fulfilled requests (hits + misses)
  std::atomic<std::uint64_t> batches{0};        // scatter-gather rounds issued
  std::atomic<std::uint64_t> batchedQueries{0}; // requests that went through a round
  std::atomic<std::uint64_t> cacheHits{0};
  std::atomic<std::uint64_t> cacheMisses{0};
  std::atomic<std::uint64_t> snapshotSwaps{0};  // repins observed by this rank

  // Per-stage scoring wall time on this rank's shard (brute-force scan vs
  // the ANN centroid-scan/candidate-scoring split vs the coordinator's
  // merge) plus the ANN work counters — what the loadgen's scoring-speedup
  // and candidate-ratio columns are computed from.
  std::atomic<std::uint64_t> exactScanMicros{0};   // brute-force shard scans
  std::atomic<std::uint64_t> exactScanQueries{0};  // queries scored brute force
  std::atomic<std::uint64_t> annCentroidMicros{0};  // centroid scan + probe pick
  std::atomic<std::uint64_t> annScoreMicros{0};     // candidate gather + scoring
  std::atomic<std::uint64_t> annQueries{0};         // queries answered via ANN
  std::atomic<std::uint64_t> annProbeCount{0};      // posting lists scanned
  std::atomic<std::uint64_t> annCandidates{0};      // rows exactly scored via ANN
  std::atomic<std::uint64_t> annRowsTotal{0};       // shard rows per ANN query (denominator)
  std::atomic<std::uint64_t> annFallbacks{0};       // kAnn requests served brute force
  std::atomic<std::uint64_t> mergeMicros{0};        // coordinator partial-list merges

  /// Fraction of shard rows an average ANN query actually scored (candidate
  /// scan + centroid scan, the two per-query costs) — the pruning factor.
  double annCandidateRatio() const noexcept {
    const std::uint64_t total = annRowsTotal.load(std::memory_order_relaxed);
    if (total == 0) return 0.0;
    return static_cast<double>(annCandidates.load(std::memory_order_relaxed)) /
           static_cast<double>(total);
  }

  double exactScanMicrosPerQuery() const noexcept {
    const std::uint64_t q = exactScanQueries.load(std::memory_order_relaxed);
    return q == 0 ? 0.0
                  : static_cast<double>(exactScanMicros.load(std::memory_order_relaxed)) /
                        static_cast<double>(q);
  }

  double annScanMicrosPerQuery() const noexcept {
    const std::uint64_t q = annQueries.load(std::memory_order_relaxed);
    if (q == 0) return 0.0;
    return static_cast<double>(annCentroidMicros.load(std::memory_order_relaxed) +
                               annScoreMicros.load(std::memory_order_relaxed)) /
           static_cast<double>(q);
  }

  double cacheHitRate() const noexcept {
    const std::uint64_t h = cacheHits.load(std::memory_order_relaxed);
    const std::uint64_t m = cacheMisses.load(std::memory_order_relaxed);
    return h + m == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Mean batch fill as a fraction of maxBatch.
  double batchOccupancy(unsigned maxBatch) const noexcept {
    const std::uint64_t b = batches.load(std::memory_order_relaxed);
    if (b == 0 || maxBatch == 0) return 0.0;
    return static_cast<double>(batchedQueries.load(std::memory_order_relaxed)) /
           (static_cast<double>(b) * maxBatch);
  }
};

}  // namespace gw2v::serve
