#pragma once

// In-process message-passing network connecting simulated hosts.
//
// Each host is a thread; hosts exchange byte payloads through per-host
// mailboxes with (source, tag) matching — the MPI point-to-point subset the
// Gluon-style sync engine needs — plus a barrier. Collectives live one layer
// up, in comm::Collectives, built on the comm::Transport seam so a socket or
// MPI backend can replace this simulated fabric.
// Every payload is copied through the mailbox (never shared), so the hosts
// genuinely cannot observe each other's memory except via messages; this is
// what makes the simulation a faithful stand-in for a distributed cluster.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/comm_stats.h"

namespace gw2v::sim {

using HostId = unsigned;

/// Thrown out of blocking operations on all surviving hosts after abort():
/// a faulted host poisons the fabric instead of deadlocking its peers.
struct NetworkAborted : std::runtime_error {
  NetworkAborted() : std::runtime_error("simulated network aborted by a faulted host") {}
};

class Network {
 public:
  explicit Network(unsigned numHosts);

  unsigned numHosts() const noexcept { return numHosts_; }

  /// Bytes of per-message header accounted on top of the payload (envelope:
  /// src, dst, tag, size), mirroring a real transport's framing cost.
  static constexpr std::uint64_t kHeaderBytes = 16;

  void send(HostId src, HostId dst, int tag, std::vector<std::uint8_t> payload,
            CommPhase phase = CommPhase::kOther);

  /// Blocking receive matching (src, tag) at host `dst`.
  std::vector<std::uint8_t> recv(HostId dst, HostId src, int tag,
                                 CommPhase phase = CommPhase::kOther);

  /// Blocking receive matching any source (MPI_ANY_SOURCE); returns the
  /// sender. Used by the parameter-server baseline's asynchronous pushes.
  std::pair<HostId, std::vector<std::uint8_t>> recvAny(HostId dst, int tag,
                                                       CommPhase phase = CommPhase::kOther);

  /// Typed convenience wrappers (trivially-copyable payload elements).
  template <typename T>
  void sendVector(HostId src, HostId dst, int tag, std::span<const T> data,
                  CommPhase phase = CommPhase::kOther) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes(data.size_bytes());
    if (!bytes.empty()) std::memcpy(bytes.data(), data.data(), bytes.size());
    send(src, dst, tag, std::move(bytes), phase);
  }

  template <typename T>
  std::vector<T> recvVector(HostId dst, HostId src, int tag,
                            CommPhase phase = CommPhase::kOther) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes = recv(dst, src, tag, phase);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Global barrier across all hosts.
  void barrier(HostId host);

  /// Poison the network: every blocked or future blocking call throws
  /// NetworkAborted. Called when a host dies with an exception.
  void abort() noexcept;
  bool aborted() const noexcept { return aborted_.load(std::memory_order_acquire); }

  /// Register a half-open tag range [lo, hi) as owned by `owner`. Subsystems
  /// that mint tags above kInternalTagBase (Collectives spaces, the parameter
  /// server) declare their block here so a mis-assigned TagSpace fails fast
  /// instead of silently cross-delivering messages. Re-registering the exact
  /// same (owner, range) is a no-op (every rank constructs its own
  /// Collectives); any overlap between different owners, or a different range
  /// under the same owner, throws std::logic_error.
  void registerTagRange(int lo, int hi, const char* owner);

  CommStats& statsFor(HostId host) noexcept { return stats_[host]; }
  const CommStats& statsFor(HostId host) const noexcept { return stats_[host]; }

  /// Cluster-wide totals.
  std::uint64_t totalBytesSent() const noexcept;
  std::uint64_t totalMessagesSent() const noexcept;
  void resetStats() noexcept;

 private:
  struct Message {
    HostId src;
    int tag;
    std::vector<std::uint8_t> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  struct TagRange {
    int lo;
    int hi;  // half-open
    std::string owner;
  };

  unsigned numHosts_;
  std::atomic<bool> aborted_{false};
  std::vector<Mailbox> mailboxes_;
  std::vector<CommStats> stats_;

  std::mutex tagRangeMutex_;
  std::vector<TagRange> tagRanges_;

  std::mutex barrierMutex_;
  std::condition_variable barrierCv_;
  unsigned barrierCount_ = 0;
  std::uint64_t barrierGeneration_ = 0;
};

/// Reserved tag ranges: user code must stay below kInternalTagBase.
inline constexpr int kInternalTagBase = 1 << 24;

}  // namespace gw2v::sim
