#pragma once

// Modelled wall-clock for asynchronous message flows.
//
// The BSP trainer charges communication per synchronized round:
// max-compute + modelled exchange, summed over rounds. An asynchronous
// parameter server has no rounds to charge — a worker's push can overlap the
// server's fold of an earlier clock — so modelled time has to follow message
// causality instead. VirtualTimeBoard keeps one virtual clock per host plus a
// NIC-serialization point:
//
//   compute      advances the host's clock by its measured thread-CPU time;
//   depart       a send leaves no earlier than max(host clock, NIC free);
//                the NIC is then busy for bytes/bandwidth (back-to-back sends
//                serialize, which is what makes pipelined chunked pushes
//                cheaper than one monolithic one);
//   arrival      the receiver's clock becomes max(own clock, depart +
//                alpha-beta transfer time) — Lamport-style, so a host that
//                was already busy absorbs the message "for free".
//
// The arrival stamp travels inside the message payload (the PS protocol owns
// its framing), not through the transport, so the board changes no transport
// contract. It is telemetry only: protocol decisions must never read it, or
// seeded replay would depend on modelled time.
//
// Thread contract: advance/depart for host h are called only by host h's
// thread; now(h)/observeArrival(h, ...) share that single writer, so relaxed
// atomics suffice (same discipline as CommStats).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "sim/network_model.h"

namespace gw2v::sim {

class VirtualTimeBoard {
 public:
  VirtualTimeBoard(unsigned numHosts, NetworkModel model)
      : model_(model), clock_(numHosts), nicFree_(numHosts) {}

  unsigned numHosts() const noexcept { return static_cast<unsigned>(clock_.size()); }

  double now(HostId h) const noexcept { return clock_[h].load(); }

  /// Advance host `h`'s clock by `seconds` of local compute.
  void advance(HostId h, double seconds) noexcept {
    clock_[h].store(clock_[h].load() + std::max(0.0, seconds));
  }

  /// Account a `payloadBytes`-byte send leaving host `h` now; returns the
  /// modelled arrival time at the receiver (embed it in the message).
  double depart(HostId h, std::uint64_t payloadBytes) noexcept {
    return departAt(h, clock_[h].load(), payloadBytes);
  }

  /// Same, but the message only becomes ready at `readyVt` (a server reply
  /// whose content waited on a fold): it leaves at max(readyVt, NIC free),
  /// independent of the real order the simulator happened to process
  /// messages in. Folds readyVt into the host clock so makespan sees it.
  double departAt(HostId h, double readyVt, std::uint64_t payloadBytes) noexcept {
    const std::uint64_t wire = payloadBytes + Network::kHeaderBytes;
    const double leave = std::max(readyVt, nicFree_[h].load());
    // NIC occupancy is the beta term only; the receiver additionally pays the
    // one-message alpha below, matching NetworkModel::transferSeconds.
    nicFree_[h].store(leave + static_cast<double>(wire) / model_.bandwidthBytesPerSec);
    clock_[h].store(std::max(clock_[h].load(), leave));
    return leave + model_.transferSeconds(wire, 1);
  }

  /// Fold a message's arrival stamp into host `h`'s clock.
  void observeArrival(HostId h, double arriveAt) noexcept {
    clock_[h].store(std::max(clock_[h].load(), arriveAt));
  }

  /// Modelled makespan: the latest clock on the board.
  double makespan() const noexcept {
    double m = 0.0;
    for (const auto& c : clock_) m = std::max(m, c.load());
    return m;
  }

 private:
  // Single-writer-per-slot atomics (only makespan/now cross threads).
  struct Cell {
    std::atomic<double> v{0.0};
    double load() const noexcept { return v.load(std::memory_order_relaxed); }
    void store(double x) noexcept { v.store(x, std::memory_order_relaxed); }
  };

  NetworkModel model_;
  std::vector<Cell> clock_;
  std::vector<Cell> nicFree_;
};

}  // namespace gw2v::sim
