#pragma once

// Analytical cost model for the simulated interconnect.
//
// The paper evaluates on Azure with 56 Gb/s InfiniBand; our hosts live in one
// process, so communication *time* is modelled with the standard
// alpha-beta (latency + bytes/bandwidth) model applied to the exactly-counted
// traffic. Defaults match the paper's fabric.

#include <algorithm>
#include <cstdint>

#include "sim/comm_stats.h"

namespace gw2v::sim {

struct NetworkModel {
  /// Per-message latency (alpha), seconds. 2 microseconds is a typical
  /// InfiniBand RDMA small-message latency.
  double latencySeconds = 2e-6;
  /// Effective point-to-point bandwidth (beta), bytes/second.
  /// 56 Gb/s IB FDR ~ 7 GB/s line rate; ~5.6 GB/s achievable.
  double bandwidthBytesPerSec = 5.6e9;

  /// Time for one host to push `bytes` over `messages` messages.
  double transferSeconds(std::uint64_t bytes, std::uint64_t messages) const noexcept {
    return latencySeconds * static_cast<double>(messages) +
           static_cast<double>(bytes) / bandwidthBytesPerSec;
  }

  /// Time for a BSP exchange given one host's send+recv delta: the host's
  /// NIC is the bottleneck resource, so cost = alpha*msgs + (sent+recv)/beta.
  /// Collectives additionally record their serialized round count (ring
  /// steps, tree depth, star drain); the latency term is charged on
  /// rounds × alpha when that dominates the host's own message count, so a
  /// tree leaf still pays for the depth it waited out.
  double exchangeSeconds(const CommSnapshot& d) const noexcept {
    return transferSeconds(d.bytesSent + d.bytesReceived,
                           std::max(d.messagesSent, d.collectiveRounds));
  }
};

}  // namespace gw2v::sim
