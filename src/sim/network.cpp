#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gw2v::sim {

Network::Network(unsigned numHosts)
    : numHosts_(numHosts), mailboxes_(numHosts), stats_(numHosts) {
  if (numHosts == 0) throw std::invalid_argument("Network: numHosts must be >= 1");
}

void Network::send(HostId src, HostId dst, int tag, std::vector<std::uint8_t> payload,
                   CommPhase phase) {
  assert(src < numHosts_ && dst < numHosts_);
  if (aborted()) throw NetworkAborted();
  const std::uint64_t wire = payload.size() + kHeaderBytes;
  stats_[src].recordSend(phase, wire);
  stats_[dst].recordReceive(phase, wire);
  if (src == dst) {
    // Loopback still goes through the mailbox so the programming model is
    // uniform, but a real NIC would not be crossed; keep the accounting — a
    // single-host cluster simply has near-zero cross-host traffic by
    // construction (the sync engine never loops back bulk data).
  }
  Mailbox& mb = mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.messages.push_back(Message{src, tag, std::move(payload)});
  }
  mb.cv.notify_all();
}

std::vector<std::uint8_t> Network::recv(HostId dst, HostId src, int tag, CommPhase /*phase*/) {
  assert(dst < numHosts_ && src < numHosts_);
  Mailbox& mb = mailboxes_[dst];
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    if (aborted()) throw NetworkAborted();
    const auto it = std::find_if(mb.messages.begin(), mb.messages.end(), [&](const Message& m) {
      return m.src == src && m.tag == tag;
    });
    if (it != mb.messages.end()) {
      std::vector<std::uint8_t> payload = std::move(it->payload);
      mb.messages.erase(it);
      return payload;
    }
    mb.cv.wait(lock);
  }
}

std::pair<HostId, std::vector<std::uint8_t>> Network::recvAny(HostId dst, int tag,
                                                              CommPhase /*phase*/) {
  assert(dst < numHosts_);
  Mailbox& mb = mailboxes_[dst];
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    if (aborted()) throw NetworkAborted();
    const auto it = std::find_if(mb.messages.begin(), mb.messages.end(),
                                 [&](const Message& m) { return m.tag == tag; });
    if (it != mb.messages.end()) {
      std::pair<HostId, std::vector<std::uint8_t>> out{it->src, std::move(it->payload)};
      mb.messages.erase(it);
      return out;
    }
    mb.cv.wait(lock);
  }
}

void Network::barrier(HostId /*host*/) {
  std::unique_lock<std::mutex> lock(barrierMutex_);
  if (aborted()) throw NetworkAborted();
  const std::uint64_t gen = barrierGeneration_;
  if (++barrierCount_ == numHosts_) {
    barrierCount_ = 0;
    ++barrierGeneration_;
    barrierCv_.notify_all();
  } else {
    barrierCv_.wait(lock, [&] { return barrierGeneration_ != gen || aborted(); });
    if (barrierGeneration_ == gen && aborted()) {
      // Leave the count consistent for any post-mortem inspection; the run
      // is over either way.
      --barrierCount_;
      throw NetworkAborted();
    }
  }
}

void Network::registerTagRange(int lo, int hi, const char* owner) {
  if (lo >= hi) throw std::logic_error("registerTagRange: empty range");
  std::lock_guard<std::mutex> lock(tagRangeMutex_);
  for (const TagRange& r : tagRanges_) {
    const bool overlaps = lo < r.hi && r.lo < hi;
    if (r.owner == owner) {
      if (r.lo == lo && r.hi == hi) return;  // same subsystem, same block: fine
      if (overlaps)
        throw std::logic_error(std::string("registerTagRange: owner '") + owner +
                               "' re-registered with a different overlapping range");
      continue;  // one owner may hold several disjoint blocks
    }
    if (overlaps)
      throw std::logic_error(std::string("registerTagRange: [") + std::to_string(lo) + ", " +
                             std::to_string(hi) + ") for '" + owner + "' collides with [" +
                             std::to_string(r.lo) + ", " + std::to_string(r.hi) + ") owned by '" +
                             r.owner + "'");
  }
  tagRanges_.push_back(TagRange{lo, hi, owner});
}

void Network::abort() noexcept {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrierMutex_);
    barrierCv_.notify_all();
  }
}

std::uint64_t Network::totalBytesSent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytesSent();
  return total;
}

std::uint64_t Network::totalMessagesSent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.messagesSent();
  return total;
}

void Network::resetStats() noexcept {
  for (auto& s : stats_) s.reset();
}

}  // namespace gw2v::sim
