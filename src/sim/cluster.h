#pragma once

// SPMD launcher: runs the same program body on H simulated hosts, each a
// thread with its own HostContext (id, network endpoint, worker pool, CPU
// busy-time clock). This is the distributed-execution substrate standing in
// for the paper's 32-node Azure cluster — see DESIGN.md for the substitution
// rationale.

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/loop_stats.h"
#include "runtime/thread_pool.h"
#include "sim/comm_stats.h"
#include "sim/network.h"
#include "sim/network_model.h"
#include "util/timer.h"

namespace gw2v::sim {

class HostContext {
 public:
  HostContext(HostId id, Network& net, unsigned workerThreads)
      : id_(id), net_(net), pool_(workerThreads) {}

  HostId id() const noexcept { return id_; }
  unsigned numHosts() const noexcept { return net_.numHosts(); }
  Network& network() noexcept { return net_; }
  runtime::ThreadPool& pool() noexcept { return pool_; }

  void barrier() { net_.barrier(id_); }

  CommStats& commStats() noexcept { return net_.statsFor(id_); }

  /// Accumulated compute busy time; wrap compute sections in
  /// computeTimer().start()/stop(). On a 1-core machine this still measures
  /// the host's own CPU seconds correctly.
  util::CpuStopwatch& computeTimer() noexcept { return compute_; }
  double computeSeconds() const noexcept { return compute_.seconds(); }

  /// Modelled communication time accumulated by sync phases.
  void addModelledCommSeconds(double s) noexcept { simComm_ += s; }
  double modelledCommSeconds() const noexcept { return simComm_; }

  /// Wall-clock breakdown of the sync critical path (pack / exchange-wait /
  /// fold / apply), recorded by comm::SyncEngine every round.
  runtime::PhaseStats& syncPhases() noexcept { return syncPhases_; }
  runtime::SyncPhaseSeconds syncPhaseSeconds() const { return syncPhases_.totals(); }

 private:
  HostId id_;
  Network& net_;
  runtime::ThreadPool pool_;
  util::CpuStopwatch compute_;
  double simComm_ = 0.0;
  runtime::PhaseStats syncPhases_{1};
};

struct ClusterOptions {
  unsigned numHosts = 1;
  /// Hogwild worker threads *per host*.
  unsigned workerThreadsPerHost = 1;
  NetworkModel networkModel{};
};

struct HostReport {
  double computeSeconds = 0.0;
  double modelledCommSeconds = 0.0;
  CommSnapshot comm{};
  runtime::SyncPhaseSeconds sync{};
};

struct ClusterReport {
  std::vector<HostReport> hosts;
  double wallSeconds = 0.0;

  /// Simulated cluster makespan: slowest host's compute + its modelled comm.
  double simulatedSeconds() const noexcept {
    double worst = 0.0;
    for (const auto& h : hosts) {
      const double t = h.computeSeconds + h.modelledCommSeconds;
      if (t > worst) worst = t;
    }
    return worst;
  }
  double maxComputeSeconds() const noexcept {
    double worst = 0.0;
    for (const auto& h : hosts) worst = h.computeSeconds > worst ? h.computeSeconds : worst;
    return worst;
  }
  double maxModelledCommSeconds() const noexcept {
    double worst = 0.0;
    for (const auto& h : hosts)
      worst = h.modelledCommSeconds > worst ? h.modelledCommSeconds : worst;
    return worst;
  }
  std::uint64_t totalBytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& h : hosts) total += h.comm.bytesSent;
    return total;
  }
  /// Per-phase maxima across hosts — the straggler view of where sync wall
  /// time goes (pack/exchange/fold/apply).
  runtime::SyncPhaseSeconds maxSyncPhaseSeconds() const noexcept {
    runtime::SyncPhaseSeconds worst{};
    for (const auto& h : hosts) {
      worst.pack = h.sync.pack > worst.pack ? h.sync.pack : worst.pack;
      worst.exchange = h.sync.exchange > worst.exchange ? h.sync.exchange : worst.exchange;
      worst.fold = h.sync.fold > worst.fold ? h.sync.fold : worst.fold;
      worst.apply = h.sync.apply > worst.apply ? h.sync.apply : worst.apply;
    }
    return worst;
  }
};

/// Run `body(ctx)` on every simulated host; rethrows the first host
/// exception after all hosts joined. Returns per-host timing/traffic.
ClusterReport runCluster(const ClusterOptions& opts,
                         const std::function<void(HostContext&)>& body);

}  // namespace gw2v::sim
