#include "sim/cluster.h"

#include <stdexcept>
#include <thread>

namespace gw2v::sim {

ClusterReport runCluster(const ClusterOptions& opts,
                         const std::function<void(HostContext&)>& body) {
  if (opts.numHosts == 0) throw std::invalid_argument("runCluster: numHosts must be >= 1");

  Network net(opts.numHosts);
  std::vector<std::unique_ptr<HostContext>> contexts;
  contexts.reserve(opts.numHosts);
  for (HostId h = 0; h < opts.numHosts; ++h) {
    contexts.push_back(std::make_unique<HostContext>(h, net, opts.workerThreadsPerHost));
  }

  util::WallTimer wall;
  std::vector<std::exception_ptr> errors(opts.numHosts);
  std::vector<std::thread> threads;
  threads.reserve(opts.numHosts);
  for (HostId h = 0; h < opts.numHosts; ++h) {
    threads.emplace_back([&, h] {
      try {
        body(*contexts[h]);
      } catch (...) {
        errors[h] = std::current_exception();
        // Poison the fabric so peers blocked in recv/barrier wake up with
        // NetworkAborted instead of deadlocking.
        net.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the root-cause exception over secondary NetworkAborted fallout.
  std::exception_ptr firstAbort;
  for (auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const NetworkAborted&) {
      if (!firstAbort) firstAbort = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (firstAbort) std::rethrow_exception(firstAbort);

  ClusterReport report;
  report.wallSeconds = wall.seconds();
  report.hosts.resize(opts.numHosts);
  for (HostId h = 0; h < opts.numHosts; ++h) {
    report.hosts[h].computeSeconds = contexts[h]->computeSeconds();
    report.hosts[h].modelledCommSeconds = contexts[h]->modelledCommSeconds();
    report.hosts[h].comm = snapshot(net.statsFor(h));
    report.hosts[h].sync = contexts[h]->syncPhaseSeconds();
  }
  return report;
}

}  // namespace gw2v::sim
