#pragma once

// Per-host communication accounting.
//
// The paper's Figures 8 and 9 analyse communication *volume* (TB exchanged)
// and the comp/comm time split. Volume we can count exactly; time on a real
// cluster is replaced here by a NetworkModel applied to the counted bytes
// (see DESIGN.md "Simulated time").

#include <atomic>
#include <cstdint>

namespace gw2v::sim {

/// Which logical phase of the BSP round a message belongs to. Reduce is
/// mirrors->master traffic, Broadcast is master->mirrors, Control covers
/// metadata (bit-vectors, will-access sets, sizes).
enum class CommPhase : int { kReduce = 0, kBroadcast = 1, kControl = 2, kOther = 3 };
inline constexpr int kNumCommPhases = 4;

struct PhaseCounters {
  std::atomic<std::uint64_t> bytesSent{0};
  std::atomic<std::uint64_t> bytesReceived{0};
  std::atomic<std::uint64_t> messagesSent{0};
};

class CommStats {
 public:
  void recordSend(CommPhase phase, std::uint64_t bytes) noexcept {
    auto& c = phases_[static_cast<int>(phase)];
    c.bytesSent.fetch_add(bytes, std::memory_order_relaxed);
    c.messagesSent.fetch_add(1, std::memory_order_relaxed);
  }
  void recordReceive(CommPhase phase, std::uint64_t bytes) noexcept {
    phases_[static_cast<int>(phase)].bytesReceived.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Serialized rounds this host sat through inside collective operations
  /// (ring steps, tree depth, star drain length). The NetworkModel charges
  /// latency on max(messages, rounds), so algorithm depth shows up in
  /// modelled time even when this host sent few messages itself.
  void recordCollectiveRounds(std::uint64_t rounds) noexcept {
    collectiveRounds_.fetch_add(rounds, std::memory_order_relaxed);
  }
  std::uint64_t collectiveRounds() const noexcept {
    return collectiveRounds_.load(std::memory_order_relaxed);
  }

  std::uint64_t bytesSent() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : phases_) total += c.bytesSent.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t bytesReceived() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : phases_) total += c.bytesReceived.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t messagesSent() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : phases_) total += c.messagesSent.load(std::memory_order_relaxed);
    return total;
  }

  std::uint64_t bytesSent(CommPhase phase) const noexcept {
    return phases_[static_cast<int>(phase)].bytesSent.load(std::memory_order_relaxed);
  }
  std::uint64_t messagesSent(CommPhase phase) const noexcept {
    return phases_[static_cast<int>(phase)].messagesSent.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& c : phases_) {
      c.bytesSent.store(0, std::memory_order_relaxed);
      c.bytesReceived.store(0, std::memory_order_relaxed);
      c.messagesSent.store(0, std::memory_order_relaxed);
    }
    collectiveRounds_.store(0, std::memory_order_relaxed);
  }

 private:
  PhaseCounters phases_[kNumCommPhases];
  std::atomic<std::uint64_t> collectiveRounds_{0};
};

/// Plain (non-atomic) snapshot used to compute per-round deltas.
struct CommSnapshot {
  std::uint64_t bytesSent = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t messagesSent = 0;
  std::uint64_t collectiveRounds = 0;
};

inline CommSnapshot snapshot(const CommStats& s) {
  return {s.bytesSent(), s.bytesReceived(), s.messagesSent(), s.collectiveRounds()};
}

inline CommSnapshot delta(const CommSnapshot& before, const CommSnapshot& after) {
  return {after.bytesSent - before.bytesSent, after.bytesReceived - before.bytesReceived,
          after.messagesSent - before.messagesSent,
          after.collectiveRounds - before.collectiveRounds};
}

}  // namespace gw2v::sim
