#pragma once

// The seam between model::EmbeddingTable and the out-of-core storage tier
// (src/store/). A table normally owns its row matrix in RAM; attachStore()
// hands row residency to a RowStoreBackend instead, and every row-pointer
// derivation in the table routes through resolveRow(). The backend decides
// what "resident" means — the store:: implementation keeps a bounded budget
// of fixed-size row blocks cached over a durable block file, faulting blocks
// in on demand and writing dirty blocks back before eviction.
//
// The interface lives in model/ (not store/) so the table keeps zero
// knowledge of block formats, files, or eviction policy; store/ depends on
// model/, never the reverse.

#include <cstdint>

namespace gw2v::model {

class RowStoreBackend {
 public:
  virtual ~RowStoreBackend() = default;

  /// Pointer to the row's current bits (util::rowStrideFloats(dim) floats,
  /// 64B-aligned), faulting its block resident if needed. forWrite marks the
  /// block dirty: its bytes are written back to the backing file before its
  /// frame is ever reused.
  ///
  /// Lifetime contract: the pointer stays valid until later resolves have
  /// faulted enough *distinct* blocks to cycle the entire cache budget.
  /// Callers in this codebase hold at most a handful of row spans at once
  /// (SGNS: one context + one target per table; pack/apply/snapshot loops:
  /// one), and store::spillTable floors attached budgets at several blocks,
  /// so a held span is never evicted out from under its holder.
  ///
  /// I/O failure while faulting or writing back has no recovery path
  /// mid-training; implementations abort via the noexcept row accessors.
  virtual float* resolveRow(std::uint32_t row, bool forWrite) noexcept = 0;
};

}  // namespace gw2v::model
