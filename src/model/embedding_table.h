#pragma once

// model::EmbeddingTable — one dense row matrix with built-in change
// tracking, the storage substrate behind graph::ModelGraph.
//
// Layout contract (util/aligned.h): 64-byte-aligned base, consecutive rows
// util::rowStrideFloats(dim) apart, so every row starts on a cache line and
// the widest SIMD loads never split one.
//
// Change tracking replaces the dense per-label "baseline" copies the sync
// layer used to keep. After every sync round the model IS the baseline:
// masters hold canonical values, broadcast overwrote receiving mirrors, and
// locally-touched mirrors a PullModel round skipped are rebased to what they
// hold by definition. So a row's pre-round value only needs to be
// materialized when the row is first touched. mutableRow() does exactly
// that: the first caller per round wins the dirty bit
// (util::BitVector::testAndSet) and snapshots the row into the DeltaLog;
// baselineRow() then serves dirty rows from the log and clean rows from the
// matrix itself. Rebaselining collapses to clearDirty() — reset bits, rewind
// the log — with no full-model copies anywhere.
//
// Three write paths, chosen by intent:
//   mutableRow()   tracked training update: first-touch capture + dirty bit
//                  + row version
//   overwriteRow() replace with externally-canonical bits (sync broadcast
//                  and apply, parameter-server pulls): row version bump only
//   untrackedRow() bulk init / checkpoint load / model composition: no
//                  tracking at all
//
// Versioning: version() is bumped by clearDirty(); each row records the
// version it was last written under, which lets the serving layer
// renormalize only rows changed since a snapshot was published (an
// over-approximation within the current version epoch, never an under-
// approximation, since renormalization is idempotent).
//
// Concurrency: mutableRow/overwriteRow race benignly between Hogwild
// workers exactly like the raw matrices did. A capture racing a concurrent
// writer of the same row may snapshot a torn mix of pre- and post-update
// bits — the same class of benign loss word2vec.c tolerates. With one
// worker thread per host (every determinism and regression test) capture is
// exact and sync payloads are bit-identical to the dense-baseline
// implementation.

// Out-of-core mode (src/store/): attachStore() hands row residency to a
// RowStoreBackend and releases the in-RAM matrix; every row-pointer
// derivation then routes through the backend's resolveRow(), which faults
// the row's block into a bounded cache (read-through) and marks written
// blocks for write-back before eviction. The change-tracking state — dirty
// bits, DeltaLog captures, row versions — always stays in RAM (it is O(rows)
// bits + O(dirty) rows), so sync, codecs, the parameter server, and serving
// observe the exact same protocol whether the matrix is resident or spilled:
// a faulted row's bytes round-trip the block file bit-for-bit.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>

#include "model/delta_log.h"
#include "model/row_store.h"
#include "util/aligned.h"
#include "util/bitvector.h"

namespace gw2v::model {

class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  EmbeddingTable(std::uint32_t numRows, std::uint32_t dim) { init(numRows, dim); }

  /// Deep copy. A spilled source is copied as a plain in-RAM table: rows are
  /// read back through its backend (the backend itself — cache, file handle —
  /// is not duplicated; spill the copy again if it should be out-of-core).
  EmbeddingTable(const EmbeddingTable& o) { copyFrom(o); }
  EmbeddingTable& operator=(const EmbeddingTable& o) {
    if (this != &o) copyFrom(o);
    return *this;
  }
  EmbeddingTable(EmbeddingTable&&) = default;
  EmbeddingTable& operator=(EmbeddingTable&&) = default;

  /// Discards any attached store backend.
  void init(std::uint32_t numRows, std::uint32_t dim);

  std::uint32_t numRows() const noexcept { return numRows_; }
  std::uint32_t dim() const noexcept { return dim_; }
  std::uint32_t stride() const noexcept { return stride_; }

  /// Monotone table version; starts at 1, bumped by clearDirty().
  std::uint64_t version() const noexcept { return version_.v.load(std::memory_order_relaxed); }

  /// Version the row was last written under (0 = untouched since init;
  /// untrackedRow writes deliberately don't bump it).
  std::uint64_t rowVersion(std::uint32_t row) const noexcept {
    return rowVersion_[row].v.load(std::memory_order_relaxed);
  }

  std::span<const float> row(std::uint32_t row) const noexcept { return {readPtr(row), dim_}; }

  /// Tracked training update: first touch per round claims the dirty bit and
  /// snapshots the pre-touch bits into the DeltaLog.
  std::span<float> mutableRow(std::uint32_t row) noexcept {
    float* p = writePtr(row);
    if (!dirty_.test(row) && !dirty_.testAndSet(row)) {
      log_.capture(row, p);
      rowVersion_[row].v.store(version_.v.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    return {util::checkedRow(p), dim_};
  }

  /// Replace the row with externally-canonical bits: bumps the row version
  /// (serving must renormalize it) without touching the dirty set — the
  /// caller is writing a value the cluster already agreed on, not a local
  /// update that needs to be shipped.
  std::span<float> overwriteRow(std::uint32_t row) noexcept {
    rowVersion_[row].v.store(version_.v.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    return {util::checkedRow(writePtr(row)), dim_};
  }

  /// No tracking at all: bulk init, checkpoint load, result composition.
  /// Incremental snapshot publishes are not valid across untracked rewrites.
  std::span<float> untrackedRow(std::uint32_t row) noexcept {
    return {util::checkedRow(writePtr(row)), dim_};
  }

  /// Same first-touch capture as mutableRow without returning the span.
  /// Callers must not have modified the row since the last clearDirty()
  /// except through mutableRow(), or the captured baseline is already stale.
  void markDirty(std::uint32_t row) noexcept {
    if (!dirty_.test(row) && !dirty_.testAndSet(row)) {
      log_.capture(row, writePtr(row));
      rowVersion_[row].v.store(version_.v.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
  }

  bool isDirty(std::uint32_t row) const noexcept { return dirty_.test(row); }
  const util::BitVector& dirty() const noexcept { return dirty_; }
  std::size_t dirtyCount() const noexcept { return dirty_.count(); }

  /// The row's value as of the last clearDirty(): the DeltaLog capture for
  /// dirty rows, the row itself (unchanged since) for clean ones.
  std::span<const float> baselineRow(std::uint32_t row) const noexcept {
    if (dirty_.test(row)) return {log_.oldRow(row), dim_};
    return {readPtr(row), dim_};
  }

  /// fn(row, old, current) for every dirty row in [lo, hi), ascending.
  template <typename Fn>
  void forEachDeltaInRange(std::uint32_t lo, std::uint32_t hi, Fn&& fn) const {
    dirty_.forEachSetInRange(lo, hi, [&](std::size_t n) {
      const auto r = static_cast<std::uint32_t>(n);
      fn(r, std::span<const float>(log_.oldRow(r), dim_),
         std::span<const float>(readPtr(r), dim_));
    });
  }

  template <typename Fn>
  void forEachDelta(Fn&& fn) const {
    forEachDeltaInRange(0, numRows_, std::forward<Fn>(fn));
  }

  /// Declare the current model the new baseline: reset the dirty set, rewind
  /// the log, advance the table version. O(dirty set + bitvector words).
  void clearDirty() noexcept;

  /// Commit-clock hook for external protocols (the ps:: server): advance the
  /// table version so subsequent writes stamp the new epoch, making
  /// rowVersion(r) == 1 + the last commit clock that touched r. Equivalent to
  /// clearDirty() on a table written only through overwriteRow (whose dirty
  /// set stays empty), spelled so call sites read as what they mean.
  void advanceVersion() noexcept { clearDirty(); }

  // ---- Out-of-core storage (src/store/ attaches here). ---------------------

  /// Hand row residency to `backend` and release the in-RAM matrix. The
  /// backend must already hold every row's current bits (store::spillTable
  /// writes them to the block file before attaching). Change tracking is
  /// unaffected: dirty bits, DeltaLog captures, and versions carry over, so
  /// attaching mid-round is safe.
  void attachStore(std::unique_ptr<RowStoreBackend> backend);

  /// Rematerialize the matrix in RAM (reading every row back through the
  /// backend) and drop the backend. No-op when not spilled.
  void detachStore();

  bool spilled() const noexcept { return store_ != nullptr; }
  /// The attached backend (nullptr when in-RAM) — downcast for counters.
  RowStoreBackend* store() const noexcept { return store_.get(); }

 private:
  const float* readPtr(std::uint32_t row) const noexcept {
    if (store_ != nullptr) return store_->resolveRow(row, /*forWrite=*/false);
    return data_.data() + static_cast<std::size_t>(row) * stride_;
  }
  float* writePtr(std::uint32_t row) noexcept {
    if (store_ != nullptr) return store_->resolveRow(row, /*forWrite=*/true);
    return data_.data() + static_cast<std::size_t>(row) * stride_;
  }

  void copyFrom(const EmbeddingTable& o);

  std::uint32_t numRows_ = 0;
  std::uint32_t dim_ = 0;
  std::uint32_t stride_ = 0;
  util::AlignedVector<float> data_;
  util::BitVector dirty_;
  DeltaLog log_;
  std::vector<detail::RelaxedCell<std::uint64_t>> rowVersion_;
  detail::RelaxedCell<std::uint64_t> version_;
  /// Non-null = spilled: row residency delegated to the out-of-core tier.
  /// mutable because faulting a block on a const read does not change the
  /// table's logical contents.
  mutable std::unique_ptr<RowStoreBackend> store_;
};

}  // namespace gw2v::model
