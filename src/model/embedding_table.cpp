#include "model/embedding_table.h"

#include <cstring>

namespace gw2v::model {

void EmbeddingTable::init(std::uint32_t numRows, std::uint32_t dim) {
  if (dim == 0) throw std::invalid_argument("EmbeddingTable: dim must be >= 1");
  store_.reset();
  numRows_ = numRows;
  dim_ = dim;
  stride_ = static_cast<std::uint32_t>(util::rowStrideFloats(dim));
  data_.assign(static_cast<std::size_t>(numRows) * stride_, 0.0f);
  dirty_.resize(numRows);
  log_.init(numRows, stride_);
  rowVersion_.assign(numRows, detail::RelaxedCell<std::uint64_t>{});
  version_.v.store(1, std::memory_order_relaxed);
}

void EmbeddingTable::clearDirty() noexcept {
  dirty_.reset();
  log_.rewind();
  version_.v.fetch_add(1, std::memory_order_relaxed);
}

void EmbeddingTable::attachStore(std::unique_ptr<RowStoreBackend> backend) {
  if (backend == nullptr) throw std::invalid_argument("attachStore: null backend");
  store_ = std::move(backend);
  // Release the matrix: residency now belongs to the backend. swap (not
  // clear) so the capacity is returned to the allocator immediately.
  util::AlignedVector<float>().swap(data_);
}

void EmbeddingTable::detachStore() {
  if (store_ == nullptr) return;
  util::AlignedVector<float> resident(static_cast<std::size_t>(numRows_) * stride_, 0.0f);
  for (std::uint32_t r = 0; r < numRows_; ++r) {
    std::memcpy(resident.data() + static_cast<std::size_t>(r) * stride_,
                store_->resolveRow(r, /*forWrite=*/false), stride_ * sizeof(float));
  }
  data_ = std::move(resident);
  store_.reset();
}

void EmbeddingTable::copyFrom(const EmbeddingTable& o) {
  numRows_ = o.numRows_;
  dim_ = o.dim_;
  stride_ = o.stride_;
  dirty_ = o.dirty_;
  log_ = o.log_;
  rowVersion_ = o.rowVersion_;
  version_ = o.version_;
  store_.reset();
  if (o.store_ != nullptr) {
    // Materialize a spilled source as a plain in-RAM copy; the backend
    // (cache state, file handle) stays with the source.
    data_.assign(static_cast<std::size_t>(numRows_) * stride_, 0.0f);
    for (std::uint32_t r = 0; r < numRows_; ++r) {
      std::memcpy(data_.data() + static_cast<std::size_t>(r) * stride_,
                  o.store_->resolveRow(r, /*forWrite=*/false), stride_ * sizeof(float));
    }
  } else {
    data_ = o.data_;
  }
}

}  // namespace gw2v::model
