#include "model/embedding_table.h"

namespace gw2v::model {

void EmbeddingTable::init(std::uint32_t numRows, std::uint32_t dim) {
  if (dim == 0) throw std::invalid_argument("EmbeddingTable: dim must be >= 1");
  numRows_ = numRows;
  dim_ = dim;
  stride_ = static_cast<std::uint32_t>(util::rowStrideFloats(dim));
  data_.assign(static_cast<std::size_t>(numRows) * stride_, 0.0f);
  dirty_.resize(numRows);
  log_.init(numRows, stride_);
  rowVersion_.assign(numRows, detail::RelaxedCell<std::uint64_t>{});
  version_.v.store(1, std::memory_order_relaxed);
}

void EmbeddingTable::clearDirty() noexcept {
  dirty_.reset();
  log_.rewind();
  version_.v.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gw2v::model
