#pragma once

// Row-granular change log backing model::EmbeddingTable (see
// embedding_table.h for the capture protocol and why it is bit-exact).
//
// The log owns a chunked arena of row-sized slots. The first writer to touch
// a row after a sync round claims a slot from an atomic counter and
// snapshots the row's pre-touch bits into it; slots live until the owning
// table clears its dirty set, which simply rewinds the counter (chunks are
// kept for reuse, stale slot ids are never consulted because the dirty bits
// are reset in the same breath). Chunks are allocated lazily under a mutex,
// and the chunk directory is sized up-front so concurrent captures never see
// it move.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/aligned.h"

namespace gw2v::model {

namespace detail {

/// Relaxed-atomic cell with value-copy semantics so containers of atomics —
/// and the model objects holding them — keep normal copy/move behaviour.
template <typename T>
struct RelaxedCell {
  std::atomic<T> v{};
  RelaxedCell() = default;
  RelaxedCell(const RelaxedCell& o) : v(o.v.load(std::memory_order_relaxed)) {}
  RelaxedCell& operator=(const RelaxedCell& o) {
    v.store(o.v.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
};

/// A mutex that "copies" as a fresh mutex: it guards per-object chunk
/// growth, not content, so copying the content must not copy the lock.
struct UncopiedMutex {
  std::mutex m;
  UncopiedMutex() = default;
  UncopiedMutex(const UncopiedMutex&) noexcept {}
  UncopiedMutex& operator=(const UncopiedMutex&) noexcept { return *this; }
};

}  // namespace detail

class DeltaLog {
 public:
  DeltaLog() = default;

  /// Size for numRows rows of strideFloats floats each. Forgets all captures;
  /// previously grown chunks are released.
  void init(std::uint32_t numRows, std::uint32_t strideFloats);

  /// Snapshot src (stride floats) as row's pre-touch value. Must be called at
  /// most once per row between rewind()s — EmbeddingTable's dirty-bit claim
  /// (BitVector::testAndSet) elects that single caller.
  void capture(std::uint32_t row, const float* src);

  /// The captured pre-touch bits for a row. Only meaningful while the owning
  /// table's dirty bit for row is set.
  const float* oldRow(std::uint32_t row) const noexcept {
    const std::uint32_t slot = slotOf_[row].v.load(std::memory_order_acquire);
    return chunks_[slot / kRowsPerChunk].data() +
           static_cast<std::size_t>(slot % kRowsPerChunk) * stride_;
  }

  /// Slots claimed since the last rewind().
  std::uint32_t size() const noexcept { return next_.v.load(std::memory_order_relaxed); }

  /// Forget every capture in O(1); chunks are kept for reuse.
  void rewind() noexcept { next_.v.store(0, std::memory_order_relaxed); }

 private:
  static constexpr std::uint32_t kRowsPerChunk = 256;

  std::uint32_t stride_ = 0;
  /// Sized to the worst case at init so capture never moves the directory;
  /// individual chunks grow lazily under growMu_.
  std::vector<util::AlignedVector<float>> chunks_;
  detail::RelaxedCell<std::uint32_t> allocatedChunks_;
  std::vector<detail::RelaxedCell<std::uint32_t>> slotOf_;
  detail::RelaxedCell<std::uint32_t> next_;
  detail::UncopiedMutex growMu_;
};

}  // namespace gw2v::model
