#include "model/delta_log.h"

namespace gw2v::model {

void DeltaLog::init(std::uint32_t numRows, std::uint32_t strideFloats) {
  stride_ = strideFloats;
  chunks_.clear();
  chunks_.resize((static_cast<std::size_t>(numRows) + kRowsPerChunk - 1) / kRowsPerChunk);
  allocatedChunks_.v.store(0, std::memory_order_relaxed);
  slotOf_.assign(numRows, detail::RelaxedCell<std::uint32_t>{});
  next_.v.store(0, std::memory_order_relaxed);
}

void DeltaLog::capture(std::uint32_t row, const float* src) {
  const std::uint32_t slot = next_.v.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t ci = slot / kRowsPerChunk;
  if (ci >= allocatedChunks_.v.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> g(growMu_.m);
    while (allocatedChunks_.v.load(std::memory_order_relaxed) <= ci) {
      const std::uint32_t grown = allocatedChunks_.v.load(std::memory_order_relaxed);
      chunks_[grown].resize(static_cast<std::size_t>(kRowsPerChunk) * stride_);
      allocatedChunks_.v.store(grown + 1, std::memory_order_release);
    }
  }
  std::memcpy(chunks_[ci].data() + static_cast<std::size_t>(slot % kRowsPerChunk) * stride_, src,
              static_cast<std::size_t>(stride_) * sizeof(float));
  slotOf_[row].v.store(slot, std::memory_order_release);
}

}  // namespace gw2v::model
