#pragma once

// Read/write analogy suites in the original question-words.txt format:
//
//   : capital-common-countries
//   Athens Greece Baghdad Iraq
//   ...
//
// so real evaluation sets drop in unchanged, and the synthetic suites can be
// exported for use with the original word2vec compute-accuracy tool.
// Categories whose name starts with "gram" are bucketed as syntactic,
// following the original scripts.

#include <string>
#include <vector>

#include "synth/generator.h"

namespace gw2v::eval {

/// Parse question-words.txt content; throws std::runtime_error on lines
/// that are neither ": name" headers nor 4-token questions.
std::vector<synth::AnalogyCategory> parseQuestionWords(const std::string& body);

/// Load from a file.
std::vector<synth::AnalogyCategory> loadQuestionWords(const std::string& path);

/// Serialize a suite back to the format.
std::string formatQuestionWords(const std::vector<synth::AnalogyCategory>& suite);

/// Write to a file.
void saveQuestionWords(const std::string& path,
                       const std::vector<synth::AnalogyCategory>& suite);

}  // namespace gw2v::eval
