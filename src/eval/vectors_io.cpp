#include "eval/vectors_io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace gw2v::eval {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};
using File = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

void saveTextVectors(const std::string& path, const graph::ModelGraph& model,
                     const text::Vocabulary& vocab) {
  if (model.numNodes() != vocab.size())
    throw std::invalid_argument("saveTextVectors: model/vocabulary size mismatch");
  File f(std::fopen(path.c_str(), "w"));
  if (!f) throw std::runtime_error("saveTextVectors: cannot open " + path);
  std::fprintf(f.get(), "%u %u\n", model.numNodes(), model.dim());
  for (std::uint32_t w = 0; w < model.numNodes(); ++w) {
    std::fputs(vocab.wordOf(w).c_str(), f.get());
    for (const float v : model.row(graph::Label::kEmbedding, w)) {
      std::fprintf(f.get(), " %.6g", static_cast<double>(v));
    }
    std::fputc('\n', f.get());
  }
  if (std::ferror(f.get())) throw std::runtime_error("saveTextVectors: write failed");
}

LoadedVectors loadTextVectors(const std::string& path) {
  File f(std::fopen(path.c_str(), "r"));
  if (!f) throw std::runtime_error("loadTextVectors: cannot open " + path);

  unsigned numWords = 0, dim = 0;
  if (std::fscanf(f.get(), "%u %u", &numWords, &dim) != 2 || dim == 0)
    throw std::runtime_error("loadTextVectors: malformed header in " + path);

  LoadedVectors out;
  out.model.init(numWords, dim);
  std::vector<std::string> words(numWords);
  char wordBuf[4096];
  for (unsigned w = 0; w < numWords; ++w) {
    if (std::fscanf(f.get(), "%4095s", wordBuf) != 1)
      throw std::runtime_error("loadTextVectors: truncated file (word)");
    words[w] = wordBuf;
    auto row = out.model.untrackedRow(graph::Label::kEmbedding, w);
    for (unsigned d = 0; d < dim; ++d) {
      float v = 0.0f;
      if (std::fscanf(f.get(), "%f", &v) != 1)
        throw std::runtime_error("loadTextVectors: truncated file (vector)");
      row[d] = v;
    }
  }

  // True counts are not stored in the format; synthesize strictly-descending
  // surrogates so finalize() preserves file order (the writer's id order).
  for (unsigned w = 0; w < numWords; ++w) {
    out.vocab.addCount(words[w], static_cast<std::uint64_t>(numWords) - w + 1);
  }
  out.vocab.finalize(1);
  for (unsigned w = 0; w < numWords; ++w) {
    if (out.vocab.wordOf(w) != words[w])
      throw std::runtime_error("loadTextVectors: duplicate word in " + path);
  }
  return out;
}

}  // namespace gw2v::eval
