#pragma once

// Save/load embeddings in the word2vec text format ("V D\nword v0 v1 ...")
// so trained models interoperate with the original distance/accuracy tools,
// gensim's KeyedVectors loader, and friends.

#include <string>

#include "graph/model_graph.h"
#include "text/vocabulary.h"

namespace gw2v::eval {

/// Write embedding vectors (the kEmbedding label) to `path`.
void saveTextVectors(const std::string& path, const graph::ModelGraph& model,
                     const text::Vocabulary& vocab);

struct LoadedVectors {
  text::Vocabulary vocab;  // counts are unknown: all set to 1, input order kept
  graph::ModelGraph model;
};

/// Read a word2vec text file back; throws std::runtime_error on malformed
/// input. Word ids follow file order (the writer emits frequency order, so a
/// save/load round trip preserves ids).
LoadedVectors loadTextVectors(const std::string& path);

}  // namespace gw2v::eval
