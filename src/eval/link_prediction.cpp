#include "eval/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace gw2v::eval {

namespace {

float cosine(const EmbeddingView& view, text::WordId a, text::WordId b) {
  // Rows are unit-normalized by the view, so the dot product is the cosine.
  const auto va = view.vectorOf(a);
  const auto vb = view.vectorOf(b);
  float dot = 0.0f;
  for (std::size_t i = 0; i < va.size(); ++i) dot += va[i] * vb[i];
  return dot;
}

bool hasEdge(const graph::CSRGraph& g, graph::NodeId u, graph::NodeId v) {
  const auto nbrs = g.neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

}  // namespace

EdgeSplit splitEdges(std::span<const graph::Edge> undirected, double heldFraction,
                     std::uint64_t seed) {
  if (heldFraction < 0.0 || heldFraction > 1.0)
    throw std::invalid_argument("splitEdges: heldFraction must be in [0, 1]");
  EdgeSplit out;
  std::vector<graph::Edge> all(undirected.begin(), undirected.end());
  util::Rng rng(util::hash64(seed ^ 0x11A8ED6E5ULL));
  for (std::size_t i = all.size(); i > 1; --i)
    std::swap(all[i - 1], all[rng.bounded(i)]);
  const auto heldCount = static_cast<std::size_t>(
      std::llround(heldFraction * static_cast<double>(all.size())));
  out.held.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(heldCount));
  out.train.assign(all.begin() + static_cast<std::ptrdiff_t>(heldCount), all.end());
  return out;
}

double neighborRecallAtK(const EmbeddingView& view, const graph::NodeVocabulary& nodes,
                         std::span<const graph::Edge> held, unsigned k) {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;
  auto tryDirection = [&](graph::NodeId src, graph::NodeId dst) {
    const auto ws = nodes.wordOfNode[src];
    const auto wd = nodes.wordOfNode[dst];
    if (ws == text::kInvalidWord || wd == text::kInvalidWord) return;
    ++total;
    for (const Neighbor& n : view.nearestTo(ws, k)) {
      if (n.word == wd) {
        ++hits;
        return;
      }
    }
  };
  for (const graph::Edge& e : held) {
    tryDirection(e.src, e.dst);
    tryDirection(e.dst, e.src);
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

double linkAuc(const EmbeddingView& view, const graph::NodeVocabulary& nodes,
               const graph::CSRGraph& trainGraph, std::span<const graph::Edge> held,
               std::uint64_t seed) {
  util::Rng rng(util::hash64(seed ^ 0xA0CC0FFEEULL));
  const graph::NodeId numNodes = trainGraph.numNodes();
  double score = 0.0;
  std::uint64_t total = 0;
  for (const graph::Edge& e : held) {
    const auto wu = nodes.wordOfNode[e.src];
    const auto wv = nodes.wordOfNode[e.dst];
    if (wu == text::kInvalidWord || wv == text::kInvalidWord) continue;
    // Rejection-sample a non-neighbor of u that is in the vocabulary.
    text::WordId wx = text::kInvalidWord;
    for (int tries = 0; tries < 64; ++tries) {
      const auto x = static_cast<graph::NodeId>(rng.bounded(numNodes));
      if (x == e.src || x == e.dst || hasEdge(trainGraph, e.src, x)) continue;
      if (nodes.wordOfNode[x] == text::kInvalidWord) continue;
      wx = nodes.wordOfNode[x];
      break;
    }
    if (wx == text::kInvalidWord) continue;  // near-complete graph; skip pair
    ++total;
    const float pos = cosine(view, wu, wv);
    const float neg = cosine(view, wu, wx);
    score += pos > neg ? 1.0 : pos == neg ? 0.5 : 0.0;
  }
  return total == 0 ? 0.5 : score / static_cast<double>(total);
}

}  // namespace gw2v::eval
