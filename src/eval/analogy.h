#pragma once

// Analogical-reasoning accuracy (paper Section 5.1): questions of the form
// a : b :: c : ? over 14 categories, split into semantic and syntactic;
// per-category accuracies are averaged into semantic / syntactic / total
// scores, as the paper reports in Table 3 and Figures 6-7.

#include <string>
#include <vector>

#include "eval/embedding_view.h"
#include "synth/generator.h"
#include "text/vocabulary.h"

namespace gw2v::eval {

/// One question with vocabulary ids resolved.
struct ResolvedQuestion {
  text::WordId a, b, c, expected;
};

struct ResolvedCategory {
  std::string name;
  bool semantic = true;
  std::vector<ResolvedQuestion> questions;
};

struct AccuracyReport {
  double semantic = 0.0;
  double syntactic = 0.0;
  double total = 0.0;
  std::vector<std::pair<std::string, double>> perCategory;
};

class AnalogyTask {
 public:
  /// Resolve words against the vocabulary; questions with out-of-vocabulary
  /// words are dropped (mirrors the original compute-accuracy scripts).
  AnalogyTask(const std::vector<synth::AnalogyCategory>& suite, const text::Vocabulary& vocab);

  AccuracyReport evaluate(const EmbeddingView& view) const;

  std::size_t totalQuestions() const noexcept;
  const std::vector<ResolvedCategory>& categories() const noexcept { return categories_; }

 private:
  std::vector<ResolvedCategory> categories_;
};

}  // namespace gw2v::eval
