#pragma once

// Link-prediction evaluation for node embeddings: hold out a fraction of a
// graph's edges, train on the remainder, and measure whether the embedding
// geometry recovers the held-out structure. Two standard metrics:
//
//  - neighbor-recall@k: fraction of held-out edges (u, v) where v appears in
//    the top-k cosine neighbors of u. Random vectors score ~k/|V|.
//  - link AUC: probability that a held-out edge outscores (by cosine) a
//    sampled non-edge with the same source endpoint.
//
// Both run over an eval::EmbeddingView, so they use the same normalized
// snapshot + top-k code path as the analogy/word-sim suites and the serving
// tier.

#include <cstdint>
#include <span>
#include <vector>

#include "eval/embedding_view.h"
#include "graph/csr.h"
#include "graph/random_walks.h"

namespace gw2v::eval {

struct EdgeSplit {
  std::vector<graph::Edge> train;  ///< symmetrize + build the training graph from these
  std::vector<graph::Edge> held;   ///< evaluation edges (one direction each)
};

/// Hold out round(heldFraction * |edges|) edges uniformly at random,
/// deterministic per seed. `undirected` is the one-direction-per-edge list
/// (pre-symmetrize); both returned lists are in that form.
EdgeSplit splitEdges(std::span<const graph::Edge> undirected, double heldFraction,
                     std::uint64_t seed);

/// Fraction of held edges (u, v) — counting both endpoints' directions —
/// where the other endpoint's word ranks in the top-k cosine neighbors.
/// Edge directions whose source or destination is missing from the
/// vocabulary (isolated in the training graph) are skipped.
double neighborRecallAtK(const EmbeddingView& view, const graph::NodeVocabulary& nodes,
                         std::span<const graph::Edge> held, unsigned k);

/// AUC over (held edge, sampled non-edge) pairs: for each held edge (u, v),
/// sample x uniformly with (u, x) not an edge of `trainGraph`, x != u, and
/// score 1 / 0.5 / 0 for cos(u,v) > / = / < cos(u,x). Deterministic per
/// seed. ~0.5 for random embeddings, -> 1 as geometry recovers structure.
double linkAuc(const EmbeddingView& view, const graph::NodeVocabulary& nodes,
               const graph::CSRGraph& trainGraph, std::span<const graph::Edge> held,
               std::uint64_t seed);

}  // namespace gw2v::eval
