#include "eval/analogy.h"

namespace gw2v::eval {

AnalogyTask::AnalogyTask(const std::vector<synth::AnalogyCategory>& suite,
                         const text::Vocabulary& vocab) {
  categories_.reserve(suite.size());
  for (const auto& cat : suite) {
    ResolvedCategory rc;
    rc.name = cat.name;
    rc.semantic = cat.semantic;
    for (const auto& q : cat.questions) {
      const auto a = vocab.idOf(q.a);
      const auto b = vocab.idOf(q.b);
      const auto c = vocab.idOf(q.c);
      const auto d = vocab.idOf(q.expected);
      if (a && b && c && d) rc.questions.push_back({*a, *b, *c, *d});
    }
    categories_.push_back(std::move(rc));
  }
}

std::size_t AnalogyTask::totalQuestions() const noexcept {
  std::size_t n = 0;
  for (const auto& c : categories_) n += c.questions.size();
  return n;
}

AccuracyReport AnalogyTask::evaluate(const EmbeddingView& view) const {
  AccuracyReport report;
  double semSum = 0.0, synSum = 0.0;
  unsigned semCats = 0, synCats = 0;

  for (const auto& cat : categories_) {
    double acc = 0.0;
    if (!cat.questions.empty()) {
      unsigned correct = 0;
      for (const auto& q : cat.questions) {
        if (view.predictAnalogy(q.a, q.b, q.c) == q.expected) ++correct;
      }
      acc = 100.0 * static_cast<double>(correct) / static_cast<double>(cat.questions.size());
    }
    report.perCategory.emplace_back(cat.name, acc);
    if (cat.semantic) {
      semSum += acc;
      ++semCats;
    } else {
      synSum += acc;
      ++synCats;
    }
  }

  report.semantic = semCats > 0 ? semSum / semCats : 0.0;
  report.syntactic = synCats > 0 ? synSum / synCats : 0.0;
  const unsigned cats = semCats + synCats;
  report.total = cats > 0 ? (semSum + synSum) / cats : 0.0;
  return report;
}

}  // namespace gw2v::eval
