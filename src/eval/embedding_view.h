#pragma once

// Read-only, unit-normalized view of trained embeddings for evaluation
// (cosine similarity, nearest neighbours, analogies) — the protocol of the
// original Word2Vec distance/accuracy tools.
//
// Since the serving tier landed, the view is a thin adapter over
// serve::EmbeddingSnapshot + serve::topkScore: the same 64B-aligned
// normalized matrix and the same batched SIMD top-k code path the online
// query engine shards across hosts, so offline eval numbers and served
// results can never drift apart.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/model_graph.h"
#include "serve/snapshot.h"
#include "text/vocabulary.h"

namespace gw2v::eval {

struct Neighbor {
  text::WordId word;
  float similarity;
};

class EmbeddingView {
 public:
  /// Copies and L2-normalizes every embedding row (into an aligned snapshot).
  EmbeddingView(const graph::ModelGraph& model, const text::Vocabulary& vocab);

  std::uint32_t vocabSize() const noexcept { return snap_->vocabSize(); }
  std::uint32_t dim() const noexcept { return snap_->dim(); }
  const text::Vocabulary& vocab() const noexcept { return *vocab_; }

  std::span<const float> vectorOf(text::WordId w) const noexcept { return snap_->row(w); }

  /// The snapshot backing this view (no embedded vocabulary). Shareable with
  /// serving-side consumers (ShardedIndex, SnapshotStore tests).
  const std::shared_ptr<const serve::EmbeddingSnapshot>& snapshot() const noexcept {
    return snap_;
  }

  /// Top-k most similar words to an arbitrary (not necessarily normalized)
  /// query vector, excluding ids in `exclude`. Ties break toward the lower
  /// word id — the same total order the sharded query engine merges under.
  std::vector<Neighbor> nearest(std::span<const float> query, unsigned k,
                                std::span<const text::WordId> exclude = {}) const;

  /// Top-k neighbours of a word (excludes the word itself).
  std::vector<Neighbor> nearestTo(text::WordId w, unsigned k) const;

  /// argmax_x cos(e_x, e_b - e_a + e_c) excluding {a,b,c} — the analogy
  /// prediction rule of the paper's Section 5.1.
  text::WordId predictAnalogy(text::WordId a, text::WordId b, text::WordId c) const;

 private:
  const text::Vocabulary* vocab_;
  std::shared_ptr<const serve::EmbeddingSnapshot> snap_;
};

}  // namespace gw2v::eval
