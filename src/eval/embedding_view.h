#pragma once

// Read-only, unit-normalized view of trained embeddings for evaluation
// (cosine similarity, nearest neighbours, analogies) — the protocol of the
// original Word2Vec distance/accuracy tools.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/model_graph.h"
#include "text/vocabulary.h"

namespace gw2v::eval {

struct Neighbor {
  text::WordId word;
  float similarity;
};

class EmbeddingView {
 public:
  /// Copies and L2-normalizes every embedding row.
  EmbeddingView(const graph::ModelGraph& model, const text::Vocabulary& vocab);

  std::uint32_t vocabSize() const noexcept { return numWords_; }
  std::uint32_t dim() const noexcept { return dim_; }
  const text::Vocabulary& vocab() const noexcept { return *vocab_; }

  std::span<const float> vectorOf(text::WordId w) const noexcept {
    return {data_.data() + static_cast<std::size_t>(w) * dim_, dim_};
  }

  /// Top-k most similar words to an arbitrary (not necessarily normalized)
  /// query vector, excluding ids in `exclude`.
  std::vector<Neighbor> nearest(std::span<const float> query, unsigned k,
                                std::span<const text::WordId> exclude = {}) const;

  /// Top-k neighbours of a word (excludes the word itself).
  std::vector<Neighbor> nearestTo(text::WordId w, unsigned k) const;

  /// argmax_x cos(e_x, e_b - e_a + e_c) excluding {a,b,c} — the analogy
  /// prediction rule of the paper's Section 5.1.
  text::WordId predictAnalogy(text::WordId a, text::WordId b, text::WordId c) const;

 private:
  const text::Vocabulary* vocab_;
  std::uint32_t numWords_;
  std::uint32_t dim_;
  std::vector<float> data_;
};

}  // namespace gw2v::eval
