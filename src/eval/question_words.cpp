#include "eval/question_words.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gw2v::eval {

std::vector<synth::AnalogyCategory> parseQuestionWords(const std::string& body) {
  std::vector<synth::AnalogyCategory> suite;
  std::istringstream in(body);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line == "\r") continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first.empty()) continue;
    if (first == ":") {
      synth::AnalogyCategory cat;
      ls >> cat.name;
      if (cat.name.empty())
        throw std::runtime_error("question-words: missing category name at line " +
                                 std::to_string(lineNo));
      cat.semantic = cat.name.rfind("gram", 0) != 0;
      suite.push_back(std::move(cat));
      continue;
    }
    if (suite.empty())
      throw std::runtime_error("question-words: question before any category at line " +
                               std::to_string(lineNo));
    synth::AnalogyQuestion q;
    q.a = first;
    std::string extra;
    if (!(ls >> q.b >> q.c >> q.expected) || (ls >> extra))
      throw std::runtime_error("question-words: expected 4 words at line " +
                               std::to_string(lineNo));
    suite.back().questions.push_back(std::move(q));
  }
  return suite;
}

std::vector<synth::AnalogyCategory> loadQuestionWords(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadQuestionWords: cannot open " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return parseQuestionWords(body.str());
}

std::string formatQuestionWords(const std::vector<synth::AnalogyCategory>& suite) {
  std::ostringstream out;
  for (const auto& cat : suite) {
    out << ": " << cat.name << '\n';
    for (const auto& q : cat.questions) {
      out << q.a << ' ' << q.b << ' ' << q.c << ' ' << q.expected << '\n';
    }
  }
  return out.str();
}

void saveQuestionWords(const std::string& path,
                       const std::vector<synth::AnalogyCategory>& suite) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("saveQuestionWords: cannot open " + path);
  out << formatQuestionWords(suite);
  if (!out) throw std::runtime_error("saveQuestionWords: write failed");
}

}  // namespace gw2v::eval
