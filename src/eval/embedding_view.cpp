#include "eval/embedding_view.h"

#include <algorithm>

#include "serve/topk.h"

namespace gw2v::eval {

EmbeddingView::EmbeddingView(const graph::ModelGraph& model, const text::Vocabulary& vocab)
    : vocab_(&vocab),
      snap_(std::make_shared<const serve::EmbeddingSnapshot>(model, nullptr, /*version=*/1)) {}

std::vector<Neighbor> EmbeddingView::nearest(std::span<const float> query, unsigned k,
                                             std::span<const text::WordId> exclude) const {
  const std::vector<float> q = serve::normalizedCopy(query);
  std::vector<text::WordId> ex(exclude.begin(), exclude.end());
  std::sort(ex.begin(), ex.end());
  ex.erase(std::unique(ex.begin(), ex.end()), ex.end());

  const serve::TopKQuery tq{q.data(), k, ex};
  const auto lists = serve::topkScore(snap_->rows(), snap_->rowStride(), snap_->vocabSize(),
                                      /*idBase=*/0, snap_->dim(), {&tq, 1});
  std::vector<Neighbor> out;
  out.reserve(lists[0].size());
  for (const auto& c : lists[0]) out.push_back({c.id, c.score});
  return out;
}

std::vector<Neighbor> EmbeddingView::nearestTo(text::WordId w, unsigned k) const {
  const text::WordId ex[] = {w};
  return nearest(vectorOf(w), k, ex);
}

text::WordId EmbeddingView::predictAnalogy(text::WordId a, text::WordId b,
                                           text::WordId c) const {
  std::vector<float> target(dim());
  const auto va = vectorOf(a);
  const auto vb = vectorOf(b);
  const auto vc = vectorOf(c);
  for (std::uint32_t d = 0; d < dim(); ++d) target[d] = vb[d] - va[d] + vc[d];
  const text::WordId ex[] = {a, b, c};
  const auto top = nearest(target, 1, ex);
  return top.empty() ? text::kInvalidWord : top.front().word;
}

}  // namespace gw2v::eval
