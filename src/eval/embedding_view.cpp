#include "eval/embedding_view.h"

#include <algorithm>
#include <cmath>

#include "util/vecmath.h"

namespace gw2v::eval {

EmbeddingView::EmbeddingView(const graph::ModelGraph& model, const text::Vocabulary& vocab)
    : vocab_(&vocab), numWords_(model.numNodes()), dim_(model.dim()) {
  data_.resize(static_cast<std::size_t>(numWords_) * dim_);
  for (std::uint32_t w = 0; w < numWords_; ++w) {
    const auto src = model.row(graph::Label::kEmbedding, w);
    float n = util::norm(src);
    if (n <= 0.0f) n = 1.0f;
    float* dst = data_.data() + static_cast<std::size_t>(w) * dim_;
    for (std::uint32_t d = 0; d < dim_; ++d) dst[d] = src[d] / n;
  }
}

std::vector<Neighbor> EmbeddingView::nearest(std::span<const float> query, unsigned k,
                                             std::span<const text::WordId> exclude) const {
  std::vector<float> q(query.begin(), query.end());
  float n = util::norm(q);
  if (n <= 0.0f) n = 1.0f;
  for (auto& v : q) v /= n;

  std::vector<Neighbor> best;
  best.reserve(k + 1);
  for (std::uint32_t w = 0; w < numWords_; ++w) {
    if (std::find(exclude.begin(), exclude.end(), w) != exclude.end()) continue;
    const float sim = util::dot(q, vectorOf(w));
    if (best.size() < k) {
      best.push_back({w, sim});
      std::push_heap(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) { return a.similarity > b.similarity; });
    } else if (!best.empty() && sim > best.front().similarity) {
      std::pop_heap(best.begin(), best.end(),
                    [](const Neighbor& a, const Neighbor& b) { return a.similarity > b.similarity; });
      best.back() = {w, sim};
      std::push_heap(best.begin(), best.end(),
                     [](const Neighbor& a, const Neighbor& b) { return a.similarity > b.similarity; });
    }
  }
  std::sort(best.begin(), best.end(),
            [](const Neighbor& a, const Neighbor& b) { return a.similarity > b.similarity; });
  return best;
}

std::vector<Neighbor> EmbeddingView::nearestTo(text::WordId w, unsigned k) const {
  const text::WordId ex[] = {w};
  return nearest(vectorOf(w), k, ex);
}

text::WordId EmbeddingView::predictAnalogy(text::WordId a, text::WordId b,
                                           text::WordId c) const {
  std::vector<float> target(dim_);
  const auto va = vectorOf(a);
  const auto vb = vectorOf(b);
  const auto vc = vectorOf(c);
  for (std::uint32_t d = 0; d < dim_; ++d) target[d] = vb[d] - va[d] + vc[d];
  const text::WordId ex[] = {a, b, c};
  const auto top = nearest(target, 1, ex);
  return top.empty() ? text::kInvalidWord : top.front().word;
}

}  // namespace gw2v::eval
