#pragma once

// Word-similarity evaluation (WordSim-353 style): Spearman rank correlation
// between human(-surrogate) similarity judgements and embedding cosine
// similarities — the second standard intrinsic evaluation alongside
// analogies. For the synthetic corpora, graded gold judgements are derived
// from the planted structure (same pair >> same relation side > same
// relation > unrelated).

#include <span>
#include <string>
#include <vector>

#include "eval/embedding_view.h"
#include "text/vocabulary.h"

namespace gw2v::eval {

/// Spearman rank correlation with average ranks for ties; NaN-free: returns
/// 0 when either input is constant. Inputs must be equal-length.
double spearmanCorrelation(std::span<const double> a, std::span<const double> b);

struct SimilarityPair {
  std::string first, second;
  double gold = 0.0;  // higher = more similar
};

class WordSimTask {
 public:
  /// Pairs with out-of-vocabulary words are dropped.
  WordSimTask(const std::vector<SimilarityPair>& pairs, const text::Vocabulary& vocab);

  /// Spearman correlation between gold scores and cosine similarities.
  double evaluate(const EmbeddingView& view) const;

  std::size_t size() const noexcept { return resolved_.size(); }

 private:
  struct Resolved {
    text::WordId first, second;
    double gold;
  };
  std::vector<Resolved> resolved_;
};

}  // namespace gw2v::eval
