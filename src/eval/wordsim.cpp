#include "eval/wordsim.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/vecmath.h"

namespace gw2v::eval {

namespace {

/// Ranks with ties averaged (the standard Spearman convention).
std::vector<double> tiedRanks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = a.size();
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

double spearmanCorrelation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto ra = tiedRanks(a);
  const auto rb = tiedRanks(b);
  return pearson(ra, rb);
}

WordSimTask::WordSimTask(const std::vector<SimilarityPair>& pairs,
                         const text::Vocabulary& vocab) {
  for (const auto& p : pairs) {
    const auto a = vocab.idOf(p.first);
    const auto b = vocab.idOf(p.second);
    if (a && b) resolved_.push_back({*a, *b, p.gold});
  }
}

double WordSimTask::evaluate(const EmbeddingView& view) const {
  std::vector<double> gold, predicted;
  gold.reserve(resolved_.size());
  predicted.reserve(resolved_.size());
  for (const auto& p : resolved_) {
    gold.push_back(p.gold);
    predicted.push_back(
        static_cast<double>(util::dot(view.vectorOf(p.first), view.vectorOf(p.second))));
  }
  return spearmanCorrelation(gold, predicted);
}

}  // namespace gw2v::eval
