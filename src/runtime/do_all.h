#pragma once

// Galois-lite parallel loop constructs.
//
// doAll(pool, begin, end, fn): applies fn(i) to every index in [begin, end)
// using dynamic chunked scheduling — the same "do_all with a chunked FIFO"
// shape the Galois runtime provides, which is what GraphWord2Vec's compute
// phase uses to process its worklist partition with Hogwild updates.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/thread_pool.h"

namespace gw2v::runtime {

struct DoAllOptions {
  /// Indices handed to a worker per grab; tuned for loop bodies that cost
  /// microseconds (an SGNS window) rather than nanoseconds.
  std::size_t chunkSize = 64;
};

template <typename Fn>
void doAll(ThreadPool& pool, std::uint64_t begin, std::uint64_t end, Fn&& fn,
           DoAllOptions opts = {}) {
  if (begin >= end) return;
  const std::uint64_t n = end - begin;
  if (pool.numThreads() == 1 || n <= opts.chunkSize) {
    for (std::uint64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::atomic<std::uint64_t> next{begin};
  const std::size_t chunk = opts.chunkSize;
  pool.onEach([&](unsigned /*tid*/) {
    for (;;) {
      const std::uint64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::uint64_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::uint64_t i = lo; i < hi; ++i) fn(i);
    }
  });
}

/// doAll variant whose body also receives the worker id: fn(tid, i). For
/// loop bodies that need per-thread scratch (serialization staging buffers,
/// gradient temporaries) without threading it through captures.
template <typename Fn>
void doAllTid(ThreadPool& pool, std::uint64_t begin, std::uint64_t end, Fn&& fn,
              DoAllOptions opts = {}) {
  if (begin >= end) return;
  const std::uint64_t n = end - begin;
  if (pool.numThreads() == 1 || n <= opts.chunkSize) {
    for (std::uint64_t i = begin; i < end; ++i) fn(0u, i);
    return;
  }
  std::atomic<std::uint64_t> next{begin};
  const std::size_t chunk = opts.chunkSize;
  pool.onEach([&](unsigned tid) {
    for (;;) {
      const std::uint64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::uint64_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::uint64_t i = lo; i < hi; ++i) fn(tid, i);
    }
  });
}

/// Static blocked partition of [begin, end) over threads; fn(tid, lo, hi).
/// Used where each thread needs its own contiguous range (e.g. streaming a
/// corpus chunk in order).
template <typename Fn>
void doAllBlocked(ThreadPool& pool, std::uint64_t begin, std::uint64_t end, Fn&& fn) {
  const unsigned t = pool.numThreads();
  const std::uint64_t n = end > begin ? end - begin : 0;
  pool.onEach([&](unsigned tid) {
    const std::uint64_t lo = begin + n * tid / t;
    const std::uint64_t hi = begin + n * (tid + 1) / t;
    fn(tid, lo, hi);
  });
}

/// Evenly split [0, n) into `parts` blocks; returns [lo, hi) of block `i`.
inline std::pair<std::uint64_t, std::uint64_t> blockRange(std::uint64_t n, unsigned parts,
                                                          unsigned i) noexcept {
  return {n * i / parts, n * (i + 1) / parts};
}

}  // namespace gw2v::runtime
