#include "runtime/thread_pool.h"

namespace gw2v::runtime {

ThreadPool::ThreadPool(unsigned numThreads) : numThreads_(numThreads == 0 ? 1 : numThreads) {
  workers_.reserve(numThreads_ - 1);
  for (unsigned t = 1; t < numThreads_; ++t) {
    workers_.emplace_back([this, t] { workerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++epoch_;
  }
  cvStart_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::onEach(const std::function<void(unsigned)>& fn) {
  if (numThreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = numThreads_ - 1;
    ++epoch_;
  }
  cvStart_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  cvDone_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::workerLoop(unsigned tid) {
  std::uint64_t seenEpoch = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cvStart_.wait(lock, [&] { return shutdown_ || epoch_ != seenEpoch; });
      if (shutdown_) return;
      seenEpoch = epoch_;
      job = job_;
    }
    if (job != nullptr) {
      (*job)(tid);
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) cvDone_.notify_one();
    }
  }
}

}  // namespace gw2v::runtime
