#pragma once

// Chunked MPMC work queue — the Galois "chunked FIFO" worklist used by
// data-driven graph algorithms (e.g. delta-stepping SSSP buckets).
//
// Items are pushed/popped in fixed-size chunks to amortize the lock; this is
// deliberately a simple mutex-based structure (the graph-analytics validation
// workloads are not lock-bound at our scales) with the same interface shape
// as Galois' InsertBag/ChunkedFIFO.

#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace gw2v::runtime {

template <typename T, std::size_t ChunkSize = 128>
class WorkQueue {
 public:
  void push(const T& item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.empty() || chunks_.back().size() == ChunkSize) {
      chunks_.emplace_back();
      chunks_.back().reserve(ChunkSize);
    }
    chunks_.back().push_back(item);
    ++size_;
  }

  template <typename It>
  void pushRange(It first, It last) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (; first != last; ++first) {
      if (chunks_.empty() || chunks_.back().size() == ChunkSize) {
        chunks_.emplace_back();
        chunks_.back().reserve(ChunkSize);
      }
      chunks_.back().push_back(*first);
      ++size_;
    }
  }

  /// Pop a whole chunk at once; empty optional when the queue is drained.
  std::optional<std::vector<T>> popChunk() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (chunks_.empty()) return std::nullopt;
    std::vector<T> out = std::move(chunks_.back());
    chunks_.pop_back();
    size_ -= out.size();
    return out;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  /// Drain everything into a single vector (single-threaded use).
  std::vector<T> drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<T> out;
    out.reserve(size_);
    for (auto& c : chunks_)
      for (auto& v : c) out.push_back(std::move(v));
    chunks_.clear();
    size_ = 0;
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<T>> chunks_;
  std::size_t size_ = 0;
};

}  // namespace gw2v::runtime
