#pragma once

// Galois-lite: a small fork-join thread pool.
//
// The pool owns (numThreads - 1) worker threads; the caller's thread acts as
// worker 0, so a pool of size 1 executes everything inline with zero
// synchronization. Work is dispatched as "run this callable on every worker"
// (on_each), which is the primitive the Galois runtime builds do_all on.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gw2v::runtime {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned numThreads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned numThreads() const noexcept { return numThreads_; }

  /// Run fn(threadId) on all threads (including the caller as thread 0) and
  /// wait for completion. Not reentrant.
  void onEach(const std::function<void(unsigned)>& fn);

 private:
  void workerLoop(unsigned tid);

  unsigned numThreads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cvStart_;
  std::condition_variable cvDone_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace gw2v::runtime
