#pragma once

// Lightweight per-loop counters (iterations executed, conflicts, pushes) in
// the style of Galois' LoopStatistics, plus per-phase wall-clock buckets for
// the sync critical path. Aggregated across threads on demand.

#include <cstdint>

#include "runtime/per_thread.h"

namespace gw2v::runtime {

struct LoopCounters {
  std::uint64_t iterations = 0;
  std::uint64_t pushes = 0;
};

class LoopStats {
 public:
  explicit LoopStats(unsigned numThreads) : counters_(numThreads) {}

  void recordIteration(unsigned tid, std::uint64_t n = 1) noexcept {
    counters_.local(tid).iterations += n;
  }
  void recordPush(unsigned tid, std::uint64_t n = 1) noexcept {
    counters_.local(tid).pushes += n;
  }

  LoopCounters total() const {
    return counters_.reduce(LoopCounters{}, [](LoopCounters acc, const LoopCounters& c) {
      acc.iterations += c.iterations;
      acc.pushes += c.pushes;
      return acc;
    });
  }

 private:
  PerThread<LoopCounters> counters_;
};

/// Stages of a model-sync round (comm::SyncEngine); also the bucket order of
/// SyncPhaseSeconds below.
enum class SyncPhase : int { kPack = 0, kExchange = 1, kFold = 2, kApply = 3 };
inline constexpr int kNumSyncPhases = 4;

inline const char* syncPhaseName(SyncPhase p) noexcept {
  switch (p) {
    case SyncPhase::kPack: return "pack";
    case SyncPhase::kExchange: return "exchange";
    case SyncPhase::kFold: return "fold";
    case SyncPhase::kApply: return "apply";
  }
  return "?";
}

/// Reduced per-phase wall seconds; `exchange` is time blocked draining the
/// fabric (in a pipelined round that wait is whatever the overlapped pack and
/// fold did not hide).
struct SyncPhaseSeconds {
  double pack = 0.0;
  double exchange = 0.0;
  double fold = 0.0;
  double apply = 0.0;

  double total() const noexcept { return pack + exchange + fold + apply; }
};

/// LoopStats' per-thread shape applied to time: each worker accumulates wall
/// seconds into phase buckets, reduced on demand. The sync engine records
/// from the host thread (tid 0); worker-side recording uses the same cells.
class PhaseStats {
 public:
  explicit PhaseStats(unsigned numThreads = 1) : cells_(numThreads) {}

  void add(unsigned tid, SyncPhase p, double seconds) noexcept {
    cells_.local(tid).s[static_cast<int>(p)] += seconds;
  }

  SyncPhaseSeconds totals() const {
    return cells_.reduce(SyncPhaseSeconds{}, [](SyncPhaseSeconds acc, const Cell& c) {
      acc.pack += c.s[0];
      acc.exchange += c.s[1];
      acc.fold += c.s[2];
      acc.apply += c.s[3];
      return acc;
    });
  }

 private:
  struct Cell {
    double s[kNumSyncPhases] = {0.0, 0.0, 0.0, 0.0};
  };
  PerThread<Cell> cells_;
};

}  // namespace gw2v::runtime
