#pragma once

// Lightweight per-loop counters (iterations executed, conflicts, pushes) in
// the style of Galois' LoopStatistics. Aggregated across threads on demand.

#include <cstdint>

#include "runtime/per_thread.h"

namespace gw2v::runtime {

struct LoopCounters {
  std::uint64_t iterations = 0;
  std::uint64_t pushes = 0;
};

class LoopStats {
 public:
  explicit LoopStats(unsigned numThreads) : counters_(numThreads) {}

  void recordIteration(unsigned tid, std::uint64_t n = 1) noexcept {
    counters_.local(tid).iterations += n;
  }
  void recordPush(unsigned tid, std::uint64_t n = 1) noexcept {
    counters_.local(tid).pushes += n;
  }

  LoopCounters total() const {
    return counters_.reduce(LoopCounters{}, [](LoopCounters acc, const LoopCounters& c) {
      acc.iterations += c.iterations;
      acc.pushes += c.pushes;
      return acc;
    });
  }

 private:
  PerThread<LoopCounters> counters_;
};

}  // namespace gw2v::runtime
