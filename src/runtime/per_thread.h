#pragma once

// Per-thread storage, cache-line padded to avoid false sharing — the
// Galois PerThreadStorage idiom used for per-worker RNG streams, scratch
// gradient buffers, and loop statistics.

#include <cstddef>
#include <vector>

#include "util/aligned.h"

namespace gw2v::runtime {

template <typename T>
class PerThread {
 public:
  explicit PerThread(unsigned numThreads, const T& init = T{})
      : slots_(numThreads, Padded{init}) {}

  T& local(unsigned tid) noexcept { return slots_[tid].value; }
  const T& local(unsigned tid) const noexcept { return slots_[tid].value; }

  unsigned size() const noexcept { return static_cast<unsigned>(slots_.size()); }

  /// Fold all slots into `acc` with fn(acc, slot).
  template <typename Acc, typename Fn>
  Acc reduce(Acc acc, Fn&& fn) const {
    for (const auto& s : slots_) acc = fn(acc, s.value);
    return acc;
  }

 private:
  struct alignas(util::kCacheLine) Padded {
    T value;
  };
  std::vector<Padded> slots_;
};

}  // namespace gw2v::runtime
