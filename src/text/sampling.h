#pragma once

// Frequency-dependent sampling used by the Skip-Gram model:
//
//  * SubsampleFilter — word2vec's frequent-word downsampling: keep word w
//    with probability (sqrt(f/t) + 1) * t/f where f is the word's corpus
//    frequency fraction and t the threshold (paper uses 1e-4).
//  * NegativeSampler — draws negatives from the unigram^0.75 distribution
//    (the paper's "negative sampling of most frequent words"), built on the
//    exact alias method instead of word2vec.c's quantized 100M-slot table.

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "text/vocabulary.h"
#include "util/alias_sampler.h"
#include "util/rng.h"

namespace gw2v::text {

class SubsampleFilter {
 public:
  /// threshold <= 0 disables subsampling (every word kept).
  SubsampleFilter(std::span<const std::uint64_t> counts, double threshold) {
    keepProb_.resize(counts.size(), 1.0f);
    if (threshold <= 0.0) return;
    std::uint64_t total = 0;
    for (const auto c : counts) total += c;
    if (total == 0) return;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const double f = static_cast<double>(counts[i]) / static_cast<double>(total);
      if (f <= threshold) continue;
      const double keep = (std::sqrt(f / threshold) + 1.0) * (threshold / f);
      keepProb_[i] = static_cast<float>(keep < 1.0 ? keep : 1.0);
    }
  }

  float keepProbability(WordId w) const noexcept { return keepProb_[w]; }

  bool keep(WordId w, util::Rng& rng) const noexcept {
    const float p = keepProb_[w];
    return p >= 1.0f || rng.uniformFloat() < p;
  }

 private:
  std::vector<float> keepProb_;
};

class NegativeSampler {
 public:
  static constexpr double kPower = 0.75;

  explicit NegativeSampler(std::span<const std::uint64_t> counts) {
    std::vector<double> weights(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
      weights[i] = std::pow(static_cast<double>(counts[i]), kPower);
    table_.build(weights);
  }

  /// Draw one negative, rejecting the excluded (positive-target) word.
  WordId sample(util::Rng& rng, WordId exclude) const noexcept {
    // Falls back to a neighbouring id when the vocabulary has one word
    // (degenerate but must not spin forever).
    if (table_.size() <= 1) return exclude;
    for (;;) {
      const WordId w = table_.sample(rng);
      if (w != exclude) return w;
    }
  }

  WordId sampleAny(util::Rng& rng) const noexcept { return table_.sample(rng); }

  double probabilityOf(WordId w) const noexcept { return table_.probabilityOf(w); }
  std::size_t vocabSize() const noexcept { return table_.size(); }

 private:
  util::AliasSampler table_;
};

}  // namespace gw2v::text
