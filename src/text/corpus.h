#pragma once

// Tokenized corpora and their partitioning across hosts.
//
// The paper logically partitions the training corpus file into roughly equal
// contiguous chunks, one per host, each read in parallel (Section 4.1). Our
// corpora are id-encoded token vectors; partitioning stays contiguous so
// each host's worklist is a slice of the original word stream.
//
// Since the streaming-ingestion refactor these helpers are thin veneers over
// text::CorpusSource (corpus_source.h): SpanCorpusSource slices a
// materialized corpus with hostSlice, and partitionCorpus materializes its
// shards — new code should consume a CorpusSource directly.

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "text/vocabulary.h"

namespace gw2v::text {

/// Encode raw text into word ids (words missing from the vocabulary — e.g.
/// dropped by min-count — are skipped, as in word2vec.c).
std::vector<WordId> encode(std::string_view body, const Vocabulary& vocab);

/// Contiguous per-host slice [lo, hi) of an n-token corpus.
inline std::pair<std::uint64_t, std::uint64_t> hostSlice(std::uint64_t n, unsigned numHosts,
                                                         unsigned host) noexcept {
  return {n * host / numHosts, n * (host + 1) / numHosts};
}

/// Materialize per-host worklists (copies; each simulated host owns its
/// partition just as a real host would own its file chunk).
std::vector<std::vector<WordId>> partitionCorpus(std::span<const WordId> corpus,
                                                 unsigned numHosts);

}  // namespace gw2v::text
