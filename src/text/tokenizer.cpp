#include "text/tokenizer.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace gw2v::text {

std::uint64_t forEachFileToken(const std::string& path,
                               const std::function<void(std::string_view)>& fn,
                               std::size_t chunkBytes) {
  struct Closer {
    void operator()(std::FILE* f) const noexcept { std::fclose(f); }
  };
  std::unique_ptr<std::FILE, Closer> file(std::fopen(path.c_str(), "rb"));
  if (!file) throw std::runtime_error("forEachFileToken: cannot open " + path);

  std::vector<char> buffer(chunkBytes);
  std::string carry;  // token fragment spanning a chunk boundary
  std::uint64_t total = 0;

  for (;;) {
    const std::size_t got = std::fread(buffer.data(), 1, buffer.size(), file.get());
    if (got == 0) break;
    std::string_view chunk(buffer.data(), got);

    if (!carry.empty()) {
      // Extend the carried fragment to the first whitespace in this chunk.
      std::size_t end = 0;
      while (end < chunk.size() && chunk[end] != ' ' && chunk[end] != '\n' &&
             chunk[end] != '\t' && chunk[end] != '\r')
        ++end;
      carry.append(chunk.substr(0, end));
      if (end < chunk.size()) {
        fn(carry);
        ++total;
        carry.clear();
        chunk.remove_prefix(end);
      } else {
        chunk = {};
      }
    }

    // Trailing partial token (chunk ends mid-word) becomes the next carry.
    std::size_t lastWs = chunk.size();
    while (lastWs > 0 && chunk[lastWs - 1] != ' ' && chunk[lastWs - 1] != '\n' &&
           chunk[lastWs - 1] != '\t' && chunk[lastWs - 1] != '\r')
      --lastWs;
    const std::string_view tail = chunk.substr(lastWs);
    forEachToken(chunk.substr(0, lastWs), [&](std::string_view tok) {
      fn(tok);
      ++total;
    });
    carry.assign(tail);
  }
  if (!carry.empty()) {
    fn(carry);
    ++total;
  }
  return total;
}

}  // namespace gw2v::text
