#pragma once

// Vocabulary construction (paper Section 4.2): one streaming pass over the
// corpus collects unique words and their frequencies; words are then sorted
// by descending frequency (the word2vec.c convention — low ids are frequent
// words, which also makes blocked partitions frequency-stratified) and words
// below minCount are dropped.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gw2v::text {

using WordId = std::uint32_t;
inline constexpr WordId kInvalidWord = 0xffffffffu;

class Vocabulary {
 public:
  /// Streaming interface: feed tokens (possibly from many chunks), then
  /// finalize once.
  void addToken(std::string_view word) { ++building_[std::string(word)]; }
  void addCount(std::string_view word, std::uint64_t count) {
    building_[std::string(word)] += count;
  }

  /// Sort by frequency (ties broken lexicographically for determinism),
  /// apply min-count filter, assign ids.
  void finalize(std::uint64_t minCount = 1);

  bool finalized() const noexcept { return finalized_; }

  std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(words_.size()); }

  /// Total count of training tokens covered by retained words.
  std::uint64_t totalTokens() const noexcept { return totalTokens_; }

  std::optional<WordId> idOf(std::string_view word) const {
    const auto it = index_.find(std::string(word));
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& wordOf(WordId id) const noexcept { return words_[id]; }
  std::uint64_t countOf(WordId id) const noexcept { return counts_[id]; }
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  /// Write "word count" lines in id order (word2vec.c's -save-vocab format).
  void save(const std::string& path) const;

  /// Rebuild from a saved vocabulary file; returns a finalized vocabulary
  /// (no further min-count filtering). Throws on malformed input.
  static Vocabulary load(const std::string& path);

 private:
  std::unordered_map<std::string, std::uint64_t> building_;
  std::vector<std::string> words_;
  std::vector<std::uint64_t> counts_;
  std::unordered_map<std::string, WordId> index_;
  std::uint64_t totalTokens_ = 0;
  bool finalized_ = false;
};

}  // namespace gw2v::text
