#pragma once

// Whitespace tokenizer over in-memory text or a file streamed in chunks —
// the "stream C from disk to build vocabulary V" step of Algorithm 1.

#include <functional>
#include <string>
#include <string_view>

namespace gw2v::text {

/// Invoke fn(token) for every whitespace-separated token in `text`.
template <typename Fn>
void forEachToken(std::string_view text, Fn&& fn) {
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' || text[i] == '\r')) ++i;
    const std::size_t start = i;
    while (i < n && !(text[i] == ' ' || text[i] == '\n' || text[i] == '\t' || text[i] == '\r')) ++i;
    if (i > start) fn(text.substr(start, i - start));
  }
}

/// Stream a file from disk in fixed-size chunks, splitting tokens correctly
/// across chunk boundaries. Returns total tokens seen. Throws on I/O error.
std::uint64_t forEachFileToken(const std::string& path,
                               const std::function<void(std::string_view)>& fn,
                               std::size_t chunkBytes = 1 << 20);

}  // namespace gw2v::text
