#include "text/corpus.h"

#include "text/tokenizer.h"

namespace gw2v::text {

std::vector<WordId> encode(std::string_view body, const Vocabulary& vocab) {
  std::vector<WordId> out;
  forEachToken(body, [&](std::string_view tok) {
    if (const auto id = vocab.idOf(tok)) out.push_back(*id);
  });
  return out;
}

std::vector<std::vector<WordId>> partitionCorpus(std::span<const WordId> corpus,
                                                 unsigned numHosts) {
  std::vector<std::vector<WordId>> parts(numHosts);
  for (unsigned h = 0; h < numHosts; ++h) {
    const auto [lo, hi] = hostSlice(corpus.size(), numHosts, h);
    parts[h].assign(corpus.begin() + static_cast<std::ptrdiff_t>(lo),
                    corpus.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return parts;
}

}  // namespace gw2v::text
