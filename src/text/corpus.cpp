#include "text/corpus.h"

#include "text/corpus_source.h"
#include "text/tokenizer.h"

namespace gw2v::text {

std::vector<WordId> encode(std::string_view body, const Vocabulary& vocab) {
  std::vector<WordId> out;
  forEachToken(body, [&](std::string_view tok) {
    if (const auto id = vocab.idOf(tok)) out.push_back(*id);
  });
  return out;
}

std::vector<std::vector<WordId>> partitionCorpus(std::span<const WordId> corpus,
                                                 unsigned numHosts) {
  SpanCorpusSource source(corpus, numHosts);
  return materializeShards(source);
}

}  // namespace gw2v::text
