#pragma once

// Pull-based corpus ingestion.
//
// The paper's hosts read contiguous chunks of the corpus file in parallel
// (Section 4.1); the original API forced the whole id-encoded corpus into one
// std::span before training could start. CorpusSource replaces that wall with
// a chunked pull contract: one CorpusShard per host, each yielding WordId
// spans until the epoch is exhausted, so a corpus can be *produced and
// consumed concurrently* (streamed from disk, generated from random walks)
// or served from memory exactly as before (SpanCorpusSource).
//
// Contract:
//  - tokensPerEpoch() is exact: the chunk sizes of one epoch sum to it. The
//    trainer derives its sync-round boundaries from this total, so an
//    under-delivering shard is a hard error.
//  - beginEpoch(e) rewinds the shard to the start of epoch e's stream; it is
//    called before any nextChunk() of that epoch and may abandon a
//    partially-consumed previous epoch.
//  - nextChunk() returns the next span (empty at end of epoch). The span
//    stays valid until the next nextChunk()/beginEpoch() call on that shard.
//  - materializedEpoch(): shards backed by resident memory return the whole
//    epoch as one span, stable for the shard's lifetime. The trainer uses
//    this to keep the pre-refactor span semantics (including whole-worklist
//    epoch shuffling) bit-identical.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "text/vocabulary.h"

namespace gw2v::text {

class CorpusShard {
 public:
  virtual ~CorpusShard() = default;

  /// Exact number of tokens one epoch of this shard yields.
  virtual std::uint64_t tokensPerEpoch() const noexcept = 0;

  /// Rewind to the start of epoch `epoch`'s token stream.
  virtual void beginEpoch(unsigned epoch) = 0;

  /// Next chunk of the current epoch; empty once tokensPerEpoch() tokens
  /// have been yielded. Valid until the next nextChunk()/beginEpoch().
  virtual std::span<const WordId> nextChunk() = 0;

  /// Non-empty for memory-resident shards: the whole epoch, stable for the
  /// shard's lifetime (every epoch replays the same tokens).
  virtual std::optional<std::span<const WordId>> materializedEpoch() const {
    return std::nullopt;
  }
};

class CorpusSource {
 public:
  virtual ~CorpusSource() = default;

  virtual unsigned numShards() const noexcept = 0;
  virtual CorpusShard& shard(unsigned s) = 0;

  /// Sum of tokensPerEpoch() over all shards.
  std::uint64_t totalTokensPerEpoch() const;

  /// Peak bytes of corpus data this source keeps resident at once (ring
  /// slots, chunk scratch). Materialized sources report the full corpus.
  virtual std::uint64_t bufferedBytesPeak() const noexcept { return 0; }
};

/// Adapter over a materialized corpus: shard h is the contiguous slice
/// hostSlice(n, numShards, h) — the exact pre-refactor partitioning — or,
/// with the parts constructor, an arbitrary per-shard token vector (e.g. a
/// materialized copy of another source's shards).
class SpanCorpusSource final : public CorpusSource {
 public:
  /// Non-owning: `corpus` must outlive the source. Slices by hostSlice.
  SpanCorpusSource(std::span<const WordId> corpus, unsigned numShards);

  /// Owning: one materialized token vector per shard.
  explicit SpanCorpusSource(std::vector<std::vector<WordId>> parts);

  unsigned numShards() const noexcept override {
    return static_cast<unsigned>(shards_.size());
  }
  CorpusShard& shard(unsigned s) override { return shards_[s]; }
  std::uint64_t bufferedBytesPeak() const noexcept override;

 private:
  class Shard final : public CorpusShard {
   public:
    explicit Shard(std::span<const WordId> tokens) : tokens_(tokens) {}
    std::uint64_t tokensPerEpoch() const noexcept override { return tokens_.size(); }
    void beginEpoch(unsigned) override { served_ = false; }
    std::span<const WordId> nextChunk() override {
      if (served_) return {};
      served_ = true;
      return tokens_;
    }
    std::optional<std::span<const WordId>> materializedEpoch() const override {
      return tokens_;
    }

   private:
    std::span<const WordId> tokens_;
    bool served_ = false;
  };

  std::vector<std::vector<WordId>> owned_;
  std::vector<Shard> shards_;
};

/// Drain epoch 0 of every shard into per-shard vectors (the materialized
/// counterpart of any source — what the pre-refactor API would have held).
std::vector<std::vector<WordId>> materializeShards(CorpusSource& source);

}  // namespace gw2v::text
