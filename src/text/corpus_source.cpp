#include "text/corpus_source.h"

#include "text/corpus.h"

namespace gw2v::text {

std::uint64_t CorpusSource::totalTokensPerEpoch() const {
  std::uint64_t total = 0;
  auto* self = const_cast<CorpusSource*>(this);
  for (unsigned s = 0; s < numShards(); ++s) total += self->shard(s).tokensPerEpoch();
  return total;
}

SpanCorpusSource::SpanCorpusSource(std::span<const WordId> corpus, unsigned numShards) {
  shards_.reserve(numShards);
  for (unsigned h = 0; h < numShards; ++h) {
    const auto [lo, hi] = hostSlice(corpus.size(), numShards, h);
    shards_.emplace_back(corpus.subspan(lo, hi - lo));
  }
}

SpanCorpusSource::SpanCorpusSource(std::vector<std::vector<WordId>> parts)
    : owned_(std::move(parts)) {
  shards_.reserve(owned_.size());
  for (const auto& p : owned_) shards_.emplace_back(std::span<const WordId>(p));
}

std::uint64_t SpanCorpusSource::bufferedBytesPeak() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.tokensPerEpoch() * sizeof(WordId);
  return total;
}

std::vector<std::vector<WordId>> materializeShards(CorpusSource& source) {
  std::vector<std::vector<WordId>> parts(source.numShards());
  for (unsigned s = 0; s < source.numShards(); ++s) {
    CorpusShard& shard = source.shard(s);
    parts[s].reserve(shard.tokensPerEpoch());
    shard.beginEpoch(0);
    for (auto chunk = shard.nextChunk(); !chunk.empty(); chunk = shard.nextChunk()) {
      parts[s].insert(parts[s].end(), chunk.begin(), chunk.end());
    }
  }
  return parts;
}

}  // namespace gw2v::text
