#include "text/phrases.h"

#include "text/tokenizer.h"

namespace gw2v::text {

namespace {
std::string bigramKey(const std::string& a, const std::string& b) { return a + '\x1f' + b; }
}  // namespace

void PhraseDetector::addTokens(const std::vector<std::string>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    ++unigrams_[tokens[i]];
    ++totalTokens_;
    if (i + 1 < tokens.size()) ++bigrams_[bigramKey(tokens[i], tokens[i + 1])];
  }
}

double PhraseDetector::score(const std::string& first, const std::string& second) const {
  const auto ua = unigrams_.find(first);
  const auto ub = unigrams_.find(second);
  if (ua == unigrams_.end() || ub == unigrams_.end()) return 0.0;
  if (ua->second < opts_.minCount || ub->second < opts_.minCount) return 0.0;
  const auto bi = bigrams_.find(bigramKey(first, second));
  if (bi == bigrams_.end() || bi->second < opts_.minCount) return 0.0;
  const double joint = static_cast<double>(bi->second) - opts_.discount;
  if (joint <= 0.0) return 0.0;
  return joint / static_cast<double>(ua->second) / static_cast<double>(ub->second) *
         static_cast<double>(totalTokens_);
}

std::vector<std::string> PhraseDetector::apply(const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  std::size_t i = 0;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size() && score(tokens[i], tokens[i + 1]) > opts_.threshold) {
      out.push_back(tokens[i] + opts_.joiner + tokens[i + 1]);
      i += 2;
    } else {
      out.push_back(tokens[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::string> PhraseDetector::detectPhrases(std::string_view body,
                                                       PhraseOptions opts, int passes) {
  std::vector<std::string> tokens;
  forEachToken(body, [&](std::string_view tok) { tokens.emplace_back(tok); });
  for (int pass = 0; pass < passes; ++pass) {
    PhraseDetector detector(opts);
    detector.addTokens(tokens);
    tokens = detector.apply(tokens);
  }
  return tokens;
}

}  // namespace gw2v::text
