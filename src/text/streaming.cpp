#include "text/streaming.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "text/corpus.h"
#include "text/tokenizer.h"

namespace gw2v::text {

// One producer thread + one consumer (the training host) per shard. All ring
// state is guarded by a mutex; the chunks are large (default 64Ki tokens), so
// the lock is cold compared to the memcpy/compute it brackets.
class StreamingCorpus::Shard final : public CorpusShard {
 public:
  Shard(unsigned id, std::uint64_t tokensPerEpoch, const Producer& producer,
        const Options& opts)
      : id_(id),
        tokens_(tokensPerEpoch),
        producer_(producer),
        chunkTokens_(std::max<std::size_t>(1, opts.chunkTokens)),
        slots_(std::max<std::size_t>(1, opts.ringChunks)) {
    thread_ = std::thread([this] { producerLoop(); });
  }

  ~Shard() override {
    {
      std::lock_guard<std::mutex> lk(m_);
      shutdown_ = true;
      ++generation_;
      cvProd_.notify_all();
      cvCons_.notify_all();
    }
    thread_.join();
  }

  std::uint64_t tokensPerEpoch() const noexcept override { return tokens_; }

  void beginEpoch(unsigned epoch) override {
    std::lock_guard<std::mutex> lk(m_);
    ++generation_;
    requestedEpoch_ = epoch;
    epochRequested_ = true;
    published_ = consumed_ = released_ = 0;
    epochDone_ = false;
    residentBytes_ = 0;
    cvProd_.notify_all();
  }

  std::span<const WordId> nextChunk() override {
    std::unique_lock<std::mutex> lk(m_);
    if (consumed_ > released_) {
      // Free the slot handed out by the previous call.
      residentBytes_ -= slots_[released_ % slots_.size()].size() * sizeof(WordId);
      ++released_;
      cvProd_.notify_all();
    }
    cvCons_.wait(lk, [&] { return shutdown_ || published_ > consumed_ || epochDone_; });
    if (published_ > consumed_) {
      const auto& slot = slots_[consumed_ % slots_.size()];
      ++consumed_;
      return slot;
    }
    return {};  // epoch exhausted (or shutting down)
  }

  std::uint64_t peakBytes() const noexcept {
    std::lock_guard<std::mutex> lk(m_);
    return peakBytes_;
  }

 private:
  class EpochSink final : public Sink {
   public:
    EpochSink(Shard& shard, std::uint64_t gen) : shard_(shard), gen_(gen) {
      pending_.reserve(shard.chunkTokens_);
    }

    bool push(std::span<const WordId> tokens) override {
      if (dead_) return false;
      std::size_t at = 0;
      while (at < tokens.size()) {
        const std::size_t take =
            std::min(tokens.size() - at, shard_.chunkTokens_ - pending_.size());
        pending_.insert(pending_.end(), tokens.begin() + static_cast<std::ptrdiff_t>(at),
                        tokens.begin() + static_cast<std::ptrdiff_t>(at + take));
        at += take;
        if (pending_.size() == shard_.chunkTokens_ && !flush()) return false;
      }
      return true;
    }

    /// Publish any partial trailing chunk; returns false if abandoned.
    bool flush() {
      if (pending_.empty()) return !dead_;
      if (!shard_.publish(pending_, gen_)) {
        dead_ = true;
        return false;
      }
      pending_.clear();
      return true;
    }

   private:
    Shard& shard_;
    std::uint64_t gen_;
    std::vector<WordId> pending_;
    bool dead_ = false;
  };

  bool publish(std::span<const WordId> chunk, std::uint64_t gen) {
    std::unique_lock<std::mutex> lk(m_);
    cvProd_.wait(lk, [&] {
      return shutdown_ || generation_ != gen || published_ - released_ < slots_.size();
    });
    if (shutdown_ || generation_ != gen) return false;
    auto& slot = slots_[published_ % slots_.size()];
    slot.assign(chunk.begin(), chunk.end());
    residentBytes_ += slot.size() * sizeof(WordId);
    peakBytes_ = std::max(peakBytes_, residentBytes_);
    ++published_;
    cvCons_.notify_all();
    return true;
  }

  void producerLoop() {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cvProd_.wait(lk, [&] { return shutdown_ || (epochRequested_ && startedGen_ != generation_); });
      if (shutdown_) return;
      const std::uint64_t gen = generation_;
      const unsigned epoch = requestedEpoch_;
      startedGen_ = gen;
      lk.unlock();
      {
        EpochSink sink(*this, gen);
        producer_(id_, epoch, sink);
        sink.flush();
      }
      lk.lock();
      if (generation_ == gen && !shutdown_) {
        epochDone_ = true;
        cvCons_.notify_all();
      }
    }
  }

  const unsigned id_;
  const std::uint64_t tokens_;
  const Producer& producer_;
  const std::size_t chunkTokens_;

  mutable std::mutex m_;
  std::condition_variable cvProd_;
  std::condition_variable cvCons_;
  std::vector<std::vector<WordId>> slots_;
  std::uint64_t generation_ = 0;   // bumped by beginEpoch/shutdown: abandons production
  std::uint64_t startedGen_ = 0;   // generation the producer thread last served
  unsigned requestedEpoch_ = 0;
  bool epochRequested_ = false;
  bool epochDone_ = false;
  bool shutdown_ = false;
  std::uint64_t published_ = 0;  // chunks pushed into the ring
  std::uint64_t consumed_ = 0;   // chunks handed to the consumer
  std::uint64_t released_ = 0;   // chunks the consumer has moved past
  std::uint64_t residentBytes_ = 0;
  std::uint64_t peakBytes_ = 0;
  std::thread thread_;
};

StreamingCorpus::StreamingCorpus(std::vector<std::uint64_t> shardTokensPerEpoch,
                                 Producer producer, Options opts)
    : opts_(opts), producer_(std::move(producer)) {
  if (shardTokensPerEpoch.empty())
    throw std::invalid_argument("StreamingCorpus: need at least one shard");
  if (!producer_) throw std::invalid_argument("StreamingCorpus: null producer");
  shards_.reserve(shardTokensPerEpoch.size());
  for (unsigned s = 0; s < shardTokensPerEpoch.size(); ++s) {
    shards_.push_back(
        std::make_unique<Shard>(s, shardTokensPerEpoch[s], producer_, opts_));
  }
}

StreamingCorpus::StreamingCorpus(std::vector<std::uint64_t> shardTokensPerEpoch,
                                 Producer producer)
    : StreamingCorpus(std::move(shardTokensPerEpoch), std::move(producer), Options{}) {}

StreamingCorpus::~StreamingCorpus() = default;

CorpusShard& StreamingCorpus::shard(unsigned s) { return *shards_[s]; }

std::uint64_t StreamingCorpus::bufferedBytesPeak() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->peakBytes();
  return total;
}

std::unique_ptr<StreamingCorpus> streamTextFile(std::string path, const Vocabulary& vocab,
                                                std::uint64_t keptTokens, unsigned numShards,
                                                StreamingCorpus::Options opts) {
  if (numShards == 0) throw std::invalid_argument("streamTextFile: numShards must be >= 1");
  std::vector<std::uint64_t> per(numShards);
  for (unsigned h = 0; h < numShards; ++h) {
    const auto [lo, hi] = hostSlice(keptTokens, numShards, h);
    per[h] = hi - lo;
  }
  auto producer = [path = std::move(path), &vocab, keptTokens, numShards](
                      unsigned shard, unsigned /*epoch*/, StreamingCorpus::Sink& sink) {
    const auto [lo, hi] = hostSlice(keptTokens, numShards, shard);
    constexpr std::size_t kBatch = 4096;
    std::vector<WordId> batch;
    batch.reserve(kBatch);
    std::uint64_t idx = 0;
    bool live = true;
    forEachFileToken(path, [&](std::string_view tok) {
      if (!live || idx >= hi) return;  // shard slice done (file read runs out)
      const auto id = vocab.idOf(tok);
      if (!id) return;
      if (idx >= lo) {
        batch.push_back(*id);
        if (batch.size() >= kBatch) {
          live = sink.push(batch);
          batch.clear();
        }
      }
      ++idx;
    });
    if (live && !batch.empty()) sink.push(batch);
  };
  return std::make_unique<StreamingCorpus>(std::move(per), std::move(producer), opts);
}

std::unique_ptr<StreamingCorpus> streamSource(CorpusSource& inner,
                                              StreamingCorpus::Options opts) {
  std::vector<std::uint64_t> per(inner.numShards());
  for (unsigned s = 0; s < inner.numShards(); ++s) per[s] = inner.shard(s).tokensPerEpoch();
  // Each producer thread owns exactly one inner shard, so the inner source
  // needs no locking of its own.
  auto producer = [&inner](unsigned shard, unsigned epoch, StreamingCorpus::Sink& sink) {
    CorpusShard& sh = inner.shard(shard);
    sh.beginEpoch(epoch);
    for (auto c = sh.nextChunk(); !c.empty(); c = sh.nextChunk()) {
      if (!sink.push(c)) return;
    }
  };
  return std::make_unique<StreamingCorpus>(std::move(per), std::move(producer), opts);
}

}  // namespace gw2v::text
