#include "text/vocabulary.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gw2v::text {

void Vocabulary::finalize(std::uint64_t minCount) {
  if (finalized_) throw std::logic_error("Vocabulary: finalize() called twice");

  std::vector<std::pair<std::string, std::uint64_t>> entries;
  entries.reserve(building_.size());
  for (auto& [word, count] : building_) {
    if (count >= minCount) entries.emplace_back(word, count);
  }
  building_.clear();

  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  words_.reserve(entries.size());
  counts_.reserve(entries.size());
  index_.reserve(entries.size());
  for (auto& [word, count] : entries) {
    index_.emplace(word, static_cast<WordId>(words_.size()));
    words_.push_back(std::move(word));
    counts_.push_back(count);
    totalTokens_ += count;
  }
  finalized_ = true;
}

void Vocabulary::save(const std::string& path) const {
  if (!finalized_) throw std::logic_error("Vocabulary::save: not finalized");
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Vocabulary::save: cannot open " + path);
  for (WordId i = 0; i < size(); ++i) out << words_[i] << ' ' << counts_[i] << '\n';
  if (!out) throw std::runtime_error("Vocabulary::save: write failed");
}

Vocabulary Vocabulary::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Vocabulary::load: cannot open " + path);
  Vocabulary v;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string word;
    std::uint64_t count = 0;
    if (!(ls >> word >> count) || count == 0) {
      throw std::runtime_error("Vocabulary::load: malformed line " + std::to_string(lineNo) +
                               " in " + path);
    }
    v.addCount(word, count);
  }
  v.finalize(1);
  return v;
}

}  // namespace gw2v::text
