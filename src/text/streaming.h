#pragma once

// Bounded-buffer streaming corpus: a producer thread per shard fills a small
// SPSC ring of token chunks while the training host drains it through the
// CorpusShard pull interface. The ring gives backpressure (the producer
// blocks when all slots are full) so peak corpus memory is
// ringChunks * chunkTokens * 4 bytes per shard regardless of corpus size.
// Epoch replay re-runs the producer (beginEpoch abandons any half-produced
// epoch: outstanding Sink::push calls return false and the producer
// callback is expected to return promptly).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "text/corpus_source.h"

namespace gw2v::text {

class StreamingCorpus final : public CorpusSource {
 public:
  /// Producer-side outlet. push() appends tokens to the epoch's stream and
  /// blocks while the ring is full; it returns false once the epoch has been
  /// abandoned (replay/shutdown) — stop producing and return.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual bool push(std::span<const WordId> tokens) = 0;
  };

  /// Generates shard `shard`'s epoch `epoch` by pushing its tokens in order.
  /// Runs on the shard's producer thread; must push exactly the shard's
  /// declared tokensPerEpoch (the trainer treats a short epoch as an error).
  using Producer = std::function<void(unsigned shard, unsigned epoch, Sink& sink)>;

  struct Options {
    std::size_t chunkTokens = std::size_t{1} << 16;  ///< tokens per ring slot
    std::size_t ringChunks = 4;                      ///< slots per shard
  };

  StreamingCorpus(std::vector<std::uint64_t> shardTokensPerEpoch, Producer producer,
                  Options opts);
  StreamingCorpus(std::vector<std::uint64_t> shardTokensPerEpoch, Producer producer);
  ~StreamingCorpus() override;

  StreamingCorpus(const StreamingCorpus&) = delete;
  StreamingCorpus& operator=(const StreamingCorpus&) = delete;

  unsigned numShards() const noexcept override {
    return static_cast<unsigned>(shards_.size());
  }
  CorpusShard& shard(unsigned s) override;

  /// Upper bound on peak resident corpus bytes: the sum of each shard ring's
  /// peak occupancy (published + held chunks).
  std::uint64_t bufferedBytesPeak() const noexcept override;

  const Options& options() const noexcept { return opts_; }

 private:
  class Shard;
  Options opts_;
  Producer producer_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Stream an on-disk whitespace-tokenized corpus through a StreamingCorpus:
/// each shard's producer re-reads the file and emits the vocab-encoded
/// tokens of its contiguous slice hostSlice(keptTokens, shards, shard).
/// `vocab` must outlive the returned source, and keptTokens must equal the
/// number of file tokens present in the vocabulary — when the vocabulary was
/// built from this exact file, that is vocab.totalTokens().
std::unique_ptr<StreamingCorpus> streamTextFile(std::string path, const Vocabulary& vocab,
                                                std::uint64_t keptTokens, unsigned numShards,
                                                StreamingCorpus::Options opts = {});

/// Pipeline another corpus source through producer threads + bounded rings:
/// each inner shard is driven to exhaustion on its producer thread, so chunk
/// generation (random walks, decode, transforms) overlaps training instead
/// of running inline on the consuming host. Token streams are unchanged.
/// `inner` must outlive the returned corpus and must not be consumed
/// elsewhere while it is attached.
std::unique_ptr<StreamingCorpus> streamSource(CorpusSource& inner,
                                              StreamingCorpus::Options opts = {});

}  // namespace gw2v::text
