#pragma once

// word2phrase: data-driven bigram detection from the original Word2Vec
// toolkit (Mikolov et al. 2013, Section 4 "Learning Phrases"). Bigrams whose
// co-occurrence significantly exceeds chance are merged into single tokens
// ("new york" -> "new_york") before vocabulary construction:
//
//     score(a, b) = (count(ab) - discount) / (count(a) * count(b))
//
// scaled by the corpus size; bigrams scoring above `threshold` are joined.
// Multiple passes merge longer phrases.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gw2v::text {

struct PhraseOptions {
  /// Minimum count for words and bigrams to be considered (word2phrase: 5).
  std::uint64_t minCount = 5;
  /// Score threshold; higher = fewer phrases (word2phrase default: 100).
  double threshold = 100.0;
  /// Subtracted from bigram counts to discount rare-word noise.
  double discount = 5.0;
  char joiner = '_';
};

class PhraseDetector {
 public:
  explicit PhraseDetector(PhraseOptions opts = {}) : opts_(opts) {}

  /// Count unigrams and bigrams from a token sequence (streamable).
  void addTokens(const std::vector<std::string>& tokens);

  /// Score a bigram (0 when below min counts).
  double score(const std::string& first, const std::string& second) const;

  /// Rewrite a token stream, joining detected phrases greedily left-to-right.
  std::vector<std::string> apply(const std::vector<std::string>& tokens) const;

  /// Convenience: split text on whitespace, detect, and return the rewritten
  /// token stream after `passes` rounds (each round can extend phrases by
  /// one word).
  static std::vector<std::string> detectPhrases(std::string_view body,
                                                PhraseOptions opts = {}, int passes = 1);

  std::uint64_t totalTokens() const noexcept { return totalTokens_; }

 private:
  PhraseOptions opts_;
  std::unordered_map<std::string, std::uint64_t> unigrams_;
  std::unordered_map<std::string, std::uint64_t> bigrams_;
  std::uint64_t totalTokens_ = 0;
};

}  // namespace gw2v::text
