#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "ps/protocol.h"
#include "ps/trainer.h"
#include "ps/worker.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/sigmoid_table.h"

// The serial oracle for the async parameter server.
//
// Round-robin lockstep: per round, each worker in id order runs
// inspect -> Get -> apply -> compute -> Add against the in-process server
// cores, with the reply demanded synchronously. Feasibility of that schedule
// is itself a protocol property worth asserting: when worker w's Get of
// round r arrives here, every worker has been served through round r (or
// r+1), which makes w's pinned commit level reachable — if pump() does not
// emit the reply immediately, the fold or serve rule is broken.
//
// The oracle moves the same packed bodies through the same parse/decode/fold
// code as the live cluster, so trainAsyncPs == trainPsReference bit-for-bit
// is the replay-determinism test, not a numerical-tolerance one.

namespace gw2v::ps {

PsResult trainPsReference(const text::Vocabulary& vocab, std::span<const text::WordId> corpus,
                          const PsTrainOptions& opts) {
  detail::validateOptions(opts);
  const unsigned numServers = opts.numServers;
  const unsigned numWorkers = opts.numHosts - numServers;
  const std::uint32_t vocabSize = vocab.size();
  const PsConfig cfg = detail::protocolConfig(opts, vocabSize);

  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;
  const detail::WorkerEnv env{subsampler, negSampler, sigmoid};
  const auto parts = text::partitionCorpus(corpus, numWorkers);
  const graph::BlockedPartition part(vocabSize, numServers);
  const auto reducer = core::makeReducer(opts.reduction);

  std::vector<std::unique_ptr<ServerCore>> servers;
  servers.reserve(numServers);
  for (unsigned s = 0; s < numServers; ++s)
    servers.push_back(std::make_unique<ServerCore>(cfg, part.masterRange(s), numWorkers,
                                                   *reducer, opts.seed));
  std::vector<std::unique_ptr<detail::WorkerState>> workers;
  workers.reserve(numWorkers);
  for (unsigned w = 0; w < numWorkers; ++w)
    workers.push_back(
        std::make_unique<detail::WorkerState>(opts, cfg, env, parts[w], w, part));

  std::vector<std::vector<detail::EpochRec>> workerEpochs(numWorkers);
  for (auto& v : workerEpochs) v.resize(opts.epochs);
  std::vector<double> epochLoss(numWorkers, 0.0);
  std::vector<std::uint64_t> epochStartExamples(numWorkers, 0);

  const std::uint64_t totalRounds =
      static_cast<std::uint64_t>(opts.epochs) * opts.roundsPerEpoch;
  for (std::uint64_t round = 0; round < totalRounds; ++round) {
    for (unsigned w = 0; w < numWorkers; ++w) {
      detail::WorkerState& ws = *workers[w];
      const auto& access = ws.inspect(round);
      auto getBodies = ws.client().packGets(round, access);
      for (unsigned s = 0; s < numServers; ++s) {
        {
          comm::ByteReader r(getBodies[s]);
          servers[s]->onGet(w, 0.0, r);
        }
        std::vector<std::uint8_t> reply;
        bool got = false;
        servers[s]->pump([&](unsigned toWorker, double, std::vector<std::uint8_t> bodyBytes) {
          if (toWorker != w || got)
            throw std::logic_error("ps reference: unexpected reply from pump");
          reply = std::move(bodyBytes);
          got = true;
        });
        if (!got)
          throw std::logic_error("ps reference: Get not served at its pinned commit level");
        comm::ByteReader r(reply);
        ws.client().applyReply(ws.local(), r);
      }
      epochLoss[w] += ws.computeRound(round);
      ws.client().packAdds(ws.local(), round,
                           [&](unsigned s, std::vector<std::uint8_t> chunk) {
                             comm::ByteReader r(chunk);
                             servers[s]->onAdd(w, 0.0, r);
                           });
      ws.local().clearTouched();

      if ((round + 1) % opts.roundsPerEpoch == 0) {
        const unsigned epoch = static_cast<unsigned>((round + 1) / opts.roundsPerEpoch) - 1;
        detail::EpochRec& rec = workerEpochs[w][epoch];
        rec.lossSum = epochLoss[w];
        rec.examples = ws.examples() - epochStartExamples[w];
        epochLoss[w] = 0.0;
        epochStartExamples[w] = ws.examples();
      }
    }
  }
  for (unsigned s = 0; s < numServers; ++s) {
    for (unsigned w = 0; w < numWorkers; ++w) servers[s]->onDone(w);
    servers[s]->pump([](unsigned, double, std::vector<std::uint8_t>) {
      throw std::logic_error("ps reference: reply emitted after Done");
    });
    if (!servers[s]->finished())
      throw std::logic_error("ps reference: server left with pending clocks");
  }

  PsResult result;
  result.model.init(vocabSize, opts.sgns.dim);
  detail::composeModel(result.model, servers);
  detail::combineEpochs(result, opts.epochs, workerEpochs);
  std::vector<ClientStats> clientStats;
  clientStats.reserve(numWorkers);
  for (const auto& w : workers) {
    result.totalExamples += w->examples();
    clientStats.push_back(w->client().stats());
  }
  detail::accumulateStats(result, clientStats, servers);
  return result;
}

}  // namespace gw2v::ps
