#pragma once

// Wire protocol of the asynchronous parameter server (Multiverso-style).
//
// Ranks 0..numServers-1 are servers; the remaining ranks are workers. All
// traffic is point-to-point on the Transport seam, inside the TagSpace::kPs
// block (registered with the transport so a tag-range collision with another
// subsystem fails fast):
//
//   kTagRequest   worker -> server    Get / Add / Done
//   kTagReply     server -> worker    Get replies, matched by (server, tag)
//
// Every message carries a fixed envelope [u8 kind][f64 arriveVt]. The stamp
// is the *modelled* arrival time computed by the sender's VirtualTimeBoard
// (sim/virtual_time.h) — telemetry only; no protocol decision reads it, which
// is what keeps seeded replay bit-identical while still pricing asynchrony.
//
// Message bodies (after the envelope):
//
//   Get    [u64 round][u32 count] then count x [u32 row][u64 cachedEmbVer]
//          [u64 cachedTrnVer] — the version-keyed row cache's idea of each
//          row, kNoVersion when uncached. Rows ascending, all owned by the
//          destination server.
//   Reply  [u64 round][u32 count] then count x [u32 row] followed per label
//          by [u64 version][u8 fresh][encoded values if fresh]. fresh=0 means
//          the worker's cached copy is still the canonical value.
//   Add    [u64 clock][u8 lastChunk][u32 count] then count x [u8 label]
//          [u32 row][encoded delta]. One logical push per (worker, server,
//          clock) is split into pipelined chunks; the final one sets
//          lastChunk. A worker with nothing to push still sends one empty
//          chunk so the server's per-worker clock advances.
//   Done   empty body; the worker has pushed its final clock.
//
// Row values/deltas are encoded with comm::SyncCodec (fp32/fp16/int8). Both
// directions use error feedback for lossy codecs: the worker keeps per-row
// push residuals (PR 6 machinery — owe = delta + residual, ship Q(owe)), and
// the server keeps per-row reply residuals folded into the encode-once reply
// cache, so quantization error stays bounded instead of accumulating.

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "comm/codec.h"
#include "comm/collectives.h"
#include "comm/serialize.h"

namespace gw2v::ps {

inline constexpr int kTagRequest = comm::tagSpaceRange(comm::TagSpace::kPs).first + 0;
inline constexpr int kTagReply = comm::tagSpaceRange(comm::TagSpace::kPs).first + 1;

enum class MsgKind : std::uint8_t { kGet = 0, kAdd = 1, kDone = 2, kReply = 3 };

/// Version sentinel: "I have no cached copy of this row".
inline constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

/// Protocol-level knobs shared by ServerCore and ClientCore.
struct PsConfig {
  std::uint32_t numRows = 0;
  std::uint32_t dim = 0;
  /// SSP staleness bound s: rounds are grouped into windows of s + 1; a
  /// worker at round r reads the canonical model at the window base
  /// r - r mod (s+1), so reads are up to s clocks stale and workers drift up
  /// to s rounds apart without blocking. s = 0 is BSP (every round a window).
  unsigned staleness = 0;
  comm::SyncCodec codec = comm::SyncCodec::kFp32;
  bool pushErrorFeedback = true;
  bool replyErrorFeedback = true;
  /// Client row-cache capacity in rows (0 disables). Affects wire bytes
  /// only, never model bits: a cached row is byte-identical to what the
  /// server would re-send at the same version.
  std::size_t cacheRows = 4096;
  /// Rows per pipelined Add chunk (the push is cut into this many-row
  /// messages so encode and transfer overlap on the modelled NIC).
  std::uint32_t pushChunkRows = 512;
};

// ---- Envelope ----

inline constexpr std::size_t kEnvelopeBytes = 1 + sizeof(double);

/// Prepend the envelope with a zero arrival stamp (patched by stampArrival
/// once the sender's VirtualTimeBoard has priced the send).
inline std::vector<std::uint8_t> withEnvelope(MsgKind kind, std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> msg(kEnvelopeBytes + body.size());
  msg[0] = static_cast<std::uint8_t>(kind);
  const double zero = 0.0;
  std::memcpy(msg.data() + 1, &zero, sizeof(double));
  if (!body.empty()) std::memcpy(msg.data() + kEnvelopeBytes, body.data(), body.size());
  return msg;
}

inline void stampArrival(std::vector<std::uint8_t>& msg, double arriveVt) {
  std::memcpy(msg.data() + 1, &arriveVt, sizeof(double));
}

inline std::pair<MsgKind, double> readEnvelope(comm::ByteReader& r) {
  const auto kind = static_cast<MsgKind>(r.get<std::uint8_t>());
  const double arriveVt = r.get<double>();
  return {kind, arriveVt};
}

// ---- Codec'd row values inside message bodies ----

/// Append one row's encoded values; `scratch` is reused across calls.
inline void writeEncodedRow(comm::ByteWriter& w, comm::SyncCodec c, std::span<const float> v,
                            std::vector<std::uint8_t>& scratch) {
  scratch.resize(comm::codecValueBytes(c, static_cast<std::uint32_t>(v.size())));
  comm::encodeRowValues(c, v, scratch.data());
  w.putSpan(std::span<const std::uint8_t>(scratch));
}

/// Read one row's encoded values into `out`. Routed through ByteReader::view
/// with the codec's natural element type so the decode kernels always see
/// aligned input, wherever the entry landed in the message.
inline void readEncodedRow(comm::ByteReader& r, comm::SyncCodec c, std::span<float> out) {
  if (c == comm::SyncCodec::kFp16) {
    const auto h = r.view<std::uint16_t>(out.size());
    comm::decodeRowValues(c, reinterpret_cast<const std::uint8_t*>(h.data()), out);
  } else {
    const auto b = r.view<std::uint8_t>(
        comm::codecValueBytes(c, static_cast<std::uint32_t>(out.size())));
    comm::decodeRowValues(c, b.data(), out);
  }
}

}  // namespace gw2v::ps
