#include "ps/client_core.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/vecmath.h"

namespace gw2v::ps {

namespace {
graph::Label asLabel(int l) noexcept { return static_cast<graph::Label>(l); }
}  // namespace

ClientCore::ClientCore(const PsConfig& cfg, graph::BlockedPartition serverPartition)
    : cfg_(cfg), part_(std::move(serverPartition)), cache_(cfg.cacheRows) {
  if (cfg_.numRows == 0 || cfg_.dim == 0)
    throw std::invalid_argument("ClientCore: numRows/dim must be set");
  useResidual_ = cfg_.codec != comm::SyncCodec::kFp32 && cfg_.pushErrorFeedback;
  if (useResidual_)
    for (int l = 0; l < graph::kNumLabels; ++l) pushResidual_[l].init(cfg_.numRows, cfg_.dim);
  delta_.resize(cfg_.dim);
  owe_.resize(cfg_.dim);
  dec_.resize(cfg_.dim);
  tmp_.resize(cfg_.dim);
  claimSlot_.resize(cfg_.numRows);
  claimed_.assign(cfg_.numRows, 0);
  writers_.resize(numServers());
  counts_.resize(numServers());
}

std::vector<std::vector<std::uint8_t>> ClientCore::packGets(std::uint64_t round,
                                                            std::span<const std::uint32_t> rows) {
  const unsigned servers = numServers();
  for (const std::uint32_t row : claimedRows_) claimed_[row] = 0;
  claimedRows_.clear();
  std::fill(counts_.begin(), counts_.end(), 0u);
  for (const std::uint32_t row : rows) ++counts_[part_.masterOf(row)];

  constexpr std::size_t kRowBytes = sizeof(std::uint32_t) + graph::kNumLabels * sizeof(std::uint64_t);
  for (unsigned s = 0; s < servers; ++s) {
    writers_[s].reserve(sizeof(round) + sizeof(counts_[s]) + counts_[s] * kRowBytes);
    writers_[s].put(round);
    writers_[s].put(counts_[s]);
  }
  for (const std::uint32_t row : rows) {
    comm::ByteWriter& w = writers_[part_.masterOf(row)];
    w.put(row);
    if (auto hit = cache_.take(row)) {
      for (int l = 0; l < graph::kNumLabels; ++l) w.put(hit->ver[l]);
      claimSlot_[row] = std::move(*hit);
      claimed_[row] = 1;
      claimedRows_.push_back(row);
      ++stats_.cacheClaims;
    } else {
      for (int l = 0; l < graph::kNumLabels; ++l) w.put(kNoVersion);
    }
    ++stats_.rowsRequested;
  }
  std::vector<std::vector<std::uint8_t>> bodies;
  bodies.reserve(servers);
  for (unsigned s = 0; s < servers; ++s) bodies.push_back(writers_[s].take());
  return bodies;
}

void ClientCore::applyReply(graph::ModelGraph& local, comm::ByteReader& r) {
  (void)r.get<std::uint64_t>();  // round — implied by the blocking recv order
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto row = r.get<std::uint32_t>();
    // The refreshed entry starts from the claimed one (its unchanged labels
    // are exactly what the server refers back to) or recycles a retired
    // entry's storage; either way the steady state allocates nothing.
    const bool wasClaimed = claimed_[row] != 0;
    CacheEntry entry;
    if (wasClaimed) {
      entry = std::move(claimSlot_[row]);
    } else if (!spare_.empty()) {
      entry = std::move(spare_.back());
      spare_.pop_back();
    }
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto ver = r.get<std::uint64_t>();
      const bool fresh = r.get<std::uint8_t>() != 0;
      const auto dst = local.overwriteRow(asLabel(l), row);
      if (fresh) {
        readEncodedRow(r, cfg_.codec, tmp_);
        util::copyInto(std::span<const float>(tmp_), dst);
        entry.values[l].assign(tmp_.begin(), tmp_.end());
        ++stats_.valuesFresh;
      } else {
        if (!wasClaimed || entry.ver[l] != ver)
          throw std::logic_error("ps client: server said 'unchanged' for a row we never claimed");
        util::copyInto(std::span<const float>(entry.values[l]), dst);
        ++stats_.valuesCached;
      }
      entry.ver[l] = ver;
    }
    if (auto displaced = cache_.put(row, std::move(entry))) spare_.push_back(std::move(*displaced));
  }
}

void ClientCore::packAdds(const graph::ModelGraph& local, std::uint64_t clock,
                          const EmitChunk& emit) {
  const unsigned servers = numServers();
  const std::size_t vb = comm::codecValueBytes(cfg_.codec, cfg_.dim);

  struct Entry {
    std::uint8_t label;
    std::uint32_t row;
  };
  // Per-server entry streams; entry i's encoded delta sits at blob[i * vb].
  std::vector<std::vector<Entry>> entries(servers);
  std::vector<std::vector<std::uint8_t>> blobs(servers);

  encScratch_.resize(vb);
  for (int l = 0; l < graph::kNumLabels; ++l) {
    local.table(asLabel(l)).forEachDelta(
        [&](std::uint32_t row, std::span<const float> base, std::span<const float> cur) {
          util::sub(cur, base, delta_);
          const float* ship = delta_.data();
          if (useResidual_) {
            const auto res = pushResidual_[l].untrackedRow(row);
            for (std::uint32_t i = 0; i < cfg_.dim; ++i) owe_[i] = delta_[i] + res[i];
            ship = owe_.data();
          }
          comm::encodeRowValues(cfg_.codec, std::span<const float>(ship, cfg_.dim),
                                encScratch_.data());
          if (useResidual_) {
            const auto res = pushResidual_[l].untrackedRow(row);
            comm::decodeRowValues(cfg_.codec, encScratch_.data(), dec_);
            for (std::uint32_t i = 0; i < cfg_.dim; ++i) res[i] = owe_[i] - dec_[i];
          }
          const unsigned s = part_.masterOf(row);
          entries[s].push_back({static_cast<std::uint8_t>(l), row});
          blobs[s].insert(blobs[s].end(), encScratch_.begin(), encScratch_.end());
        });
  }

  const std::uint32_t chunkRows = std::max<std::uint32_t>(1, cfg_.pushChunkRows);
  for (unsigned s = 0; s < servers; ++s) {
    const std::size_t n = entries[s].size();
    const std::size_t chunks = std::max<std::size_t>(1, (n + chunkRows - 1) / chunkRows);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = c * chunkRows;
      const std::size_t hi = std::min(n, lo + chunkRows);
      comm::ByteWriter w;
      w.put(clock);
      w.put(static_cast<std::uint8_t>(c + 1 == chunks ? 1 : 0));
      w.put(static_cast<std::uint32_t>(hi - lo));
      for (std::size_t i = lo; i < hi; ++i) {
        w.put(entries[s][i].label);
        w.put(entries[s][i].row);
        w.putSpan(std::span<const std::uint8_t>(blobs[s].data() + i * vb, vb));
      }
      emit(s, w.take());
      ++stats_.chunksPushed;
    }
    stats_.rowEntriesPushed += n;
  }
}

}  // namespace gw2v::ps
