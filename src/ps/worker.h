#pragma once

// Shared worker-side round machinery for the async parameter server.
//
// Both drivers — the live simulated cluster (trainer.cpp) and the serial
// reference schedule (reference.cpp) — run exactly this per-round sequence:
//
//   inspect       replay the round's SGNS edge stream with the compute RNG to
//                 predict the access set (the PullModel trick: the RNG is
//                 consumed identically in both passes);
//   packGets / applyReply / packAdds   via ClientCore;
//   computeRound  the real gradient pass on the pulled snapshot.
//
// Keeping WorkerState identical across drivers is what makes the
// live == reference bit-equality test meaningful: the only difference between
// the two runs is who moves the bytes.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sgns.h"
#include "core/trainer.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "ps/client_core.h"
#include "ps/server_core.h"
#include "ps/trainer.h"
#include "runtime/do_all.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/sigmoid_table.h"
#include "util/vecmath.h"

namespace gw2v::ps::detail {

/// Immutable per-run sampling environment, built once and shared by every
/// worker (identical across live and reference drivers).
struct WorkerEnv {
  const text::SubsampleFilter& subsampler;
  const text::NegativeSampler& negSampler;
  const util::SigmoidTable& sigmoid;
};

inline void validateOptions(const PsTrainOptions& opts) {
  if (opts.numServers == 0)
    throw std::invalid_argument("trainAsyncPs: needs >= 1 server");
  if (opts.numHosts < opts.numServers + 1)
    throw std::invalid_argument("trainAsyncPs: needs >= 2 hosts (servers + at least 1 worker)");
  if (opts.sgns.architecture != core::Architecture::kSkipGram ||
      opts.sgns.objective != core::Objective::kNegativeSampling)
    throw std::invalid_argument("trainAsyncPs: skip-gram + negative sampling only");
  if (opts.epochs == 0 || opts.roundsPerEpoch == 0)
    throw std::invalid_argument("trainAsyncPs: epochs/roundsPerEpoch must be >= 1");
}

inline PsConfig protocolConfig(const PsTrainOptions& opts, std::uint32_t vocabSize) {
  PsConfig cfg;
  cfg.numRows = vocabSize;
  cfg.dim = opts.sgns.dim;
  cfg.staleness = opts.staleness;
  cfg.codec = opts.codec;
  cfg.pushErrorFeedback = opts.pushErrorFeedback;
  cfg.replyErrorFeedback = opts.replyErrorFeedback;
  cfg.cacheRows = opts.cacheRows;
  cfg.pushChunkRows = opts.pushChunkRows;
  return cfg;
}

class WorkerState {
 public:
  WorkerState(const PsTrainOptions& opts, const PsConfig& cfg, const WorkerEnv& env,
              std::span<const text::WordId> tokens, unsigned workerIdx,
              const graph::BlockedPartition& serverPartition)
      : opts_(opts),
        env_(env),
        tokens_(tokens),
        worker_(workerIdx),
        local_(cfg.numRows, cfg.dim),
        client_(cfg, serverPartition),
        scratch_(cfg.dim),
        access_(cfg.numRows),
        totalRounds_(static_cast<std::uint64_t>(opts.epochs) * opts.roundsPerEpoch) {
    local_.randomizeEmbeddings(opts.seed);
  }

  graph::ModelGraph& local() noexcept { return local_; }
  ClientCore& client() noexcept { return client_; }
  std::uint64_t examples() const noexcept { return examples_; }

  /// Predict the round's access set (ascending rows, ready for packGets).
  const std::vector<std::uint32_t>& inspect(std::uint64_t round) {
    access_.reset();
    util::Rng rng(rngSeed(round));
    core::forEachTrainingStep(
        chunk(round), opts_.sgns, env_.subsampler, env_.negSampler, rng,
        [&](text::WordId center, text::WordId context, std::span<const text::WordId> negs) {
          access_.set(center);
          access_.set(context);
          for (const auto n : negs) access_.set(n);
        });
    accessList_.clear();
    access_.forEachSet(
        [&](std::size_t n) { accessList_.push_back(static_cast<std::uint32_t>(n)); });
    return accessList_;
  }

  /// The gradient pass on the pulled snapshot; returns the round's loss sum
  /// (0 when loss tracking is off).
  double computeRound(std::uint64_t round) {
    const float frac = 1.0f - static_cast<float>(round) / static_cast<float>(totalRounds_);
    const float alpha = opts_.sgns.alpha * std::max(frac, opts_.minAlphaFraction);
    util::Rng rng(rngSeed(round));
    double loss = 0.0;
    core::forEachTrainingStep(
        chunk(round), opts_.sgns, env_.subsampler, env_.negSampler, rng,
        [&](text::WordId center, text::WordId context, std::span<const text::WordId> negs) {
          loss += core::sgnsStep(local_, center, context, negs, alpha, env_.sigmoid, scratch_,
                                 opts_.trackLoss);
          ++examples_;
        });
    return loss;
  }

 private:
  std::span<const text::WordId> chunk(std::uint64_t round) const {
    const auto [lo, hi] = runtime::blockRange(
        tokens_.size(), opts_.roundsPerEpoch,
        static_cast<unsigned>(round % opts_.roundsPerEpoch));
    return tokens_.subspan(lo, hi - lo);
  }
  std::uint64_t rngSeed(std::uint64_t round) const {
    return util::hash64(opts_.seed ^ (0x5151ULL + worker_) ^ (round << 8));
  }

  const PsTrainOptions& opts_;
  const WorkerEnv& env_;
  std::span<const text::WordId> tokens_;
  unsigned worker_;
  graph::ModelGraph local_;
  ClientCore client_;
  core::SgnsScratch scratch_;
  util::BitVector access_;
  std::vector<std::uint32_t> accessList_;
  std::uint64_t totalRounds_;
  std::uint64_t examples_ = 0;
};

/// Stitch the final model together from the servers' canonical partitions.
inline void composeModel(graph::ModelGraph& out,
                         std::span<const std::unique_ptr<ServerCore>> servers) {
  for (const auto& server : servers) {
    const auto [lo, hi] = server->ownRange();
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto label = static_cast<graph::Label>(l);
      for (std::uint32_t row = lo; row < hi; ++row)
        util::copyInto(server->table(label).row(row), out.untrackedRow(label, row));
    }
  }
}

/// Raw per-worker epoch record; combined across workers after the run.
struct EpochRec {
  double lossSum = 0.0;
  std::uint64_t examples = 0;
  double vt = 0.0;
};

inline void combineEpochs(PsResult& result, unsigned epochs,
                          const std::vector<std::vector<EpochRec>>& perWorker) {
  result.epochs.resize(epochs);
  for (unsigned e = 0; e < epochs; ++e) {
    PsEpochPoint& pt = result.epochs[e];
    pt.epoch = e + 1;
    double lossSum = 0.0;
    for (const auto& w : perWorker) {
      lossSum += w[e].lossSum;
      pt.examples += w[e].examples;
      pt.modelledSeconds = std::max(pt.modelledSeconds, w[e].vt);
    }
    pt.avgLoss = pt.examples > 0 ? lossSum / static_cast<double>(pt.examples) : 0.0;
  }
}

inline void accumulateStats(PsResult& result, std::span<const ClientStats> clients,
                            std::span<const std::unique_ptr<ServerCore>> servers) {
  for (const ClientStats& c : clients) {
    result.client.rowsRequested += c.rowsRequested;
    result.client.cacheClaims += c.cacheClaims;
    result.client.valuesFresh += c.valuesFresh;
    result.client.valuesCached += c.valuesCached;
    result.client.rowEntriesPushed += c.rowEntriesPushed;
    result.client.chunksPushed += c.chunksPushed;
  }
  for (const auto& s : servers) {
    const ServerStats& st = s->stats();
    result.server.foldedClocks += st.foldedClocks;
    result.server.foldedContributions += st.foldedContributions;
    result.server.servedGets += st.servedGets;
    result.server.parkedGets += st.parkedGets;
    result.server.freshValues += st.freshValues;
    result.server.cachedValues += st.cachedValues;
  }
}

}  // namespace gw2v::ps::detail
