#include "ps/server_core.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/timer.h"
#include "util/vecmath.h"

namespace gw2v::ps {

namespace {
graph::Label asLabel(int l) noexcept { return static_cast<graph::Label>(l); }
}  // namespace

ServerCore::ServerCore(const PsConfig& cfg, std::pair<std::uint32_t, std::uint32_t> ownRange,
                       unsigned numWorkers, const comm::Reducer& reducer,
                       std::uint64_t initSeed)
    : cfg_(cfg), ownRange_(ownRange), numWorkers_(numWorkers), reducer_(reducer) {
  if (numWorkers == 0) throw std::invalid_argument("ServerCore: needs >= 1 worker");
  if (cfg.numRows == 0 || cfg.dim == 0)
    throw std::invalid_argument("ServerCore: numRows/dim must be set");
  canon_.init(cfg_.numRows, cfg_.dim);
  canon_.randomizeEmbeddings(initSeed);
  parked_.resize(numWorkers);
  servedRounds_.assign(numWorkers, 0);
  done_.assign(numWorkers, 0);
  if (cfg_.codec != comm::SyncCodec::kFp32) {
    const std::uint32_t own = ownRange_.second - ownRange_.first;
    const std::size_t vb = comm::codecValueBytes(cfg_.codec, cfg_.dim);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      replyCache_[l].resize(static_cast<std::size_t>(own) * vb);
      replyCacheValid_[l].resize(own);
      if (cfg_.replyErrorFeedback) replyResidual_[l].init(cfg_.numRows, cfg_.dim);
    }
  }
  acc_.resize(cfg_.dim);
  owe_.resize(cfg_.dim);
  dec_.resize(cfg_.dim);
}

void ServerCore::onGet(unsigned worker, double arriveVt, comm::ByteReader& r) {
  assert(worker < numWorkers_ && !done_[worker]);
  const double t0 = util::ThreadCpuTimer::now();
  ParkedGet& g = parked_[worker];
  assert(!g.active && "protocol: one outstanding Get per worker");
  g.round = r.get<std::uint64_t>();
  assert(g.round == servedRounds_[worker] && "protocol: rounds are sequential");
  const auto count = r.get<std::uint32_t>();
  g.rows.clear();
  g.rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RowRef ref;
    ref.row = r.get<std::uint32_t>();
    for (int l = 0; l < graph::kNumLabels; ++l) ref.cachedVer[l] = r.get<std::uint64_t>();
    assert(ref.row >= ownRange_.first && ref.row < ownRange_.second);
    g.rows.push_back(ref);
  }
  g.arriveVt = arriveVt + (util::ThreadCpuTimer::now() - t0);
  g.active = true;
  if (commitLevel_ < neededLevel(g.round)) ++stats_.parkedGets;
}

void ServerCore::onAdd(unsigned worker, double arriveVt, comm::ByteReader& r) {
  assert(worker < numWorkers_ && !done_[worker]);
  const double t0 = util::ThreadCpuTimer::now();
  const auto clock = r.get<std::uint64_t>();
  const bool lastChunk = r.get<std::uint8_t>() != 0;
  if (clock < commitLevel_) throw std::logic_error("ServerCore: Add for a folded clock");
  const std::size_t idx = static_cast<std::size_t>(clock - commitLevel_);
  while (pending_.size() <= idx) {
    if (!clockPool_.empty()) {
      pending_.push_back(std::move(clockPool_.back()));
      clockPool_.pop_back();
    } else {
      pending_.emplace_back();
      pending_.back().byWorker.resize(numWorkers_);
    }
  }
  WorkerAdds& wa = pending_[idx].byWorker[worker];
  assert(!wa.complete && "protocol: chunks after lastChunk");
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    const int label = r.get<std::uint8_t>();
    const auto row = r.get<std::uint32_t>();
    assert(row >= ownRange_.first && row < ownRange_.second);
    LabelAdds& la = wa.perLabel[label];
    la.rows.push_back(row);
    const std::size_t at = la.values.size();
    la.values.resize(at + cfg_.dim);
    readEncodedRow(r, cfg_.codec, std::span<float>(la.values.data() + at, cfg_.dim));
  }
  if (lastChunk) {
    wa.complete = true;
    ++pending_[idx].completeCount;
  }
  // The fold that consumes this clock can start no earlier than the arrival
  // (plus decode) of its slowest contribution.
  pending_[idx].maxArrive =
      std::max(pending_[idx].maxArrive, arriveVt + (util::ThreadCpuTimer::now() - t0));
}

void ServerCore::onDone(unsigned worker) {
  assert(worker < numWorkers_ && !done_[worker]);
  done_[worker] = 1;
  ++doneCount_;
}

bool ServerCore::tryFold() {
  if (pending_.empty() || pending_.front().completeCount != numWorkers_) return false;
  const std::uint64_t k = commitLevel_;
  for (unsigned w = 0; w < numWorkers_; ++w) {
    // Fold only when every live worker's *next* Get is pinned above k —
    // folding past a level some worker will still read would break the serve
    // rule's pinning (Done waives the wait). Per-worker FIFO on the request
    // tag means a served round k+1 also proves the clock-k push arrived, so
    // the completeCount check above is belt and braces.
    if (!done_[w] && neededLevel(servedRounds_[w]) <= k) return false;
  }
  const double t0 = util::ThreadCpuTimer::now();
  PendingClock clockAdds = std::move(pending_.front());
  pending_.pop_front();

  for (int l = 0; l < graph::kNumLabels; ++l) {
    contribs_.clear();
    for (unsigned w = 0; w < numWorkers_; ++w) {
      const LabelAdds& la = clockAdds.byWorker[w].perLabel[l];
      for (std::size_t i = 0; i < la.rows.size(); ++i)
        contribs_.push_back({la.rows[i], la.values.data() + i * cfg_.dim});
    }
    // Ascending rows; stable keeps each row's contributions in worker order,
    // which is what makes the fold schedule-independent.
    std::stable_sort(contribs_.begin(), contribs_.end(),
                     [](const Contrib& a, const Contrib& b) { return a.row < b.row; });
    for (std::size_t i = 0; i < contribs_.size();) {
      const std::uint32_t row = contribs_[i].row;
      std::copy(contribs_[i].values, contribs_[i].values + cfg_.dim, acc_.begin());
      std::size_t j = i + 1;
      for (; j < contribs_.size() && contribs_[j].row == row; ++j)
        reducer_.accumulate(acc_, std::span<const float>(contribs_[j].values, cfg_.dim));
      reducer_.finalize(acc_, static_cast<unsigned>(j - i));
      util::add(std::span<const float>(acc_), canon_.overwriteRow(asLabel(l), row));
      stats_.foldedContributions += j - i;
      if (cfg_.codec != comm::SyncCodec::kFp32) encodeForReply(l, row);
      i = j;
    }
    // Keep version() == commitLevel + 1 on both tables so rowVersion stamps
    // are the commit clock + 1 regardless of which labels a fold touched.
    canon_.table(asLabel(l)).advanceVersion();
  }
  ++commitLevel_;
  ++stats_.foldedClocks;
  // The new commit is causally ready once the previous one was, the slowest
  // contributing Add had arrived, and the fold's own CPU has been paid.
  commitVt_ = std::max(commitVt_, clockAdds.maxArrive) + (util::ThreadCpuTimer::now() - t0);
  // Recycle the folded clock's arenas for a later onAdd.
  for (WorkerAdds& wa : clockAdds.byWorker) {
    wa.complete = false;
    for (auto& la : wa.perLabel) {
      la.rows.clear();
      la.values.clear();
    }
  }
  clockAdds.completeCount = 0;
  clockAdds.maxArrive = 0.0;
  clockPool_.push_back(std::move(clockAdds));
  return true;
}

void ServerCore::encodeForReply(int label, std::uint32_t row) {
  const std::size_t vb = comm::codecValueBytes(cfg_.codec, cfg_.dim);
  std::uint8_t* out =
      replyCache_[label].data() + static_cast<std::size_t>(row - ownRange_.first) * vb;
  const std::span<const float> canon = canon_.row(asLabel(label), row);
  if (cfg_.replyErrorFeedback) {
    const auto res = replyResidual_[label].untrackedRow(row);
    for (std::uint32_t i = 0; i < cfg_.dim; ++i) owe_[i] = canon[i] + res[i];
    comm::encodeRowValues(cfg_.codec, owe_, out);
    comm::decodeRowValues(cfg_.codec, out, dec_);
    for (std::uint32_t i = 0; i < cfg_.dim; ++i) res[i] = owe_[i] - dec_[i];
  } else {
    comm::encodeRowValues(cfg_.codec, canon, out);
  }
  replyCacheValid_[label].set(row - ownRange_.first);
}

void ServerCore::serve(unsigned worker, ParkedGet& g, const Emit& emit) {
  assert(commitLevel_ == neededLevel(g.round) && "serve level overshot — fold rule broken");
  const double t0 = util::ThreadCpuTimer::now();
  const std::size_t vb = comm::codecValueBytes(cfg_.codec, cfg_.dim);
  comm::ByteWriter w;
  // Upper bound: every value fresh (fp32 rows ship dim * 4 == vb bytes too).
  w.reserve(sizeof(g.round) + sizeof(std::uint32_t) +
            g.rows.size() * (sizeof(std::uint32_t) +
                             graph::kNumLabels * (sizeof(std::uint64_t) + 1 + vb)));
  w.put(g.round);
  w.put(static_cast<std::uint32_t>(g.rows.size()));
  for (const RowRef& ref : g.rows) {
    w.put(ref.row);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const std::uint64_t ver = canon_.table(asLabel(l)).rowVersion(ref.row);
      w.put(ver);
      const std::uint8_t fresh = ref.cachedVer[l] != ver ? 1 : 0;
      w.put(fresh);
      if (!fresh) {
        ++stats_.cachedValues;
        continue;
      }
      ++stats_.freshValues;
      if (cfg_.codec == comm::SyncCodec::kFp32) {
        w.putSpan(canon_.row(asLabel(l), ref.row));
      } else {
        // Version-0 rows (never folded) are encoded on first request; later
        // versions were encoded at fold time. Either way every requester of a
        // version sees the same bytes.
        if (!replyCacheValid_[l].test(ref.row - ownRange_.first)) encodeForReply(l, ref.row);
        w.putSpan(std::span<const std::uint8_t>(
            replyCache_[l].data() + static_cast<std::size_t>(ref.row - ownRange_.first) * vb,
            vb));
      }
    }
  }
  servedRounds_[worker] = g.round + 1;
  g.active = false;
  g.rows.clear();
  ++stats_.servedGets;
  // Ready once both the request and its pinned commit were, plus serve CPU.
  const double readyVt =
      std::max(g.arriveVt, commitVt_) + (util::ThreadCpuTimer::now() - t0);
  emit(worker, readyVt, w.take());
}

bool ServerCore::serveReady(const Emit& emit) {
  bool progress = false;
  for (unsigned w = 0; w < numWorkers_; ++w) {
    ParkedGet& g = parked_[w];
    if (g.active && commitLevel_ >= neededLevel(g.round)) {
      serve(w, g, emit);
      progress = true;
    }
  }
  return progress;
}

void ServerCore::pump(const Emit& emit) {
  bool progress = true;
  while (progress) {
    progress = false;
    while (tryFold()) progress = true;
    if (serveReady(emit)) progress = true;
  }
}

}  // namespace gw2v::ps
