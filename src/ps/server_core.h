#pragma once

// ServerCore — transport-free logic of one parameter-server rank.
//
// Owns the canonical values of a contiguous BlockedPartition master range and
// tracks per-worker clocks for deterministic bounded staleness:
//
//   commit level   number of clocks folded into the canonical table so far.
//   serve rule     a Get for round r is answered exactly at commit level
//                  g(r) = r - r mod (s+1) — the base of r's staleness window
//                  of s+1 rounds; it parks until folds catch up.
//   fold rule      clock k (== current commit level) folds once every
//                  worker's *next* Get is pinned above k, i.e.
//                  g(next round of w) > k for all w (Done waives a worker).
//                  That implies every worker already pushed clock k, so
//                  completeness of the clock-k adds follows rather than
//                  being an independent wait.
//
// The serve rule pins every read to a commit level, so reply bytes — and
// therefore training — are bit-identical across reruns no matter how the
// asynchronous message interleaving lands; the fold rule guarantees the
// commit level can never overshoot a parked Get's pinned level. Within a
// window, reads are servable immediately (values up to s clocks stale), so
// workers drift up to s rounds apart without blocking; they resynchronize
// only at window boundaries. s = 0 pins g(r) = r: exact BSP, zero drift.
//
// Deadlock-freedom: the least-advanced worker's Get is always servable —
// every fold its pinned level needs is enabled by the *other* workers'
// windows sitting at or above its own.
//
// Adds are folded per row through a pluggable comm::Reducer (model combiner
// by default), contributions in worker-id order, rows ascending:
// value' = value + finalize(accumulate(d_w0, d_w1, ...)). Row versions come
// from the EmbeddingTable's native machinery: each fold ends with
// advanceVersion(), so rowVersion(r) == 1 + the last clock that touched r —
// the version key the client cache invalidates against.
//
// For lossy codecs replies are encoded once per (row, version) into a reply
// cache, with optional server-side error-feedback residuals: at fold time
// owe = canonical + residual, the cache stores Q(owe), and
// residual' = owe - decode(Q(owe)). Every requester of a version gets the
// same bytes, so a worker's cached copy never diverges from a re-send.
//
// Modelled time: messages carry modelled arrival stamps (sim::VirtualTimeBoard)
// and the core tracks when each commit became *causally* ready — a fold is
// ready at max(commit-ready, latest contributing Add arrival) plus its
// measured CPU; a reply is ready at max(Get arrival, pinned commit ready)
// plus its measured CPU. Reply readiness therefore follows message causality,
// not the real order the simulator's threads happened to process messages in.
// Cross-message server CPU contention is deliberately not modelled (servers
// are assumed provisioned to keep up); NIC serialization is the caller's job
// at depart time. Stamps are telemetry only — no protocol decision reads
// them, so replay determinism is unaffected.

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "comm/reducer.h"
#include "comm/serialize.h"
#include "graph/model_graph.h"
#include "ps/protocol.h"
#include "util/bitvector.h"

namespace gw2v::ps {

struct ServerStats {
  std::uint64_t foldedClocks = 0;
  std::uint64_t foldedContributions = 0;  // (row, label, worker) deltas folded
  std::uint64_t servedGets = 0;
  std::uint64_t parkedGets = 0;     // gets that had to wait on a fold
  std::uint64_t freshValues = 0;    // (row, label) values shipped
  std::uint64_t cachedValues = 0;   // (row, label) served as "unchanged"
};

class ServerCore {
 public:
  /// `ownRange` is this server's BlockedPartition master range; `initSeed`
  /// must match the workers' model init seed so version-0 rows agree.
  ServerCore(const PsConfig& cfg, std::pair<std::uint32_t, std::uint32_t> ownRange,
             unsigned numWorkers, const comm::Reducer& reducer, std::uint64_t initSeed);

  /// Reply sink: `readyVt` is the modelled time the reply content became
  /// available (pass 0 arrival stamps to ignore modelled time entirely).
  using Emit =
      std::function<void(unsigned worker, double readyVt, std::vector<std::uint8_t> replyBody)>;

  /// Feed one Get body (post-envelope); `arriveVt` is the modelled arrival
  /// time. Reply is emitted by the next pump().
  void onGet(unsigned worker, double arriveVt, comm::ByteReader& r);
  /// Feed one Add chunk body (post-envelope).
  void onAdd(unsigned worker, double arriveVt, comm::ByteReader& r);
  void onDone(unsigned worker);

  /// Fold every eligible clock and serve every Get whose pinned commit level
  /// is reached, until neither makes progress. Reply bodies are
  /// deterministic; emission order across workers is not load-bearing.
  void pump(const Emit& emit);

  bool finished() const noexcept { return doneCount_ == numWorkers_ && pending_.empty(); }
  std::uint64_t commitLevel() const noexcept { return commitLevel_; }
  /// Modelled time the current commit level became available.
  double commitVt() const noexcept { return commitVt_; }
  std::pair<std::uint32_t, std::uint32_t> ownRange() const noexcept { return ownRange_; }
  const model::EmbeddingTable& table(graph::Label l) const noexcept { return canon_.table(l); }
  const ServerStats& stats() const noexcept { return stats_; }

 private:
  /// One worker's decoded deltas for one label: row ids plus a flat value
  /// arena (entry i's dim floats start at values[i * dim]) — appending a
  /// contribution never allocates once the arena's capacity has warmed up.
  struct LabelAdds {
    std::vector<std::uint32_t> rows;
    std::vector<float> values;
  };
  struct WorkerAdds {
    LabelAdds perLabel[graph::kNumLabels];
    bool complete = false;
  };
  struct PendingClock {
    std::vector<WorkerAdds> byWorker;
    unsigned completeCount = 0;
    double maxArrive = 0.0;  // modelled readiness of the slowest contribution
  };
  struct RowRef {
    std::uint32_t row;
    std::uint64_t cachedVer[graph::kNumLabels];
  };
  struct ParkedGet {
    std::uint64_t round = 0;
    double arriveVt = 0.0;
    std::vector<RowRef> rows;
    bool active = false;
  };

  bool tryFold();
  bool serveReady(const Emit& emit);
  void serve(unsigned worker, ParkedGet& g, const Emit& emit);
  /// (Re-)encode one row of one label into the reply cache, folding the
  /// reply residual when enabled. Idempotent per (row, version).
  void encodeForReply(int label, std::uint32_t row);
  /// Base of `round`'s staleness window of cfg_.staleness + 1 rounds.
  std::uint64_t neededLevel(std::uint64_t round) const noexcept {
    return round - round % (static_cast<std::uint64_t>(cfg_.staleness) + 1);
  }

  PsConfig cfg_;
  std::pair<std::uint32_t, std::uint32_t> ownRange_;
  unsigned numWorkers_;
  const comm::Reducer& reducer_;

  graph::ModelGraph canon_;
  std::uint64_t commitLevel_ = 0;
  double commitVt_ = 0.0;
  std::deque<PendingClock> pending_;  // pending_[i] holds clock commitLevel_ + i
  std::vector<PendingClock> clockPool_;  // folded clocks, recycled for capacity

  std::vector<ParkedGet> parked_;          // one slot per worker
  std::vector<std::uint64_t> servedRounds_;  // rounds served so far (== next round)
  std::vector<std::uint8_t> done_;
  unsigned doneCount_ = 0;

  // Lossy-codec reply path: encode-once cache + optional EF residuals,
  // own-range rows only.
  std::vector<std::uint8_t> replyCache_[graph::kNumLabels];
  util::BitVector replyCacheValid_[graph::kNumLabels];
  model::EmbeddingTable replyResidual_[graph::kNumLabels];

  // Fold / encode scratch, reused across clocks.
  struct Contrib {
    std::uint32_t row;
    const float* values;  // dim floats inside a LabelAdds arena
  };
  std::vector<Contrib> contribs_;
  std::vector<float> acc_;
  std::vector<float> owe_;
  std::vector<float> dec_;

  ServerStats stats_;
};

}  // namespace gw2v::ps
