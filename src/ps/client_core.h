#pragma once

// ClientCore — worker-side half of the async parameter server.
//
// Three per-round duties, all transport-free (the trainer moves the bytes):
//
//   packGets    turn the round's predicted access set into per-server Get
//               bodies. Each row is looked up in the version-keyed LRU row
//               cache (util/lru_cache.h); hits ship their cached versions so
//               the server can answer "unchanged", misses ship kNoVersion.
//               Hit entries are *claimed* — moved out of the cache into a
//               flat per-row slot — so later cache puts (or evictions,
//               however small the cache) can never invalidate a value the
//               reply will refer back to. Claims, entry storage and the
//               round's reply refresh all recycle the same vectors, so the
//               steady-state round does no per-row allocation.
//   applyReply  write one server's reply into the local model: fresh rows
//               decode from the wire and refresh the cache; unchanged rows
//               copy from the claim. Cache capacity therefore changes wire
//               bytes only, never model bits — a cached value at version v is
//               byte-identical to the server's encode-once reply at v.
//   packAdds    walk both labels' dirty sets (EmbeddingTable first-touch
//               DeltaLog gives delta = current - baseline), apply client-side
//               error-feedback residuals under lossy codecs, and emit the
//               encoded deltas as pipelined per-server Add chunks. The caller
//               rebaselines (clearTouched) afterwards, exactly like a sync
//               round.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "comm/serialize.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "model/embedding_table.h"
#include "ps/protocol.h"
#include "util/lru_cache.h"

namespace gw2v::ps {

struct ClientStats {
  std::uint64_t rowsRequested = 0;
  std::uint64_t cacheClaims = 0;     // rows requested with a cached version
  std::uint64_t valuesFresh = 0;     // (row, label) values decoded from wire
  std::uint64_t valuesCached = 0;    // (row, label) values served from claims
  std::uint64_t rowEntriesPushed = 0;  // (row, label) deltas shipped
  std::uint64_t chunksPushed = 0;
};

class ClientCore {
 public:
  ClientCore(const PsConfig& cfg, graph::BlockedPartition serverPartition);

  unsigned numServers() const noexcept { return part_.numHosts(); }

  /// Per-server Get bodies for the (ascending) access set; claims cache hits.
  std::vector<std::vector<std::uint8_t>> packGets(std::uint64_t round,
                                                  std::span<const std::uint32_t> rows);

  /// Apply one server's reply body to the local model + cache.
  void applyReply(graph::ModelGraph& local, comm::ByteReader& r);

  using EmitChunk = std::function<void(unsigned server, std::vector<std::uint8_t> chunkBody)>;

  /// Encode the local model's dirty deltas into Add chunk bodies, emitted in
  /// (server, chunk) order. Every server gets >= 1 chunk (possibly empty) so
  /// its per-worker clock advances. Caller must local.clearTouched() after.
  void packAdds(const graph::ModelGraph& local, std::uint64_t clock, const EmitChunk& emit);

  const ClientStats& stats() const noexcept { return stats_; }

 private:
  struct CacheEntry {
    std::uint64_t ver[graph::kNumLabels];
    std::vector<float> values[graph::kNumLabels];
  };

  PsConfig cfg_;
  graph::BlockedPartition part_;
  util::LruCache<std::uint32_t, CacheEntry> cache_;

  // Pinned reads, per round: claimed_[row] flags a claim whose entry sits in
  // claimSlot_[row] (flat O(numRows) slots — same memory class as the
  // residual tables — so the hot path never hashes).
  std::vector<CacheEntry> claimSlot_;
  std::vector<std::uint8_t> claimed_;
  std::vector<std::uint32_t> claimedRows_;
  std::vector<CacheEntry> spare_;  // retired entries recycled for their capacity
  std::vector<comm::ByteWriter> writers_;
  std::vector<std::uint32_t> counts_;

  model::EmbeddingTable pushResidual_[graph::kNumLabels];  // lossy-codec EF
  bool useResidual_ = false;

  // Scratch reused across rounds.
  std::vector<float> delta_;
  std::vector<float> owe_;
  std::vector<float> dec_;
  std::vector<float> tmp_;
  std::vector<std::uint8_t> encScratch_;

  ClientStats stats_;
};

}  // namespace gw2v::ps
