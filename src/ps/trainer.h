#pragma once

// Async bounded-staleness parameter-server training (DESIGN.md Section 5h).
//
// Ranks 0..numServers-1 hold the canonical model partitioned by
// graph::BlockedPartition master ranges; the remaining ranks are workers,
// each owning a contiguous corpus shard. Per round a worker predicts its
// access set, Gets exactly those rows (version-keyed row cache turning
// unchanged rows into 9-byte acks), Hogwild-trains the round's chunk, and
// pushes codec'd row deltas as pipelined Add chunks. The server folds each
// clock through a pluggable reduction once its staleness window closes.
//
// Reads are pinned to deterministic commit levels (see ps/server_core.h), so
// a seeded run is bit-identical across reruns for any staleness bound; s = 0
// reproduces BSP exactly. trainPsReference() runs the identical protocol on a
// serial in-process schedule — live == reference bit-equality is the replay
// test.

#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.h"
#include "core/sgns.h"
#include "core/trainer.h"
#include "graph/model_graph.h"
#include "ps/client_core.h"
#include "ps/server_core.h"
#include "sim/cluster.h"
#include "text/vocabulary.h"

namespace gw2v::ps {

struct PsTrainOptions {
  core::SgnsParams sgns;
  unsigned epochs = 16;
  /// Worker rounds per epoch (Get/compute/Add frequency).
  unsigned roundsPerEpoch = 8;
  /// Total hosts: numServers servers + the rest workers (>= numServers + 1).
  unsigned numHosts = 4;
  unsigned numServers = 1;
  /// SSP staleness bound s (see PsConfig::staleness). 0 = BSP.
  unsigned staleness = 0;
  core::Reduction reduction = core::Reduction::kModelCombiner;
  comm::SyncCodec codec = comm::SyncCodec::kFp32;
  bool pushErrorFeedback = true;
  bool replyErrorFeedback = true;
  /// Client row-cache capacity (rows; 0 disables). Wire bytes only.
  std::size_t cacheRows = 4096;
  /// Rows per pipelined Add chunk.
  std::uint32_t pushChunkRows = 512;
  bool trackLoss = true;
  std::uint64_t seed = 42;
  float minAlphaFraction = 1e-4f;
  sim::NetworkModel netModel{};
};

/// One epoch of the convergence-vs-modelled-wallclock curve.
struct PsEpochPoint {
  unsigned epoch = 0;        // 1-based
  double avgLoss = 0.0;      // mean SGNS loss per example (0 if !trackLoss)
  std::uint64_t examples = 0;
  /// Modelled time (VirtualTimeBoard) at which the slowest worker finished
  /// the epoch. 0 in reference runs, which model no time.
  double modelledSeconds = 0.0;
};

struct PsResult {
  /// Canonical final model, composed from the servers' master ranges.
  graph::ModelGraph model;
  sim::ClusterReport cluster;  // live runs only
  std::uint64_t totalExamples = 0;
  /// Modelled makespan of the asynchronous message flow (live runs only).
  double modelledSeconds = 0.0;
  std::vector<PsEpochPoint> epochs;
  ClientStats client;  // summed over workers
  ServerStats server;  // summed over servers
};

/// Live run on the simulated cluster (one thread per rank, real messages).
PsResult trainAsyncPs(const text::Vocabulary& vocab, std::span<const text::WordId> corpus,
                      const PsTrainOptions& opts);

/// Serial in-process oracle: drives the same ServerCore/ClientCore through
/// the deterministic lockstep schedule. Model bits, loss, and examples are
/// bit-identical to trainAsyncPs; modelled time is not computed.
PsResult trainPsReference(const text::Vocabulary& vocab, std::span<const text::WordId> corpus,
                          const PsTrainOptions& opts);

}  // namespace gw2v::ps
