#include "ps/trainer.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "comm/transport.h"
#include "ps/protocol.h"
#include "ps/worker.h"
#include "sim/virtual_time.h"
#include "text/corpus.h"
#include "text/sampling.h"
#include "util/sigmoid_table.h"
#include "util/timer.h"

namespace gw2v::ps {

PsResult trainAsyncPs(const text::Vocabulary& vocab, std::span<const text::WordId> corpus,
                      const PsTrainOptions& opts) {
  detail::validateOptions(opts);
  const unsigned numServers = opts.numServers;
  const unsigned numWorkers = opts.numHosts - numServers;
  const std::uint32_t vocabSize = vocab.size();
  const PsConfig cfg = detail::protocolConfig(opts, vocabSize);

  const text::SubsampleFilter subsampler(vocab.counts(), opts.sgns.subsample);
  const text::NegativeSampler negSampler(vocab.counts());
  const util::SigmoidTable sigmoid;
  const detail::WorkerEnv env{subsampler, negSampler, sigmoid};
  const auto parts = text::partitionCorpus(corpus, numWorkers);
  const graph::BlockedPartition part(vocabSize, numServers);
  const auto reducer = core::makeReducer(opts.reduction);

  const std::uint64_t totalRounds =
      static_cast<std::uint64_t>(opts.epochs) * opts.roundsPerEpoch;
  sim::VirtualTimeBoard vt(opts.numHosts, opts.netModel);

  // Rank-indexed result slots; each is written by exactly one host thread.
  std::vector<std::unique_ptr<ServerCore>> servers(numServers);
  std::vector<ClientStats> clientStats(numWorkers);
  std::vector<std::uint64_t> workerExamples(numWorkers, 0);
  std::vector<std::vector<detail::EpochRec>> workerEpochs(numWorkers);
  for (auto& v : workerEpochs) v.resize(opts.epochs);

  const auto body = [&](sim::HostContext& ctx) {
    comm::SimTransport net(ctx.network());
    const auto [tagLo, tagHi] = comm::tagSpaceRange(comm::TagSpace::kPs);
    net.registerTagRange(tagLo, tagHi, comm::tagSpaceName(comm::TagSpace::kPs));
    const sim::HostId me = ctx.id();

    if (me < numServers) {
      // ---- Server rank: dispatch requests in arrival order; the core's
      // causal stamps keep modelled time independent of that order. ----
      auto core = std::make_unique<ServerCore>(cfg, part.masterRange(me), numWorkers,
                                               *reducer, opts.seed);
      const auto emit = [&](unsigned worker, double readyVt, std::vector<std::uint8_t> bodyBytes) {
        auto msg = withEnvelope(MsgKind::kReply, std::move(bodyBytes));
        stampArrival(msg, vt.departAt(me, readyVt, msg.size()));
        net.send(me, numServers + worker, kTagReply, std::move(msg), sim::CommPhase::kBroadcast);
      };
      while (!core->finished()) {
        auto [src, payload] = net.recvAny(me, kTagRequest, sim::CommPhase::kControl);
        comm::ByteReader r(payload);
        const auto [kind, arriveVt] = readEnvelope(r);
        const unsigned worker = static_cast<unsigned>(src) - numServers;
        ctx.computeTimer().start();
        switch (kind) {
          case MsgKind::kGet: core->onGet(worker, arriveVt, r); break;
          case MsgKind::kAdd: core->onAdd(worker, arriveVt, r); break;
          case MsgKind::kDone: core->onDone(worker); break;
          default: throw std::logic_error("ps server: unexpected message kind");
        }
        core->pump(emit);
        ctx.computeTimer().stop();
      }
      // Final folds happened after the last reply; surface them to makespan.
      vt.observeArrival(me, core->commitVt());
      // BSP-equivalent comm charge (same exchangeSeconds formula the sync
      // engines apply per round) so cluster.simulatedSeconds() is directly
      // comparable with the all-reduce trainers' number.
      ctx.addModelledCommSeconds(opts.netModel.exchangeSeconds(sim::snapshot(ctx.commStats())));
      servers[me] = std::move(core);
      return;
    }

    // ---- Worker rank. ----
    const unsigned worker = static_cast<unsigned>(me) - numServers;
    detail::WorkerState ws(opts, cfg, env, parts[worker], worker, part);
    double cpuMark = util::ThreadCpuTimer::now();
    const auto chargeCpu = [&] {
      const double t = util::ThreadCpuTimer::now();
      vt.advance(me, t - cpuMark);
      cpuMark = t;
    };
    double epochLoss = 0.0;
    std::uint64_t epochStartExamples = 0;

    for (std::uint64_t round = 0; round < totalRounds; ++round) {
      ctx.computeTimer().start();
      const auto& access = ws.inspect(round);
      auto getBodies = ws.client().packGets(round, access);
      ctx.computeTimer().stop();
      for (unsigned s = 0; s < numServers; ++s) {
        auto msg = withEnvelope(MsgKind::kGet, std::move(getBodies[s]));
        chargeCpu();
        stampArrival(msg, vt.depart(me, msg.size()));
        net.send(me, s, kTagRequest, std::move(msg), sim::CommPhase::kControl);
      }
      for (unsigned s = 0; s < numServers; ++s) {
        const auto payload = net.recv(me, s, kTagReply, sim::CommPhase::kBroadcast);
        comm::ByteReader r(payload);
        const auto [kind, arriveVt] = readEnvelope(r);
        if (kind != MsgKind::kReply) throw std::logic_error("ps worker: expected a reply");
        cpuMark = util::ThreadCpuTimer::now();  // blocked time is not compute
        vt.observeArrival(me, arriveVt);
        ctx.computeTimer().start();
        ws.client().applyReply(ws.local(), r);
        ctx.computeTimer().stop();
      }
      ctx.computeTimer().start();
      epochLoss += ws.computeRound(round);
      ws.client().packAdds(ws.local(), round, [&](unsigned s, std::vector<std::uint8_t> chunk) {
        auto msg = withEnvelope(MsgKind::kAdd, std::move(chunk));
        // Charging pack CPU before each depart is what pipelines the push:
        // earlier chunks are already on the modelled wire while later ones
        // are still being encoded.
        chargeCpu();
        stampArrival(msg, vt.depart(me, msg.size()));
        net.send(me, s, kTagRequest, std::move(msg), sim::CommPhase::kReduce);
      });
      ws.local().clearTouched();
      ctx.computeTimer().stop();
      chargeCpu();

      if ((round + 1) % opts.roundsPerEpoch == 0) {
        const unsigned epoch = static_cast<unsigned>((round + 1) / opts.roundsPerEpoch) - 1;
        detail::EpochRec& rec = workerEpochs[worker][epoch];
        rec.lossSum = epochLoss;
        rec.examples = ws.examples() - epochStartExamples;
        rec.vt = vt.now(me);
        epochLoss = 0.0;
        epochStartExamples = ws.examples();
      }
    }
    for (unsigned s = 0; s < numServers; ++s) {
      auto msg = withEnvelope(MsgKind::kDone, {});
      chargeCpu();
      stampArrival(msg, vt.depart(me, msg.size()));
      net.send(me, s, kTagRequest, std::move(msg), sim::CommPhase::kControl);
    }
    ctx.addModelledCommSeconds(opts.netModel.exchangeSeconds(sim::snapshot(ctx.commStats())));
    clientStats[worker] = ws.client().stats();
    workerExamples[worker] = ws.examples();
  };

  sim::ClusterOptions copts;
  copts.numHosts = opts.numHosts;
  copts.workerThreadsPerHost = 1;
  copts.networkModel = opts.netModel;

  PsResult result;
  result.cluster = sim::runCluster(copts, body);
  result.model.init(vocabSize, opts.sgns.dim);
  detail::composeModel(result.model, servers);
  result.modelledSeconds = vt.makespan();
  detail::combineEpochs(result, opts.epochs, workerEpochs);
  for (const auto e : workerExamples) result.totalExamples += e;
  detail::accumulateStats(result, clientStats, servers);
  return result;
}

}  // namespace gw2v::ps
