#!/bin/bash
# ASan+UBSan build + full test run. Catches the class of bug the serializer's
# misaligned-view fix closed (UB reinterpret casts), data races surfacing as
# heap errors, and leaks in the collective layer's payload plumbing.
#
# Usage: ci/sanitize.sh [build-dir]   (default: build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
cmake -S . -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGW2V_SANITIZE=address,undefined \
  -DGW2V_NATIVE_ARCH=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Stress the snapshot hot-swap path under the sanitizers: many more
# publish/pin races than the default run, so lifetime bugs in the
# hazard-pointer reclamation surface as ASan heap-use-after-free.
GW2V_HOTSWAP_ITERS=2000 ctest --test-dir "$BUILD_DIR" -R 'Serve' --output-on-failure
