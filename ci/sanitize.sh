#!/bin/bash
# Sanitizer build + test run. Catches the class of bug the serializer's
# misaligned-view fix closed (UB reinterpret casts), data races surfacing as
# heap errors, and leaks in the collective layer's payload plumbing.
#
# Usage: ci/sanitize.sh [build-dir] [sanitizer-list]
#   ci/sanitize.sh                      # ASan+UBSan, full suite (default)
#   ci/sanitize.sh build-tsan thread    # TSan, race-free test selection
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
SANITIZE="${2:-address,undefined}"
cmake -S . -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGW2V_SANITIZE="$SANITIZE" \
  -DGW2V_NATIVE_ARCH=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)"

if [[ "$SANITIZE" == *thread* ]]; then
  # Multi-threaded Hogwild training races on model rows BY DESIGN (the same
  # benign lost-update semantics as word2vec.c, documented on
  # model::EmbeddingTable), so those tests are excluded — any new racy-by-
  # design e2e test must carry "Hogwild" in its name. Everything else —
  # including the trainer -> DeltaLog first-touch capture -> SyncEngine chain,
  # the parallel sync path (SyncMt.*: row-disjoint mt updates + parallel
  # pack/fold/apply/pipelining at threads {2,4}), the concurrent
  # model/bitvector tests, and the async parameter server (PsTrain.*: one
  # thread per rank pushing/serving concurrently; each rank's model is
  # thread-private and VirtualTimeBoard stamps are atomics, so the async
  # push path must be race-free, not benignly racy), and the streaming
  # corpus rings (Streaming.* / StreamTrain.*: one producer thread per
  # shard publishing chunks under the ring mutex while trainer hosts
  # drain them; epoch replay and destructor shutdown cross generations)
  # — must be race-free.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" -E 'Hogwild'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi

# Stress the snapshot hot-swap path under the sanitizers: many more
# publish/pin races than the default run, so lifetime bugs in the
# hazard-pointer reclamation surface as heap-use-after-free (ASan) or
# races on the hazard slots (TSan).
GW2V_HOTSWAP_ITERS=2000 ctest --test-dir "$BUILD_DIR" -R 'Serve' --output-on-failure

# Out-of-core spill files (src/store/) are scratch state: the store tests
# write *.blocks under the gtest temp dir and clean up after themselves, but
# an aborted sanitizer run can leave them (plus .tmp staging files) behind.
# Sweep any strays so repeated CI runs on a persistent runner don't
# accumulate spill data.
rm -rf "${TMPDIR:-/tmp}"/bf_*.blocks* "${TMPDIR:-/tmp}"/bc_*.blocks* \
       "${TMPDIR:-/tmp}"/st_* "${TMPDIR:-/tmp}"/store_train_* 2>/dev/null || true
