# Empty compiler generated dependencies file for fig9_comm_breakdown.
# This may be replaced when dependencies are built.
