file(REMOVE_RECURSE
  "CMakeFiles/fig7_sync_frequency.dir/fig7_sync_frequency.cpp.o"
  "CMakeFiles/fig7_sync_frequency.dir/fig7_sync_frequency.cpp.o.d"
  "fig7_sync_frequency"
  "fig7_sync_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sync_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
