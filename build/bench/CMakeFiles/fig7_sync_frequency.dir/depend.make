# Empty dependencies file for fig7_sync_frequency.
# This may be replaced when dependencies are built.
