file(REMOVE_RECURSE
  "CMakeFiles/micro_reducers.dir/micro_reducers.cpp.o"
  "CMakeFiles/micro_reducers.dir/micro_reducers.cpp.o.d"
  "micro_reducers"
  "micro_reducers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reducers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
