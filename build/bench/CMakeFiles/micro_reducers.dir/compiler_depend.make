# Empty compiler generated dependencies file for micro_reducers.
# This may be replaced when dependencies are built.
