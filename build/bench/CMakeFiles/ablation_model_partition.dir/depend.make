# Empty dependencies file for ablation_model_partition.
# This may be replaced when dependencies are built.
