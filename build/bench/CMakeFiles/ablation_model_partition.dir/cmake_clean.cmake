file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_partition.dir/ablation_model_partition.cpp.o"
  "CMakeFiles/ablation_model_partition.dir/ablation_model_partition.cpp.o.d"
  "ablation_model_partition"
  "ablation_model_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
