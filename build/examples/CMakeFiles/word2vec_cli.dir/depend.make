# Empty dependencies file for word2vec_cli.
# This may be replaced when dependencies are built.
