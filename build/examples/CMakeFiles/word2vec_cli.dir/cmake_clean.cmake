file(REMOVE_RECURSE
  "CMakeFiles/word2vec_cli.dir/word2vec_cli.cpp.o"
  "CMakeFiles/word2vec_cli.dir/word2vec_cli.cpp.o.d"
  "word2vec_cli"
  "word2vec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word2vec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
