file(REMOVE_RECURSE
  "CMakeFiles/analogy_eval.dir/analogy_eval.cpp.o"
  "CMakeFiles/analogy_eval.dir/analogy_eval.cpp.o.d"
  "analogy_eval"
  "analogy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analogy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
