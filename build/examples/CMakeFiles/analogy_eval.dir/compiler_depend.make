# Empty compiler generated dependencies file for analogy_eval.
# This may be replaced when dependencies are built.
