file(REMOVE_RECURSE
  "CMakeFiles/distributed_graph_analytics.dir/distributed_graph_analytics.cpp.o"
  "CMakeFiles/distributed_graph_analytics.dir/distributed_graph_analytics.cpp.o.d"
  "distributed_graph_analytics"
  "distributed_graph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
