# Empty compiler generated dependencies file for distributed_graph_analytics.
# This may be replaced when dependencies are built.
