# Empty compiler generated dependencies file for gw2v_text.
# This may be replaced when dependencies are built.
