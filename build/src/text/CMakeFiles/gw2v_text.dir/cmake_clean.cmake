file(REMOVE_RECURSE
  "CMakeFiles/gw2v_text.dir/corpus.cpp.o"
  "CMakeFiles/gw2v_text.dir/corpus.cpp.o.d"
  "CMakeFiles/gw2v_text.dir/phrases.cpp.o"
  "CMakeFiles/gw2v_text.dir/phrases.cpp.o.d"
  "CMakeFiles/gw2v_text.dir/tokenizer.cpp.o"
  "CMakeFiles/gw2v_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/gw2v_text.dir/vocabulary.cpp.o"
  "CMakeFiles/gw2v_text.dir/vocabulary.cpp.o.d"
  "libgw2v_text.a"
  "libgw2v_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
