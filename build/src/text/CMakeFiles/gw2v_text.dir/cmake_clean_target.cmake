file(REMOVE_RECURSE
  "libgw2v_text.a"
)
