# Empty dependencies file for gw2v_sim.
# This may be replaced when dependencies are built.
