file(REMOVE_RECURSE
  "CMakeFiles/gw2v_sim.dir/cluster.cpp.o"
  "CMakeFiles/gw2v_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/gw2v_sim.dir/network.cpp.o"
  "CMakeFiles/gw2v_sim.dir/network.cpp.o.d"
  "libgw2v_sim.a"
  "libgw2v_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
