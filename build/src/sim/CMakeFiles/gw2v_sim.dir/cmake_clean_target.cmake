file(REMOVE_RECURSE
  "libgw2v_sim.a"
)
