# Empty dependencies file for gw2v_synth.
# This may be replaced when dependencies are built.
