file(REMOVE_RECURSE
  "libgw2v_synth.a"
)
