# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for gw2v_synth.
