file(REMOVE_RECURSE
  "CMakeFiles/gw2v_synth.dir/catalog.cpp.o"
  "CMakeFiles/gw2v_synth.dir/catalog.cpp.o.d"
  "CMakeFiles/gw2v_synth.dir/generator.cpp.o"
  "CMakeFiles/gw2v_synth.dir/generator.cpp.o.d"
  "libgw2v_synth.a"
  "libgw2v_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
