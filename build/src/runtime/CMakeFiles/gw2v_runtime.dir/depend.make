# Empty dependencies file for gw2v_runtime.
# This may be replaced when dependencies are built.
