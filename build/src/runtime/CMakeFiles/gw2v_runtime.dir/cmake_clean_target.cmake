file(REMOVE_RECURSE
  "libgw2v_runtime.a"
)
