file(REMOVE_RECURSE
  "CMakeFiles/gw2v_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/gw2v_runtime.dir/thread_pool.cpp.o.d"
  "libgw2v_runtime.a"
  "libgw2v_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
