
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/scalar_sync.cpp" "src/comm/CMakeFiles/gw2v_comm.dir/scalar_sync.cpp.o" "gcc" "src/comm/CMakeFiles/gw2v_comm.dir/scalar_sync.cpp.o.d"
  "/root/repo/src/comm/sync_engine.cpp" "src/comm/CMakeFiles/gw2v_comm.dir/sync_engine.cpp.o" "gcc" "src/comm/CMakeFiles/gw2v_comm.dir/sync_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gw2v_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gw2v_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gw2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gw2v_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
