file(REMOVE_RECURSE
  "libgw2v_comm.a"
)
