# Empty compiler generated dependencies file for gw2v_comm.
# This may be replaced when dependencies are built.
