file(REMOVE_RECURSE
  "CMakeFiles/gw2v_comm.dir/scalar_sync.cpp.o"
  "CMakeFiles/gw2v_comm.dir/scalar_sync.cpp.o.d"
  "CMakeFiles/gw2v_comm.dir/sync_engine.cpp.o"
  "CMakeFiles/gw2v_comm.dir/sync_engine.cpp.o.d"
  "libgw2v_comm.a"
  "libgw2v_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
