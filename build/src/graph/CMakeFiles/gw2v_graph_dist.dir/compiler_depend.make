# Empty compiler generated dependencies file for gw2v_graph_dist.
# This may be replaced when dependencies are built.
