file(REMOVE_RECURSE
  "CMakeFiles/gw2v_graph_dist.dir/distributed.cpp.o"
  "CMakeFiles/gw2v_graph_dist.dir/distributed.cpp.o.d"
  "libgw2v_graph_dist.a"
  "libgw2v_graph_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_graph_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
