file(REMOVE_RECURSE
  "libgw2v_graph.a"
)
