# Empty dependencies file for gw2v_graph.
# This may be replaced when dependencies are built.
