file(REMOVE_RECURSE
  "CMakeFiles/gw2v_graph.dir/algorithms.cpp.o"
  "CMakeFiles/gw2v_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/gw2v_graph.dir/model_io.cpp.o"
  "CMakeFiles/gw2v_graph.dir/model_io.cpp.o.d"
  "libgw2v_graph.a"
  "libgw2v_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
