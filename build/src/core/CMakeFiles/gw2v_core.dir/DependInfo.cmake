
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cbow.cpp" "src/core/CMakeFiles/gw2v_core.dir/cbow.cpp.o" "gcc" "src/core/CMakeFiles/gw2v_core.dir/cbow.cpp.o.d"
  "/root/repo/src/core/huffman.cpp" "src/core/CMakeFiles/gw2v_core.dir/huffman.cpp.o" "gcc" "src/core/CMakeFiles/gw2v_core.dir/huffman.cpp.o.d"
  "/root/repo/src/core/sgns.cpp" "src/core/CMakeFiles/gw2v_core.dir/sgns.cpp.o" "gcc" "src/core/CMakeFiles/gw2v_core.dir/sgns.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/gw2v_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/gw2v_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gw2v_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gw2v_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gw2v_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gw2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/gw2v_text.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gw2v_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
