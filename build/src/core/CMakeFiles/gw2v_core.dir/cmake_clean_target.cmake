file(REMOVE_RECURSE
  "libgw2v_core.a"
)
