# Empty compiler generated dependencies file for gw2v_core.
# This may be replaced when dependencies are built.
