file(REMOVE_RECURSE
  "CMakeFiles/gw2v_core.dir/cbow.cpp.o"
  "CMakeFiles/gw2v_core.dir/cbow.cpp.o.d"
  "CMakeFiles/gw2v_core.dir/huffman.cpp.o"
  "CMakeFiles/gw2v_core.dir/huffman.cpp.o.d"
  "CMakeFiles/gw2v_core.dir/sgns.cpp.o"
  "CMakeFiles/gw2v_core.dir/sgns.cpp.o.d"
  "CMakeFiles/gw2v_core.dir/trainer.cpp.o"
  "CMakeFiles/gw2v_core.dir/trainer.cpp.o.d"
  "libgw2v_core.a"
  "libgw2v_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
