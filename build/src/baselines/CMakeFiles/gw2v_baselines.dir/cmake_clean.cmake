file(REMOVE_RECURSE
  "CMakeFiles/gw2v_baselines.dir/column_parallel.cpp.o"
  "CMakeFiles/gw2v_baselines.dir/column_parallel.cpp.o.d"
  "CMakeFiles/gw2v_baselines.dir/parameter_server.cpp.o"
  "CMakeFiles/gw2v_baselines.dir/parameter_server.cpp.o.d"
  "CMakeFiles/gw2v_baselines.dir/shared_memory.cpp.o"
  "CMakeFiles/gw2v_baselines.dir/shared_memory.cpp.o.d"
  "libgw2v_baselines.a"
  "libgw2v_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
