# Empty dependencies file for gw2v_baselines.
# This may be replaced when dependencies are built.
