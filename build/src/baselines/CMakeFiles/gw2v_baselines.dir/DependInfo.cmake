
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/column_parallel.cpp" "src/baselines/CMakeFiles/gw2v_baselines.dir/column_parallel.cpp.o" "gcc" "src/baselines/CMakeFiles/gw2v_baselines.dir/column_parallel.cpp.o.d"
  "/root/repo/src/baselines/parameter_server.cpp" "src/baselines/CMakeFiles/gw2v_baselines.dir/parameter_server.cpp.o" "gcc" "src/baselines/CMakeFiles/gw2v_baselines.dir/parameter_server.cpp.o.d"
  "/root/repo/src/baselines/shared_memory.cpp" "src/baselines/CMakeFiles/gw2v_baselines.dir/shared_memory.cpp.o" "gcc" "src/baselines/CMakeFiles/gw2v_baselines.dir/shared_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gw2v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gw2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/gw2v_text.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gw2v_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gw2v_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gw2v_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gw2v_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
