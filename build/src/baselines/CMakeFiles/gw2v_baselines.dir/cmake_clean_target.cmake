file(REMOVE_RECURSE
  "libgw2v_baselines.a"
)
