# Empty dependencies file for gw2v_eval.
# This may be replaced when dependencies are built.
