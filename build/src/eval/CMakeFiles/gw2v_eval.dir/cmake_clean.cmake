file(REMOVE_RECURSE
  "CMakeFiles/gw2v_eval.dir/analogy.cpp.o"
  "CMakeFiles/gw2v_eval.dir/analogy.cpp.o.d"
  "CMakeFiles/gw2v_eval.dir/embedding_view.cpp.o"
  "CMakeFiles/gw2v_eval.dir/embedding_view.cpp.o.d"
  "CMakeFiles/gw2v_eval.dir/question_words.cpp.o"
  "CMakeFiles/gw2v_eval.dir/question_words.cpp.o.d"
  "CMakeFiles/gw2v_eval.dir/vectors_io.cpp.o"
  "CMakeFiles/gw2v_eval.dir/vectors_io.cpp.o.d"
  "CMakeFiles/gw2v_eval.dir/wordsim.cpp.o"
  "CMakeFiles/gw2v_eval.dir/wordsim.cpp.o.d"
  "libgw2v_eval.a"
  "libgw2v_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
