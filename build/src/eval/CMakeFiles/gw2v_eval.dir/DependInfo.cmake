
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/analogy.cpp" "src/eval/CMakeFiles/gw2v_eval.dir/analogy.cpp.o" "gcc" "src/eval/CMakeFiles/gw2v_eval.dir/analogy.cpp.o.d"
  "/root/repo/src/eval/embedding_view.cpp" "src/eval/CMakeFiles/gw2v_eval.dir/embedding_view.cpp.o" "gcc" "src/eval/CMakeFiles/gw2v_eval.dir/embedding_view.cpp.o.d"
  "/root/repo/src/eval/question_words.cpp" "src/eval/CMakeFiles/gw2v_eval.dir/question_words.cpp.o" "gcc" "src/eval/CMakeFiles/gw2v_eval.dir/question_words.cpp.o.d"
  "/root/repo/src/eval/vectors_io.cpp" "src/eval/CMakeFiles/gw2v_eval.dir/vectors_io.cpp.o" "gcc" "src/eval/CMakeFiles/gw2v_eval.dir/vectors_io.cpp.o.d"
  "/root/repo/src/eval/wordsim.cpp" "src/eval/CMakeFiles/gw2v_eval.dir/wordsim.cpp.o" "gcc" "src/eval/CMakeFiles/gw2v_eval.dir/wordsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gw2v_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gw2v_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/gw2v_text.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gw2v_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gw2v_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
