file(REMOVE_RECURSE
  "libgw2v_eval.a"
)
