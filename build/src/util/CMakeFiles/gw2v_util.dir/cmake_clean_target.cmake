file(REMOVE_RECURSE
  "libgw2v_util.a"
)
