# Empty compiler generated dependencies file for gw2v_util.
# This may be replaced when dependencies are built.
