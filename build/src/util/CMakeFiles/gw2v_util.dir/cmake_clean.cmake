file(REMOVE_RECURSE
  "CMakeFiles/gw2v_util.dir/alias_sampler.cpp.o"
  "CMakeFiles/gw2v_util.dir/alias_sampler.cpp.o.d"
  "CMakeFiles/gw2v_util.dir/logging.cpp.o"
  "CMakeFiles/gw2v_util.dir/logging.cpp.o.d"
  "CMakeFiles/gw2v_util.dir/rng.cpp.o"
  "CMakeFiles/gw2v_util.dir/rng.cpp.o.d"
  "libgw2v_util.a"
  "libgw2v_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gw2v_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
