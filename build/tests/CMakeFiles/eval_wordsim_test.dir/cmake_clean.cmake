file(REMOVE_RECURSE
  "CMakeFiles/eval_wordsim_test.dir/eval_wordsim_test.cpp.o"
  "CMakeFiles/eval_wordsim_test.dir/eval_wordsim_test.cpp.o.d"
  "eval_wordsim_test"
  "eval_wordsim_test.pdb"
  "eval_wordsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_wordsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
