# Empty dependencies file for eval_wordsim_test.
# This may be replaced when dependencies are built.
