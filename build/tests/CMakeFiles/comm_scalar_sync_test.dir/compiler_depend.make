# Empty compiler generated dependencies file for comm_scalar_sync_test.
# This may be replaced when dependencies are built.
