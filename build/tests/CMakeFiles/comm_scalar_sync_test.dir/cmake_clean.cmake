file(REMOVE_RECURSE
  "CMakeFiles/comm_scalar_sync_test.dir/comm_scalar_sync_test.cpp.o"
  "CMakeFiles/comm_scalar_sync_test.dir/comm_scalar_sync_test.cpp.o.d"
  "comm_scalar_sync_test"
  "comm_scalar_sync_test.pdb"
  "comm_scalar_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_scalar_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
