# Empty dependencies file for text_vocab_test.
# This may be replaced when dependencies are built.
