file(REMOVE_RECURSE
  "CMakeFiles/text_vocab_test.dir/text_vocab_test.cpp.o"
  "CMakeFiles/text_vocab_test.dir/text_vocab_test.cpp.o.d"
  "text_vocab_test"
  "text_vocab_test.pdb"
  "text_vocab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_vocab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
