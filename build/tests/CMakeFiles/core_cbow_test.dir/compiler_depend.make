# Empty compiler generated dependencies file for core_cbow_test.
# This may be replaced when dependencies are built.
