file(REMOVE_RECURSE
  "CMakeFiles/core_cbow_test.dir/core_cbow_test.cpp.o"
  "CMakeFiles/core_cbow_test.dir/core_cbow_test.cpp.o.d"
  "core_cbow_test"
  "core_cbow_test.pdb"
  "core_cbow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cbow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
