# Empty dependencies file for graph_algorithms2_test.
# This may be replaced when dependencies are built.
