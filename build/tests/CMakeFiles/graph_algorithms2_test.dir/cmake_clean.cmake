file(REMOVE_RECURSE
  "CMakeFiles/graph_algorithms2_test.dir/graph_algorithms2_test.cpp.o"
  "CMakeFiles/graph_algorithms2_test.dir/graph_algorithms2_test.cpp.o.d"
  "graph_algorithms2_test"
  "graph_algorithms2_test.pdb"
  "graph_algorithms2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_algorithms2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
