# Empty compiler generated dependencies file for core_combiner_test.
# This may be replaced when dependencies are built.
