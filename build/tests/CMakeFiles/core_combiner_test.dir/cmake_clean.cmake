file(REMOVE_RECURSE
  "CMakeFiles/core_combiner_test.dir/core_combiner_test.cpp.o"
  "CMakeFiles/core_combiner_test.dir/core_combiner_test.cpp.o.d"
  "core_combiner_test"
  "core_combiner_test.pdb"
  "core_combiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
