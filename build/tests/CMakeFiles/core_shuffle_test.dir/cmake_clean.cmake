file(REMOVE_RECURSE
  "CMakeFiles/core_shuffle_test.dir/core_shuffle_test.cpp.o"
  "CMakeFiles/core_shuffle_test.dir/core_shuffle_test.cpp.o.d"
  "core_shuffle_test"
  "core_shuffle_test.pdb"
  "core_shuffle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_shuffle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
