# Empty compiler generated dependencies file for core_shuffle_test.
# This may be replaced when dependencies are built.
