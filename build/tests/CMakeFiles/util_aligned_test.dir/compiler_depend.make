# Empty compiler generated dependencies file for util_aligned_test.
# This may be replaced when dependencies are built.
