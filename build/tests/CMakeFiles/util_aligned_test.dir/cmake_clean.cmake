file(REMOVE_RECURSE
  "CMakeFiles/util_aligned_test.dir/util_aligned_test.cpp.o"
  "CMakeFiles/util_aligned_test.dir/util_aligned_test.cpp.o.d"
  "util_aligned_test"
  "util_aligned_test.pdb"
  "util_aligned_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_aligned_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
