file(REMOVE_RECURSE
  "CMakeFiles/util_alias_test.dir/util_alias_test.cpp.o"
  "CMakeFiles/util_alias_test.dir/util_alias_test.cpp.o.d"
  "util_alias_test"
  "util_alias_test.pdb"
  "util_alias_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_alias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
