file(REMOVE_RECURSE
  "CMakeFiles/graph_model_io_test.dir/graph_model_io_test.cpp.o"
  "CMakeFiles/graph_model_io_test.dir/graph_model_io_test.cpp.o.d"
  "graph_model_io_test"
  "graph_model_io_test.pdb"
  "graph_model_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_model_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
