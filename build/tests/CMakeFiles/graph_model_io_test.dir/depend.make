# Empty dependencies file for graph_model_io_test.
# This may be replaced when dependencies are built.
