file(REMOVE_RECURSE
  "CMakeFiles/core_huffman_test.dir/core_huffman_test.cpp.o"
  "CMakeFiles/core_huffman_test.dir/core_huffman_test.cpp.o.d"
  "core_huffman_test"
  "core_huffman_test.pdb"
  "core_huffman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
