# Empty dependencies file for core_huffman_test.
# This may be replaced when dependencies are built.
