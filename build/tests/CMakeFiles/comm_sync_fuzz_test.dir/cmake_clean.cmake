file(REMOVE_RECURSE
  "CMakeFiles/comm_sync_fuzz_test.dir/comm_sync_fuzz_test.cpp.o"
  "CMakeFiles/comm_sync_fuzz_test.dir/comm_sync_fuzz_test.cpp.o.d"
  "comm_sync_fuzz_test"
  "comm_sync_fuzz_test.pdb"
  "comm_sync_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_sync_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
