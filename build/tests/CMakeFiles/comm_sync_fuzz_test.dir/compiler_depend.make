# Empty compiler generated dependencies file for comm_sync_fuzz_test.
# This may be replaced when dependencies are built.
