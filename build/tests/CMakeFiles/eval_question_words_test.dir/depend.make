# Empty dependencies file for eval_question_words_test.
# This may be replaced when dependencies are built.
