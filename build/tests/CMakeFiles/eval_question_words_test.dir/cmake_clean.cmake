file(REMOVE_RECURSE
  "CMakeFiles/eval_question_words_test.dir/eval_question_words_test.cpp.o"
  "CMakeFiles/eval_question_words_test.dir/eval_question_words_test.cpp.o.d"
  "eval_question_words_test"
  "eval_question_words_test.pdb"
  "eval_question_words_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_question_words_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
