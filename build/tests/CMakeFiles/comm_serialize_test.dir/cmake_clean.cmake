file(REMOVE_RECURSE
  "CMakeFiles/comm_serialize_test.dir/comm_serialize_test.cpp.o"
  "CMakeFiles/comm_serialize_test.dir/comm_serialize_test.cpp.o.d"
  "comm_serialize_test"
  "comm_serialize_test.pdb"
  "comm_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
