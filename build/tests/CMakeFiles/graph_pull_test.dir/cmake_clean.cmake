file(REMOVE_RECURSE
  "CMakeFiles/graph_pull_test.dir/graph_pull_test.cpp.o"
  "CMakeFiles/graph_pull_test.dir/graph_pull_test.cpp.o.d"
  "graph_pull_test"
  "graph_pull_test.pdb"
  "graph_pull_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_pull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
