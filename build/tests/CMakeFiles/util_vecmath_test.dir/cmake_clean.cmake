file(REMOVE_RECURSE
  "CMakeFiles/util_vecmath_test.dir/util_vecmath_test.cpp.o"
  "CMakeFiles/util_vecmath_test.dir/util_vecmath_test.cpp.o.d"
  "util_vecmath_test"
  "util_vecmath_test.pdb"
  "util_vecmath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_vecmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
