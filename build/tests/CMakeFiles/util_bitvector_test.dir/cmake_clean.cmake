file(REMOVE_RECURSE
  "CMakeFiles/util_bitvector_test.dir/util_bitvector_test.cpp.o"
  "CMakeFiles/util_bitvector_test.dir/util_bitvector_test.cpp.o.d"
  "util_bitvector_test"
  "util_bitvector_test.pdb"
  "util_bitvector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitvector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
