# Empty compiler generated dependencies file for text_phrases_test.
# This may be replaced when dependencies are built.
