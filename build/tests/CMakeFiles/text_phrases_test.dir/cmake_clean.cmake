file(REMOVE_RECURSE
  "CMakeFiles/text_phrases_test.dir/text_phrases_test.cpp.o"
  "CMakeFiles/text_phrases_test.dir/text_phrases_test.cpp.o.d"
  "text_phrases_test"
  "text_phrases_test.pdb"
  "text_phrases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_phrases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
