file(REMOVE_RECURSE
  "CMakeFiles/text_sampling_test.dir/text_sampling_test.cpp.o"
  "CMakeFiles/text_sampling_test.dir/text_sampling_test.cpp.o.d"
  "text_sampling_test"
  "text_sampling_test.pdb"
  "text_sampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
