# Empty dependencies file for text_sampling_test.
# This may be replaced when dependencies are built.
