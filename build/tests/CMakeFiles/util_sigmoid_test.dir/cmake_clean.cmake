file(REMOVE_RECURSE
  "CMakeFiles/util_sigmoid_test.dir/util_sigmoid_test.cpp.o"
  "CMakeFiles/util_sigmoid_test.dir/util_sigmoid_test.cpp.o.d"
  "util_sigmoid_test"
  "util_sigmoid_test.pdb"
  "util_sigmoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_sigmoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
