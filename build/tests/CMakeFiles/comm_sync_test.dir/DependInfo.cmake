
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm_sync_test.cpp" "tests/CMakeFiles/comm_sync_test.dir/comm_sync_test.cpp.o" "gcc" "tests/CMakeFiles/comm_sync_test.dir/comm_sync_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gw2v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gw2v_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gw2v_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gw2v_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/gw2v_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gw2v_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/gw2v_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gw2v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gw2v_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gw2v_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
