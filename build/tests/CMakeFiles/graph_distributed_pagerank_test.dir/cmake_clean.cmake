file(REMOVE_RECURSE
  "CMakeFiles/graph_distributed_pagerank_test.dir/graph_distributed_pagerank_test.cpp.o"
  "CMakeFiles/graph_distributed_pagerank_test.dir/graph_distributed_pagerank_test.cpp.o.d"
  "graph_distributed_pagerank_test"
  "graph_distributed_pagerank_test.pdb"
  "graph_distributed_pagerank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_distributed_pagerank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
