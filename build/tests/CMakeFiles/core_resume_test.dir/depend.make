# Empty dependencies file for core_resume_test.
# This may be replaced when dependencies are built.
