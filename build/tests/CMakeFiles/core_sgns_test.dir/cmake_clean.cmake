file(REMOVE_RECURSE
  "CMakeFiles/core_sgns_test.dir/core_sgns_test.cpp.o"
  "CMakeFiles/core_sgns_test.dir/core_sgns_test.cpp.o.d"
  "core_sgns_test"
  "core_sgns_test.pdb"
  "core_sgns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sgns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
