# Empty compiler generated dependencies file for core_sgns_test.
# This may be replaced when dependencies are built.
