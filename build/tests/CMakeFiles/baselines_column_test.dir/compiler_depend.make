# Empty compiler generated dependencies file for baselines_column_test.
# This may be replaced when dependencies are built.
