file(REMOVE_RECURSE
  "CMakeFiles/baselines_column_test.dir/baselines_column_test.cpp.o"
  "CMakeFiles/baselines_column_test.dir/baselines_column_test.cpp.o.d"
  "baselines_column_test"
  "baselines_column_test.pdb"
  "baselines_column_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
