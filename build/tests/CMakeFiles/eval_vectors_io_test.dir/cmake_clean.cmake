file(REMOVE_RECURSE
  "CMakeFiles/eval_vectors_io_test.dir/eval_vectors_io_test.cpp.o"
  "CMakeFiles/eval_vectors_io_test.dir/eval_vectors_io_test.cpp.o.d"
  "eval_vectors_io_test"
  "eval_vectors_io_test.pdb"
  "eval_vectors_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_vectors_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
