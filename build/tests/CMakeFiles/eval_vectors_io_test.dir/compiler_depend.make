# Empty compiler generated dependencies file for eval_vectors_io_test.
# This may be replaced when dependencies are built.
