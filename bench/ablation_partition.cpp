// Ablation: blocked vs hash master assignment. Vocabulary ids are sorted by
// frequency, so contiguous blocks concentrate the hottest rows' masters on
// host 0 — this quantifies the reduce-traffic imbalance that creates, and
// shows the delta is modest at Word2Vec's unigram^0.75-flattened access
// skew (why the paper's blocked layout is fine).

#include "bench/common.h"

#include "graph/partition.h"
#include "text/sampling.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.2);
  bench::printHeader("Ablation — blocked vs hash partition: master-update balance",
                     "Section 4.2 partitioning choice");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 8);
  std::printf("dataset=%s vocab=%u hosts=%u\n\n", data.info.spec.name.c_str(),
              data.vocab.size(), hosts);

  // Estimate per-master update load: positive updates follow corpus
  // frequency; negative updates follow unigram^0.75.
  const text::NegativeSampler neg(data.vocab.counts());
  std::vector<double> load(data.vocab.size());
  std::uint64_t total = 0;
  for (const auto c : data.vocab.counts()) total += c;
  const double negShare = 15.0;  // negatives per positive example
  for (std::uint32_t w = 0; w < data.vocab.size(); ++w) {
    const double posFreq =
        static_cast<double>(data.vocab.countOf(w)) / static_cast<double>(total);
    load[w] = posFreq + negShare * neg.probabilityOf(w);
  }

  const auto report = [&](const graph::NodePartition& p, const char* name) {
    std::vector<double> perHost(hosts, 0.0);
    for (std::uint32_t w = 0; w < data.vocab.size(); ++w) perHost[p.masterOf(w)] += load[w];
    double mx = 0, sum = 0;
    for (const double v : perHost) {
      mx = std::max(mx, v);
      sum += v;
    }
    const double avg = sum / hosts;
    std::printf("%-10s max/avg master load = %.2f  (host loads:", name, mx / avg);
    for (const double v : perHost) std::printf(" %.3f", v / sum);
    std::printf(")\n");
  };

  report(graph::BlockedPartition(data.vocab.size(), hosts), "blocked");
  report(graph::HashPartition(data.vocab.size(), hosts), "hash");

  std::printf("\nexpected shape: blocked is moderately imbalanced (frequent words cluster\n"
              "at low ids -> host 0); hash is near-uniform. The negative-sampling power\n"
              "0.75 flattens the skew enough that the paper's blocked layout is workable.\n");
  return 0;
}
