// Out-of-core tier characterization: sweeps the block cache over eviction
// policy × cache budget × Zipf skew and reports hit rate plus the full
// counter set (hits, misses, evictions, write-backs, pinned residency) as
// JSON (stdout, plus $GW2V_STORE_JSON if set).
//
// Access pattern is the serving/training mix the tier is built for: row ids
// drawn Zipf(s) over a frequency-sorted vocabulary (low id = hot, exactly
// how Vocabulary::finalize assigns ids), 90% reads / 10% writes against one
// spilled embedding table. The budget fraction f is measured against the
// *model* bytes (both labels, ModelGraph::modelBytes-style), while the
// access stream touches only the embedding label — the serve-tier shape,
// where the training label is dead weight the spill keeps on disk.
//
// Exit status is the CI gate:
//   1. at every (policy, budget) the hit rate is monotone non-decreasing in
//      skew (tolerance 0.005 for sampling noise), and
//   2. the Zipfian-aware policy reaches hit rate >= 0.9 at skew 1.0 with a
//      25% budget.
//
// Environment knobs:
//   GW2V_STORE_VOCAB     rows in the table            (default 32768)
//   GW2V_STORE_DIM       embedding dimensionality     (default 32)
//   GW2V_STORE_ACCESSES  row faults per configuration (default 600000)
//   GW2V_STORE_DIR       spill directory              (default /tmp/gw2v_store_bench)
//   GW2V_STORE_JSON      also write the JSON report to this path

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.h"
#include "model/embedding_table.h"
#include "store/stored_table.h"
#include "util/rng.h"

using namespace gw2v;

namespace {

/// Inverse-CDF Zipf sampler over row ids (the serve_loadgen sampler).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent) : cdf_(n) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::uint32_t sample(util::Rng& rng) const {
    const double u = rng.uniformDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint32_t>(it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct Row {
  const char* policy;
  double budgetFraction;
  double skew;
  std::size_t budgetBlocks;
  std::size_t pinnedBlocks;
  std::uint64_t hits, misses, evictions, writeBacks, pinnedResident;
  double hitRate;
};

void emitJson(std::FILE* f, const std::vector<Row>& rows, std::uint32_t vocab,
              std::uint32_t dim, std::uint64_t accesses) {
  std::fprintf(f,
               "{\n  \"bench\": \"store_hitrate\",\n"
               "  \"vocab\": %u, \"dim\": %u, \"accesses\": %llu,\n  \"rows\": [\n",
               vocab, dim, static_cast<unsigned long long>(accesses));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"policy\": \"%s\", \"budget_fraction\": %.2f, \"skew\": %.2f, "
                 "\"budget_blocks\": %zu, \"pinned_blocks\": %zu, \"hits\": %llu, "
                 "\"misses\": %llu, \"evictions\": %llu, \"write_backs\": %llu, "
                 "\"pinned_resident\": %llu, \"hit_rate\": %.6f}%s\n",
                 r.policy, r.budgetFraction, r.skew, r.budgetBlocks, r.pinnedBlocks,
                 static_cast<unsigned long long>(r.hits),
                 static_cast<unsigned long long>(r.misses),
                 static_cast<unsigned long long>(r.evictions),
                 static_cast<unsigned long long>(r.writeBacks),
                 static_cast<unsigned long long>(r.pinnedResident), r.hitRate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
}

}  // namespace

int main() {
  const auto vocab = bench::envUnsigned("GW2V_STORE_VOCAB", 32768);
  const auto dim = bench::envUnsigned("GW2V_STORE_DIM", 32);
  const std::uint64_t accesses = bench::envUnsigned("GW2V_STORE_ACCESSES", 600000);
  const char* dirEnv = std::getenv("GW2V_STORE_DIR");
  const std::string dir = dirEnv != nullptr ? dirEnv : "/tmp/gw2v_store_bench";
  std::filesystem::create_directories(dir);

  // Budget f is a fraction of the two-label model's bytes.
  const std::uint64_t modelBytes = 2ull * vocab * dim * sizeof(float);
  const store::EvictionPolicy policies[] = {store::EvictionPolicy::kLru,
                                            store::EvictionPolicy::kZipfPinned};
  const double fractions[] = {0.10, 0.25, 0.50};
  const double skews[] = {0.6, 0.8, 1.0, 1.2};

  std::vector<Row> rows;
  bool gateFailed = false;

  for (const auto policy : policies) {
    for (const double f : fractions) {
      double prevHitRate = -1.0;
      for (const double s : skews) {
        // Fresh deterministic table per configuration: cold cache, same bits.
        model::EmbeddingTable table(vocab, dim);
        for (std::uint32_t r = 0; r < vocab; ++r) {
          auto row = table.untrackedRow(r);
          for (std::uint32_t j = 0; j < dim; ++j)
            row[j] = static_cast<float>(r) + static_cast<float>(j) * 1e-3f;
        }

        store::StoreOptions so;
        so.path = dir + "/hitrate.blocks";
        so.budgetBytes = static_cast<std::uint64_t>(f * static_cast<double>(modelBytes));
        so.policy = policy;
        so.metrics = nullptr;
        store::StoredEmbeddingTable* backend = store::spillTable(table, so);

        const ZipfSampler sampler(vocab, s);
        util::Rng rng(util::hash64(0x5705e5ull ^ static_cast<std::uint64_t>(s * 1000)));
        for (std::uint64_t i = 0; i < accesses; ++i) {
          const std::uint32_t w = sampler.sample(rng);
          if (rng.uniformDouble() < 0.10) {
            table.overwriteRow(w)[0] += 1.0f;  // dirty the block: write-back path
          } else {
            (void)table.row(w);
          }
        }
        backend->flush();

        const store::StoreMetrics& m = backend->metrics();
        Row row{store::evictionPolicyName(policy),
                f,
                s,
                backend->cache().budgetBlocks(),
                backend->cache().pinnedBudgetBlocks(),
                m.hits.load(),
                m.misses.load(),
                m.evictions.load(),
                m.writeBacks.load(),
                m.pinnedResident.load(),
                m.hitRate()};
        rows.push_back(row);
        std::printf("%-12s f=%.2f s=%.1f  blocks=%4zu(pin %4zu)  hit=%.4f  ev=%llu wb=%llu\n",
                    row.policy, f, s, row.budgetBlocks, row.pinnedBlocks, row.hitRate,
                    static_cast<unsigned long long>(row.evictions),
                    static_cast<unsigned long long>(row.writeBacks));

        if (row.hitRate + 0.005 < prevHitRate) {
          std::fprintf(stderr, "FAIL: hit rate not monotone in skew (%s f=%.2f: %.4f -> %.4f)\n",
                       row.policy, f, prevHitRate, row.hitRate);
          gateFailed = true;
        }
        prevHitRate = row.hitRate;

        if (policy == store::EvictionPolicy::kZipfPinned && f == 0.25 && s == 1.0 &&
            row.hitRate < 0.9) {
          std::fprintf(stderr, "FAIL: zipf-pinned hit rate %.4f < 0.9 at skew 1.0, 25%% budget\n",
                       row.hitRate);
          gateFailed = true;
        }
      }
    }
  }

  emitJson(stdout, rows, vocab, dim, accesses);
  if (const char* jsonPath = std::getenv("GW2V_STORE_JSON")) {
    if (std::FILE* f = std::fopen(jsonPath, "w")) {
      emitJson(f, rows, vocab, dim, accesses);
      std::fclose(f);
    }
  }
  std::filesystem::remove(dir + "/hitrate.blocks");
  return gateFailed ? 1 : 0;
}
