// Serving-layer load generator: trains a small model, publishes it as a v2
// checkpoint snapshot, then drives Zipfian top-k traffic through the sharded
// QueryEngine on a simulated H-host cluster — including one mid-run snapshot
// hot-swap — and reports QPS, latency quantiles, batch occupancy, cache
// hit-rate and comm volume as JSON (stdout, plus $GW2V_SERVE_JSON if set).
//
// Exit status is the correctness gate the CI smoke job relies on: after the
// swap, every sampled queryWord(w, 10) must be *identical* (same ids, same
// order) to the single-host eval::EmbeddingView reference — recall@10 below
// 1.0 exits nonzero.
//
// Environment knobs (on top of bench/common.h's GW2V_SCALE / GW2V_EPOCHS):
//   GW2V_HOSTS            serving hosts (default 4)
//   GW2V_SERVE_QUERIES    measured queries in the Zipf phase (default 400)
//   GW2V_SERVE_CLIENTS    concurrent client threads (default 2)
//   GW2V_SERVE_BATCH      max queries per scatter-gather round (default 16)
//   GW2V_SERVE_WINDOW_US  batching window in microseconds (default 200)
//   GW2V_SERVE_CACHE      rank-0 LRU entries, 0 disables (default 512)
//   GW2V_SERVE_ZIPF       Zipf exponent of the traffic (default 0.99)
//   GW2V_SERVE_JSON       also write the JSON report to this path

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "comm/transport.h"
#include "graph/model_io.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "sim/cluster.h"
#include "util/rng.h"

using namespace gw2v;

namespace {

/// Inverse-CDF Zipf sampler over word ids. Ids are frequency-sorted by
/// construction (Vocabulary::finalize), so low ids are the hot head — the
/// same skew real embedding serving sees.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent) : cdf_(n) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  text::WordId sample(util::Rng& rng) const {
    const double u = rng.uniformDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<text::WordId>(it == cdf_.end() ? cdf_.size() - 1
                                                      : it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct LoadgenReport {
  double wallSeconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, mean = 0.0;
  double batchOccupancy = 0.0;
  double cacheHitRate = 0.0;
  double recallAt10 = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t rounds = 0;
  std::uint64_t swapsObserved = 0;
  std::uint64_t versionAfterSwap = 0;
  double bytesPerQuery = 0.0;
  double roundsPerQuery = 0.0;
};

void printJson(std::FILE* f, const LoadgenReport& r, unsigned hosts, unsigned clients,
               const serve::ServeOptions& opts, double zipf) {
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve_loadgen\",\n"
               "  \"hosts\": %u,\n"
               "  \"clients\": %u,\n"
               "  \"max_batch\": %u,\n"
               "  \"batch_window_us\": %u,\n"
               "  \"cache_capacity\": %zu,\n"
               "  \"zipf_exponent\": %.3f,\n"
               "  \"queries\": %llu,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"qps\": %.1f,\n"
               "  \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"mean\": %.1f},\n"
               "  \"rounds\": %llu,\n"
               "  \"rounds_per_query\": %.4f,\n"
               "  \"batch_occupancy\": %.4f,\n"
               "  \"cache_hit_rate\": %.4f,\n"
               "  \"bytes_per_query\": %.1f,\n"
               "  \"snapshot_swaps_observed\": %llu,\n"
               "  \"version_after_swap\": %llu,\n"
               "  \"recall_at_10\": %.4f\n"
               "}\n",
               hosts, clients, opts.maxBatch, opts.batchWindowMicros, opts.cacheCapacity,
               zipf, static_cast<unsigned long long>(r.queries), r.wallSeconds, r.qps,
               r.p50, r.p95, r.p99, r.mean, static_cast<unsigned long long>(r.rounds),
               r.roundsPerQuery, r.batchOccupancy, r.cacheHitRate, r.bytesPerQuery,
               static_cast<unsigned long long>(r.swapsObserved),
               static_cast<unsigned long long>(r.versionAfterSwap), r.recallAt10);
}

}  // namespace

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.05);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 1);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 4);
  const unsigned numQueries = bench::envUnsigned("GW2V_SERVE_QUERIES", 400);
  const unsigned clients = bench::envUnsigned("GW2V_SERVE_CLIENTS", 2);
  const double zipf = bench::envDouble("GW2V_SERVE_ZIPF", 0.99);

  serve::ServeOptions opts;
  opts.maxBatch = bench::envUnsigned("GW2V_SERVE_BATCH", 16);
  opts.batchWindowMicros = bench::envUnsigned("GW2V_SERVE_WINDOW_US", 200);
  opts.cacheCapacity = bench::envUnsigned("GW2V_SERVE_CACHE", 512);

  bench::printHeader("Serving layer — sharded top-k under Zipfian load",
                     "serving extension (no paper figure); DESIGN.md §5d");

  // ---- Train a small model and publish it the way a trainer would: via a
  // self-contained v2 checkpoint on disk.
  const auto data = bench::prepare(synth::datasetCatalog(scale)[0]);
  core::TrainOptions topts;
  topts.sgns = bench::benchSgns();
  topts.epochs = epochs;
  topts.numHosts = 1;
  topts.trackLoss = false;
  const auto trained = core::GraphWord2Vec(data.vocab, topts).train(data.corpus);
  std::printf("trained %s: vocab=%u dim=%u epochs=%u\n", data.info.paperName.c_str(),
              data.vocab.size(), trained.model.dim(), epochs);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string ckptPath =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/gw2v_serve_loadgen_ckpt.bin";
  graph::saveCheckpoint(ckptPath, trained.model, &data.vocab);

  serve::SnapshotStore store(std::max(hosts, 1u) + 1);
  store.publish(serve::EmbeddingSnapshot::fromCheckpointFile(ckptPath, 1));
  std::remove(ckptPath.c_str());

  // The hot-swap payload: a successor snapshot standing in for "the trainer
  // published a newer checkpoint" (same vocab, different rows).
  graph::ModelGraph model2 = trained.model;
  model2.randomizeEmbeddings(0xc0ffee);
  const auto snap2 = std::make_shared<const serve::EmbeddingSnapshot>(model2, &data.vocab, 2);
  const eval::EmbeddingView view2(model2, data.vocab);

  const ZipfSampler sampler(data.vocab.size(), zipf);
  const std::uint32_t recallSample = std::min<std::uint32_t>(200, data.vocab.size());

  LoadgenReport rep;
  bool gateFailed = false;

  sim::ClusterOptions copts;
  copts.numHosts = hosts;
  const sim::ClusterReport cluster = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    comm::SimTransport transport(ctx.network());
    serve::QueryEngine engine(transport, ctx.id(), store, opts);
    if (ctx.id() != 0) {
      engine.run();
      return;
    }
    std::thread driver([&] {
      // Phase A — measured Zipf traffic from `clients` concurrent threads.
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          util::Rng rng(0x5eed + c);
          const unsigned mine = numQueries / clients + (c < numQueries % clients ? 1 : 0);
          for (unsigned i = 0; i < mine; ++i) {
            (void)engine.queryWord(sampler.sample(rng), 10);
          }
        });
      }
      for (auto& w : workers) w.join();
      rep.wallSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      // Phase B — hot swap while the engine keeps serving.
      store.publish(snap2);
      rep.versionAfterSwap = engine.queryWord(0, 10).version;

      // Phase C — the correctness gate: sharded answers after the swap must
      // be identical to the single-host reference over the new snapshot.
      std::uint64_t matched = 0, expected = 0;
      for (std::uint32_t s = 0; s < recallSample; ++s) {
        const text::WordId w =
            static_cast<text::WordId>((s * 7919u) % data.vocab.size());
        const auto got = engine.queryWord(w, 10).neighbors;
        const auto want = view2.nearestTo(w, 10);
        expected += want.size();
        if (got.size() == want.size()) {
          for (std::size_t i = 0; i < want.size(); ++i) {
            if (got[i].id == want[i].word && got[i].score == want[i].similarity) ++matched;
          }
        }
      }
      rep.recallAt10 = expected == 0 ? 0.0 : static_cast<double>(matched) / expected;

      const auto& m = engine.metrics();
      rep.queries = m.queries.load();
      rep.rounds = m.batches.load();
      rep.qps = rep.wallSeconds > 0.0 ? static_cast<double>(numQueries) / rep.wallSeconds : 0.0;
      rep.p50 = m.latency.quantileMicros(0.50);
      rep.p95 = m.latency.quantileMicros(0.95);
      rep.p99 = m.latency.quantileMicros(0.99);
      rep.mean = m.latency.meanMicros();
      rep.batchOccupancy = m.batchOccupancy(opts.maxBatch);
      rep.cacheHitRate = m.cacheHitRate();
      rep.swapsObserved = m.snapshotSwaps.load();
      engine.shutdown();
    });
    engine.run();
    driver.join();
  });

  const std::uint64_t served = rep.queries;
  rep.bytesPerQuery =
      served > 0 ? static_cast<double>(cluster.totalBytes()) / static_cast<double>(served) : 0.0;
  rep.roundsPerQuery =
      served > 0 ? static_cast<double>(rep.rounds) / static_cast<double>(served) : 0.0;

  printJson(stdout, rep, hosts, clients, opts, zipf);
  if (const char* jsonPath = std::getenv("GW2V_SERVE_JSON")) {
    if (std::FILE* f = std::fopen(jsonPath, "w")) {
      printJson(f, rep, hosts, clients, opts, zipf);
      std::fclose(f);
    }
  }

  if (rep.recallAt10 != 1.0) {
    std::fprintf(stderr, "FAIL: recall@10 = %.4f (expected exactly 1.0)\n", rep.recallAt10);
    gateFailed = true;
  }
  if (rep.versionAfterSwap != 2) {
    std::fprintf(stderr, "FAIL: post-swap version = %llu (expected 2)\n",
                 static_cast<unsigned long long>(rep.versionAfterSwap));
    gateFailed = true;
  }
  return gateFailed ? 1 : 0;
}
