// Serving-layer load generator: trains a small model, publishes it as a v2
// checkpoint snapshot, then drives Zipfian top-k traffic through the sharded
// QueryEngine on a simulated H-host cluster — including one mid-run snapshot
// hot-swap — and reports QPS, latency quantiles, batch occupancy, cache
// hit-rate and comm volume as JSON (stdout, plus $GW2V_SERVE_JSON if set).
//
// Exit status is the correctness gate the CI smoke job relies on: after the
// swap, every sampled queryWord(w, 10) must be *identical* (same ids, same
// order) to the single-host eval::EmbeddingView reference — recall@10 below
// 1.0 exits nonzero.
//
// Environment knobs (on top of bench/common.h's GW2V_SCALE / GW2V_EPOCHS):
//   GW2V_HOSTS            serving hosts (default 4)
//   GW2V_SERVE_QUERIES    measured queries in the Zipf phase (default 400)
//   GW2V_SERVE_CLIENTS    concurrent client threads (default 2)
//   GW2V_SERVE_BATCH      max queries per scatter-gather round (default 16)
//   GW2V_SERVE_WINDOW_US  batching window in microseconds (default 200)
//   GW2V_SERVE_CACHE      rank-0 LRU entries, 0 disables (default 512)
//   GW2V_SERVE_ZIPF       Zipf exponent of the traffic (default 0.99)
//   GW2V_SERVE_JSON       also write the JSON report to this path
//
// A second workload then measures the ANN serving mode on a synthetic
// clustered matrix (big enough that cluster pruning has something to prune —
// the trained bench model is deliberately tiny). It publishes one snapshot
// with a publish-time IVF index and sweeps nprobe, reporting recall@10
// against the exact engine answers plus the per-stage scoring speedup from
// ServeMetrics. Exit gate: some swept nprobe must reach both thresholds.
//   GW2V_SERVE_ANN            0 skips the ANN sweep entirely (default 1)
//   GW2V_SERVE_ANN_ROWS       synthetic matrix rows (default 65536)
//   GW2V_SERVE_ANN_DIM        synthetic matrix dim (default 64)
//   GW2V_SERVE_ANN_LISTS      IVF posting lists (default 256)
//   GW2V_SERVE_ANN_QUERIES    queries per swept point (default 256)
//   GW2V_SERVE_ANN_SWEEP      comma-separated nprobe values (default 2,4,8,16)
//   GW2V_SERVE_ANN_RECALL_GATE   recall@10 floor (default 0.95)
//   GW2V_SERVE_ANN_SPEEDUP_GATE  scoring speedup floor (default 10)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "comm/transport.h"
#include "graph/model_io.h"
#include "runtime/thread_pool.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "sim/cluster.h"
#include "util/rng.h"

using namespace gw2v;

namespace {

/// Inverse-CDF Zipf sampler over word ids. Ids are frequency-sorted by
/// construction (Vocabulary::finalize), so low ids are the hot head — the
/// same skew real embedding serving sees.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent) : cdf_(n) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  text::WordId sample(util::Rng& rng) const {
    const double u = rng.uniformDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<text::WordId>(it == cdf_.end() ? cdf_.size() - 1
                                                      : it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct LoadgenReport {
  double wallSeconds = 0.0;
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0, mean = 0.0;
  double batchOccupancy = 0.0;
  double cacheHitRate = 0.0;
  double recallAt10 = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t rounds = 0;
  std::uint64_t swapsObserved = 0;
  std::uint64_t versionAfterSwap = 0;
  double bytesPerQuery = 0.0;
  double roundsPerQuery = 0.0;
};

/// One swept ANN operating point, measured on its own engine instance so the
/// latency histogram and per-stage counters are per-mode.
struct AnnPoint {
  unsigned nprobe = 0;
  double recallAt10 = 0.0;
  double scanUsPerQuery = 0.0;   // centroid scan + candidate scoring, rank 0
  double scoringSpeedup = 0.0;   // exact scan µs/query over this point's
  double candidateRatio = 0.0;
  double probesAvg = 0.0;
  double p50 = 0.0, p99 = 0.0;
};

struct AnnReport {
  std::uint32_t rows = 0, dim = 0, lists = 0;
  double buildMillis = 0.0;
  double indexMiB = 0.0;
  double exactScanUsPerQuery = 0.0;
  double exactP50 = 0.0, exactP99 = 0.0;
  std::vector<AnnPoint> sweep;
};

void printJson(std::FILE* f, const LoadgenReport& r, unsigned hosts, unsigned clients,
               const serve::ServeOptions& opts, double zipf, const AnnReport* ann) {
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"serve_loadgen\",\n"
               "  \"hosts\": %u,\n"
               "  \"clients\": %u,\n"
               "  \"max_batch\": %u,\n"
               "  \"batch_window_us\": %u,\n"
               "  \"cache_capacity\": %zu,\n"
               "  \"zipf_exponent\": %.3f,\n"
               "  \"queries\": %llu,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"qps\": %.1f,\n"
               "  \"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"mean\": %.1f},\n"
               "  \"rounds\": %llu,\n"
               "  \"rounds_per_query\": %.4f,\n"
               "  \"batch_occupancy\": %.4f,\n"
               "  \"cache_hit_rate\": %.4f,\n"
               "  \"bytes_per_query\": %.1f,\n"
               "  \"snapshot_swaps_observed\": %llu,\n"
               "  \"version_after_swap\": %llu,\n"
               "  \"recall_at_10\": %.4f",
               hosts, clients, opts.maxBatch, opts.batchWindowMicros, opts.cacheCapacity,
               zipf, static_cast<unsigned long long>(r.queries), r.wallSeconds, r.qps,
               r.p50, r.p95, r.p99, r.mean, static_cast<unsigned long long>(r.rounds),
               r.roundsPerQuery, r.batchOccupancy, r.cacheHitRate, r.bytesPerQuery,
               static_cast<unsigned long long>(r.swapsObserved),
               static_cast<unsigned long long>(r.versionAfterSwap), r.recallAt10);
  if (ann == nullptr) {
    std::fprintf(f, "\n}\n");
    return;
  }
  std::fprintf(f,
               ",\n"
               "  \"ann\": {\n"
               "    \"rows\": %u,\n"
               "    \"dim\": %u,\n"
               "    \"lists\": %u,\n"
               "    \"build_ms\": %.1f,\n"
               "    \"index_mib\": %.2f,\n"
               "    \"exact\": {\"scan_us_per_query\": %.2f, \"p50\": %.1f, \"p99\": %.1f},\n"
               "    \"sweep\": [",
               ann->rows, ann->dim, ann->lists, ann->buildMillis, ann->indexMiB,
               ann->exactScanUsPerQuery, ann->exactP50, ann->exactP99);
  for (std::size_t i = 0; i < ann->sweep.size(); ++i) {
    const AnnPoint& p = ann->sweep[i];
    std::fprintf(f,
                 "%s\n      {\"nprobe\": %u, \"recall_at_10\": %.4f, "
                 "\"scan_us_per_query\": %.2f, \"scoring_speedup_x\": %.2f, "
                 "\"candidate_ratio\": %.4f, \"probes_avg\": %.1f, "
                 "\"p50\": %.1f, \"p99\": %.1f}",
                 i == 0 ? "" : ",", p.nprobe, p.recallAt10, p.scanUsPerQuery,
                 p.scoringSpeedup, p.candidateRatio, p.probesAvg, p.p50, p.p99);
  }
  std::fprintf(f, "\n    ]\n  }\n}\n");
}

std::vector<unsigned> parseSweep(const char* s, std::vector<unsigned> fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  std::vector<unsigned> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) break;
    if (v > 0) out.push_back(static_cast<unsigned>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out.empty() ? fallback : out;
}

/// Synthetic clustered matrix: `rows` points scattered around
/// sqrt-ish many random unit centers. Structure the IVF can exploit, shaped
/// like a converged embedding table (tight cosine neighbourhoods).
graph::ModelGraph makeClusteredModel(std::uint32_t rows, std::uint32_t dim,
                                     std::uint32_t clusters, float noise,
                                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> centers(static_cast<std::size_t>(clusters) * dim);
  for (std::uint32_t c = 0; c < clusters; ++c) {
    double n2 = 0.0;
    float* ctr = centers.data() + static_cast<std::size_t>(c) * dim;
    for (std::uint32_t d = 0; d < dim; ++d) {
      ctr[d] = static_cast<float>(rng.normal());
      n2 += static_cast<double>(ctr[d]) * ctr[d];
    }
    const float inv = static_cast<float>(1.0 / std::sqrt(n2));
    for (std::uint32_t d = 0; d < dim; ++d) ctr[d] *= inv;
  }
  graph::ModelGraph model(rows, dim);
  for (std::uint32_t w = 0; w < rows; ++w) {
    // Random cluster per row (not round-robin): keeps the deterministic
    // strided k-means seeds from all landing in one mixture component.
    const float* ctr =
        centers.data() + static_cast<std::size_t>(rng.bounded(clusters)) * dim;
    auto row = model.mutableRow(graph::Label::kEmbedding, w);
    for (std::uint32_t d = 0; d < dim; ++d)
      row[d] = ctr[d] + noise * static_cast<float>(rng.normal());
  }
  return model;
}

/// Drive `numQueries` strided queryWord calls through a fresh engine on a
/// fresh cluster, collecting per-query neighbour ids and the rank-0 engine
/// metrics. One call per operating point keeps histograms per-mode.
struct PhaseResult {
  std::vector<std::vector<text::WordId>> ids;
  double scanUsPerQuery = 0.0;
  double centroidUsPerQuery = 0.0;
  double candidateRatio = 0.0;
  double probesAvg = 0.0;
  double p50 = 0.0, p99 = 0.0;
};

PhaseResult runAnnPhase(const serve::SnapshotStore& store, unsigned hosts,
                        unsigned numQueries, std::uint32_t rows,
                        const serve::QueryOptions& qo) {
  PhaseResult out;
  out.ids.resize(numQueries);
  sim::ClusterOptions copts;
  copts.numHosts = hosts;
  serve::ServeOptions opts;
  opts.cacheCapacity = 0;  // measure scoring, not the front-end cache
  sim::runCluster(copts, [&](sim::HostContext& ctx) {
    comm::SimTransport transport(ctx.network());
    serve::QueryEngine engine(transport, ctx.id(), store, opts);
    if (ctx.id() != 0) {
      engine.run();
      return;
    }
    std::thread driver([&] {
      const std::uint32_t stride = std::max<std::uint32_t>(1, rows / numQueries);
      for (unsigned q = 0; q < numQueries; ++q) {
        const auto res =
            engine.queryWord(static_cast<text::WordId>((q * stride) % rows), 10, qo);
        out.ids[q].reserve(res.neighbors.size());
        for (const auto& c : res.neighbors) out.ids[q].push_back(c.id);
      }
      const auto& m = engine.metrics();
      out.scanUsPerQuery = qo.mode == serve::QueryMode::kAnn ? m.annScanMicrosPerQuery()
                                                             : m.exactScanMicrosPerQuery();
      out.candidateRatio = m.annCandidateRatio();
      const std::uint64_t annQ = m.annQueries.load();
      out.centroidUsPerQuery =
          annQ == 0 ? 0.0
                    : static_cast<double>(m.annCentroidMicros.load()) / static_cast<double>(annQ);
      out.probesAvg =
          annQ == 0 ? 0.0 : static_cast<double>(m.annProbeCount.load()) / annQ;
      out.p50 = m.latency.quantileMicros(0.50);
      out.p99 = m.latency.quantileMicros(0.99);
      engine.shutdown();
    });
    engine.run();
    driver.join();
  });
  return out;
}

}  // namespace

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.05);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 1);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 4);
  const unsigned numQueries = bench::envUnsigned("GW2V_SERVE_QUERIES", 400);
  const unsigned clients = bench::envUnsigned("GW2V_SERVE_CLIENTS", 2);
  const double zipf = bench::envDouble("GW2V_SERVE_ZIPF", 0.99);

  serve::ServeOptions opts;
  opts.maxBatch = bench::envUnsigned("GW2V_SERVE_BATCH", 16);
  opts.batchWindowMicros = bench::envUnsigned("GW2V_SERVE_WINDOW_US", 200);
  opts.cacheCapacity = bench::envUnsigned("GW2V_SERVE_CACHE", 512);

  bench::printHeader("Serving layer — sharded top-k under Zipfian load",
                     "serving extension (no paper figure); DESIGN.md §5d");

  // ---- Train a small model and publish it the way a trainer would: via a
  // self-contained v2 checkpoint on disk.
  const auto data = bench::prepare(synth::datasetCatalog(scale)[0]);
  core::TrainOptions topts;
  topts.sgns = bench::benchSgns();
  topts.epochs = epochs;
  topts.numHosts = 1;
  topts.trackLoss = false;
  const auto trained = core::GraphWord2Vec(data.vocab, topts).train(data.corpus);
  std::printf("trained %s: vocab=%u dim=%u epochs=%u\n", data.info.paperName.c_str(),
              data.vocab.size(), trained.model.dim(), epochs);

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string ckptPath =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/gw2v_serve_loadgen_ckpt.bin";
  graph::saveCheckpoint(ckptPath, trained.model, &data.vocab);

  serve::SnapshotStore store(std::max(hosts, 1u) + 1);
  store.publish(serve::EmbeddingSnapshot::fromCheckpointFile(ckptPath, 1));
  std::remove(ckptPath.c_str());

  // The hot-swap payload: a successor snapshot standing in for "the trainer
  // published a newer checkpoint" (same vocab, different rows).
  graph::ModelGraph model2 = trained.model;
  model2.randomizeEmbeddings(0xc0ffee);
  const auto snap2 = std::make_shared<const serve::EmbeddingSnapshot>(model2, &data.vocab, 2);
  const eval::EmbeddingView view2(model2, data.vocab);

  const ZipfSampler sampler(data.vocab.size(), zipf);
  const std::uint32_t recallSample = std::min<std::uint32_t>(200, data.vocab.size());

  LoadgenReport rep;
  bool gateFailed = false;

  sim::ClusterOptions copts;
  copts.numHosts = hosts;
  const sim::ClusterReport cluster = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    comm::SimTransport transport(ctx.network());
    serve::QueryEngine engine(transport, ctx.id(), store, opts);
    if (ctx.id() != 0) {
      engine.run();
      return;
    }
    std::thread driver([&] {
      // Phase A — measured Zipf traffic from `clients` concurrent threads.
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::thread> workers;
      for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          util::Rng rng(0x5eed + c);
          const unsigned mine = numQueries / clients + (c < numQueries % clients ? 1 : 0);
          for (unsigned i = 0; i < mine; ++i) {
            (void)engine.queryWord(sampler.sample(rng), 10);
          }
        });
      }
      for (auto& w : workers) w.join();
      rep.wallSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      // Phase B — hot swap while the engine keeps serving.
      store.publish(snap2);
      rep.versionAfterSwap = engine.queryWord(0, 10).version;

      // Phase C — the correctness gate: sharded answers after the swap must
      // be identical to the single-host reference over the new snapshot.
      std::uint64_t matched = 0, expected = 0;
      for (std::uint32_t s = 0; s < recallSample; ++s) {
        const text::WordId w =
            static_cast<text::WordId>((s * 7919u) % data.vocab.size());
        const auto got = engine.queryWord(w, 10).neighbors;
        const auto want = view2.nearestTo(w, 10);
        expected += want.size();
        if (got.size() == want.size()) {
          for (std::size_t i = 0; i < want.size(); ++i) {
            if (got[i].id == want[i].word && got[i].score == want[i].similarity) ++matched;
          }
        }
      }
      rep.recallAt10 = expected == 0 ? 0.0 : static_cast<double>(matched) / expected;

      const auto& m = engine.metrics();
      rep.queries = m.queries.load();
      rep.rounds = m.batches.load();
      rep.qps = rep.wallSeconds > 0.0 ? static_cast<double>(numQueries) / rep.wallSeconds : 0.0;
      rep.p50 = m.latency.quantileMicros(0.50);
      rep.p95 = m.latency.quantileMicros(0.95);
      rep.p99 = m.latency.quantileMicros(0.99);
      rep.mean = m.latency.meanMicros();
      rep.batchOccupancy = m.batchOccupancy(opts.maxBatch);
      rep.cacheHitRate = m.cacheHitRate();
      rep.swapsObserved = m.snapshotSwaps.load();
      engine.shutdown();
    });
    engine.run();
    driver.join();
  });

  const std::uint64_t served = rep.queries;
  rep.bytesPerQuery =
      served > 0 ? static_cast<double>(cluster.totalBytes()) / static_cast<double>(served) : 0.0;
  rep.roundsPerQuery =
      served > 0 ? static_cast<double>(rep.rounds) / static_cast<double>(served) : 0.0;

  // ---- ANN sweep on a synthetic clustered matrix. --------------------------
  AnnReport ann;
  const bool runAnn = bench::envUnsigned("GW2V_SERVE_ANN", 1) != 0;
  if (runAnn) {
    ann.rows = bench::envUnsigned("GW2V_SERVE_ANN_ROWS", 65536);
    ann.dim = bench::envUnsigned("GW2V_SERVE_ANN_DIM", 64);
    ann.lists = bench::envUnsigned("GW2V_SERVE_ANN_LISTS", 256);
    const unsigned annQueries = bench::envUnsigned("GW2V_SERVE_ANN_QUERIES", 256);
    const auto sweep = parseSweep(std::getenv("GW2V_SERVE_ANN_SWEEP"), {2, 4, 8, 16});

    const auto annModel = makeClusteredModel(ann.rows, ann.dim, ann.lists, 0.08f, 0xa115eedULL);
    serve::AnnBuildOptions bopts;
    bopts.numLists = ann.lists;
    runtime::ThreadPool pool;
    serve::SnapshotStore annStore(std::max(hosts, 1u) + 1);
    annStore.publish(serve::EmbeddingSnapshot::fromModel(annModel, nullptr, 1, bopts, &pool));
    {
      const auto* idx = annStore.current()->annIndex();
      ann.buildMillis = static_cast<double>(idx->buildMicros()) / 1000.0;
      ann.indexMiB = static_cast<double>(idx->memoryBytes()) / (1024.0 * 1024.0);
    }
    std::printf("ann index: rows=%u dim=%u lists=%u build=%.0fms\n", ann.rows, ann.dim,
                ann.lists, ann.buildMillis);

    serve::QueryOptions exactQo;  // the oracle run
    const PhaseResult exact = runAnnPhase(annStore, hosts, annQueries, ann.rows, exactQo);
    ann.exactScanUsPerQuery = exact.scanUsPerQuery;
    ann.exactP50 = exact.p50;
    ann.exactP99 = exact.p99;

    for (const unsigned nprobe : sweep) {
      serve::QueryOptions qo;
      qo.mode = serve::QueryMode::kAnn;
      qo.nprobe = nprobe;
      const PhaseResult got = runAnnPhase(annStore, hosts, annQueries, ann.rows, qo);
      AnnPoint pt;
      pt.nprobe = nprobe;
      std::uint64_t hitSum = 0, wantSum = 0;
      for (unsigned q = 0; q < annQueries; ++q) {
        wantSum += exact.ids[q].size();
        for (const auto id : exact.ids[q]) {
          hitSum += std::find(got.ids[q].begin(), got.ids[q].end(), id) != got.ids[q].end();
        }
      }
      pt.recallAt10 = wantSum == 0 ? 0.0 : static_cast<double>(hitSum) / wantSum;
      pt.scanUsPerQuery = got.scanUsPerQuery;
      pt.scoringSpeedup =
          got.scanUsPerQuery > 0.0 ? exact.scanUsPerQuery / got.scanUsPerQuery : 0.0;
      pt.candidateRatio = got.candidateRatio;
      pt.probesAvg = got.probesAvg;
      pt.p50 = got.p50;
      pt.p99 = got.p99;
      ann.sweep.push_back(pt);
      std::printf(
          "ann nprobe=%-3u recall@10=%.4f scan_us=%.2f (centroid %.2f) speedup=%.1fx "
          "ratio=%.3f\n",
          pt.nprobe, pt.recallAt10, pt.scanUsPerQuery, got.centroidUsPerQuery,
          pt.scoringSpeedup, pt.candidateRatio);
    }
  }

  printJson(stdout, rep, hosts, clients, opts, zipf, runAnn ? &ann : nullptr);
  if (const char* jsonPath = std::getenv("GW2V_SERVE_JSON")) {
    if (std::FILE* f = std::fopen(jsonPath, "w")) {
      printJson(f, rep, hosts, clients, opts, zipf, runAnn ? &ann : nullptr);
      std::fclose(f);
    }
  }

  if (rep.recallAt10 != 1.0) {
    std::fprintf(stderr, "FAIL: recall@10 = %.4f (expected exactly 1.0)\n", rep.recallAt10);
    gateFailed = true;
  }
  if (rep.versionAfterSwap != 2) {
    std::fprintf(stderr, "FAIL: post-swap version = %llu (expected 2)\n",
                 static_cast<unsigned long long>(rep.versionAfterSwap));
    gateFailed = true;
  }
  if (runAnn) {
    const double recallGate = bench::envDouble("GW2V_SERVE_ANN_RECALL_GATE", 0.95);
    const double speedupGate = bench::envDouble("GW2V_SERVE_ANN_SPEEDUP_GATE", 10.0);
    const bool anyPoint =
        std::any_of(ann.sweep.begin(), ann.sweep.end(), [&](const AnnPoint& p) {
          return p.recallAt10 >= recallGate && p.scoringSpeedup >= speedupGate;
        });
    if (!anyPoint) {
      std::fprintf(stderr,
                   "FAIL: no swept nprobe reached recall@10 >= %.2f at >= %.1fx scoring "
                   "speedup\n",
                   recallGate, speedupGate);
      gateFailed = true;
    }
  }
  return gateFailed ? 1 : 0;
}
