// Ablation: the graph-analytics substrate itself — distributed BFS/SSSP/
// PageRank scaling across simulated hosts, with correctness checked against
// the shared-memory implementations each time. This backs the paper's
// framing (Section 2.4) that GraphWord2Vec rides on a *general* framework.

#include <cstdio>

#include "bench/common.h"
#include "graph/algorithms.h"
#include "graph/distributed.h"
#include "runtime/thread_pool.h"
#include "util/rng.h"

using namespace gw2v;

int main() {
  const graph::NodeId nodes =
      static_cast<graph::NodeId>(bench::envUnsigned("GW2V_NODES", 60'000));
  const unsigned degree = bench::envUnsigned("GW2V_DEGREE", 8);

  bench::printHeader("Ablation — distributed graph analytics on the substrate",
                     "Section 2.4 (framework generality)");
  util::Rng rng(23);
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(nodes) * degree);
  for (graph::NodeId u = 0; u < nodes; ++u) {
    for (unsigned k = 0; k < degree; ++k) {
      edges.push_back({u, static_cast<graph::NodeId>(rng.bounded(nodes)),
                       0.5f + rng.uniformFloat() * 2.0f});
    }
  }
  const graph::CSRGraph g(nodes, edges);
  runtime::ThreadPool pool(1);
  std::printf("graph: %u nodes, %llu edges\n\n", nodes,
              static_cast<unsigned long long>(g.numEdges()));

  const auto refSssp = graph::sssp(g, 0, pool);
  const auto refPr = graph::pagerank(g, pool);

  std::printf("%-10s %-8s %10s %10s %12s %10s\n", "algorithm", "hosts", "comp(s)",
              "comm(s)", "volume(MB)", "correct");
  for (const unsigned hosts : {1u, 2u, 4u, 8u, 16u}) {
    {
      const auto r = graph::distributedSssp(g, 0, hosts);
      bool ok = true;
      for (graph::NodeId i = 0; i < nodes && ok; ++i) ok = r.values[i] == refSssp[i];
      std::printf("%-10s %-8u %10.3f %10.4f %12.1f %10s\n", "sssp", hosts,
                  r.cluster.maxComputeSeconds(), r.cluster.maxModelledCommSeconds(),
                  static_cast<double>(r.cluster.totalBytes()) / 1e6, ok ? "yes" : "NO");
    }
    {
      const auto r = graph::distributedPagerank(g, hosts);
      bool ok = true;
      for (graph::NodeId i = 0; i < nodes && ok; ++i)
        ok = std::abs(r.ranks[i] - refPr[i]) < 1e-9;
      std::printf("%-10s %-8u %10.3f %10.4f %12.1f %10s\n", "pagerank", hosts,
                  r.cluster.maxComputeSeconds(), r.cluster.maxModelledCommSeconds(),
                  static_cast<double>(r.cluster.totalBytes()) / 1e6, ok ? "yes" : "NO");
    }
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: computation scales ~1/hosts for both; sssp's sparse\n"
              "MIN-sync volume is far below pagerank's dense allreduce volume.\n");
  return 0;
}
