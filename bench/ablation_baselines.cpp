// Ablation: Gluon-style peer-to-peer synchronization (every host is a
// parameter server for its partition, Fig 4) vs a classic single parameter
// server (Fig 3). DESIGN.md calls this design choice out: the PS funnels all
// traffic through one host, which becomes the bottleneck as workers grow;
// GraphWord2Vec's traffic is balanced across hosts.

#include "bench/common.h"

#include "baselines/parameter_server.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.1);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 2);

  bench::printHeader("Ablation — parameter server (Fig 3) vs Gluon-style sync (Fig 4)",
                     "Section 4.3 design choice");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u\n\n", data.info.spec.name.c_str(),
              data.vocab.size(), data.corpus.size(), epochs);

  std::printf("%-10s %-22s %12s %14s %16s\n", "hosts", "system", "sim time(s)", "volume(MB)",
              "hottest host(MB)");
  for (const unsigned hosts : {2u, 4u, 8u, 16u}) {
    {
      core::TrainOptions o;
      o.sgns = bench::benchSgns();
      o.epochs = epochs;
      o.numHosts = hosts;
      o.trackLoss = false;
      const auto r = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
      std::uint64_t hottest = 0;
      for (const auto& h : r.cluster.hosts) {
        hottest = std::max(hottest, h.comm.bytesSent + h.comm.bytesReceived);
      }
      std::printf("%-10u %-22s %12.3f %14.1f %16.1f\n", hosts, "GW2V (RepModel-Opt)",
                  r.cluster.simulatedSeconds(),
                  static_cast<double>(r.cluster.totalBytes()) / 1e6,
                  static_cast<double>(hottest) / 1e6);
    }
    {
      baselines::ParameterServerOptions o;
      o.sgns = bench::benchSgns();
      o.epochs = epochs;
      o.roundsPerEpoch = core::defaultSyncRounds(hosts);
      o.numHosts = hosts;
      const auto r = baselines::trainParameterServer(data.vocab, data.corpus, o);
      std::uint64_t hottest = 0;
      for (const auto& h : r.cluster.hosts) {
        hottest = std::max(hottest, h.comm.bytesSent + h.comm.bytesReceived);
      }
      std::printf("%-10u %-22s %12.3f %14.1f %16.1f\n", hosts, "ParameterServer",
                  r.cluster.simulatedSeconds(), static_cast<double>(r.cluster.totalBytes()) / 1e6,
                  static_cast<double>(hottest) / 1e6);
    }
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: the PS's hottest host carries ~all volume (it is every\n"
              "exchange's endpoint); GW2V spreads traffic evenly across hosts.\n");
  return 0;
}
