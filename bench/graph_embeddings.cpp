// Graph-embedding workload characterization: random-walk corpus generation
// over a planted-community graph, trained through the three ingestion paths
// (materialized SpanCorpusSource, inline RandomWalkCorpus pull, and the
// pipelined streamSource ring), then scored against held-out edges. Reports
// walk-generation throughput, per-path wall time and peak resident corpus
// bytes, and embedding quality as JSON (stdout, plus $GW2V_GRAPHEMB_JSON if
// set).
//
// Exit status is the CI gate:
//   1. all three ingestion paths produce bit-identical embeddings
//      (shuffle off — the documented contract),
//   2. held-out neighbor-recall@10 >= 0.5 where the random baseline is
//      <= 0.05 (10 / vocab), and link AUC >= 0.9,
//   3. the pipelined path's peak resident corpus is <= 25% of the
//      materialized path's.
//
// Environment knobs:
//   GW2V_SCALE   multiplies walks per node  (default 1)
//   GW2V_EPOCHS  training epochs            (default 4)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "eval/link_prediction.h"
#include "graph/random_walks.h"
#include "graph/synthetic.h"
#include "text/streaming.h"

using namespace gw2v;

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool sameEmbeddings(const graph::ModelGraph& a, const graph::ModelGraph& b) {
  if (a.numNodes() != b.numNodes()) return false;
  for (std::uint32_t n = 0; n < a.numNodes(); ++n) {
    const auto ra = a.row(graph::Label::kEmbedding, n);
    const auto rb = b.row(graph::Label::kEmbedding, n);
    for (std::size_t d = 0; d < ra.size(); ++d)
      if (ra[d] != rb[d]) return false;
  }
  return true;
}

struct PathRun {
  const char* path;
  double wallSeconds;
  std::uint64_t peakCorpusBytes;
  core::TrainResult result;
};

}  // namespace

int main() {
  const unsigned scale = bench::envUnsigned("GW2V_SCALE", 1);

  graph::CommunityGraphSpec spec;
  spec.communities = 32;
  spec.nodesPerCommunity = 12;
  spec.intraEdgesPerNode = 6;
  spec.interEdgesPerNode = 1;
  spec.seed = 31;

  graph::WalkOptions wopts;
  wopts.walksPerNode = 10 * scale;
  wopts.walkLength = 50;
  wopts.seed = 33;
  wopts.chunkTokens = 2048;

  core::TrainOptions topts;
  topts.sgns = bench::benchSgns();
  topts.sgns.subsample = 0;  // node "words" should never be downsampled
  topts.sgns.negatives = 5;
  topts.epochs = bench::envUnsigned("GW2V_EPOCHS", 4);
  topts.numHosts = 4;
  topts.syncRoundsPerEpoch = 12;
  topts.trackLoss = false;

  // Graph + held-out split; training only ever sees the train edges.
  const auto cg = graph::makeCommunityGraph(spec);
  std::vector<graph::Edge> undirected;
  for (const auto& e : cg.edges)
    if (e.src < e.dst) undirected.push_back(e);
  const auto split = eval::splitEdges(undirected, 0.1, spec.seed);
  const auto trainEdges = graph::symmetrize(split.train);
  const graph::CSRGraph g(cg.numNodes, trainEdges);
  const auto nodes = graph::degreeVocabulary(g);

  graph::RandomWalkCorpus walks(g, nodes, wopts, topts.numHosts);
  const std::uint64_t tokensPerEpoch = walks.totalTokensPerEpoch();
  const std::uint64_t corpusBytes = tokensPerEpoch * sizeof(text::WordId);

  // Walk-generation throughput: drain one epoch of every shard inline.
  const auto tWalk = std::chrono::steady_clock::now();
  const auto parts = text::materializeShards(walks);
  const double walkSeconds = secondsSince(tWalk);
  const double walkTokensPerSec = static_cast<double>(tokensPerEpoch) / walkSeconds;

  const core::GraphWord2Vec trainer(nodes.vocab, topts);
  std::vector<PathRun> runs;
  {
    text::SpanCorpusSource source(parts);
    const auto t0 = std::chrono::steady_clock::now();
    auto r = trainer.train(source);
    runs.push_back({"materialized", secondsSince(t0), r.corpusResidentBytesPeak, std::move(r)});
  }
  {
    graph::RandomWalkCorpus source(g, nodes, wopts, topts.numHosts);
    const auto t0 = std::chrono::steady_clock::now();
    auto r = trainer.train(source);
    runs.push_back({"inline_pull", secondsSince(t0), r.corpusResidentBytesPeak, std::move(r)});
  }
  {
    graph::RandomWalkCorpus inner(g, nodes, wopts, topts.numHosts);
    text::StreamingCorpus::Options sopts;
    sopts.chunkTokens = wopts.chunkTokens;
    sopts.ringChunks = 2;
    const auto source = text::streamSource(inner, sopts);
    const auto t0 = std::chrono::steady_clock::now();
    auto r = trainer.train(*source);
    runs.push_back({"pipelined", secondsSince(t0), r.corpusResidentBytesPeak, std::move(r)});
  }

  const bool identical = sameEmbeddings(runs[0].result.model, runs[1].result.model) &&
                         sameEmbeddings(runs[0].result.model, runs[2].result.model);

  const eval::EmbeddingView view(runs[0].result.model, nodes.vocab);
  const double recall = eval::neighborRecallAtK(view, nodes, split.held, 10);
  const double auc = eval::linkAuc(view, nodes, g, split.held, 35);
  const double randomRecall = 10.0 / nodes.vocab.size();
  const double memRatio = static_cast<double>(runs[2].peakCorpusBytes) /
                          static_cast<double>(runs[0].peakCorpusBytes);

  std::string json = "{\n  \"bench\": \"graph_embeddings\",\n";
  char line[512];
  std::snprintf(line, sizeof line,
                "  \"nodes\": %u, \"vocab\": %u, \"train_edges\": %zu, \"held_edges\": %zu,\n"
                "  \"tokens_per_epoch\": %llu, \"corpus_bytes\": %llu,\n"
                "  \"walk_tokens_per_sec\": %.0f,\n",
                cg.numNodes, nodes.vocab.size(), split.train.size(), split.held.size(),
                static_cast<unsigned long long>(tokensPerEpoch),
                static_cast<unsigned long long>(corpusBytes), walkTokensPerSec);
  json += line;
  json += "  \"paths\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::snprintf(line, sizeof line,
                  "    {\"path\": \"%s\", \"wall_seconds\": %.3f, \"peak_corpus_bytes\": %llu}%s\n",
                  runs[i].path, runs[i].wallSeconds,
                  static_cast<unsigned long long>(runs[i].peakCorpusBytes),
                  i + 1 < runs.size() ? "," : "");
    json += line;
  }
  std::snprintf(line, sizeof line,
                "  ],\n  \"bit_identical\": %s,\n"
                "  \"recall_at_10\": %.4f, \"random_recall\": %.4f, \"link_auc\": %.4f,\n"
                "  \"stream_mem_ratio\": %.4f\n}\n",
                identical ? "true" : "false", recall, randomRecall, auc, memRatio);
  json += line;
  std::fputs(json.c_str(), stdout);
  if (const char* path = std::getenv("GW2V_GRAPHEMB_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", path);
    }
  }

  int failures = 0;
  if (!identical) {
    std::fprintf(stderr, "GATE: ingestion paths disagree bit-wise\n");
    ++failures;
  }
  if (!(randomRecall <= 0.05)) {
    std::fprintf(stderr, "GATE: random baseline %.4f > 0.05 (vocab too small)\n", randomRecall);
    ++failures;
  }
  if (!(recall >= 0.5)) {
    std::fprintf(stderr, "GATE: recall@10 %.4f < 0.5\n", recall);
    ++failures;
  }
  if (!(auc >= 0.9)) {
    std::fprintf(stderr, "GATE: link AUC %.4f < 0.9\n", auc);
    ++failures;
  }
  if (!(memRatio <= 0.25)) {
    std::fprintf(stderr, "GATE: streaming peak corpus %.1f%% of materialized > 25%%\n",
                 memRatio * 100.0);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
