// Microbenchmark of the model-state layer's round cost: touch a fraction of
// a word2vec-scale table (100k vocab x dim 200), walk the resulting deltas
// the way SyncEngine::doSync does, then rebaseline. Before the DeltaLog
// refactor, rebaselining copied the full model regardless of how many rows a
// round touched; with row-granular capture the whole round is O(dirty set),
// so the 1%-dirty configuration must be far cheaper than the 100% one (the
// regression gate checks >= 5x).

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "model/embedding_table.h"
#include "util/rng.h"
#include "util/vecmath.h"

namespace {

using namespace gw2v;

constexpr std::uint32_t kVocab = 100000;
constexpr std::uint32_t kDim = 200;

void BM_SyncRebaseline(benchmark::State& state) {
  const auto dirtyPct = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t numDirty = kVocab / 100 * dirtyPct;

  model::EmbeddingTable table(kVocab, kDim);
  util::Rng rng(17);
  for (std::uint32_t n = 0; n < kVocab; ++n) {
    auto r = table.untrackedRow(n);
    for (auto& v : r) v = rng.uniformFloat(-0.5f, 0.5f);
  }
  // A fixed random-looking but reusable touch set, drawn outside the timed
  // region so every configuration pays only for the round itself.
  std::vector<std::uint32_t> touch(kVocab);
  std::iota(touch.begin(), touch.end(), 0u);
  for (std::uint32_t n = kVocab - 1; n > 0; --n) {
    std::swap(touch[n], touch[rng.bounded(n + 1)]);
  }
  touch.resize(numDirty);

  std::vector<float> delta(kDim);
  std::uint64_t rowsShipped = 0;
  for (auto _ : state) {
    // Train phase: first touch captures the pre-round bits.
    for (const std::uint32_t n : touch) table.mutableRow(n)[n % kDim] += 0.01f;
    // Reduce phase: materialize (new - baseline) per dirty row.
    table.forEachDelta([&](std::uint32_t, std::span<const float> oldRow,
                           std::span<const float> cur) {
      util::sub(cur, oldRow, delta);
      benchmark::DoNotOptimize(delta.data());
      ++rowsShipped;
    });
    // Rebaseline: declare the current model the baseline for the next round.
    table.clearDirty();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rowsShipped));
  state.SetBytesProcessed(static_cast<std::int64_t>(rowsShipped) * kDim *
                          static_cast<std::int64_t>(sizeof(float)));
  state.SetLabel(std::to_string(dirtyPct) + "% dirty");
}

// Dirty fraction of the vocabulary per round, in percent.
BENCHMARK(BM_SyncRebaseline)->Arg(1)->Arg(10)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
