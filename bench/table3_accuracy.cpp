// Table 3: semantic / syntactic / total analogy accuracy of W2V and GEM on
// 1 host vs GW2V on 32 hosts, same epochs. The paper's claim: < 1.34%
// average total-accuracy drop at scale; expected shape here: GW2V within a
// few points of W2V on every dataset.

#include "bench/common.h"

#include "baselines/shared_memory.h"

using namespace gw2v;

namespace {

struct Acc {
  double sem, syn, total;
};

Acc evaluate(const bench::PreparedDataset& data, const graph::ModelGraph& model) {
  const auto report = data.task().evaluate(eval::EmbeddingView(model, data.vocab));
  return {report.semantic, report.syntactic, report.total};
}

}  // namespace

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.5);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 10);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 32);

  bench::printHeader("Table 3 — analogy accuracy (semantic / syntactic / total)", "Table 3");
  std::printf("epochs=%u hosts=%u scale=%.2f\n\n", epochs, hosts, scale);
  std::printf("%-12s | %-23s | %-23s | %-23s\n", "dataset", "W2V (1 host)", "GEM (1 host)",
              "GW2V (32 hosts, MC)");
  std::printf("%-12s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n", "", "sem", "syn", "tot",
              "sem", "syn", "tot", "sem", "syn", "tot");

  for (const auto& info : synth::datasetCatalog(scale)) {
    const auto data = bench::prepare(info);

    baselines::SharedMemoryOptions smo;
    smo.sgns = bench::benchSgns();
    smo.epochs = epochs;
    smo.trackLoss = false;
    const auto w2v = evaluate(data, baselines::trainHogwild(data.vocab, data.corpus, smo).model);

    baselines::BatchedOptions bo;
    bo.sgns = bench::benchSgns();
    bo.epochs = epochs;
    bo.trackLoss = false;
    const auto gem = evaluate(data, baselines::trainBatched(data.vocab, data.corpus, bo).model);

    core::TrainOptions o;
    o.sgns = bench::benchSgns();
    o.epochs = epochs;
    o.numHosts = hosts;
    o.trackLoss = false;
    o.reduction = core::Reduction::kModelCombiner;
    const auto gw2v = evaluate(data, core::GraphWord2Vec(data.vocab, o).train(data.corpus).model);

    std::printf("%-12s | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f\n",
                info.paperName.c_str(), w2v.sem, w2v.syn, w2v.total, gem.sem, gem.syn,
                gem.total, gw2v.sem, gw2v.syn, gw2v.total);
  }

  std::printf("\npaper (Table 3, total): 1-billion 72.36/72.36/71.64, news 69.21/69.07/67.79,\n"
              "wiki 74.1 (W2V) / OOM (GEM) / 73.43 (GW2V) — GW2V within ~1.3%% of W2V.\n");
  return 0;
}
