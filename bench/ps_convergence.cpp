// Async parameter server vs BSP: final analogy accuracy next to modelled
// wallclock on the 1-billion stand-in.
//
// Sweeps worker counts H (GW2V_PS_HOSTS, default 8,32) across
//   naive/opt/pull — BSP GraphWord2Vec at each replication strategy,
//   ssp s=0/2/8   — trainAsyncPs (H workers + dedicated server ranks, model-
//                   combiner folds, row-sparse gets + version cache).
//
// Both sides run the same SGNS parameters, sync cadence (defaultSyncRounds)
// and NetworkModel. Two time columns, because the two sides can compute
// metrics of different strictness (DESIGN.md §5h):
//   modelled  — BSP: ClusterReport::simulatedSeconds(), i.e. the slowest
//               host's (own compute + own exchangeSeconds charge); the PS
//               reports the same formula over each rank's traffic. This is
//               the apples-to-apples column and what the gate compares.
//   causal    — PS only: the VirtualTimeBoard makespan over the async
//               message flow. Strictly harsher: it chains per-round
//               stragglers, server fold CPU and NIC serialization, which
//               the BSP metric cannot see. Reported for honesty; a gate
//               against BSP's straggler-blind number would be comparing
//               different metrics.
//
// What the gate asserts — and what it deliberately does not. The paper's
// headline comparison (its Table 4) is that the BSP graph-analytics
// formulation *beats* parameter-server training on wall time, and this bench
// reproduces that: all-reduce BSP stays faster on modelled time at every H
// we run. What the async PS wins is traffic and quality — row-sparse gets,
// the version cache and codec'd pushes move a small fraction of naive's
// bytes, and bounded staleness at s in {0, 2} lands above naive's final
// accuracy. So the gate checks the claims that are true:
//
//   at the largest H, some SSP staleness reaches naive's final accuracy
//   (1 point slack) while sending <= 0.5x naive's bytes.
//
// GW2V_PS_JSON=<path>   machine-readable rows (run_benches.sh -> BENCH_ps.json)
// GW2V_PS_GATE=volume   nonzero exit when the accuracy-at-volume gate fails
// GW2V_PS_SERVERS / GW2V_PS_ROUNDS / GW2V_PS_CODEC override the SSP side's
// server count, rounds per epoch, and wire codec for tuning sweeps (defaults:
// workers/4 servers, defaultSyncRounds, int8 — the measured sweet spot).
// GW2V_PS_DEBUG_HOSTS=1 prints the per-rank compute/comm/traffic breakdown.

#include "bench/common.h"

#include <string>
#include <vector>

#include "ps/trainer.h"

using namespace gw2v;

namespace {

struct Row {
  std::string variant;
  unsigned workers = 0;
  unsigned staleness = 0;
  double accuracy = 0.0;
  double modelledSeconds = 0.0;  // straggler-blind formula, same on both sides
  double causalSeconds = 0.0;    // PS only: VirtualTimeBoard makespan
  std::uint64_t bytes = 0;
  std::uint64_t examples = 0;
};

void report(bench::JsonRows& json, const Row& r) {
  std::printf("  %-10s H=%-3u s=%u  accuracy %5.1f%%  modelled %8.3fs", r.variant.c_str(),
              r.workers, r.staleness, r.accuracy, r.modelledSeconds);
  if (r.causalSeconds > 0.0)
    std::printf("  causal %8.3fs", r.causalSeconds);
  else
    std::printf("  %16s", "");
  std::printf("  %8.2f MB\n", static_cast<double>(r.bytes) / 1e6);
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\": \"ps_convergence\", \"variant\": \"%s\", \"workers\": %u, "
                "\"staleness\": %u, \"accuracy\": %.2f, \"modelled_seconds\": %.4f, "
                "\"causal_seconds\": %.4f, \"bytes\": %llu, \"examples\": %llu}",
                r.variant.c_str(), r.workers, r.staleness, r.accuracy, r.modelledSeconds,
                r.causalSeconds, static_cast<unsigned long long>(r.bytes),
                static_cast<unsigned long long>(r.examples));
  json.add(buf);
}

Row runBsp(const bench::PreparedDataset& data, comm::SyncStrategy strategy, const char* name,
           unsigned workers, unsigned epochs) {
  core::TrainOptions opts;
  opts.sgns = bench::benchSgns();
  opts.epochs = epochs;
  opts.numHosts = workers;
  opts.strategy = strategy;
  opts.reduction = core::Reduction::kModelCombiner;
  opts.trackLoss = false;
  const core::GraphWord2Vec trainer(data.vocab, opts);
  const auto r = trainer.train(data.corpus);
  Row row;
  row.variant = name;
  row.workers = workers;
  row.accuracy = bench::accuracyOf(data.task(), r.model, data.vocab);
  row.modelledSeconds = r.cluster.simulatedSeconds();
  row.bytes = r.cluster.totalBytes();
  row.examples = r.totalExamples;
  return row;
}

Row runSsp(const bench::PreparedDataset& data, unsigned workers, unsigned staleness,
           unsigned epochs) {
  ps::PsTrainOptions opts;
  opts.sgns = bench::benchSgns();
  opts.epochs = epochs;
  opts.roundsPerEpoch = bench::envUnsigned("GW2V_PS_ROUNDS", core::defaultSyncRounds(workers));
  opts.numServers = bench::envUnsigned("GW2V_PS_SERVERS", std::max(1u, workers / 4));
  opts.numHosts = workers + opts.numServers;
  opts.staleness = staleness;
  opts.reduction = core::Reduction::kModelCombiner;
  opts.trackLoss = false;
  opts.codec = comm::SyncCodec::kInt8;
  if (const char* c = std::getenv("GW2V_PS_CODEC")) comm::parseSyncCodec(c, opts.codec);
  const auto r = ps::trainAsyncPs(data.vocab, data.corpus, opts);
  if (std::getenv("GW2V_PS_DEBUG_HOSTS") != nullptr) {
    for (unsigned h = 0; h < r.cluster.hosts.size(); ++h) {
      const auto& host = r.cluster.hosts[h];
      std::printf("    host %2u (%s): compute %.3fs comm %.3fs sent %.1f MB recv %.1f MB\n", h,
                  h < opts.numServers ? "server" : "worker", host.computeSeconds,
                  host.modelledCommSeconds, static_cast<double>(host.comm.bytesSent) / 1e6,
                  static_cast<double>(host.comm.bytesReceived) / 1e6);
    }
  }
  Row row;
  row.variant = "ssp";
  row.workers = workers;
  row.staleness = staleness;
  row.accuracy = bench::accuracyOf(data.task(), r.model, data.vocab);
  row.modelledSeconds = r.cluster.simulatedSeconds();
  row.causalSeconds = r.modelledSeconds;
  std::uint64_t bytes = 0;
  for (const auto& h : r.cluster.hosts) bytes += h.comm.bytesSent;
  row.bytes = bytes;
  row.examples = r.totalExamples;
  return row;
}

std::vector<unsigned> envHosts() {
  std::vector<unsigned> out;
  const char* v = std::getenv("GW2V_PS_HOSTS");
  std::string spec(v != nullptr ? v : "8,32");
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!tok.empty()) out.push_back(static_cast<unsigned>(std::atoi(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(8);
  return out;
}

}  // namespace

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.2);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 6);
  const auto hostCounts = envHosts();
  const char* gateEnv = std::getenv("GW2V_PS_GATE");
  const bool gateOn = gateEnv != nullptr && std::string(gateEnv) == "volume";

  bench::printHeader("Async PS (SSP) vs BSP — accuracy vs modelled wallclock",
                     "Section 5h extension (parameter-server comparison)");
  const bench::PreparedDataset data =
      bench::prepare(synth::datasetByName("1-billion", scale));
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u\n\n", data.info.spec.name.c_str(),
              data.vocab.size(), data.corpus.size(), epochs);

  bench::JsonRows json("GW2V_PS_JSON");
  bool gateOk = true;
  for (const unsigned workers : hostCounts) {
    std::printf("H = %u workers (%u sync rounds/epoch)\n", workers,
                core::defaultSyncRounds(workers));
    const Row naive =
        runBsp(data, comm::SyncStrategy::kRepModelNaive, "naive", workers, epochs);
    report(json, naive);
    report(json, runBsp(data, comm::SyncStrategy::kRepModelOpt, "opt", workers, epochs));
    report(json, runBsp(data, comm::SyncStrategy::kPullModel, "pull", workers, epochs));
    bool reached = false;
    for (const unsigned s : {0u, 2u, 8u}) {
      const Row ssp = runSsp(data, workers, s, epochs);
      report(json, ssp);
      if (ssp.accuracy >= naive.accuracy - 1.0 &&
          static_cast<double>(ssp.bytes) <= 0.5 * static_cast<double>(naive.bytes))
        reached = true;
    }
    std::printf("  -> ssp reaches naive accuracy at <= 0.5x naive bytes: %s\n\n",
                reached ? "yes" : "NO");
    if (workers == hostCounts.back()) gateOk = reached;
  }
  json.write();

  if (gateOn && !gateOk) {
    std::fprintf(stderr, "GATE FAILED: no SSP config matched naive accuracy at 0.5x bytes\n");
    return 1;
  }
  return 0;
}
