// Microbenchmarks of the hot kernels on the SGNS critical path: vector
// dot/axpy at the paper's dimensionality (200) and the bench dimensionality
// (32), sigmoid table vs exact, alias-method negative sampling, one full
// sgnsStep, and the bit-vector ops the sparse sync depends on.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "comm/collectives.h"
#include "comm/transport.h"
#include "core/sgns.h"
#include "core/sgns_batched.h"
#include "sim/network.h"
#include "text/sampling.h"
#include "util/alias_sampler.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/sigmoid_table.h"
#include "util/simd.h"
#include "util/vecmath.h"

namespace {

using namespace gw2v;

void BM_Dot(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(dim, 0.5f), b(dim, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Dot)->Arg(32)->Arg(200);

void BM_Axpy(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(dim, 0.5f), y(dim, 0.25f);
  for (auto _ : state) {
    util::axpy(0.01f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_Axpy)->Arg(32)->Arg(200);

// Scalar-vs-dispatch comparison: the *Scalar variants pin the portable
// kernels; the *Simd variants use whatever tier detectTier() picked (the
// bench log header below prints which). Same loop bodies, so the ratio is
// the pure kernel speedup.
void BM_DotScalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto& k = util::simd::kernelsFor(util::simd::Tier::kScalar);
  std::vector<float> a(dim, 0.5f), b(dim, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.dot(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_DotScalar)->Arg(32)->Arg(200);

void BM_DotSimd(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto& k = util::simd::activeKernels();
  std::vector<float> a(dim, 0.5f), b(dim, 0.25f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.dot(a.data(), b.data(), dim));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_DotSimd)->Arg(32)->Arg(200);

void BM_AxpyScalar(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto& k = util::simd::kernelsFor(util::simd::Tier::kScalar);
  std::vector<float> x(dim, 0.5f), y(dim, 0.25f);
  for (auto _ : state) {
    k.axpy(0.01f, x.data(), y.data(), dim);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_AxpyScalar)->Arg(32)->Arg(200);

void BM_AxpySimd(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto& k = util::simd::activeKernels();
  std::vector<float> x(dim, 0.5f), y(dim, 0.25f);
  for (auto _ : state) {
    k.axpy(0.01f, x.data(), y.data(), dim);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_AxpySimd)->Arg(32)->Arg(200);

void BM_SigmoidTable(benchmark::State& state) {
  const util::SigmoidTable table;
  float x = -5.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table(x));
    x = x > 5.0f ? -5.0f : x + 0.001f;
  }
}
BENCHMARK(BM_SigmoidTable);

void BM_SigmoidExact(benchmark::State& state) {
  float x = -5.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SigmoidTable::exact(x));
    x = x > 5.0f ? -5.0f : x + 0.001f;
  }
}
BENCHMARK(BM_SigmoidExact);

void BM_AliasSample(benchmark::State& state) {
  const auto vocab = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(vocab);
  util::Rng rng(1);
  for (auto& w : weights) w = 0.1 + rng.uniformDouble();
  const util::AliasSampler sampler{std::span<const double>(weights)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(1000)->Arg(400'000);

void BM_NegativeSamplerExcluding(benchmark::State& state) {
  std::vector<std::uint64_t> counts(10'000);
  util::Rng rng(2);
  for (auto& c : counts) c = 1 + rng.bounded(1000);
  const text::NegativeSampler sampler(counts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng, 5));
  }
}
BENCHMARK(BM_NegativeSamplerExcluding);

void BM_SgnsStep(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  const auto negs = static_cast<unsigned>(state.range(1));
  graph::ModelGraph model(1000, dim);
  model.randomizeEmbeddings(3);
  const util::SigmoidTable sigmoid;
  core::SgnsScratch scratch(dim);
  util::Rng rng(4);
  std::vector<text::WordId> negatives(negs);
  for (auto _ : state) {
    const auto center = static_cast<text::WordId>(rng.bounded(1000));
    const auto context = static_cast<text::WordId>(rng.bounded(1000));
    for (auto& n : negatives) n = static_cast<text::WordId>(rng.bounded(1000));
    benchmark::DoNotOptimize(
        core::sgnsStep(model, center, context, negatives, 0.025f, sigmoid, scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgnsStep)->Args({32, 5})->Args({32, 15})->Args({200, 15});

// Shared-negative minibatch kernel. items_per_second counts (center,
// context) pairs, i.e. iterations * B, so it is directly comparable with
// BM_SgnsStep above: the B=16 row at dim 200 should clear 2x the per-pair
// kernel's rate on the same machine.
void BM_SgnsStepBatched(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::uint32_t>(state.range(1));
  constexpr unsigned kNegs = 15;
  graph::ModelGraph model(1000, dim);
  model.randomizeEmbeddings(3);
  const util::SigmoidTable sigmoid;
  core::SgnsBatchScratch scratch(dim, static_cast<std::uint32_t>(batch), kNegs);
  util::Rng rng(4);
  std::vector<text::WordId> contexts(batch), negatives(kNegs);
  for (auto _ : state) {
    const auto center = static_cast<text::WordId>(rng.bounded(1000));
    for (auto& c : contexts) c = static_cast<text::WordId>(rng.bounded(1000));
    for (auto& n : negatives) n = static_cast<text::WordId>(rng.bounded(1000));
    benchmark::DoNotOptimize(core::sgnsStepBatched(model, center, contexts, negatives,
                                                   0.025f, sigmoid, scratch));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SgnsStepBatched)
    ->Args({1, 32})
    ->Args({8, 32})
    ->Args({16, 32})
    ->Args({1, 200})
    ->Args({8, 200})
    ->Args({16, 200});

// Allreduce algorithms head-to-head on the simulated fabric: the naive star
// (root drains H-1 full payloads), the bandwidth-optimal ring, and the
// binomial tree. One iteration = one full allreduce across `hosts` threads;
// bytes_per_second counts the logical payload once.
void BM_Collectives(benchmark::State& state) {
  const auto algo = static_cast<comm::CollectiveAlgo>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto numHosts = static_cast<unsigned>(state.range(2));
  for (auto _ : state) {
    sim::Network net(numHosts);
    std::vector<std::thread> threads;
    threads.reserve(numHosts);
    for (unsigned h = 0; h < numHosts; ++h) {
      threads.emplace_back([&net, h, n, algo] {
        comm::SimTransport transport(net);
        comm::Collectives coll(transport, h, comm::TagSpace::kBench);
        std::vector<double> v(n, static_cast<double>(h));
        coll.allReduceSum(v, algo);
        benchmark::DoNotOptimize(v.data());
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(sizeof(double)));
  state.SetLabel(comm::collectiveAlgoName(algo));
}
BENCHMARK(BM_Collectives)
    ->ArgNames({"algo", "n", "hosts"})
    ->Unit(benchmark::kMillisecond)
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 10, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 10, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 10, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 16, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 16, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 16, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 20, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 20, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 20, 8})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 10, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 10, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 10, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 16, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 16, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 16, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kNaive), 1 << 20, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kRing), 1 << 20, 32})
    ->Args({static_cast<int>(comm::CollectiveAlgo::kTree), 1 << 20, 32});

void BM_BitVectorSet(benchmark::State& state) {
  util::BitVector bv(1 << 20);
  util::Rng rng(5);
  for (auto _ : state) {
    bv.set(rng.bounded(1 << 20));
  }
}
BENCHMARK(BM_BitVectorSet);

void BM_BitVectorForEachSet(benchmark::State& state) {
  const auto density = static_cast<std::size_t>(state.range(0));
  util::BitVector bv(1 << 18);
  for (std::size_t i = 0; i < (1 << 18); i += density) bv.set(i);
  for (auto _ : state) {
    std::size_t sum = 0;
    bv.forEachSet([&](std::size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitVectorForEachSet)->Arg(2)->Arg(64)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  // Record which dispatch tier the *Simd and sgns benchmarks actually ran
  // on; shows up in the console header and the JSON "context" block.
  benchmark::AddCustomContext(
      "gw2v_simd_tier", gw2v::util::simd::tierName(gw2v::util::simd::activeTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
