// Figure 7: effect of synchronization frequency (rounds per epoch, sweep
// {12, 24, 48}) on semantic / syntactic / total accuracy for Model Combiner
// (MC) and averaging (AVG) on 32 hosts, 1-billion dataset. Dotted line in
// the paper = 1-host accuracy; we print it as "SM".
//
// Expected shape: MC improves markedly with sync frequency and approaches
// SM; AVG barely moves.

#include "bench/common.h"

#include "baselines/shared_memory.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.35);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 10);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 32);

  bench::printHeader("Figure 7 — accuracy vs synchronization frequency (32 hosts)",
                     "Fig. 7 (a) semantic, (b) syntactic, (c) total");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  const eval::AnalogyTask task = data.task();
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u hosts=%u\n\n",
              data.info.spec.name.c_str(), data.vocab.size(), data.corpus.size(), epochs,
              hosts);

  // 1-host reference (the dotted line).
  baselines::SharedMemoryOptions smo;
  smo.sgns = bench::benchSgns();
  smo.epochs = epochs;
  smo.trackLoss = false;
  const auto sm = baselines::trainHogwild(data.vocab, data.corpus, smo);
  const auto smAcc = task.evaluate(eval::EmbeddingView(sm.model, data.vocab));

  std::printf("%-20s %9s %9s %9s\n", "config", "semantic", "syntactic", "total");
  std::printf("%-20s %9.2f %9.2f %9.2f   (dotted reference line)\n", "SM (1 host)",
              smAcc.semantic, smAcc.syntactic, smAcc.total);

  for (const auto reduction : {core::Reduction::kAverage, core::Reduction::kModelCombiner}) {
    for (const unsigned freq : {12u, 24u, 48u}) {
      core::TrainOptions o;
      o.sgns = bench::benchSgns();
      o.epochs = epochs;
      o.numHosts = hosts;
      o.syncRoundsPerEpoch = freq;
      o.reduction = reduction;
      o.trackLoss = false;
      const auto result = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
      const auto acc = task.evaluate(eval::EmbeddingView(result.model, data.vocab));
      char label[32];
      std::snprintf(label, sizeof(label), "%s sync=%u", core::reductionName(reduction), freq);
      std::printf("%-20s %9.2f %9.2f %9.2f\n", label, acc.semantic, acc.syntactic, acc.total);
    }
  }

  std::printf("\nexpected shape: MC gains several points from 12 -> 48 and closes on SM;\n"
              "AVG shows little change (paper: MC +3.57 sem / +1.56 syn / +2.22 total).\n");
  return 0;
}
