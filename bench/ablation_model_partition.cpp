// Ablation: horizontal vs vertical model partitioning — the paper's
// Section 6 argument against Ordentlich et al.'s column-parallel design:
// "they perform communication after every mini-batch, which is prohibitively
// expensive in terms of network bandwidth. ... Our approach communicates
// infrequently and uses the model combiner to overcome the resulting
// staleness."
//
// Measures simulated time, total traffic, and allreduce count for
// GraphWord2Vec (rows partitioned, infrequent sync) vs ColumnParallel
// (dimensions partitioned, per-batch scalar allreduce) on the same corpus.

#include "bench/common.h"

#include "baselines/column_parallel.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.15);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 2);

  bench::printHeader("Ablation — horizontal (GW2V) vs vertical (column-parallel) partitioning",
                     "Section 6 comparison with Ordentlich et al.");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u\n\n", data.info.spec.name.c_str(),
              data.vocab.size(), data.corpus.size(), epochs);

  std::printf("%-34s %-7s %12s %12s %14s\n", "system", "hosts", "sim time(s)",
              "volume(MB)", "messages");
  for (const unsigned hosts : {4u, 8u, 16u}) {
    {
      core::TrainOptions o;
      o.sgns = bench::benchSgns();
      o.epochs = epochs;
      o.numHosts = hosts;
      o.trackLoss = false;
      const auto r = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
      std::uint64_t msgs = 0;
      for (const auto& h : r.cluster.hosts) msgs += h.comm.messagesSent;
      std::printf("%-34s %-7u %12.3f %12.1f %14llu\n", "GW2V (rows, sync/round)", hosts,
                  r.cluster.simulatedSeconds(),
                  static_cast<double>(r.cluster.totalBytes()) / 1e6,
                  static_cast<unsigned long long>(msgs));
    }
    for (const std::uint32_t batch : {256u, 2048u}) {
      baselines::ColumnParallelOptions o;
      o.sgns = bench::benchSgns();
      o.epochs = epochs;
      o.numHosts = hosts;
      o.batchExamples = batch;
      o.trackLoss = false;
      const auto r = baselines::trainColumnParallel(data.vocab, data.corpus, o);
      std::uint64_t msgs = 0;
      for (const auto& h : r.cluster.hosts) msgs += h.comm.messagesSent;
      char label[48];
      std::snprintf(label, sizeof(label), "ColumnParallel (dims, batch=%u)", batch);
      std::printf("%-34s %-7u %12.3f %12.1f %14llu\n", label, hosts,
                  r.cluster.simulatedSeconds(),
                  static_cast<double>(r.cluster.totalBytes()) / 1e6,
                  static_cast<unsigned long long>(msgs));
    }
    std::fflush(stdout);
  }

  std::printf("\nexpected shape: the column-parallel design pays an allreduce per batch —\n"
              "orders of magnitude more messages, and every host re-reads the whole\n"
              "corpus; GW2V's infrequent row-sync moves more bytes per message but far\n"
              "fewer messages, and its compute divides by the host count.\n");
  return 0;
}
