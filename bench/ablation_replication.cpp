// Ablation: the two effects the paper blames for Fig 9's communication
// growth — "(a) higher replication factor (average number of proxies per
// node) and (b) ... as training data gets divided among hosts, sparsity in
// the updates increases."
//
// (a) If the word graph were edge-cut partitioned instead of fully
//     replicated, how many proxies per node would materialized co-occurrence
//     edges force? (High — the co-occurrence graph is dense in the head of
//     the vocabulary, which is why the paper replicates.)
// (b) What fraction of the model does one host touch in one sync round, as
//     hosts (and with them sync frequency) grow? (Falls fast — the sparsity
//     RepModel-Opt exploits.)

#include <set>

#include "bench/common.h"
#include "core/sgns.h"
#include "text/sampling.h"
#include "util/bitvector.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.2);
  bench::printHeader("Ablation — replication factor & update sparsity vs hosts",
                     "Section 5.5 discussion of Fig. 9");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  const std::uint32_t vocab = data.vocab.size();
  std::printf("dataset=%s vocab=%u tokens=%zu\n\n", data.info.spec.name.c_str(), vocab,
              data.corpus.size());

  const core::SgnsParams params = bench::benchSgns();
  const text::SubsampleFilter subsampler(data.vocab.counts(), params.subsample);
  const text::NegativeSampler negSampler(data.vocab.counts());

  std::printf("%-8s %-12s %18s %22s\n", "hosts", "sync rounds", "replication factor",
              "touched/round/host");
  for (const unsigned hosts : {2u, 4u, 8u, 16u, 32u}) {
    const unsigned rounds = core::defaultSyncRounds(hosts);

    // (a) Distinct hosts on which each word appears in a generated training
    // pair (edge endpoints), averaged over the vocabulary: the replication
    // an edge-cut partitioning could not avoid.
    std::vector<std::uint32_t> hostMask(vocab, 0);  // bitmask, hosts <= 32
    // (b) Touched fraction in round 0 of host 0 (representative round).
    util::BitVector touchedRound(vocab);
    double touchedFraction = 0.0;

    for (unsigned h = 0; h < hosts; ++h) {
      const auto [lo, hi] = text::hostSlice(data.corpus.size(), hosts, h);
      const std::span<const text::WordId> chunk(data.corpus.data() + lo, hi - lo);
      util::Rng rng(util::hash64(1234 ^ (h << 8)));
      core::forEachTrainingStep(
          chunk, params, subsampler, negSampler, rng,
          [&](text::WordId center, text::WordId context, std::span<const text::WordId> negs) {
            hostMask[center] |= 1u << h;
            hostMask[context] |= 1u << h;
            for (const auto n : negs) hostMask[n] |= 1u << h;
          });
      if (h == 0) {
        // One sync round's worth of host 0's chunk.
        const auto [rlo, rhi] = text::hostSlice(chunk.size(), rounds, 0);
        const std::span<const text::WordId> roundChunk(chunk.data() + rlo, rhi - rlo);
        util::Rng rng2(util::hash64(1234));
        touchedRound.reset();
        core::forEachTrainingStep(roundChunk, params, subsampler, negSampler, rng2,
                                  [&](text::WordId center, text::WordId context,
                                      std::span<const text::WordId> negs) {
                                    touchedRound.set(center);
                                    touchedRound.set(context);
                                    for (const auto n : negs) touchedRound.set(n);
                                  });
        touchedFraction =
            static_cast<double>(touchedRound.count()) / static_cast<double>(vocab);
      }
    }
    double replication = 0.0;
    for (const auto mask : hostMask) replication += __builtin_popcount(mask);
    replication /= static_cast<double>(vocab);

    std::printf("%-8u %-12u %17.2fx %21.1f%%\n", hosts, rounds, replication,
                touchedFraction * 100.0);
    std::fflush(stdout);
  }

  std::printf("\nexpected shape: replication approaches the host count (the co-occurrence\n"
              "graph is dense in the vocabulary head -> full replication loses little),\n"
              "while the per-round touched fraction falls as hosts x sync-rounds grow —\n"
              "exactly the sparsity RepModel-Opt's bit-vector tracking monetizes.\n");
  return 0;
}
