// Microbenchmarks of the three reduction operators (SUM / AVG / model
// combiner) folding k host deltas per node row — the per-node cost of the
// sync engine's accumulate loop. MC adds one dot + one squared-norm per
// contribution over SUM; this quantifies that overhead (it is negligible
// next to the bytes moved, which is the paper's point).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "comm/reducer.h"
#include "core/model_combiner.h"
#include "util/rng.h"

namespace {

using namespace gw2v;

std::unique_ptr<comm::Reducer> makeReducer(int kind) {
  switch (kind) {
    case 0: return std::make_unique<comm::SumReducer>();
    case 1: return std::make_unique<comm::AvgReducer>();
    default: return std::make_unique<core::ModelCombinerReducer>();
  }
}

void BM_Reduce(benchmark::State& state) {
  const auto kind = static_cast<int>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto contributions = static_cast<std::size_t>(state.range(2));
  const auto reducer = makeReducer(kind);

  util::Rng rng(1);
  std::vector<std::vector<float>> deltas(contributions, std::vector<float>(dim));
  for (auto& d : deltas) {
    for (auto& v : d) v = rng.uniformFloat(-0.1f, 0.1f);
  }
  std::vector<float> acc(dim);

  for (auto _ : state) {
    std::copy(deltas[0].begin(), deltas[0].end(), acc.begin());
    for (std::size_t i = 1; i < contributions; ++i) reducer->accumulate(acc, deltas[i]);
    reducer->finalize(acc, static_cast<unsigned>(contributions));
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetLabel(reducer->name());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(contributions));
}

// kind (0=SUM, 1=AVG, 2=MC) x dim x contributions
BENCHMARK(BM_Reduce)
    ->Args({0, 32, 8})
    ->Args({1, 32, 8})
    ->Args({2, 32, 8})
    ->Args({0, 200, 32})
    ->Args({1, 200, 32})
    ->Args({2, 200, 32});

}  // namespace

BENCHMARK_MAIN();
