// Table 1: datasets and their properties (vocabulary words, training words,
// size on disk). Prints the paper's figures next to the synthetic stand-ins
// actually used by the other benches.

#include "bench/common.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 1.0);
  bench::printHeader("Table 1 — datasets and their properties", "Table 1");

  std::printf("%-12s | %-28s | %-40s\n", "", "paper dataset", "synthetic stand-in (this run)");
  std::printf("%-12s | %10s %10s %6s | %12s %14s %10s\n", "dataset", "vocab", "tokens",
              "size", "vocab words", "train tokens", "text size");
  std::printf("-------------+------------------------------+---------------------------------"
              "\n");

  for (const auto& info : synth::datasetCatalog(scale)) {
    const synth::CorpusGenerator gen(info.spec);
    const std::string body = gen.generateText();
    text::Vocabulary vocab;
    text::forEachToken(body, [&](std::string_view tok) { vocab.addToken(tok); });
    vocab.finalize(5);
    const auto corpus = text::encode(body, vocab);
    std::printf("%-12s | %10s %10s %6s | %12u %14zu %8.1fMB\n", info.paperName.c_str(),
                info.paperVocab.c_str(), info.paperTokens.c_str(), info.paperSize.c_str(),
                vocab.size(), corpus.size(), static_cast<double>(body.size()) / 1e6);
  }
  std::printf("\nstand-ins preserve the relative ordering (wiki >> news > 1-billion) at\n"
              "~1/1000 vocabulary and ~1/2000 token scale; see DESIGN.md.\n");
  return 0;
}
