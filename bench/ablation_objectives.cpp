// Ablation: negative sampling vs hierarchical softmax, and skip-gram vs
// CBOW — the word2vec design space the paper's Section 2.1/6 discusses
// before fixing on SG + negative sampling. Reports training time and final
// analogy accuracy for each combination on the 1-billion stand-in.

#include "bench/common.h"

#include "baselines/shared_memory.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.35);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 8);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 8);

  bench::printHeader("Ablation — SG/CBOW x negative-sampling/hierarchical-softmax",
                     "Section 2.1 model choice (paper fixes SG+NS)");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  const eval::AnalogyTask task = data.task();
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u hosts=%u\n\n",
              data.info.spec.name.c_str(), data.vocab.size(), data.corpus.size(), epochs,
              hosts);
  std::printf("%-34s %12s %10s\n", "configuration", "sim time(s)", "accuracy");

  struct Config {
    core::Architecture arch;
    core::Objective obj;
  };
  const Config configs[] = {
      {core::Architecture::kSkipGram, core::Objective::kNegativeSampling},
      {core::Architecture::kSkipGram, core::Objective::kHierarchicalSoftmax},
      {core::Architecture::kCbow, core::Objective::kNegativeSampling},
  };

  for (const auto& cfg : configs) {
    core::TrainOptions o;
    o.sgns = bench::benchSgns();
    o.sgns.architecture = cfg.arch;
    o.sgns.objective = cfg.obj;
    o.epochs = epochs;
    o.numHosts = hosts;
    o.trackLoss = false;
    const auto result = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
    const double acc =
        task.evaluate(eval::EmbeddingView(result.model, data.vocab)).total;
    char label[64];
    std::snprintf(label, sizeof(label), "%s + %s (GW2V, MC)",
                  core::architectureName(cfg.arch), core::objectiveName(cfg.obj));
    std::printf("%-34s %12.3f %9.1f%%\n", label, result.cluster.simulatedSeconds(), acc);
    std::fflush(stdout);
  }

  std::printf("\nreading: at simulation scale (vocab ~2.4K) hierarchical softmax converges\n"
              "fastest — its exact log(V)-deep gradient is strong when the Huffman tree is\n"
              "shallow. The paper picks SG+NS for *large* vocabularies, where HS's tree\n"
              "walk and NS's constant 15 samples trade places in cost and the sampled\n"
              "objective wins; CBOW is cheapest per example and weakest on analogies at\n"
              "every scale.\n");
  return 0;
}
