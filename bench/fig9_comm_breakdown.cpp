// Figure 9: breakdown of execution time into computation and communication
// at {2, 8, 32} hosts for the three variants on all three datasets, with
// total communication volume printed on each bar (the paper labels bars in
// TB; the simulation moves MB-GB).
//
// Expected shape: computation scales ~1/hosts; communication volume grows
// with hosts (higher replication + higher sync frequency); Opt moves ~2x
// less volume than Naive; Pull sits between (it re-sends unchanged masters
// to readers but skips non-readers).

#include <array>

#include "bench/common.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.15);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 2);

  bench::printHeader("Figure 9 — computation/communication breakdown + volume", "Fig. 9");
  std::printf("epochs=%u scale=%.2f\n\n", epochs, scale);

  const comm::SyncStrategy variants[] = {comm::SyncStrategy::kRepModelNaive,
                                         comm::SyncStrategy::kRepModelOpt,
                                         comm::SyncStrategy::kPullModel};
  const unsigned hostCounts[] = {2u, 8u, 32u};
  const std::vector<comm::SyncCodec> codecs = bench::envCodecs();
  bool volumeCheckFailed = false;
  bench::JsonRows json("GW2V_FIG9_JSON");

  for (const auto& info : synth::datasetCatalog(scale)) {
    const auto data = bench::prepare(info);
    std::printf("--- %s (vocab=%u tokens=%zu) ---\n", info.paperName.c_str(),
                data.vocab.size(), data.corpus.size());
    // comp/comm/total are simulated seconds; the four phase columns split the
    // worst host's *measured* sync wall into pack/exchange/fold/apply
    // (satellite of the parallel-sync work; see DESIGN.md section 5f).
    std::printf("%-16s %-6s %-12s %10s %10s %10s %12s %9s %9s %9s %9s\n", "variant",
                "codec", "hosts(sync)", "comp(s)", "comm(s)", "total(s)", "volume",
                "pack(s)", "xchg(s)", "fold(s)", "apply(s)");

    // volumeMB[codec][variant][hostIdx] feeds both gates below.
    std::vector<std::array<std::array<double, 3>, 3>> volumeMB(codecs.size());
    for (std::size_t ci = 0; ci < codecs.size(); ++ci) {
      for (int vi = 0; vi < 3; ++vi) {
        const auto strategy = variants[vi];
        for (int hi = 0; hi < 3; ++hi) {
          const unsigned h = hostCounts[hi];
          core::TrainOptions o;
          o.sgns = bench::benchSgns();
          o.epochs = epochs;
          o.numHosts = h;
          o.strategy = strategy;
          o.trackLoss = false;
          o.sync.codec = codecs[ci];
          const auto result = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
          const double comp = result.cluster.maxComputeSeconds();
          const double comm = result.cluster.maxModelledCommSeconds();
          const double mb = static_cast<double>(result.cluster.totalBytes()) / 1e6;
          volumeMB[ci][static_cast<std::size_t>(vi)][static_cast<std::size_t>(hi)] = mb;
          const runtime::SyncPhaseSeconds phases = result.cluster.maxSyncPhaseSeconds();
          char cfg[16];
          std::snprintf(cfg, sizeof(cfg), "%u(%u)", h, core::defaultSyncRounds(h));
          std::printf(
              "%-16s %-6s %-12s %10.3f %10.4f %10.3f %9.1fMB %9.4f %9.4f %9.4f %9.4f\n",
              comm::syncStrategyName(strategy), comm::syncCodecName(codecs[ci]), cfg, comp,
              comm, comp + comm, mb, phases.pack, phases.exchange, phases.fold,
              phases.apply);
          std::fflush(stdout);
          if (json.enabled()) {
            char row[384];
            std::snprintf(
                row, sizeof(row),
                "{\"dataset\": \"%s\", \"variant\": \"%s\", \"codec\": \"%s\", "
                "\"hosts\": %u, \"comp_seconds\": %.6f, \"comm_seconds\": %.6f, "
                "\"volume_mb\": %.3f, \"sync_pack_s\": %.6f, \"sync_exchange_s\": %.6f, "
                "\"sync_fold_s\": %.6f, \"sync_apply_s\": %.6f}",
                info.paperName.c_str(), comm::syncStrategyName(strategy),
                comm::syncCodecName(codecs[ci]), h, comp, comm, mb, phases.pack,
                phases.exchange, phases.fold, phases.apply);
            json.add(row);
          }
        }
      }
      // The paper's headline claim (Fig 9): touched-only sync moves ~half the
      // naive volume at scale. The ratio only opens up once per-host corpus
      // shards stop touching most of the vocabulary, so gate at the largest
      // host count; a regression that re-ships untouched rows fails the run.
      // The claim is codec-independent (codecs shrink entries, not entry
      // counts), so it is enforced for every codec swept.
      const double naive32 = volumeMB[ci][0][2];
      const double opt32 = volumeMB[ci][1][2];
      if (opt32 > 0.7 * naive32) {
        std::printf("FAIL: Opt volume %.1fMB > 0.7x Naive %.1fMB at %u hosts (%s)\n", opt32,
                    naive32, hostCounts[2], comm::syncCodecName(codecs[ci]));
        volumeCheckFailed = true;
      }
    }
    // Codec gates: on-wire volume must drop in proportion to the codec
    // width. At dim 32 the entry widths are 132B/68B/40B, so fp16 must land
    // under 0.55x fp32 and int8 under 0.35x, for every variant at the two
    // larger host counts. Only enforced when the sweep ran the codecs.
    std::size_t fp32Idx = codecs.size(), fp16Idx = codecs.size(), int8Idx = codecs.size();
    for (std::size_t ci = 0; ci < codecs.size(); ++ci) {
      if (codecs[ci] == comm::SyncCodec::kFp32) fp32Idx = ci;
      if (codecs[ci] == comm::SyncCodec::kFp16) fp16Idx = ci;
      if (codecs[ci] == comm::SyncCodec::kInt8) int8Idx = ci;
    }
    if (fp32Idx < codecs.size()) {
      for (int vi = 0; vi < 3; ++vi) {
        for (int hi = 1; hi < 3; ++hi) {
          const double fp32MB = volumeMB[fp32Idx][vi][hi];
          const auto gate = [&](std::size_t idx, double maxRatio, const char* name) {
            if (idx >= codecs.size()) return;
            const double mb = volumeMB[idx][vi][hi];
            if (mb > maxRatio * fp32MB) {
              std::printf("FAIL: %s volume %.1fMB > %.2fx fp32 %.1fMB (%s, %u hosts)\n",
                          name, mb, maxRatio, fp32MB,
                          comm::syncStrategyName(variants[vi]), hostCounts[hi]);
              volumeCheckFailed = true;
            }
          };
          gate(fp16Idx, 0.55, "fp16");
          gate(int8Idx, 0.35, "int8");
        }
      }
    }
    std::printf("\n");
  }
  std::printf("expected shape: comp ~ 1/hosts; volume grows with hosts; Opt ~ 0.5x Naive\n"
              "volume (paper: 27.6TB vs 17.1TB at 32 hosts on 1-billion); Pull between.\n");
  json.write();
  if (volumeCheckFailed) {
    std::printf("VOLUME CHECK FAILED: Opt did not undercut Naive by the expected margin.\n");
    return 1;
  }
  return 0;
}
