// Table 2: execution time of Word2Vec (W2V, sequential word2vec.c port) and
// Gensim stand-in (GEM, batched) on 1 host vs GraphWord2Vec (GW2V) on 32
// simulated hosts, and the speedup of GW2V over W2V.
//
// Time accounting (DESIGN.md "Simulated time"): 1-host baselines report CPU
// busy seconds; GW2V reports max-per-host compute + modelled InfiniBand
// communication time. The paper measures ~14x on real 32-node hardware; the
// expected *shape* here is GW2V >> faster, with speedup bounded by host
// count minus sync overhead.

#include "bench/common.h"

#include "baselines/shared_memory.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.25);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 8);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 32);

  bench::printHeader("Table 2 — execution time (sec) and speedup", "Table 2");
  std::printf("epochs=%u hosts=%u scale=%.2f (paper: 16 epochs, 32 hosts, full data)\n\n",
              epochs, hosts, scale);
  std::printf("%-12s %10s %10s %10s %9s | paper: W2V     GW2V  speedup\n", "dataset", "W2V",
              "GEM", "GW2V", "speedup");

  struct PaperRow {
    const char* w2v;
    const char* gw2v;
    const char* speedup;
  };
  const PaperRow paper[] = {{"22957.9", "1633.5", "14x"},
                            {"25278.2", "1731.1", "14.6x"},
                            {"140216.8", "9993.7", "14x"}};

  int row = 0;
  for (const auto& info : synth::datasetCatalog(scale)) {
    const auto data = bench::prepare(info);

    baselines::SharedMemoryOptions smo;
    smo.sgns = bench::benchSgns();
    smo.epochs = epochs;
    smo.threads = 1;
    smo.trackLoss = false;
    const auto w2v = baselines::trainHogwild(data.vocab, data.corpus, smo);

    baselines::BatchedOptions bo;
    bo.sgns = bench::benchSgns();
    bo.epochs = epochs;
    bo.trackLoss = false;
    const auto gem = baselines::trainBatched(data.vocab, data.corpus, bo);

    core::TrainOptions o;
    o.sgns = bench::benchSgns();
    o.epochs = epochs;
    o.numHosts = hosts;
    o.trackLoss = false;
    const auto gw2v = core::GraphWord2Vec(data.vocab, o).train(data.corpus);

    const double tW2v = w2v.cpuSeconds;
    const double tGem = gem.cpuSeconds;
    const double tGw2v = gw2v.cluster.simulatedSeconds();
    std::printf("%-12s %10.2f %10.2f %10.2f %8.1fx | %12s %8s %8s\n",
                info.paperName.c_str(), tW2v, tGem, tGw2v, tW2v / tGw2v, paper[row].w2v,
                paper[row].gw2v, paper[row].speedup);
    ++row;
  }
  std::printf("\n(GEM on wiki was OOM in the paper; the stand-in fits in memory here.)\n");
  return 0;
}
