#pragma once

// Shared scaffolding for the table/figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper on the
// synthetic datasets (DESIGN.md documents the substitutions). Environment
// knobs:
//   GW2V_SCALE   — multiplies dataset token counts (default harness-specific)
//   GW2V_EPOCHS  — overrides training epochs
//   GW2V_THREADS — Hogwild worker threads per host (default 1)
//   GW2V_BATCH   — shared-negative minibatch size B (default 1 = per-pair)
//   GW2V_SYNC_CODEC — comma-separated wire codecs to sweep (fp32,fp16,int8;
//                     default fp32 only)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/analogy.h"
#include "eval/embedding_view.h"
#include "synth/catalog.h"
#include "synth/generator.h"
#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace gw2v::bench {

inline double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

inline unsigned envUnsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<unsigned>(std::atoi(v)) : fallback;
}

/// Wire codecs to sweep, from GW2V_SYNC_CODEC ("fp32,fp16,int8"); defaults
/// to fp32 only so plain bench runs stay on the historical protocol.
/// Unknown names are reported on stderr and skipped.
inline std::vector<comm::SyncCodec> envCodecs() {
  std::vector<comm::SyncCodec> out;
  const char* v = std::getenv("GW2V_SYNC_CODEC");
  if (v == nullptr) return {comm::SyncCodec::kFp32};
  std::string spec(v);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string name =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      comm::SyncCodec c;
      if (comm::parseSyncCodec(name, c)) {
        out.push_back(c);
      } else {
        std::fprintf(stderr, "GW2V_SYNC_CODEC: unknown codec '%s' skipped\n", name.c_str());
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(comm::SyncCodec::kFp32);
  return out;
}

/// A dataset prepared for training: vocabulary, encoded corpus, analogy task.
struct PreparedDataset {
  synth::DatasetInfo info;
  text::Vocabulary vocab;
  std::vector<text::WordId> corpus;
  std::vector<synth::AnalogyCategory> suite;

  eval::AnalogyTask task() const { return eval::AnalogyTask(suite, vocab); }
};

inline PreparedDataset prepare(const synth::DatasetInfo& info,
                               unsigned questionsPerCategory = 40) {
  PreparedDataset d;
  d.info = info;
  const synth::CorpusGenerator gen(info.spec);
  const std::string body = gen.generateText();
  text::forEachToken(body, [&](std::string_view tok) { d.vocab.addToken(tok); });
  d.vocab.finalize(/*minCount=*/5);
  d.corpus = text::encode(body, d.vocab);
  d.suite = gen.analogySuite(questionsPerCategory);
  return d;
}

/// SGNS parameters used across benches: the paper's hyper-parameters
/// (window 5, 15 negatives, alpha 0.025) with two scale adjustments
/// documented in DESIGN.md/EXPERIMENTS.md: dimensionality 32 (vs 200) to fit
/// the simulation budget, and subsample threshold 1e-3 (vs 1e-4) because the
/// threshold is a *relative-frequency* knob — our corpora are ~3000x smaller
/// than the paper's, so content-bearing words sit at frequencies where 1e-4
/// would downsample them like stop words and erase the learnable signal.
inline core::SgnsParams benchSgns() {
  core::SgnsParams p;
  p.dim = 32;
  p.window = 5;
  p.negatives = 15;
  p.subsample = 1e-3;
  p.alpha = 0.025f;
  p.batchSize = envUnsigned("GW2V_BATCH", 1);
  return p;
}

inline double accuracyOf(const eval::AnalogyTask& task, const graph::ModelGraph& model,
                         const text::Vocabulary& vocab) {
  const eval::EmbeddingView view(model, vocab);
  return task.evaluate(view).total;
}

/// Machine-readable bench output: an array of flat JSON objects, written only
/// when the given environment variable points at a destination file (see
/// run_benches.sh, which routes each figure to bench_results/BENCH_*.json).
/// Rows are preformatted by the caller; this just owns the envelope.
class JsonRows {
 public:
  explicit JsonRows(const char* envVar) {
    const char* p = std::getenv(envVar);
    if (p != nullptr) path_ = p;
  }

  bool enabled() const { return !path_.empty(); }

  void add(const std::string& obj) {
    if (enabled()) rows_.push_back(obj);
  }

  void write() const {
    if (!enabled()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path_.c_str(), rows_.size());
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

inline void printHeader(const char* title, const char* paperRef) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n");
}

}  // namespace gw2v::bench
