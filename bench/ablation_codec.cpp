// Ablation: what do the lossy sync codecs cost in model quality, and what
// does error feedback buy back? Trains the same dataset at H=8 hosts
// (RepModel-Opt) under four arms — fp32, fp16+EF, int8+EF, int8 without
// error feedback — and reports analogy accuracy next to the wire volume.
//
// Expected shape: fp16/int8 with error feedback land within run-to-run noise
// of fp32 while moving ~0.52x / ~0.30x the bytes; int8 with feedback off
// systematically loses accuracy (sub-quantum gradient mass is dropped
// forever instead of accumulating in the residual).

#include "bench/common.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.2);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 4);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 8);

  bench::printHeader("Ablation — sync codec vs model quality (error feedback on/off)",
                     "Section 5.3 accuracy methodology + Fig. 9 volume");
  const auto data = bench::prepare(synth::datasetByName("1-billion", scale));
  const auto task = data.task();
  std::printf("dataset=%s vocab=%u tokens=%zu epochs=%u hosts=%u\n\n",
              data.info.spec.name.c_str(), data.vocab.size(), data.corpus.size(), epochs,
              hosts);

  struct Arm {
    const char* name;
    comm::SyncCodec codec;
    bool errorFeedback;
  };
  const Arm arms[] = {
      {"fp32", comm::SyncCodec::kFp32, true},
      {"fp16+ef", comm::SyncCodec::kFp16, true},
      {"int8+ef", comm::SyncCodec::kInt8, true},
      {"int8-noef", comm::SyncCodec::kInt8, false},
  };

  bench::JsonRows json("GW2V_CODEC_JSON");
  double fp32MB = 0.0;
  std::printf("%-10s %10s %12s %12s\n", "arm", "accuracy", "volume", "vs fp32");
  for (const Arm& arm : arms) {
    core::TrainOptions o;
    o.sgns = bench::benchSgns();
    o.epochs = epochs;
    o.numHosts = hosts;
    o.strategy = comm::SyncStrategy::kRepModelOpt;
    o.trackLoss = false;
    o.sync.codec = arm.codec;
    o.sync.errorFeedback = arm.errorFeedback;
    const auto result = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
    const double acc = bench::accuracyOf(task, result.model, data.vocab);
    const double mb = static_cast<double>(result.cluster.totalBytes()) / 1e6;
    if (arm.codec == comm::SyncCodec::kFp32) fp32MB = mb;
    std::printf("%-10s %9.2f%% %10.1fMB %11.3fx\n", arm.name, acc, mb,
                fp32MB > 0.0 ? mb / fp32MB : 1.0);
    std::fflush(stdout);
    if (json.enabled()) {
      char row[256];
      std::snprintf(row, sizeof(row),
                    "{\"arm\": \"%s\", \"codec\": \"%s\", \"error_feedback\": %s, "
                    "\"hosts\": %u, \"accuracy_pct\": %.4f, \"volume_mb\": %.3f}",
                    arm.name, comm::syncCodecName(arm.codec),
                    arm.errorFeedback ? "true" : "false", hosts, acc, mb);
      json.add(row);
    }
  }
  std::printf("\nexpected: fp16+ef/int8+ef within noise of fp32 at ~0.52x/~0.30x volume;\n"
              "int8 without error feedback measurably below the int8+ef arm.\n");
  json.write();
  return 0;
}
