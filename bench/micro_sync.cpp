// Microbenchmark of one full sync round (pack -> exchange -> fold -> apply)
// at word2vec scale: 100k vocab x dim 200, H=2 simulated hosts, RepModel-Opt.
// Sweeps the dirty fraction (1/10/100%), the per-host worker pool (1 and 4
// threads), and the engine mode (serial reference vs the parallel/pipelined
// path). UseManualTime reports the sync() wall alone — replica setup, the
// training-phase touches, and cluster spin-up are all untimed.
//
// The regression gate (EXPERIMENTS.md) compares the parallel 4-thread rows
// against the serial rows at 10% dirty. On a multi-core host the parallel
// path must be >= 2x faster; on a single-core container the two collapse to
// parity (the pool degrades to inline execution), so gate only where
// std::thread::hardware_concurrency() >= 4.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "comm/reducer.h"
#include "comm/sync_engine.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace gw2v;

constexpr std::uint32_t kVocab = 100000;
constexpr std::uint32_t kDim = 200;
constexpr unsigned kHosts = 2;
constexpr unsigned kRoundsPerIter = 2;

/// Replicas and touch order are built once and shared across configurations:
/// sync rebaselines the model every round, so reuse is safe, and the 320MB of
/// table storage is paid a single time.
struct SyncFixture {
  std::vector<std::unique_ptr<graph::ModelGraph>> replicas;
  std::vector<std::vector<std::uint32_t>> touch;  // per-host shuffled ids
  graph::BlockedPartition partition{kVocab, kHosts};

  SyncFixture() {
    util::Rng rng(17);
    for (unsigned h = 0; h < kHosts; ++h) {
      replicas.push_back(std::make_unique<graph::ModelGraph>(kVocab, kDim));
      replicas.back()->randomizeEmbeddings(29 + h);
      auto& t = touch.emplace_back(kVocab);
      std::iota(t.begin(), t.end(), 0u);
      for (std::uint32_t n = kVocab - 1; n > 0; --n) {
        std::swap(t[n], t[rng.bounded(n + 1)]);
      }
    }
  }

  static SyncFixture& instance() {
    static SyncFixture f;
    return f;
  }
};

void BM_SyncRound(benchmark::State& state) {
  const auto dirtyPct = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<unsigned>(state.range(1));
  const bool serial = state.range(2) != 0;
  const auto codec = static_cast<comm::SyncCodec>(state.range(3));
  const std::uint32_t numDirty = kVocab / 100 * dirtyPct;

  SyncFixture& fix = SyncFixture::instance();
  const comm::SumReducer sum;
  comm::SyncOptions sopts;
  sopts.serial = serial;
  sopts.codec = codec;

  std::uint64_t shippedBytes = 0;
  for (auto _ : state) {
    std::vector<double> syncWall(kHosts, 0.0);
    sim::ClusterOptions copts;
    copts.numHosts = kHosts;
    copts.workerThreadsPerHost = threads;
    const sim::ClusterReport report = sim::runCluster(copts, [&](sim::HostContext& ctx) {
      graph::ModelGraph& m = *fix.replicas[ctx.id()];
      comm::SyncEngine engine(ctx, m, fix.partition, sum, comm::SyncStrategy::kRepModelOpt,
                              {}, sopts);
      const auto& touch = fix.touch[ctx.id()];
      for (unsigned r = 0; r < kRoundsPerIter; ++r) {
        for (std::uint32_t i = 0; i < numDirty; ++i) {
          const std::uint32_t n = touch[i];
          m.mutableRow(graph::Label::kEmbedding, n)[r % kDim] += 0.01f;
          m.mutableRow(graph::Label::kTraining, n)[(r + 1) % kDim] -= 0.01f;
        }
        const auto t0 = std::chrono::steady_clock::now();
        engine.sync();
        syncWall[ctx.id()] +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      }
    });
    shippedBytes += report.totalBytes();
    state.SetIterationTime(*std::max_element(syncWall.begin(), syncWall.end()) /
                           kRoundsPerIter);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(shippedBytes / kRoundsPerIter));
  state.SetLabel(std::to_string(dirtyPct) + "% dirty, " + std::to_string(threads) +
                 (threads == 1 ? " thread, " : " threads, ") +
                 (serial ? "serial, " : "parallel, ") + comm::syncCodecName(codec));
}

// Args: dirty percent, worker threads per host, serial engine flag, wire
// codec (comm::SyncCodec value). The serial reference only makes sense
// single-threaded; the parallel path runs at 1 and 4 threads so the
// same-thread-count delta isolates pack/fold restructuring overhead from
// actual parallel speedup. The lossy-codec rows quantify the encode/decode
// (+ error feedback) cost the smaller wire volume buys.
BENCHMARK(BM_SyncRound)
    ->Args({1, 1, 1, 0})
    ->Args({10, 1, 1, 0})
    ->Args({100, 1, 1, 0})
    ->Args({1, 1, 0, 0})
    ->Args({10, 1, 0, 0})
    ->Args({100, 1, 0, 0})
    ->Args({1, 4, 0, 0})
    ->Args({10, 4, 0, 0})
    ->Args({100, 4, 0, 0})
    ->Args({10, 4, 0, 1})
    ->Args({100, 4, 0, 1})
    ->Args({10, 4, 0, 2})
    ->Args({100, 4, 0, 2})
    ->UseManualTime()
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

/// Raw codec kernel throughput on the active SIMD tier: fp32<->fp16 and
/// fp32<->int8 (the encode direction includes the maxAbs scan that computes
/// the row scale, mirroring what the pack path pays per row).
void BM_Convert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto mode = state.range(1);
  const auto& kernels = util::simd::activeKernels();

  std::vector<float> src(n), dst(n);
  std::vector<std::uint16_t> half(n);
  std::vector<std::int8_t> bytes(n);
  util::Rng rng(99);
  for (auto& v : src) v = rng.uniformFloat(-1.0f, 1.0f);
  kernels.fp32ToFp16(src.data(), half.data(), n);
  kernels.fp32ToInt8(src.data(), 127.0f, bytes.data(), n);

  const char* label = "f32->f16";
  for (auto _ : state) {
    switch (mode) {
      case 0:
        kernels.fp32ToFp16(src.data(), half.data(), n);
        benchmark::DoNotOptimize(half.data());
        break;
      case 1:
        label = "f16->f32";
        kernels.fp16ToFp32(half.data(), dst.data(), n);
        benchmark::DoNotOptimize(dst.data());
        break;
      case 2: {
        label = "f32->i8 (incl maxAbs)";
        const float m = kernels.maxAbs(src.data(), n);
        kernels.fp32ToInt8(src.data(), m > 0.0f ? 127.0f / m : 0.0f, bytes.data(), n);
        benchmark::DoNotOptimize(bytes.data());
        break;
      }
      default:
        label = "i8->f32";
        kernels.int8ToFp32(bytes.data(), 1.0f / 127.0f, dst.data(), n);
        benchmark::DoNotOptimize(dst.data());
        break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
  state.SetLabel(std::string(label) + ", n=" + std::to_string(n));
}

// Args: element count (one dim-200 row and a 100k-row sweep), kernel mode.
BENCHMARK(BM_Convert)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({200, 2})
    ->Args({200, 3})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 3})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
