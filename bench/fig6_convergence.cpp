// Figure 6: total analogy accuracy after each epoch on the 1-billion
// stand-in for
//   SM  — shared-memory Hogwild on 1 host (the sequential-quality baseline),
//   AVG — 32-host averaging at learning rates {0.025, 0.05, 0.1, 0.2, 0.4, 0.8},
//   MC  — 32-host model combiner at 0.025.
//
// Expected shape: SM converges to the highest accuracy; AVG at 0.025 is slow
// (mini-batch effect), AVG at 0.8 diverges (~0%); MC at 0.025 tracks SM.

#include "bench/common.h"

#include "baselines/shared_memory.h"

using namespace gw2v;

namespace {

std::vector<double> runDistributed(const bench::PreparedDataset& data, unsigned hosts,
                                   unsigned epochs, core::Reduction reduction, float alpha) {
  core::TrainOptions opts;
  opts.sgns = bench::benchSgns();
  opts.sgns.alpha = alpha;
  opts.epochs = epochs;
  opts.numHosts = hosts;
  opts.reduction = reduction;
  opts.trackLoss = false;
  const eval::AnalogyTask task = data.task();
  std::vector<double> curve;
  const core::GraphWord2Vec trainer(data.vocab, opts);
  trainer.train(data.corpus, [&](const core::EpochStats&, const graph::ModelGraph& model) {
    curve.push_back(bench::accuracyOf(task, model, data.vocab));
  });
  return curve;
}

void printCurve(const char* label, const std::vector<double>& curve) {
  std::printf("%-16s", label);
  for (const double a : curve) std::printf(" %5.1f", a);
  std::printf("\n");
}

}  // namespace

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.35);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 10);
  const unsigned hosts = bench::envUnsigned("GW2V_HOSTS", 32);

  bench::printHeader("Figure 6 — accuracy vs epoch: SM, AVG (lr sweep), MC",
                     "Fig. 6 (1-billion dataset, 32 hosts)");
  const bench::PreparedDataset data =
      bench::prepare(synth::datasetByName("1-billion", scale));
  std::printf("dataset=%s vocab=%u tokens=%zu hosts=%u epochs=%u\n\n",
              data.info.spec.name.c_str(), data.vocab.size(), data.corpus.size(), hosts,
              epochs);
  const eval::AnalogyTask task = data.task();

  std::printf("%-16s", "curve \\ epoch");
  for (unsigned e = 1; e <= epochs; ++e) std::printf(" %5u", e);
  std::printf("\n");

  // SM: Hogwild on one host at the baseline learning rate.
  {
    baselines::SharedMemoryOptions smOpts;
    smOpts.sgns = bench::benchSgns();
    smOpts.epochs = epochs;
    smOpts.threads = bench::envUnsigned("GW2V_THREADS", 1);
    smOpts.trackLoss = false;
    std::vector<double> curve;
    baselines::trainHogwild(data.vocab, data.corpus, smOpts,
                            [&](const baselines::SmEpochStats&, const graph::ModelGraph& m) {
                              curve.push_back(bench::accuracyOf(task, m, data.vocab));
                            });
    printCurve("SM lr=0.025", curve);
  }

  // MC at the sequential learning rate.
  printCurve("MC lr=0.025",
             runDistributed(data, hosts, epochs, core::Reduction::kModelCombiner, 0.025f));

  // AVG at the paper's learning-rate sweep.
  for (const float lr : {0.025f, 0.05f, 0.1f, 0.2f, 0.4f, 0.8f}) {
    char label[32];
    std::snprintf(label, sizeof(label), "AVG lr=%.3g", static_cast<double>(lr));
    printCurve(label, runDistributed(data, hosts, epochs, core::Reduction::kAverage, lr));
  }

  // SUM at the baseline rate — the paper's "overly aggressive" reduction.
  printCurve("SUM lr=0.025",
             runDistributed(data, hosts, epochs, core::Reduction::kSum, 0.025f));

  std::printf("\nexpected shape: MC tracks SM; AVG lr=0.025 lags; AVG lr=0.8 and SUM stay ~0.\n");
  return 0;
}
