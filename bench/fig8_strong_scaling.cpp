// Figure 8: strong scaling of GraphWord2Vec from 1 to 64 hosts for the three
// communication variants (RepModel-Naive / RepModel-Opt / PullModel) on all
// three datasets. Synchronization frequency grows with hosts (the paper's
// rule of thumb, defaultSyncRounds): 1(1) 2(3) 4(6) 8(12) 16(24) 32(48)
// 64(96).
//
// Reported time is simulated cluster time (max per-host compute + modelled
// 56Gb/s InfiniBand communication). Expected shape: all variants scale with
// host count; Opt beats Naive increasingly with hosts (sparser updates, more
// syncs); Pull pays inspection overhead over Opt.

#include "bench/common.h"

using namespace gw2v;

int main() {
  const double scale = bench::envDouble("GW2V_SCALE", 0.15);
  const unsigned epochs = bench::envUnsigned("GW2V_EPOCHS", 2);
  const unsigned maxHosts = bench::envUnsigned("GW2V_MAX_HOSTS", 64);

  bench::printHeader("Figure 8 — strong scaling, 3 comm variants x 3 datasets", "Fig. 8");
  std::printf("epochs=%u scale=%.2f; cells are simulated seconds (lower is better)\n\n",
              epochs, scale);

  const comm::SyncStrategy variants[] = {comm::SyncStrategy::kRepModelNaive,
                                         comm::SyncStrategy::kRepModelOpt,
                                         comm::SyncStrategy::kPullModel};
  const std::vector<comm::SyncCodec> codecs = bench::envCodecs();
  bench::JsonRows json("GW2V_FIG8_JSON");

  for (const auto& info : synth::datasetCatalog(scale)) {
    const auto data = bench::prepare(info);
    std::printf("--- %s (vocab=%u tokens=%zu) ---\n", info.paperName.c_str(),
                data.vocab.size(), data.corpus.size());
    std::printf("%-23s", "hosts(sync)");
    for (unsigned h = 1; h <= maxHosts; h *= 2) {
      char head[16];
      std::snprintf(head, sizeof(head), "%u(%u)", h, core::defaultSyncRounds(h));
      std::printf(" %9s", head);
    }
    std::printf("\n");

    for (const auto codec : codecs) {
      for (const auto strategy : variants) {
        char rowHead[32];
        std::snprintf(rowHead, sizeof(rowHead), "%s/%s", comm::syncStrategyName(strategy),
                      comm::syncCodecName(codec));
        std::printf("%-23s", rowHead);
        for (unsigned h = 1; h <= maxHosts; h *= 2) {
          core::TrainOptions o;
          o.sgns = bench::benchSgns();
          o.epochs = epochs;
          o.numHosts = h;
          o.strategy = strategy;
          o.trackLoss = false;
          o.sync.codec = codec;
          const auto result = core::GraphWord2Vec(data.vocab, o).train(data.corpus);
          std::printf(" %9.3f", result.cluster.simulatedSeconds());
          std::fflush(stdout);
          if (json.enabled()) {
            char row[256];
            std::snprintf(
                row, sizeof(row),
                "{\"dataset\": \"%s\", \"variant\": \"%s\", \"codec\": \"%s\", "
                "\"hosts\": %u, \"sync_rounds\": %u, \"sim_seconds\": %.6f, "
                "\"bytes\": %llu}",
                info.paperName.c_str(), comm::syncStrategyName(strategy),
                comm::syncCodecName(codec), h, core::defaultSyncRounds(h),
                result.cluster.simulatedSeconds(),
                static_cast<unsigned long long>(result.cluster.totalBytes()));
            json.add(row);
          }
        }
        std::printf("\n");
      }
    }
    std::printf("\n");
  }
  std::printf("expected shape: time falls with hosts for all variants (paper: 8.5x Naive,\n"
              "10.5x Opt, 8.8x Pull at 32 hosts on 1-billion); Opt <= Naive everywhere.\n");
  json.write();
  return 0;
}
