#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sim/network_model.h"

namespace gw2v::sim {
namespace {

TEST(Cluster, RunsBodyOnEveryHost) {
  ClusterOptions opts;
  opts.numHosts = 5;
  std::atomic<unsigned> mask{0};
  runCluster(opts, [&](HostContext& ctx) {
    EXPECT_EQ(ctx.numHosts(), 5u);
    mask.fetch_or(1u << ctx.id());
  });
  EXPECT_EQ(mask.load(), 0b11111u);
}

TEST(Cluster, RejectsZeroHosts) {
  ClusterOptions opts;
  opts.numHosts = 0;
  EXPECT_THROW(runCluster(opts, [](HostContext&) {}), std::invalid_argument);
}

TEST(Cluster, HostsCanExchangeMessages) {
  ClusterOptions opts;
  opts.numHosts = 2;
  runCluster(opts, [&](HostContext& ctx) {
    if (ctx.id() == 0) {
      const std::vector<float> data{1.0f, 2.0f};
      ctx.network().sendVector<float>(0, 1, 1, data);
    } else {
      const auto got = ctx.network().recvVector<float>(1, 0, 1);
      EXPECT_EQ(got.size(), 2u);
      EXPECT_FLOAT_EQ(got[0], 1.0f);
    }
  });
}

TEST(Cluster, ReportContainsPerHostTraffic) {
  ClusterOptions opts;
  opts.numHosts = 2;
  const auto report = runCluster(opts, [&](HostContext& ctx) {
    if (ctx.id() == 0) ctx.network().send(0, 1, 1, std::vector<std::uint8_t>(100));
    ctx.barrier();
    if (ctx.id() == 1) (void)ctx.network().recv(1, 0, 1);
  });
  ASSERT_EQ(report.hosts.size(), 2u);
  EXPECT_EQ(report.hosts[0].comm.bytesSent, 100 + Network::kHeaderBytes);
  EXPECT_EQ(report.hosts[1].comm.bytesSent, 0u);
  EXPECT_EQ(report.totalBytes(), 100 + Network::kHeaderBytes);
  EXPECT_GT(report.wallSeconds, 0.0);
}

TEST(Cluster, ComputeTimerAccumulates) {
  ClusterOptions opts;
  opts.numHosts = 1;
  const auto report = runCluster(opts, [&](HostContext& ctx) {
    ctx.computeTimer().start();
    volatile double sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
    ctx.computeTimer().stop();
  });
  EXPECT_GT(report.hosts[0].computeSeconds, 0.0);
  EXPECT_GT(report.maxComputeSeconds(), 0.0);
}

TEST(Cluster, ModelledCommSecondsFlowThrough) {
  ClusterOptions opts;
  opts.numHosts = 1;
  const auto report = runCluster(opts, [&](HostContext& ctx) {
    ctx.addModelledCommSeconds(1.25);
    ctx.addModelledCommSeconds(0.25);
  });
  EXPECT_DOUBLE_EQ(report.hosts[0].modelledCommSeconds, 1.5);
  EXPECT_DOUBLE_EQ(report.maxModelledCommSeconds(), 1.5);
  EXPECT_GE(report.simulatedSeconds(), 1.5);
}

TEST(Cluster, ExceptionPropagatesFromHost) {
  ClusterOptions opts;
  opts.numHosts = 3;
  EXPECT_THROW(runCluster(opts,
                          [](HostContext& ctx) {
                            if (ctx.id() == 1) throw std::runtime_error("host 1 died");
                            // Peers block; abort must wake them.
                            ctx.barrier();
                          }),
               std::runtime_error);
}

TEST(Cluster, ExceptionWhilePeersBlockedInRecv) {
  ClusterOptions opts;
  opts.numHosts = 2;
  EXPECT_THROW(runCluster(opts,
                          [](HostContext& ctx) {
                            if (ctx.id() == 0) throw std::logic_error("boom");
                            (void)ctx.network().recv(1, 0, 99);  // never sent
                          }),
               std::logic_error);
}

TEST(NetworkModel, TransferTimeIsAlphaBeta) {
  NetworkModel m;
  m.latencySeconds = 1e-6;
  m.bandwidthBytesPerSec = 1e9;
  EXPECT_DOUBLE_EQ(m.transferSeconds(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.transferSeconds(1'000'000'000, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.transferSeconds(0, 1000), 1e-3);
  EXPECT_DOUBLE_EQ(m.transferSeconds(500'000'000, 500), 0.5 + 5e-4);
}

TEST(NetworkModel, ExchangeCountsSendPlusRecv) {
  NetworkModel m;
  m.latencySeconds = 0.0;
  m.bandwidthBytesPerSec = 100.0;
  CommSnapshot d{50, 50, 3};
  EXPECT_DOUBLE_EQ(m.exchangeSeconds(d), 1.0);
}

TEST(CommStats, SnapshotDelta) {
  CommStats s;
  s.recordSend(CommPhase::kReduce, 100);
  const auto before = snapshot(s);
  s.recordSend(CommPhase::kBroadcast, 50);
  s.recordReceive(CommPhase::kReduce, 30);
  const auto d = delta(before, snapshot(s));
  EXPECT_EQ(d.bytesSent, 50u);
  EXPECT_EQ(d.bytesReceived, 30u);
  EXPECT_EQ(d.messagesSent, 1u);
}

TEST(Cluster, WorkerPoolSizeHonored) {
  ClusterOptions opts;
  opts.numHosts = 2;
  opts.workerThreadsPerHost = 3;
  runCluster(opts, [&](HostContext& ctx) { EXPECT_EQ(ctx.pool().numThreads(), 3u); });
}

}  // namespace
}  // namespace gw2v::sim
