#include "comm/collectives.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "sim/network.h"

namespace gw2v::comm {
namespace {

// Runs `body(rank, collectives)` on one thread per rank over a fresh
// simulated network. The first thrown exception fails the test; the network
// is poisoned so peers unblock instead of deadlocking.
void runRanks(unsigned numRanks, const std::function<void(RankId, Collectives&)>& body) {
  sim::Network net(numRanks);
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  std::string firstError;
  std::mutex errMutex;
  for (unsigned h = 0; h < numRanks; ++h) {
    threads.emplace_back([&, h] {
      SimTransport transport(net);
      Collectives coll(transport, h, TagSpace::kTest);
      try {
        body(h, coll);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!failed.exchange(true)) firstError = e.what();
        net.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load()) << firstError;
}

double seqReference(CollOp op, std::size_t i, unsigned numRanks) {
  // Rank h contributes h * 100 + i to slot i.
  double acc = static_cast<double>(i);  // rank 0
  for (unsigned h = 1; h < numRanks; ++h) {
    const double v = h * 100.0 + static_cast<double>(i);
    switch (op) {
      case CollOp::kSum: acc += v; break;
      case CollOp::kMin: acc = std::min(acc, v); break;
      case CollOp::kMax: acc = std::max(acc, v); break;
    }
  }
  return acc;
}

constexpr unsigned kHostCounts[] = {1, 2, 3, 4, 7, 8};
constexpr std::size_t kPayloadSizes[] = {1, 3, 17, 129};  // odd, non-divisible by H
constexpr CollOp kOps[] = {CollOp::kSum, CollOp::kMin, CollOp::kMax};
constexpr CollectiveAlgo kAlgos[] = {CollectiveAlgo::kNaive, CollectiveAlgo::kRing,
                                     CollectiveAlgo::kTree, CollectiveAlgo::kAuto};

TEST(Collectives, AllReduceMatchesSequentialReference) {
  for (const unsigned H : kHostCounts) {
    for (const std::size_t n : kPayloadSizes) {
      for (const CollOp op : kOps) {
        for (const CollectiveAlgo algo : kAlgos) {
          runRanks(H, [&](RankId me, Collectives& coll) {
            std::vector<double> v(n);
            for (std::size_t i = 0; i < n; ++i) v[i] = me * 100.0 + static_cast<double>(i);
            coll.allReduce(std::span<double>(v), op, algo);
            for (std::size_t i = 0; i < n; ++i) {
              // Sum of <= 8 exactly-representable doubles: exact in any
              // association order; min/max trivially exact.
              ASSERT_DOUBLE_EQ(v[i], seqReference(op, i, H))
                  << "H=" << H << " n=" << n << " op=" << static_cast<int>(op)
                  << " algo=" << collectiveAlgoName(algo) << " rank=" << me << " i=" << i;
            }
          });
        }
      }
    }
  }
}

TEST(Collectives, AllReduceWithCustomFold) {
  runRanks(4, [](RankId me, Collectives& coll) {
    std::vector<float> v{static_cast<float>(me + 1)};
    coll.allReduceWith(std::span<float>(v),
                       [](std::span<float> acc, std::span<const float> in) {
                         for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= in[i];
                       },
                       CollectiveAlgo::kTree);
    ASSERT_FLOAT_EQ(v[0], 1.0f * 2.0f * 3.0f * 4.0f);
  });
}

TEST(Collectives, BroadcastFromEveryRoot) {
  for (const unsigned H : kHostCounts) {
    for (unsigned root = 0; root < H; ++root) {
      for (const CollectiveAlgo algo : {CollectiveAlgo::kNaive, CollectiveAlgo::kTree}) {
        runRanks(H, [&](RankId me, Collectives& coll) {
          std::vector<std::uint32_t> v(17, me == root ? root * 7 + 1 : 0u);
          coll.broadcast(std::span<std::uint32_t>(v), root, algo);
          for (const auto x : v) ASSERT_EQ(x, root * 7 + 1) << "root=" << root << " me=" << me;
        });
      }
    }
  }
}

TEST(Collectives, ReduceFoldsAtRoot) {
  for (const unsigned H : {2u, 5u, 8u}) {
    for (unsigned root = 0; root < H; ++root) {
      runRanks(H, [&](RankId me, Collectives& coll) {
        std::vector<double> v{static_cast<double>(me), 1.0};
        coll.reduce(std::span<double>(v), root,
                    [](std::span<double> acc, std::span<const double> in) {
                      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
                    });
        if (me == root) {
          ASSERT_DOUBLE_EQ(v[0], H * (H - 1) / 2.0);
          ASSERT_DOUBLE_EQ(v[1], static_cast<double>(H));
        }
      });
    }
  }
}

TEST(Collectives, GathervCollectsPerSourcePayloads) {
  for (const unsigned H : kHostCounts) {
    const unsigned root = H / 2;
    runRanks(H, [&](RankId me, Collectives& coll) {
      // Variable-size payload: rank h contributes h+1 bytes of value h.
      std::vector<std::uint8_t> mine(me + 1, static_cast<std::uint8_t>(me));
      const auto out = coll.gatherv(std::move(mine), root);
      if (me == root) {
        ASSERT_EQ(out.size(), H);
        for (unsigned src = 0; src < H; ++src) {
          ASSERT_EQ(out[src].size(), src + 1);
          for (const auto b : out[src]) ASSERT_EQ(b, src);
        }
      } else {
        ASSERT_TRUE(out.empty());
      }
    });
  }
}

TEST(Collectives, AllGathervDeliversEveryBlockEverywhere) {
  for (const unsigned H : kHostCounts) {
    runRanks(H, [&](RankId me, Collectives& coll) {
      std::vector<std::uint8_t> mine(2 * me + 1, static_cast<std::uint8_t>(me * 3));
      const auto out = coll.allGatherv(std::move(mine));
      ASSERT_EQ(out.size(), H);
      for (unsigned src = 0; src < H; ++src) {
        ASSERT_EQ(out[src].size(), 2 * src + 1) << "H=" << H << " me=" << me;
        for (const auto b : out[src]) ASSERT_EQ(b, src * 3);
      }
    });
  }
}

TEST(Collectives, AllToAllvExchangesPersonalizedPayloads) {
  for (const unsigned H : kHostCounts) {
    runRanks(H, [&](RankId me, Collectives& coll) {
      std::vector<std::vector<std::uint8_t>> toPeer(H);
      for (unsigned p = 0; p < H; ++p) {
        // me -> p carries me*16+p, repeated (p+1) times.
        toPeer[p].assign(p + 1, static_cast<std::uint8_t>(me * 16 + p));
      }
      const auto from = coll.allToAllv(std::move(toPeer), sim::CommPhase::kReduce);
      ASSERT_EQ(from.size(), H);
      ASSERT_TRUE(from[me].empty());
      for (unsigned src = 0; src < H; ++src) {
        if (src == me) continue;
        ASSERT_EQ(from[src].size(), me + 1);
        for (const auto b : from[src]) ASSERT_EQ(b, src * 16 + me);
      }
    });
  }
}

TEST(Collectives, AllToAllvRejectsWrongSlotCount) {
  runRanks(2, [](RankId me, Collectives& coll) {
    if (me == 0) {
      EXPECT_THROW(coll.allToAllv(std::vector<std::vector<std::uint8_t>>(3)),
                   std::invalid_argument);
    }
    coll.barrier();
  });
}

TEST(Collectives, BackToBackOperationsDoNotMix) {
  // A rank that races ahead into the next collective must not steal messages
  // from the previous one: tags advance per operation.
  runRanks(4, [](RankId me, Collectives& coll) {
    for (int round = 0; round < 25; ++round) {
      std::vector<double> v{static_cast<double>(me), static_cast<double>(round)};
      coll.allReduceSum(v, CollectiveAlgo::kNaive);
      ASSERT_DOUBLE_EQ(v[0], 0.0 + 1.0 + 2.0 + 3.0);
      ASSERT_DOUBLE_EQ(v[1], 4.0 * round);
      std::vector<std::uint8_t> blob(1 + (me + round) % 3, static_cast<std::uint8_t>(me));
      const auto all = coll.allGatherv(std::move(blob));
      for (unsigned src = 0; src < 4; ++src) {
        ASSERT_EQ(all[src].size(), 1 + (src + round) % 3);
      }
    }
  });
}

TEST(Collectives, RingAllReduceStaysWithinBandwidthOptimalBound) {
  // The point of the ring: per-rank traffic ~= 2 n (H-1)/H elements, not the
  // star's O(H n) at the root. Check the measured per-rank bytes.
  const unsigned H = 8;
  const std::size_t n = 4096;
  sim::Network net(H);
  std::vector<std::thread> threads;
  for (unsigned h = 0; h < H; ++h) {
    threads.emplace_back([&, h] {
      SimTransport transport(net);
      Collectives coll(transport, h, TagSpace::kTest);
      std::vector<double> v(n, 1.0);
      coll.allReduceSum(v, CollectiveAlgo::kRing);
    });
  }
  for (auto& t : threads) t.join();
  const double idealBytes = 2.0 * static_cast<double>(n) * sizeof(double) * (H - 1) / H;
  const std::uint64_t headerBytes = 2 * (H - 1) * sim::Network::kHeaderBytes;
  for (unsigned h = 0; h < H; ++h) {
    const std::uint64_t sent = net.statsFor(h).bytesSent();
    // Uneven chunking adds at most one element per step.
    EXPECT_LE(sent, static_cast<std::uint64_t>(idealBytes) + headerBytes +
                        2 * (H - 1) * sizeof(double))
        << "rank " << h;
    EXPECT_GE(sent, static_cast<std::uint64_t>(idealBytes * 0.9)) << "rank " << h;
    EXPECT_EQ(net.statsFor(h).collectiveRounds(), 2u * (H - 1));
  }
  // ... while the naive star concentrates O(H n) at the root.
  net.resetStats();
  std::vector<std::thread> threads2;
  for (unsigned h = 0; h < H; ++h) {
    threads2.emplace_back([&, h] {
      SimTransport transport(net);
      Collectives coll(transport, h, TagSpace::kTest);
      std::vector<double> v(n, 1.0);
      coll.allReduceSum(v, CollectiveAlgo::kNaive);
    });
  }
  for (auto& t : threads2) t.join();
  EXPECT_GE(net.statsFor(0).bytesSent() + net.statsFor(0).bytesReceived(),
            2 * (H - 1) * n * sizeof(double));
}

TEST(Collectives, TreeRoundsAreLogarithmic) {
  const unsigned H = 8;
  sim::Network net(H);
  std::vector<std::thread> threads;
  for (unsigned h = 0; h < H; ++h) {
    threads.emplace_back([&, h] {
      SimTransport transport(net);
      Collectives coll(transport, h, TagSpace::kTest);
      std::vector<double> v{1.0};
      coll.broadcast(std::span<double>(v), 0, CollectiveAlgo::kTree);
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned h = 0; h < H; ++h) {
    EXPECT_EQ(net.statsFor(h).collectiveRounds(), 3u);  // ceil(log2 8)
  }
}

TEST(Collectives, SingleRankEverythingIsANoop) {
  runRanks(1, [](RankId, Collectives& coll) {
    std::vector<double> v{5.0};
    coll.allReduceSum(v, CollectiveAlgo::kRing);
    ASSERT_DOUBLE_EQ(v[0], 5.0);
    coll.broadcast(std::span<double>(v), 0);
    const auto g = coll.gatherv({1, 2, 3}, 0);
    ASSERT_EQ(g.size(), 1u);
    ASSERT_EQ(g[0].size(), 3u);
    const auto ag = coll.allGatherv({9});
    ASSERT_EQ(ag.size(), 1u);
    const auto a2a = coll.allToAllv(std::vector<std::vector<std::uint8_t>>(1));
    ASSERT_EQ(a2a.size(), 1u);
  });
}

TEST(Collectives, AbortMidCollectivePropagatesToAllRanks) {
  // Rank 2 dies before joining the collective; everyone blocked inside it
  // must observe NetworkAborted instead of deadlocking.
  for (const CollectiveAlgo algo :
       {CollectiveAlgo::kNaive, CollectiveAlgo::kRing, CollectiveAlgo::kTree}) {
    constexpr unsigned H = 4;
    sim::Network net(H);
    std::atomic<int> aborted{0};
    std::vector<std::thread> threads;
    for (unsigned h = 0; h < H; ++h) {
      threads.emplace_back([&, h] {
        SimTransport transport(net);
        Collectives coll(transport, h, TagSpace::kTest);
        if (h == 2) {
          // Simulated fault: poison the fabric without participating.
          net.abort();
          return;
        }
        std::vector<double> v(64, static_cast<double>(h));
        try {
          coll.allReduceSum(v, algo);
          // A rank may squeak through if it finished before the poison hit;
          // with rank 2 never sending, at least one peer of 2 cannot.
        } catch (const sim::NetworkAborted&) {
          aborted.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_GE(aborted.load(), 1) << collectiveAlgoName(algo);
    EXPECT_TRUE(net.aborted());
  }
}

TEST(Collectives, OpsIssuedAdvancesUniformly) {
  runRanks(3, [](RankId, Collectives& coll) {
    ASSERT_EQ(coll.opsIssued(), 0u);
    std::vector<double> v{1.0};
    coll.allReduceSum(v, CollectiveAlgo::kNaive);
    coll.allGatherv({1});
    ASSERT_EQ(coll.opsIssued(), 2u);
  });
}

}  // namespace
}  // namespace gw2v::comm
