#include "ps/server_core.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "comm/reducer.h"
#include "comm/serialize.h"
#include "graph/model_graph.h"
#include "ps/protocol.h"

// Transport-free protocol tests: hand-built Get/Add bodies driven straight
// into ServerCore, asserting the block-SSP serve/fold rules, version math,
// and the encode-once lossy reply cache.

namespace gw2v::ps {
namespace {

constexpr std::uint32_t kRows = 8;
constexpr std::uint32_t kDim = 4;
constexpr std::uint64_t kSeed = 7;

PsConfig config(unsigned staleness, comm::SyncCodec codec = comm::SyncCodec::kFp32) {
  PsConfig cfg;
  cfg.numRows = kRows;
  cfg.dim = kDim;
  cfg.staleness = staleness;
  cfg.codec = codec;
  return cfg;
}

/// Get body: round + (row, cached versions) list; kNoVersion = uncached.
std::vector<std::uint8_t> getBody(
    std::uint64_t round,
    const std::vector<std::pair<std::uint32_t, std::array<std::uint64_t, 2>>>& rows) {
  comm::ByteWriter w;
  w.put(round);
  w.put(static_cast<std::uint32_t>(rows.size()));
  for (const auto& [row, vers] : rows) {
    w.put(row);
    w.put(vers[0]);
    w.put(vers[1]);
  }
  return w.take();
}

std::vector<std::uint8_t> getUncached(std::uint64_t round,
                                      const std::vector<std::uint32_t>& rows) {
  std::vector<std::pair<std::uint32_t, std::array<std::uint64_t, 2>>> refs;
  for (auto r : rows) refs.push_back({r, {kNoVersion, kNoVersion}});
  return getBody(round, refs);
}

/// Add body: one complete (lastChunk) push for `clock`.
std::vector<std::uint8_t> addBody(
    const PsConfig& cfg, std::uint64_t clock,
    const std::vector<std::tuple<int, std::uint32_t, std::vector<float>>>& entries) {
  comm::ByteWriter w;
  w.put(clock);
  w.put(std::uint8_t{1});
  w.put(static_cast<std::uint32_t>(entries.size()));
  std::vector<std::uint8_t> scratch;
  for (const auto& [label, row, values] : entries) {
    w.put(static_cast<std::uint8_t>(label));
    w.put(row);
    writeEncodedRow(w, cfg.codec, values, scratch);
  }
  return w.take();
}

void feedGet(ServerCore& core, unsigned worker, const std::vector<std::uint8_t>& body) {
  comm::ByteReader r(body);
  core.onGet(worker, 0.0, r);
}

void feedAdd(ServerCore& core, unsigned worker, const std::vector<std::uint8_t>& body) {
  comm::ByteReader r(body);
  core.onAdd(worker, 0.0, r);
}

struct ReplyRow {
  std::uint32_t row = 0;
  std::uint64_t ver[2] = {0, 0};
  bool fresh[2] = {false, false};
  std::vector<float> values[2];
};
struct Reply {
  unsigned worker = 0;
  std::uint64_t round = 0;
  std::vector<ReplyRow> rows;
  std::vector<std::uint8_t> raw;
};

Reply parseReply(const PsConfig& cfg, unsigned worker, std::span<const std::uint8_t> body) {
  Reply out;
  out.worker = worker;
  out.raw.assign(body.begin(), body.end());
  comm::ByteReader r(body);
  out.round = r.get<std::uint64_t>();
  const auto count = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < count; ++i) {
    ReplyRow row;
    row.row = r.get<std::uint32_t>();
    for (int l = 0; l < graph::kNumLabels; ++l) {
      row.ver[l] = r.get<std::uint64_t>();
      row.fresh[l] = r.get<std::uint8_t>() != 0;
      if (row.fresh[l]) {
        row.values[l].resize(cfg.dim);
        readEncodedRow(r, cfg.codec, row.values[l]);
      }
    }
    out.rows.push_back(std::move(row));
  }
  EXPECT_EQ(r.remaining(), 0u);
  return out;
}

/// Collects replies; pump() through sink().
struct Sink {
  explicit Sink(const PsConfig& cfg) : cfg_(&cfg) {}
  ServerCore::Emit fn() {
    return [this](unsigned worker, double, std::vector<std::uint8_t> body) {
      replies.push_back(parseReply(*cfg_, worker, body));
    };
  }
  std::vector<Reply> replies;
  const PsConfig* cfg_;
};

TEST(PsServerCore, ServesWindowBaseImmediatelyWithInitValues) {
  const auto cfg = config(0);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 2, sum, kSeed);
  Sink sink(cfg);

  feedGet(core, 0, getUncached(0, {1, 2}));
  core.pump(sink.fn());

  ASSERT_EQ(sink.replies.size(), 1u);
  const Reply& rep = sink.replies[0];
  EXPECT_EQ(rep.worker, 0u);
  EXPECT_EQ(rep.round, 0u);
  ASSERT_EQ(rep.rows.size(), 2u);

  // Version-0 rows match a locally seeded model: embeddings randomized,
  // training rows zero.
  graph::ModelGraph ref;
  ref.init(kRows, kDim);
  ref.randomizeEmbeddings(kSeed);
  for (const ReplyRow& row : rep.rows) {
    EXPECT_EQ(row.ver[0], 0u);
    EXPECT_EQ(row.ver[1], 0u);
    ASSERT_TRUE(row.fresh[0]);
    ASSERT_TRUE(row.fresh[1]);
    const auto expect = ref.row(graph::Label::kEmbedding, row.row);
    for (std::uint32_t d = 0; d < kDim; ++d) {
      EXPECT_EQ(row.values[0][d], expect[d]);
      EXPECT_EQ(row.values[1][d], 0.0f);
    }
  }
  EXPECT_EQ(core.stats().servedGets, 1u);
  EXPECT_EQ(core.stats().parkedGets, 0u);
}

TEST(PsServerCore, BspFoldWaitsForEveryWorkerThenServesParkedGet) {
  const auto cfg = config(0);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 2, sum, kSeed);
  Sink sink(cfg);

  // Worker 0 races a full round ahead: its round-1 Get must park until
  // worker 1 catches up and clock 0 folds.
  feedGet(core, 0, getUncached(0, {1}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 1u);
  const std::vector<float> initEmb = sink.replies[0].rows[0].values[0];

  feedAdd(core, 0, addBody(cfg, 0, {{0, 1, {1.0f, 1.0f, 1.0f, 1.0f}}}));
  feedGet(core, 0, getUncached(1, {1}));
  core.pump(sink.fn());
  EXPECT_EQ(sink.replies.size(), 1u) << "round-1 Get must not be served at commit 0";
  EXPECT_EQ(core.commitLevel(), 0u);
  EXPECT_EQ(core.stats().parkedGets, 1u);

  feedGet(core, 1, getUncached(0, {1}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 2u);  // worker 1's round 0, still commit 0
  EXPECT_EQ(sink.replies[1].worker, 1u);
  EXPECT_EQ(sink.replies[1].raw, sink.replies[0].raw)
      << "same round, same rows, same commit => identical reply bytes";

  feedAdd(core, 1, addBody(cfg, 0, {}));  // empty push still advances the clock
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 3u);  // fold fired, parked Get released
  EXPECT_EQ(core.commitLevel(), 1u);
  const Reply& rep = sink.replies[2];
  EXPECT_EQ(rep.worker, 0u);
  EXPECT_EQ(rep.round, 1u);
  ASSERT_EQ(rep.rows.size(), 1u);
  // rowVersion == 1 + last touching clock; training label untouched stays 0.
  EXPECT_EQ(rep.rows[0].ver[0], 1u);
  EXPECT_EQ(rep.rows[0].ver[1], 0u);
  ASSERT_TRUE(rep.rows[0].fresh[0]);
  for (std::uint32_t d = 0; d < kDim; ++d)
    EXPECT_EQ(rep.rows[0].values[0][d], initEmb[d] + 1.0f);
}

TEST(PsServerCore, WindowServesStaleReadsWithoutFoldingAndAcksCachedRows) {
  const auto cfg = config(2);  // window of 3 rounds
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 1, sum, kSeed);
  Sink sink(cfg);

  // Rounds 0..2 all read at window base 0 — served immediately, no folds,
  // even though pushes for earlier clocks are complete.
  feedGet(core, 0, getUncached(0, {3}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 1u);
  feedAdd(core, 0, addBody(cfg, 0, {{0, 3, {1.0f, 0.0f, 0.0f, 0.0f}}}));

  // Round 1 ships the versions from round 0's reply: the whole row is acked
  // as unchanged (reads within a window are frozen at the base).
  feedGet(core, 0, getBody(1, {{3, {0, 0}}}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 2u);
  EXPECT_EQ(core.commitLevel(), 0u);
  EXPECT_FALSE(sink.replies[1].rows[0].fresh[0]);
  EXPECT_FALSE(sink.replies[1].rows[0].fresh[1]);
  EXPECT_EQ(core.stats().cachedValues, 2u);
  feedAdd(core, 0, addBody(cfg, 1, {{0, 3, {1.0f, 0.0f, 0.0f, 0.0f}}}));

  feedGet(core, 0, getBody(2, {{3, {0, 0}}}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 3u);
  EXPECT_FALSE(sink.replies[2].rows[0].fresh[0]);  // still the frozen window base
  // Serving the window's last round pins the next read at round 3, so the
  // complete clocks 0 and 1 fold eagerly right after the serve.
  EXPECT_EQ(core.commitLevel(), 2u);
  feedAdd(core, 0, addBody(cfg, 2, {{0, 3, {1.0f, 0.0f, 0.0f, 0.0f}}}));

  // Round 3 opens the next window: clocks 0..2 fold together, then serve.
  feedGet(core, 0, getBody(3, {{3, {0, 0}}}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 4u);
  EXPECT_EQ(core.commitLevel(), 3u);
  EXPECT_EQ(core.stats().foldedClocks, 3u);
  const Reply& rep = sink.replies[3];
  // Last clock touching row 3's embedding was 2 => version 3.
  EXPECT_EQ(rep.rows[0].ver[0], 3u);
  ASSERT_TRUE(rep.rows[0].fresh[0]);
  graph::ModelGraph ref;
  ref.init(kRows, kDim);
  ref.randomizeEmbeddings(kSeed);
  EXPECT_EQ(rep.rows[0].values[0][0], ref.row(graph::Label::kEmbedding, 3)[0] + 3.0f);
}

TEST(PsServerCore, FoldAppliesReducerAcrossWorkers) {
  const auto cfg = config(0);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 2, sum, kSeed);
  Sink sink(cfg);

  for (unsigned w = 0; w < 2; ++w) feedGet(core, w, getUncached(0, {2}));
  core.pump(sink.fn());
  feedAdd(core, 0, addBody(cfg, 0, {{1, 2, {1.0f, 2.0f, 3.0f, 4.0f}}}));
  feedAdd(core, 1, addBody(cfg, 0, {{1, 2, {10.0f, 20.0f, 30.0f, 40.0f}}}));
  for (unsigned w = 0; w < 2; ++w) feedGet(core, w, getUncached(1, {2}));
  core.pump(sink.fn());

  ASSERT_EQ(sink.replies.size(), 4u);
  EXPECT_EQ(core.stats().foldedContributions, 2u);
  // Training rows start at zero, so the folded value is exactly the SUM.
  const auto folded = core.table(graph::Label::kTraining).row(2);
  EXPECT_EQ(folded[0], 11.0f);
  EXPECT_EQ(folded[1], 22.0f);
  EXPECT_EQ(folded[2], 33.0f);
  EXPECT_EQ(folded[3], 44.0f);
}

TEST(PsServerCore, DoneWaivesTheFinalPartialWindow) {
  // 3 total rounds with s = 1: the last window {2} is partial, and the final
  // fold's gate (needs the worker's next read pinned above clock 2) can only
  // be satisfied by Done.
  const auto cfg = config(1);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 1, sum, kSeed);
  Sink sink(cfg);

  for (std::uint64_t round = 0; round < 3; ++round) {
    feedGet(core, 0, getUncached(round, {0}));
    core.pump(sink.fn());
    ASSERT_EQ(sink.replies.size(), round + 1);
    feedAdd(core, 0, addBody(cfg, round, {{0, 0, {1.0f, 0.0f, 0.0f, 0.0f}}}));
  }
  core.pump(sink.fn());
  EXPECT_EQ(core.commitLevel(), 2u);  // clocks 0,1 folded at the window edge
  EXPECT_FALSE(core.finished());

  core.onDone(0);
  core.pump(sink.fn());
  EXPECT_EQ(core.commitLevel(), 3u);
  EXPECT_TRUE(core.finished());
  EXPECT_GE(core.commitVt(), 0.0);
}

TEST(PsServerCore, RowVersionTracksLastTouchingClockNotCommitLevel) {
  const auto cfg = config(0);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 1, sum, kSeed);
  Sink sink(cfg);

  feedGet(core, 0, getUncached(0, {5}));
  core.pump(sink.fn());
  feedAdd(core, 0, addBody(cfg, 0, {{0, 5, {1.0f, 1.0f, 1.0f, 1.0f}}}));

  feedGet(core, 0, getUncached(1, {5}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 2u);
  EXPECT_EQ(sink.replies[1].rows[0].ver[0], 1u);
  feedAdd(core, 0, addBody(cfg, 1, {}));  // clock 1 touches nothing

  // Commit level is 2 here, but row 5 was last touched by clock 0: its
  // version must still be 1, so a round-2 Get caching version 1 is acked.
  feedGet(core, 0, getBody(2, {{5, {1, 0}}}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 3u);
  EXPECT_EQ(core.commitLevel(), 2u);
  EXPECT_EQ(sink.replies[2].rows[0].ver[0], 1u);
  EXPECT_FALSE(sink.replies[2].rows[0].fresh[0]);
  EXPECT_FALSE(sink.replies[2].rows[0].fresh[1]);
}

TEST(PsServerCore, LossyRepliesAreEncodedOncePerVersion) {
  const auto cfg = config(0, comm::SyncCodec::kInt8);
  comm::SumReducer sum;
  ServerCore core(cfg, {0, kRows}, 2, sum, kSeed);
  Sink sink(cfg);

  // Same round, same rows => byte-identical replies for both workers, at
  // version 0 (lazy first-request encode) ...
  for (unsigned w = 0; w < 2; ++w) feedGet(core, w, getUncached(0, {1, 4}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 2u);
  EXPECT_EQ(sink.replies[0].raw, sink.replies[1].raw);

  // ... and at a folded version (fold-time encode), deltas differing per
  // worker so the fold is nontrivial.
  feedAdd(core, 0, addBody(cfg, 0, {{0, 1, {0.25f, -0.5f, 0.125f, 0.75f}}}));
  feedAdd(core, 1, addBody(cfg, 0, {{0, 1, {-0.125f, 0.5f, 0.0625f, -0.25f}}}));
  for (unsigned w = 0; w < 2; ++w) feedGet(core, w, getUncached(1, {1, 4}));
  core.pump(sink.fn());
  ASSERT_EQ(sink.replies.size(), 4u);
  EXPECT_EQ(sink.replies[2].raw, sink.replies[3].raw);
  EXPECT_EQ(sink.replies[2].rows[0].ver[0], 1u);
  // Untouched row 4 still serves the identical version-0 bytes.
  EXPECT_EQ(sink.replies[2].rows[1].ver[0], 0u);
  ASSERT_TRUE(sink.replies[2].rows[1].fresh[0]);
  EXPECT_EQ(sink.replies[2].rows[1].values[0], sink.replies[0].rows[1].values[0]);
}

}  // namespace
}  // namespace gw2v::ps
