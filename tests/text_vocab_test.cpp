#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace gw2v::text {
namespace {

Vocabulary fromText(std::string_view body, std::uint64_t minCount = 1) {
  Vocabulary v;
  forEachToken(body, [&](std::string_view tok) { v.addToken(tok); });
  v.finalize(minCount);
  return v;
}

TEST(Tokenizer, SplitsOnAllWhitespace) {
  std::vector<std::string> toks;
  forEachToken("a b\tc\nd\re  f\n\n", [&](std::string_view t) { toks.emplace_back(t); });
  EXPECT_EQ(toks, (std::vector<std::string>{"a", "b", "c", "d", "e", "f"}));
}

TEST(Tokenizer, EmptyAndWhitespaceOnly) {
  int calls = 0;
  forEachToken("", [&](std::string_view) { ++calls; });
  forEachToken("  \n\t ", [&](std::string_view) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Tokenizer, SingleTokenNoWhitespace) {
  std::vector<std::string> toks;
  forEachToken("hello", [&](std::string_view t) { toks.emplace_back(t); });
  EXPECT_EQ(toks, (std::vector<std::string>{"hello"}));
}

TEST(Tokenizer, FileStreamingHandlesChunkBoundaries) {
  // Write a file whose tokens straddle the chunk size, then stream with a
  // pathologically small chunk to force boundary splits.
  const std::string path = ::testing::TempDir() + "/gw2v_tok_test.txt";
  {
    std::ofstream out(path);
    for (int i = 0; i < 500; ++i) out << "token" << i << (i % 7 == 0 ? '\n' : ' ');
  }
  std::vector<std::string> streamed;
  const auto total = forEachFileToken(
      path, [&](std::string_view t) { streamed.emplace_back(t); }, /*chunkBytes=*/13);
  EXPECT_EQ(total, 500u);
  ASSERT_EQ(streamed.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(streamed[static_cast<std::size_t>(i)], "token" + std::to_string(i));
  std::remove(path.c_str());
}

TEST(Tokenizer, FileMissingThrows) {
  EXPECT_THROW(forEachFileToken("/nonexistent/gw2v", [](std::string_view) {}),
               std::runtime_error);
}

TEST(Vocabulary, CountsAndSortsByFrequency) {
  const auto v = fromText("b a b c b a");
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.wordOf(0), "b");  // 3 occurrences
  EXPECT_EQ(v.wordOf(1), "a");  // 2
  EXPECT_EQ(v.wordOf(2), "c");  // 1
  EXPECT_EQ(v.countOf(0), 3u);
  EXPECT_EQ(v.totalTokens(), 6u);
}

TEST(Vocabulary, TiesBrokenLexicographically) {
  const auto v = fromText("z y x");
  EXPECT_EQ(v.wordOf(0), "x");
  EXPECT_EQ(v.wordOf(1), "y");
  EXPECT_EQ(v.wordOf(2), "z");
}

TEST(Vocabulary, MinCountFilters) {
  const auto v = fromText("a a a b b c", 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.idOf("c").has_value());
  EXPECT_EQ(v.totalTokens(), 5u);
}

TEST(Vocabulary, IdOfRoundTrips) {
  const auto v = fromText("alpha beta gamma beta");
  for (WordId i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v.idOf(v.wordOf(i)), std::optional<WordId>(i));
  }
  EXPECT_FALSE(v.idOf("delta").has_value());
}

TEST(Vocabulary, EmptyCorpus) {
  const auto v = fromText("");
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.totalTokens(), 0u);
}

TEST(Vocabulary, AllWordsFilteredOut) {
  const auto v = fromText("a b c", 10);
  EXPECT_EQ(v.size(), 0u);
}

TEST(Vocabulary, DoubleFinalizeThrows) {
  Vocabulary v;
  v.addToken("a");
  v.finalize();
  EXPECT_THROW(v.finalize(), std::logic_error);
}

TEST(Vocabulary, AddCountBulk) {
  Vocabulary v;
  v.addCount("x", 10);
  v.addCount("y", 5);
  v.addCount("x", 3);
  v.finalize();
  EXPECT_EQ(v.countOf(*v.idOf("x")), 13u);
}

TEST(Vocabulary, SaveLoadRoundTrip) {
  const auto v = fromText("apple apple banana cherry cherry cherry");
  const std::string path = ::testing::TempDir() + "/gw2v_vocab.txt";
  v.save(path);
  const auto loaded = Vocabulary::load(path);
  ASSERT_EQ(loaded.size(), v.size());
  for (WordId i = 0; i < v.size(); ++i) {
    EXPECT_EQ(loaded.wordOf(i), v.wordOf(i));
    EXPECT_EQ(loaded.countOf(i), v.countOf(i));
  }
  EXPECT_EQ(loaded.totalTokens(), v.totalTokens());
  std::remove(path.c_str());
}

TEST(Vocabulary, SaveUnfinalizedThrows) {
  Vocabulary v;
  v.addToken("a");
  EXPECT_THROW(v.save(::testing::TempDir() + "/gw2v_never.txt"), std::logic_error);
}

TEST(Vocabulary, LoadMalformedThrows) {
  const std::string path = ::testing::TempDir() + "/gw2v_vocab_bad.txt";
  {
    std::ofstream out(path);
    out << "word_without_count\n";
  }
  EXPECT_THROW(Vocabulary::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Vocabulary, LoadMissingThrows) {
  EXPECT_THROW(Vocabulary::load("/nonexistent/vocab.txt"), std::runtime_error);
}

TEST(Encode, MapsAndSkipsOov) {
  const auto v = fromText("a a b");
  const auto ids = encode("a b zzz a", v);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], *v.idOf("a"));
  EXPECT_EQ(ids[1], *v.idOf("b"));
  EXPECT_EQ(ids[2], *v.idOf("a"));
}

TEST(Partition, ContiguousCoverage) {
  std::vector<WordId> corpus(1001);
  for (std::size_t i = 0; i < corpus.size(); ++i) corpus[i] = static_cast<WordId>(i);
  const auto parts = partitionCorpus(corpus, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  WordId expect = 0;
  for (const auto& p : parts) {
    for (const auto w : p) EXPECT_EQ(w, expect++);
    total += p.size();
  }
  EXPECT_EQ(total, corpus.size());
}

class HostSliceSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(HostSliceSweep, BalancedWithinOne) {
  const auto [n, hosts] = GetParam();
  std::uint64_t minSz = n + 1, maxSz = 0, covered = 0;
  for (unsigned h = 0; h < hosts; ++h) {
    const auto [lo, hi] = hostSlice(n, hosts, h);
    covered += hi - lo;
    minSz = std::min(minSz, hi - lo);
    maxSz = std::max(maxSz, hi - lo);
  }
  EXPECT_EQ(covered, n);
  EXPECT_LE(maxSz - minSz, 1u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HostSliceSweep,
                         ::testing::Values(std::make_tuple(0ULL, 3u),
                                           std::make_tuple(10ULL, 3u),
                                           std::make_tuple(10ULL, 32u),
                                           std::make_tuple(665'500'000ULL, 32u)));

}  // namespace
}  // namespace gw2v::text
