// IVF ANN index tests: full-probe searches must equal the brute-force
// oracle bitwise (candidate scoring shares the SIMD dot kernels), recall at
// modest nprobe must clear a floor on clustered data, and the build must be
// invariant to thread-pool size while searches stay invariant to host count
// — the two determinism contracts ann_index.h promises. The engine-level
// tests drive QueryOptions::kAnn end-to-end on the simulated cluster.

#include "serve/ann_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "comm/transport.h"
#include "graph/model_graph.h"
#include "graph/partition.h"
#include "runtime/thread_pool.h"
#include "serve/query_engine.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"
#include "sim/cluster.h"
#include "text/vocabulary.h"
#include "util/rng.h"
#include "util/simd.h"

namespace gw2v::serve {
namespace {

constexpr std::uint32_t kRows = 400;
constexpr std::uint32_t kDim = 16;
constexpr std::uint32_t kClusters = 8;

/// Gaussian-mixture embeddings: rows scatter around `kClusters` random unit
/// centers, so cluster pruning has real structure to find (a uniform cloud
/// would make recall-at-low-nprobe meaningless).
graph::ModelGraph makeClusteredModel(std::uint64_t seed, float noise = 0.25f,
                                     std::uint32_t numRows = kRows) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> centers(kClusters, std::vector<double>(kDim));
  for (auto& c : centers) {
    double n2 = 0.0;
    for (auto& x : c) {
      x = rng.normal();
      n2 += x * x;
    }
    for (auto& x : c) x /= std::sqrt(n2);
  }
  graph::ModelGraph model(numRows, kDim);
  for (std::uint32_t w = 0; w < numRows; ++w) {
    const auto& c = centers[w % kClusters];
    auto row = model.mutableRow(graph::Label::kEmbedding, w);
    for (std::uint32_t d = 0; d < kDim; ++d)
      row[d] = static_cast<float>(c[d] + noise * rng.normal());
  }
  return model;
}

/// A query from the same mixture as the rows, L2-normalized.
std::vector<float> makeQuery(util::Rng& rng, const EmbeddingSnapshot& snap) {
  const auto base = snap.row(static_cast<text::WordId>(rng.bounded(snap.vocabSize())));
  std::vector<float> q(base.begin(), base.end());
  for (auto& x : q) x += 0.1f * static_cast<float>(rng.normal());
  return normalizedCopy(q);
}

std::vector<Candidate> bruteForce(const EmbeddingSnapshot& snap, const TopKQuery& q) {
  return topkScore(snap.rows(), snap.rowStride(), snap.vocabSize(), 0, snap.dim(),
                   std::span<const TopKQuery>(&q, 1))[0];
}

double recallAgainst(const std::vector<Candidate>& oracle,
                     const std::vector<Candidate>& got) {
  if (oracle.empty()) return 1.0;
  std::set<text::WordId> ids;
  for (const auto& c : got) ids.insert(c.id);
  std::size_t hit = 0;
  for (const auto& c : oracle) hit += ids.count(c.id);
  return static_cast<double>(hit) / static_cast<double>(oracle.size());
}

void expectSameCandidates(const std::vector<Candidate>& a, const std::vector<Candidate>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id) << what << " pos=" << i;
    ASSERT_EQ(a[i].score, b[i].score) << what << " pos=" << i;
  }
}

TEST(IvfIndex, FullProbeEqualsBruteForceBitwise) {
  const auto model = makeClusteredModel(7);
  AnnBuildOptions opts;
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
  const auto* idx = snap->annIndex();
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->snapshotVersion(), 1u);
  EXPECT_EQ(idx->numRows(), kRows);

  util::Rng rng(99);
  for (int t = 0; t < 12; ++t) {
    const auto qv = makeQuery(rng, *snap);
    const std::vector<text::WordId> excl = {5, 9, 123};
    const TopKQuery q{qv.data(), 10, excl};
    // Probing every list scores every row: the answer must be the oracle's,
    // bit for bit — scores included (the dot4/dot contract).
    const auto got =
        idx->search(q, dynamic_cast<const IvfIndex*>(idx)->numLists(), 0, 0, kRows);
    expectSameCandidates(bruteForce(*snap, q), got, "query " + std::to_string(t));
  }
}

TEST(IvfIndex, RecallClearsFloorAtModestNprobe) {
  const auto model = makeClusteredModel(21);
  AnnBuildOptions opts;
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
  const auto* idx = dynamic_cast<const IvfIndex*>(snap->annIndex());
  ASSERT_NE(idx, nullptr);

  util::Rng rng(5);
  double recallSum = 0.0;
  std::uint64_t candSum = 0;
  constexpr int kQueries = 50;
  for (int t = 0; t < kQueries; ++t) {
    const auto qv = makeQuery(rng, *snap);
    const TopKQuery q{qv.data(), 10, {}};
    AnnSearchStats stats;
    const auto got = idx->search(q, 6, 0, 0, kRows, &stats);
    recallSum += recallAgainst(bruteForce(*snap, q), got);
    candSum += stats.candidates;
    EXPECT_EQ(stats.probes, 6u);
  }
  EXPECT_GE(recallSum / kQueries, 0.9) << "recall@10 at nprobe=6 of " << idx->numLists();
  // Pruning must be real: 6 of ~20 lists ⇒ well under half the rows scored.
  EXPECT_LT(static_cast<double>(candSum) / (kQueries * kRows), 0.6);
}

TEST(IvfIndex, BuildIsThreadCountInvariant) {
  const auto model = makeClusteredModel(33);
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1);
  AnnBuildOptions opts;

  runtime::ThreadPool pool4(4);
  const IvfIndex serial(snap->rows(), snap->rowStride(), kRows, kDim, 1, opts, nullptr);
  const IvfIndex parallel(snap->rows(), snap->rowStride(), kRows, kDim, 1, opts, &pool4);

  ASSERT_EQ(serial.numLists(), parallel.numLists());
  for (std::uint32_t r = 0; r < kRows; ++r)
    ASSERT_EQ(serial.assignmentOf(r), parallel.assignmentOf(r)) << "row " << r;
  for (std::uint32_t l = 0; l < serial.numLists(); ++l) {
    const auto cs = serial.centroid(l);
    const auto cp = parallel.centroid(l);
    for (std::uint32_t d = 0; d < kDim; ++d)
      ASSERT_EQ(cs[d], cp[d]) << "centroid " << l << " dim " << d;
  }

  util::Rng rng(3);
  const auto qv = makeQuery(rng, *snap);
  const TopKQuery q{qv.data(), 10, {}};
  expectSameCandidates(serial.search(q, 4, 0, 0, kRows), parallel.search(q, 4, 0, 0, kRows),
                       "pool-size search");
}

TEST(IvfIndex, ShardedSearchIsHostCountInvariant) {
  const auto model = makeClusteredModel(51);
  AnnBuildOptions opts;
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);

  util::Rng rng(8);
  for (int t = 0; t < 8; ++t) {
    const auto qv = makeQuery(rng, *snap);
    const TopKQuery q{qv.data(), 10, {}};
    const ShardedIndex whole(*snap, 0, 1);
    const auto oneHost = whole.annTopk(q, 3, 2);

    for (const unsigned numHosts : {2u, 3u, 4u}) {
      std::vector<std::vector<Candidate>> parts(numHosts);
      for (unsigned h = 0; h < numHosts; ++h) {
        const ShardedIndex shard(*snap, h, numHosts);
        parts[h] = shard.annTopk(q, 3, 2);
      }
      expectSameCandidates(oneHost, mergeTopK(parts, q.k),
                           "H=" + std::to_string(numHosts) + " t=" + std::to_string(t));
    }
  }
}

TEST(IvfIndex, IncrementalRebuildReusesCentroidsAndMatchesFullReassignment) {
  auto model = makeClusteredModel(63);
  model.clearTouched();  // as a sync round would; v1's "changed since" baseline
  AnnBuildOptions opts;
  const auto v1 = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
  const auto* idx1 = dynamic_cast<const IvfIndex*>(v1->annIndex());
  ASSERT_NE(idx1, nullptr);
  EXPECT_FALSE(idx1->reusedCentroids());
  model.clearTouched();

  const std::vector<std::uint32_t> touched = {3, 17, 31, 200};
  for (const auto w : touched) {
    auto row = model.mutableRow(graph::Label::kEmbedding, w);
    for (std::uint32_t d = 0; d < kDim; ++d) row[d] = -row[d];
  }
  model.clearTouched();

  const auto v2 = EmbeddingSnapshot::fromModel(model, nullptr, 2, *v1, opts);
  const auto* idx2 = dynamic_cast<const IvfIndex*>(v2->annIndex());
  ASSERT_NE(idx2, nullptr);
  EXPECT_TRUE(idx2->reusedCentroids());
  EXPECT_EQ(idx2->snapshotVersion(), 2u);

  // Centroids come over verbatim…
  ASSERT_EQ(idx2->numLists(), idx1->numLists());
  for (std::uint32_t l = 0; l < idx1->numLists(); ++l) {
    const auto c1 = idx1->centroid(l);
    const auto c2 = idx2->centroid(l);
    for (std::uint32_t d = 0; d < kDim; ++d) ASSERT_EQ(c1[d], c2[d]);
  }
  // …and the incremental assignment equals reassigning *every* row of the
  // new matrix against those centroids (unchanged rows cannot move).
  std::vector<std::uint32_t> all(kRows);
  for (std::uint32_t r = 0; r < kRows; ++r) all[r] = r;
  const IvfIndex ref(*idx1, v2->rows(), v2->rowStride(), kRows, kDim, 2, all, nullptr);
  for (std::uint32_t r = 0; r < kRows; ++r)
    ASSERT_EQ(idx2->assignmentOf(r), ref.assignmentOf(r)) << "row " << r;

  util::Rng rng(4);
  const auto qv = makeQuery(rng, *v2);
  const TopKQuery q{qv.data(), 10, {}};
  expectSameCandidates(bruteForce(*v2, q), idx2->search(q, idx2->numLists(), 0, 0, kRows),
                       "incremental full-probe");
}

TEST(IvfIndex, RetrainThresholdForcesFullKmeans) {
  auto model = makeClusteredModel(75);
  model.clearTouched();
  AnnBuildOptions opts;
  opts.retrainThreshold = 0.25f;
  const auto v1 = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
  model.clearTouched();

  // Touch well over a quarter of the rows.
  for (std::uint32_t w = 0; w < kRows; w += 2)
    model.mutableRow(graph::Label::kEmbedding, w)[0] += 1.0f;
  model.clearTouched();

  const auto v2 = EmbeddingSnapshot::fromModel(model, nullptr, 2, *v1, opts);
  const auto* idx2 = dynamic_cast<const IvfIndex*>(v2->annIndex());
  ASSERT_NE(idx2, nullptr);
  EXPECT_FALSE(idx2->reusedCentroids());
}

TEST(IvfIndex, RefineExtendsProbingToCoverBudget) {
  const auto model = makeClusteredModel(87);
  AnnBuildOptions opts;
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
  const auto* idx = dynamic_cast<const IvfIndex*>(snap->annIndex());
  ASSERT_NE(idx, nullptr);

  util::Rng rng(17);
  const auto qv = makeQuery(rng, *snap);
  const TopKQuery q{qv.data(), 10, {}};

  AnnSearchStats lean, refined;
  (void)idx->search(q, 1, 0, 0, kRows, &lean);
  (void)idx->search(q, 1, 20, 0, kRows, &refined);
  // 20·k = 200 candidates out of 400 rows forces extra probes past nprobe=1.
  EXPECT_GT(refined.probes, lean.probes);
  EXPECT_GE(refined.candidates, 200u);

  // A budget covering every row makes refine equivalent to a full probe.
  const auto all = idx->search(q, 1, kRows, 0, kRows);
  expectSameCandidates(bruteForce(*snap, q), all, "refine-covers-all");
}

TEST(IvfIndex, EdgeCases) {
  const auto model = makeClusteredModel(91, 0.25f, 10);
  AnnBuildOptions one;
  one.numLists = 1;
  const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, one);
  const auto* idx = dynamic_cast<const IvfIndex*>(snap->annIndex());
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->numLists(), 1u);

  util::Rng rng(2);
  const auto qv = makeQuery(rng, *snap);
  // One list degenerates to brute force.
  const TopKQuery q{qv.data(), 4, {}};
  expectSameCandidates(bruteForce(*snap, q), idx->search(q, 1, 0, 0, 10), "one-list");
  // k = 0 and empty shard ranges return nothing.
  const TopKQuery q0{qv.data(), 0, {}};
  EXPECT_TRUE(idx->search(q0, 1, 0, 0, 10).empty());
  EXPECT_TRUE(idx->search(q, 1, 0, 5, 5).empty());
  // nprobe = 0 is clamped to 1, not an empty scan.
  AnnSearchStats stats;
  (void)idx->search(q, 0, 0, 0, 10, &stats);
  EXPECT_EQ(stats.probes, 1u);

  // Zero-row index: searchable, empty.
  AnnBuildOptions opts;
  const IvfIndex empty(nullptr, 0, 0, kDim, 1, opts, nullptr);
  EXPECT_TRUE(empty.search(q, 4, 0, 0, 0).empty());
}

TEST(IvfIndex, CandidateScoresBitExactAcrossSimdTiers) {
  const auto model = makeClusteredModel(101);
  const auto original = util::simd::activeTier();
  for (const auto tier :
       {util::simd::Tier::kScalar, util::simd::Tier::kAvx2, util::simd::Tier::kAvx512}) {
    if (util::simd::forceTierForTesting(tier) != tier) continue;  // not on this CPU
    AnnBuildOptions opts;
    const auto snap = EmbeddingSnapshot::fromModel(model, nullptr, 1, opts);
    const auto* idx = dynamic_cast<const IvfIndex*>(snap->annIndex());
    ASSERT_NE(idx, nullptr);
    util::Rng rng(6);
    const auto qv = makeQuery(rng, *snap);
    const TopKQuery q{qv.data(), 10, {}};
    // Within each tier, the ANN candidate path must reproduce the oracle's
    // scores exactly — the dot4-vs-dot contract holds tier by tier.
    expectSameCandidates(bruteForce(*snap, q), idx->search(q, idx->numLists(), 0, 0, kRows),
                         std::string("tier ") + util::simd::tierName(tier));
  }
  util::simd::forceTierForTesting(original);
}

// ---- Engine-level ANN mode on the simulated cluster. -----------------------

text::Vocabulary makeVocab(std::uint32_t n) {
  text::Vocabulary v;
  for (std::uint32_t i = 0; i < n; ++i) v.addCount("w" + std::to_string(i), 100000 - i);
  v.finalize(1);
  return v;
}

void runServe(unsigned numHosts, const SnapshotStore& store, ServeOptions opts,
              const std::function<void(QueryEngine&)>& client) {
  sim::ClusterOptions copts;
  copts.numHosts = numHosts;
  sim::runCluster(copts, [&](sim::HostContext& ctx) {
    comm::SimTransport transport(ctx.network());
    QueryEngine engine(transport, ctx.id(), store, opts);
    if (ctx.id() == 0) {
      std::thread clientThread([&] {
        client(engine);
        engine.shutdown();
      });
      engine.run();
      clientThread.join();
    } else {
      engine.run();
    }
  });
}

TEST(ServeAnnEngine, AnnModeClearsRecallFloorAndIsHostCountInvariant) {
  const auto model = makeClusteredModel(113);
  const auto vocab = makeVocab(kRows);
  AnnBuildOptions ann;

  QueryOptions qo;
  qo.mode = QueryMode::kAnn;
  qo.nprobe = 6;
  qo.refine = 4;

  std::vector<std::vector<Candidate>> firstRun;  // H=1 answers, the yardstick
  for (const unsigned numHosts : {1u, 2u, 3u}) {
    SnapshotStore store(8);
    store.publish(EmbeddingSnapshot::fromModel(model, &vocab, 1, ann));
    ServeOptions opts;
    opts.cacheCapacity = 0;
    runServe(numHosts, store, opts, [&](QueryEngine& engine) {
      double recallSum = 0.0;
      unsigned n = 0;
      for (text::WordId w = 0; w < kRows; w += 11, ++n) {
        const auto approx = engine.queryWord(w, 10, qo);
        const auto exact = engine.queryWord(w, 10);
        recallSum += recallAgainst(exact.neighbors, approx.neighbors);
        if (numHosts == 1) {
          firstRun.push_back(approx.neighbors);
        } else {
          expectSameCandidates(firstRun[n], approx.neighbors,
                               "H=" + std::to_string(numHosts) + " w=" + std::to_string(w));
        }
      }
      EXPECT_GE(recallSum / n, 0.9) << "H=" << numHosts;
      const auto& m = engine.metrics();
      EXPECT_GT(m.annQueries.load(), 0u);
      EXPECT_GT(m.exactScanQueries.load(), 0u);
      EXPECT_EQ(m.annFallbacks.load(), 0u);
      EXPECT_GT(m.annProbeCount.load(), 0u);
      EXPECT_GT(m.annCandidates.load(), 0u);
      EXPECT_GT(m.annCandidateRatio(), 0.0);
      EXPECT_LT(m.annCandidateRatio(), 1.0);
    });
  }
}

TEST(ServeAnnEngine, AnnAgainstIndexlessSnapshotFallsBackToExact) {
  const auto model = makeClusteredModel(131);
  const auto vocab = makeVocab(kRows);
  SnapshotStore store(8);
  store.publish(EmbeddingSnapshot::fromModel(model, &vocab, 1));  // no index

  QueryOptions qo;
  qo.mode = QueryMode::kAnn;
  qo.nprobe = 4;
  ServeOptions opts;
  opts.cacheCapacity = 0;
  runServe(2, store, opts, [&](QueryEngine& engine) {
    const auto approx = engine.queryWord(7, 10, qo);
    const auto exact = engine.queryWord(7, 10);
    expectSameCandidates(exact.neighbors, approx.neighbors, "fallback");
    const auto& m = engine.metrics();
    EXPECT_GT(m.annFallbacks.load(), 0u);
    EXPECT_EQ(m.annQueries.load(), 0u);
  });
}

TEST(ServeAnnEngine, CacheKeysSeparateModesAndKnobs) {
  const auto model = makeClusteredModel(151);
  const auto vocab = makeVocab(kRows);
  AnnBuildOptions ann;
  SnapshotStore store(8);
  store.publish(EmbeddingSnapshot::fromModel(model, &vocab, 1, ann));

  ServeOptions opts;
  opts.cacheCapacity = 64;
  runServe(2, store, opts, [&](QueryEngine& engine) {
    QueryOptions qo;
    qo.mode = QueryMode::kAnn;
    qo.nprobe = 4;
    EXPECT_FALSE(engine.queryWord(5, 10).cacheHit);        // exact, miss
    EXPECT_TRUE(engine.queryWord(5, 10).cacheHit);         // exact, hit
    EXPECT_FALSE(engine.queryWord(5, 10, qo).cacheHit);    // ann ≠ exact key
    EXPECT_TRUE(engine.queryWord(5, 10, qo).cacheHit);     // same knobs hit
    qo.nprobe = 5;
    EXPECT_FALSE(engine.queryWord(5, 10, qo).cacheHit);    // knob change, miss
  });
}

}  // namespace
}  // namespace gw2v::serve
