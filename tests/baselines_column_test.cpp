#include "baselines/column_parallel.h"

#include <gtest/gtest.h>

#include "baselines/shared_memory.h"
#include "util/rng.h"
#include "util/vecmath.h"

namespace gw2v::baselines {
namespace {

using text::WordId;

text::Vocabulary makeVocab(std::uint32_t words) {
  text::Vocabulary v;
  for (std::uint32_t i = 0; i < words; ++i) v.addCount("w" + std::to_string(i), 300 - i * 2);
  v.finalize(1);
  return v;
}

std::vector<WordId> randomCorpus(std::uint32_t vocab, std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<WordId> out(n);
  for (auto& w : out) w = static_cast<WordId>(rng.bounded(vocab));
  return out;
}

ColumnParallelOptions baseOpts() {
  ColumnParallelOptions o;
  o.sgns.dim = 16;
  o.sgns.window = 3;
  o.sgns.negatives = 3;
  o.sgns.subsample = 0;
  o.epochs = 3;
  o.numHosts = 4;
  o.batchExamples = 64;
  return o;
}

TEST(ColumnParallel, LossDecreases) {
  const auto vocab = makeVocab(25);
  const auto corpus = randomCorpus(25, 3000, 1);
  const auto r = trainColumnParallel(vocab, corpus, baseOpts());
  ASSERT_EQ(r.epochLoss.size(), 3u);
  EXPECT_LT(r.epochLoss.back(), r.epochLoss.front());
  EXPECT_GT(r.totalExamples, 0u);
}

TEST(ColumnParallel, HostCountDoesNotChangeTheMath) {
  // The global dot products are sums over dimension slices; slicing is a
  // summation-order change only, so any host count yields (numerically)
  // the same model. Compare 1 host vs 4 hosts with loose float tolerance.
  const auto vocab = makeVocab(20);
  const auto corpus = randomCorpus(20, 2000, 2);
  auto o = baseOpts();
  o.epochs = 2;
  o.numHosts = 1;
  const auto one = trainColumnParallel(vocab, corpus, o);
  o.numHosts = 4;
  const auto four = trainColumnParallel(vocab, corpus, o);
  for (std::uint32_t n = 0; n < 20; ++n) {
    const auto a = one.model.row(graph::Label::kEmbedding, n);
    const auto b = four.model.row(graph::Label::kEmbedding, n);
    for (std::uint32_t d = 0; d < 16; ++d) {
      EXPECT_NEAR(a[d], b[d], 2e-3f) << "node " << n << " dim " << d;
    }
  }
}

TEST(ColumnParallel, BatchOneApproximatesSequentialSgns) {
  // With batch=1 there is no intra-batch staleness: the update sequence is
  // exactly sequential SGNS over the same example stream (modulo slice
  // summation order). Loss trajectories must be close.
  const auto vocab = makeVocab(20);
  const auto corpus = randomCorpus(20, 2000, 3);
  auto o = baseOpts();
  o.batchExamples = 1;
  o.numHosts = 2;
  const auto col = trainColumnParallel(vocab, corpus, o);

  SharedMemoryOptions smo;
  smo.sgns = o.sgns;
  smo.epochs = o.epochs;
  const auto sm = trainHogwild(vocab, corpus, smo);
  EXPECT_NEAR(col.epochLoss.back(), sm.epochs.back().avgLoss, 0.3);
}

TEST(ColumnParallel, CommVolumeScalesWithExamplesNotModel) {
  const auto vocab = makeVocab(50);
  auto o = baseOpts();
  o.epochs = 1;
  o.numHosts = 4;
  const auto small = trainColumnParallel(vocab, randomCorpus(50, 1000, 4), o);
  const auto large = trainColumnParallel(vocab, randomCorpus(50, 4000, 4), o);
  // ~4x the examples -> ~4x the allreduced scalars (same vocab/model size).
  const double ratio = static_cast<double>(large.cluster.totalBytes()) /
                       static_cast<double>(small.cluster.totalBytes());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(ColumnParallel, SingleHostNoTraffic) {
  const auto vocab = makeVocab(10);
  auto o = baseOpts();
  o.numHosts = 1;
  o.epochs = 1;
  const auto r = trainColumnParallel(vocab, randomCorpus(10, 500, 5), o);
  EXPECT_EQ(r.cluster.totalBytes(), 0u);
}

TEST(ColumnParallel, DimSmallerThanHosts) {
  // Degenerate slicing: some hosts own zero dimensions; must still work.
  const auto vocab = makeVocab(10);
  auto o = baseOpts();
  o.sgns.dim = 3;
  o.numHosts = 8;
  o.epochs = 1;
  const auto r = trainColumnParallel(vocab, randomCorpus(10, 500, 6), o);
  EXPECT_EQ(r.model.dim(), 3u);
}

}  // namespace
}  // namespace gw2v::baselines
