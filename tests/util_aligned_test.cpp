#include "util/aligned.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace gw2v::util {
namespace {

TEST(Aligned, VectorDataIsCacheLineAligned) {
  AlignedVector<float> v(100, 1.0f);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLine, 0u);
}

TEST(Aligned, AllocatorEqualityAndRebind) {
  AlignedAllocator<float> a;
  AlignedAllocator<double> b;
  EXPECT_TRUE(a == AlignedAllocator<float>(b));
}

TEST(Aligned, PaddedRowWidthFloats) {
  // 16 floats per 64-byte line.
  EXPECT_EQ(paddedRowWidth(1, sizeof(float)), 16u);
  EXPECT_EQ(paddedRowWidth(16, sizeof(float)), 16u);
  EXPECT_EQ(paddedRowWidth(17, sizeof(float)), 32u);
  EXPECT_EQ(paddedRowWidth(200, sizeof(float)), 208u);
}

TEST(Aligned, PaddedRowWidthDoubles) {
  EXPECT_EQ(paddedRowWidth(1, sizeof(double)), 8u);
  EXPECT_EQ(paddedRowWidth(9, sizeof(double)), 16u);
}

TEST(Aligned, LargeAllocationUsable) {
  AlignedVector<float> v(1 << 20, 0.5f);
  EXPECT_FLOAT_EQ(v[v.size() - 1], 0.5f);
  v[0] = 2.0f;
  EXPECT_FLOAT_EQ(v[0], 2.0f);
}

}  // namespace
}  // namespace gw2v::util
