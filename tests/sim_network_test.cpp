#include "sim/network.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/cluster.h"

namespace gw2v::sim {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) { return {b}; }

TEST(Network, RejectsZeroHosts) { EXPECT_THROW(Network(0), std::invalid_argument); }

TEST(Network, SendRecvSameThread) {
  Network net(2);
  net.send(0, 1, 7, bytes({1, 2, 3}));
  const auto got = net.recv(1, 0, 7);
  EXPECT_EQ(got, bytes({1, 2, 3}));
}

TEST(Network, RecvMatchesTag) {
  Network net(2);
  net.send(0, 1, 5, bytes({5}));
  net.send(0, 1, 6, bytes({6}));
  EXPECT_EQ(net.recv(1, 0, 6), bytes({6}));
  EXPECT_EQ(net.recv(1, 0, 5), bytes({5}));
}

TEST(Network, RecvMatchesSource) {
  Network net(3);
  net.send(0, 2, 1, bytes({0}));
  net.send(1, 2, 1, bytes({1}));
  EXPECT_EQ(net.recv(2, 1, 1), bytes({1}));
  EXPECT_EQ(net.recv(2, 0, 1), bytes({0}));
}

TEST(Network, FifoPerSourceAndTag) {
  Network net(2);
  net.send(0, 1, 3, bytes({1}));
  net.send(0, 1, 3, bytes({2}));
  net.send(0, 1, 3, bytes({3}));
  EXPECT_EQ(net.recv(1, 0, 3), bytes({1}));
  EXPECT_EQ(net.recv(1, 0, 3), bytes({2}));
  EXPECT_EQ(net.recv(1, 0, 3), bytes({3}));
}

TEST(Network, RecvAnyReturnsSource) {
  Network net(3);
  net.send(2, 0, 9, bytes({42}));
  const auto [src, payload] = net.recvAny(0, 9);
  EXPECT_EQ(src, 2u);
  EXPECT_EQ(payload, bytes({42}));
}

TEST(Network, RecvBlocksUntilSend) {
  Network net(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    net.send(0, 1, 1, bytes({9}));
  });
  const auto got = net.recv(1, 0, 1);  // would deadlock if matching broke
  EXPECT_EQ(got, bytes({9}));
  sender.join();
}

TEST(Network, SendVectorRoundTrip) {
  Network net(2);
  const std::vector<float> data{1.5f, -2.5f, 3.25f};
  net.sendVector<float>(0, 1, 4, data);
  const auto got = net.recvVector<float>(1, 0, 4);
  EXPECT_EQ(got, data);
}

TEST(Network, EmptyPayloadAllowed) {
  Network net(2);
  net.send(0, 1, 2, {});
  EXPECT_TRUE(net.recv(1, 0, 2).empty());
}

TEST(Network, StatsCountHeaderAndPayload) {
  Network net(2);
  net.send(0, 1, 1, bytes({1, 2, 3, 4}), CommPhase::kReduce);
  EXPECT_EQ(net.statsFor(0).bytesSent(), 4 + Network::kHeaderBytes);
  EXPECT_EQ(net.statsFor(0).messagesSent(), 1u);
  EXPECT_EQ(net.statsFor(1).bytesReceived(), 4 + Network::kHeaderBytes);
  EXPECT_EQ(net.statsFor(0).bytesSent(CommPhase::kReduce), 4 + Network::kHeaderBytes);
  EXPECT_EQ(net.statsFor(0).bytesSent(CommPhase::kBroadcast), 0u);
  EXPECT_EQ(net.totalBytesSent(), 4 + Network::kHeaderBytes);
}

TEST(Network, ResetStatsZeroes) {
  Network net(2);
  net.send(0, 1, 1, bytes({1}));
  net.resetStats();
  EXPECT_EQ(net.totalBytesSent(), 0u);
  EXPECT_EQ(net.totalMessagesSent(), 0u);
}

TEST(Network, BarrierSynchronizesHosts) {
  constexpr unsigned kHosts = 4;
  Network net(kHosts);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (unsigned h = 0; h < kHosts; ++h) {
    threads.emplace_back([&, h] {
      before.fetch_add(1);
      net.barrier(h);
      // Every host must have incremented `before` by the time any host
      // passes the barrier.
      EXPECT_EQ(before.load(), static_cast<int>(kHosts));
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), static_cast<int>(kHosts));
}

TEST(Network, BarrierReusable) {
  constexpr unsigned kHosts = 3;
  Network net(kHosts);
  std::vector<std::thread> threads;
  std::atomic<int> counter{0};
  for (unsigned h = 0; h < kHosts; ++h) {
    threads.emplace_back([&, h] {
      for (int round = 0; round < 20; ++round) {
        counter.fetch_add(1);
        net.barrier(h);
        EXPECT_EQ(counter.load() % (kHosts * 20 + 1), counter.load());
        net.barrier(h);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.load(), static_cast<int>(kHosts) * 20);
}

// Collectives (all-reduce, broadcast, ...) are covered by
// comm_collectives_test.cpp — they now live in comm::Collectives on top of
// the Transport seam, not on Network itself.

TEST(Network, AbortWakesBlockedReceiver) {
  Network net(2);
  std::thread blocked([&] { EXPECT_THROW(net.recv(1, 0, 1), NetworkAborted); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  net.abort();
  blocked.join();
  EXPECT_TRUE(net.aborted());
  EXPECT_THROW(net.send(0, 1, 1, {}), NetworkAborted);
  EXPECT_THROW(net.barrier(0), NetworkAborted);
}

TEST(Network, AbortWakesBarrierWaiters) {
  Network net(3);
  std::thread w1([&] { EXPECT_THROW(net.barrier(0), NetworkAborted); });
  std::thread w2([&] { EXPECT_THROW(net.barrier(1), NetworkAborted); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  net.abort();
  w1.join();
  w2.join();
}

TEST(Network, TagRangeRegistryAcceptsDisjointAndIdempotent) {
  Network net(2);
  net.registerTagRange(100, 200, "sync");
  net.registerTagRange(200, 300, "serve");  // half-open: touching is disjoint
  net.registerTagRange(100, 200, "sync");   // same owner, same range: ok
}

TEST(Network, TagRangeCollisionAcrossOwnersFires) {
  // A subsystem claiming tags inside another's block is exactly the silent
  // cross-talk bug the registry exists to catch.
  Network net(2);
  net.registerTagRange(100, 200, "sync");
  EXPECT_THROW(net.registerTagRange(150, 160, "ps"), std::logic_error);
  EXPECT_THROW(net.registerTagRange(199, 300, "ps"), std::logic_error);
  // The same owner re-registering a *different* overlapping range is also a
  // bug (a drifted constant), not idempotence.
  EXPECT_THROW(net.registerTagRange(100, 250, "sync"), std::logic_error);
  // Empty ranges are malformed.
  EXPECT_THROW(net.registerTagRange(300, 300, "empty"), std::logic_error);
}

}  // namespace
}  // namespace gw2v::sim
