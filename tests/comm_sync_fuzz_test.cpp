// Oracle-based randomized testing of the Gluon-lite sync engine: a
// sequential reference implementation of the reduce->broadcast semantics is
// run against random update patterns (random host counts, dimensions, dirty
// sets, delta values, round counts) and all replicas must match the oracle
// bit-for-bit for every reducer and every communication strategy.
//
// A second suite cross-checks the parallel/pipelined engine against the
// single-threaded reference path (SyncOptions::serial) over the same random
// dirty sets for codec ∈ {fp32, fp16, int8} × threads ∈ {1, 2, 4} ×
// H ∈ {1, 2, 4, 8} × chunks ∈ {1, 4}: replicas must match bit-for-bit
// (lossy codecs quantize identically on both paths, so the serial engine
// stays the oracle), and with one pipeline chunk the byte counts must be
// equal too (chunked runs pay extra headers/framing, never different bits).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "comm/sync_engine.h"
#include "core/model_combiner.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/vecmath.h"

namespace gw2v::comm {
namespace {

using graph::Label;
using graph::ModelGraph;

struct FuzzConfig {
  unsigned hosts;
  std::uint32_t nodes;
  std::uint32_t dim;
  unsigned rounds;
  int reducerKind;  // 0 SUM, 1 AVG, 2 MC
  SyncStrategy strategy;
  std::uint64_t seed;
  unsigned threads = 1;        // workerThreadsPerHost for the parallel suite
  unsigned pipelineChunks = 1;
  SyncCodec codec = SyncCodec::kFp32;  // wire codec for the parallel suite
};

std::unique_ptr<Reducer> makeReducer(int kind) {
  switch (kind) {
    case 0: return std::make_unique<SumReducer>();
    case 1: return std::make_unique<AvgReducer>();
    default: return std::make_unique<core::ModelCombinerReducer>();
  }
}

/// Deterministic per-(round, host, node, label) update decision + delta.
struct UpdatePlan {
  explicit UpdatePlan(const FuzzConfig& cfg) : cfg_(cfg) {}

  bool touches(unsigned round, unsigned host, std::uint32_t node, int label) const {
    return util::hash64(key(round, host, node, label)) % 100 < 30;  // 30% dirty
  }

  void delta(unsigned round, unsigned host, std::uint32_t node, int label,
             std::vector<float>& out) const {
    util::Rng rng(util::hash64(key(round, host, node, label) ^ 0xdeadULL));
    out.resize(cfg_.dim);
    for (auto& v : out) v = rng.uniformFloat(-0.5f, 0.5f);
  }

 private:
  std::uint64_t key(unsigned round, unsigned host, std::uint32_t node, int label) const {
    return cfg_.seed ^ (static_cast<std::uint64_t>(round) << 40) ^
           (static_cast<std::uint64_t>(host) << 32) ^ (static_cast<std::uint64_t>(node) << 2) ^
           static_cast<std::uint64_t>(label);
  }
  FuzzConfig cfg_;
};

/// Sequential oracle: canonical values evolve exactly as the distributed
/// protocol specifies (deltas folded in host order per node per label).
std::vector<float> runOracle(const FuzzConfig& cfg, const Reducer& reducer) {
  const UpdatePlan plan(cfg);
  const std::size_t total =
      static_cast<std::size_t>(cfg.nodes) * cfg.dim * graph::kNumLabels;
  // Canonical start: zero everywhere (both labels), matching the fuzz model
  // graphs below which skip randomizeEmbeddings.
  std::vector<float> canonical(total, 0.0f);
  const auto rowAt = [&](int label, std::uint32_t node) -> std::span<float> {
    return {canonical.data() +
                (static_cast<std::size_t>(label) * cfg.nodes + node) * cfg.dim,
            cfg.dim};
  };

  std::vector<float> acc(cfg.dim), d(cfg.dim), eff(cfg.dim);
  for (unsigned round = 0; round < cfg.rounds; ++round) {
    for (int label = 0; label < graph::kNumLabels; ++label) {
      for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        unsigned contributions = 0;
        const auto row = rowAt(label, node);
        for (unsigned host = 0; host < cfg.hosts; ++host) {
          if (!plan.touches(round, host, node, label)) continue;
          plan.delta(round, host, node, label, d);
          // Hosts ship (baseline + d) - baseline, the float round trip of d
          // against the (replicated, hence identical) canonical row.
          for (std::uint32_t k = 0; k < cfg.dim; ++k) eff[k] = (row[k] + d[k]) - row[k];
          if (contributions == 0) {
            util::copyInto(eff, acc);
          } else {
            reducer.accumulate(acc, eff);
          }
          ++contributions;
        }
        if (contributions == 0) continue;
        reducer.finalize(acc, contributions);
        util::add(acc, row);
      }
    }
  }
  return canonical;
}

/// Run the engine over the config's update plan; updates are issued from the
/// host thread (deterministic), so any thread-count dependence can only come
/// from the sync path itself.
struct EngineRun {
  std::vector<std::unique_ptr<ModelGraph>> replicas;
  std::uint64_t totalBytes = 0;
};

EngineRun runEngine(const FuzzConfig& cfg, const Reducer& reducer, unsigned threads,
                    SyncOptions sopts) {
  const UpdatePlan plan(cfg);
  EngineRun run;
  run.replicas.resize(cfg.hosts);
  for (auto& r : run.replicas) r = std::make_unique<ModelGraph>(cfg.nodes, cfg.dim);
  const graph::BlockedPartition partition(cfg.nodes, cfg.hosts);
  sim::ClusterOptions copts;
  copts.numHosts = cfg.hosts;
  copts.workerThreadsPerHost = threads;
  const auto report = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    ModelGraph& model = *run.replicas[ctx.id()];
    SyncEngine engine(ctx, model, partition, reducer, cfg.strategy, {}, sopts);
    std::vector<float> d;
    for (unsigned round = 0; round < cfg.rounds; ++round) {
      for (int label = 0; label < graph::kNumLabels; ++label) {
        for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
          if (!plan.touches(round, ctx.id(), node, label)) continue;
          plan.delta(round, ctx.id(), node, label, d);
          util::add(d, model.mutableRow(static_cast<Label>(label), node));
          model.markTouched(static_cast<Label>(label), node);
        }
      }
      engine.sync();
    }
  });
  run.totalBytes = report.totalBytes();
  return run;
}

class SyncFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(SyncFuzz, ReplicasMatchOracle) {
  const FuzzConfig cfg = GetParam();
  const UpdatePlan plan(cfg);
  const auto reducer = makeReducer(cfg.reducerKind);

  std::vector<std::unique_ptr<ModelGraph>> replicas(cfg.hosts);
  for (auto& r : replicas) r = std::make_unique<ModelGraph>(cfg.nodes, cfg.dim);

  const graph::BlockedPartition partition(cfg.nodes, cfg.hosts);
  sim::ClusterOptions copts;
  copts.numHosts = cfg.hosts;
  sim::runCluster(copts, [&](sim::HostContext& ctx) {
    ModelGraph& model = *replicas[ctx.id()];
    SyncEngine engine(ctx, model, partition, *reducer, cfg.strategy);
    std::vector<float> d;
    for (unsigned round = 0; round < cfg.rounds; ++round) {
      for (int label = 0; label < graph::kNumLabels; ++label) {
        for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
          if (!plan.touches(round, ctx.id(), node, label)) continue;
          plan.delta(round, ctx.id(), node, label, d);
          util::add(d, model.mutableRow(static_cast<Label>(label), node));
          model.markTouched(static_cast<Label>(label), node);
        }
      }
      engine.sync();
    }
  });

  const auto oracle = runOracle(cfg, *reducer);
  // Under Naive/Opt every replica must equal the oracle; under the
  // parameterless Pull sync (will-access = everything) the same holds.
  for (unsigned host = 0; host < cfg.hosts; ++host) {
    for (int label = 0; label < graph::kNumLabels; ++label) {
      for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        const auto got = replicas[host]->row(static_cast<Label>(label), node);
        const float* want =
            oracle.data() + (static_cast<std::size_t>(label) * cfg.nodes + node) * cfg.dim;
        for (std::uint32_t k = 0; k < cfg.dim; ++k) {
          ASSERT_EQ(got[k], want[k]) << "host " << host << " label " << label << " node "
                                     << node << " dim " << k;
        }
      }
    }
  }
}

std::vector<FuzzConfig> fuzzConfigs() {
  std::vector<FuzzConfig> out;
  std::uint64_t seed = 1000;
  for (const unsigned hosts : {1u, 2u, 3u, 5u}) {
    for (const int reducer : {0, 1, 2}) {
      for (const auto strategy :
           {SyncStrategy::kRepModelNaive, SyncStrategy::kRepModelOpt,
            SyncStrategy::kPullModel}) {
        out.push_back(FuzzConfig{hosts, 17, 3, 4, reducer, strategy, seed++});
      }
    }
  }
  // A couple of stranger shapes.
  out.push_back(FuzzConfig{4, 1, 8, 3, 0, SyncStrategy::kRepModelOpt, 77});
  out.push_back(FuzzConfig{6, 64, 1, 2, 2, SyncStrategy::kRepModelOpt, 78});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Patterns, SyncFuzz, ::testing::ValuesIn(fuzzConfigs()));

class SyncFuzzParallel : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(SyncFuzzParallel, ParallelMatchesSerialReference) {
  const FuzzConfig cfg = GetParam();
  const auto reducer = makeReducer(cfg.reducerKind);

  SyncOptions serialOpts;
  serialOpts.serial = true;
  serialOpts.codec = cfg.codec;
  const EngineRun serial = runEngine(cfg, *reducer, 1, serialOpts);

  SyncOptions parallelOpts;
  parallelOpts.pipelineChunks = cfg.pipelineChunks;
  parallelOpts.codec = cfg.codec;
  const EngineRun parallel = runEngine(cfg, *reducer, cfg.threads, parallelOpts);

  if (cfg.pipelineChunks <= 1) {
    EXPECT_EQ(serial.totalBytes, parallel.totalBytes);
  } else {
    // Chunking re-sends the per-label count headers and message framing.
    EXPECT_GE(parallel.totalBytes, serial.totalBytes);
  }
  for (unsigned host = 0; host < cfg.hosts; ++host) {
    for (int label = 0; label < graph::kNumLabels; ++label) {
      for (std::uint32_t node = 0; node < cfg.nodes; ++node) {
        const auto got = parallel.replicas[host]->row(static_cast<Label>(label), node);
        const auto want = serial.replicas[host]->row(static_cast<Label>(label), node);
        for (std::uint32_t k = 0; k < cfg.dim; ++k) {
          ASSERT_EQ(got[k], want[k])
              << "host " << host << " label " << label << " node " << node << " dim " << k
              << " threads " << cfg.threads << " chunks " << cfg.pipelineChunks << " codec "
              << syncCodecName(cfg.codec);
        }
      }
    }
  }
}

std::vector<FuzzConfig> parallelConfigs() {
  std::vector<FuzzConfig> out;
  std::uint64_t seed = 9000;
  // Full codec grid: every codec (fp32 exact, fp16/int8 lossy + error
  // feedback) must make the parallel engine bit-identical to the serial
  // reference at every host/thread/strategy/chunking shape. With one chunk
  // the byte counts must match exactly too (same entries, same codec widths).
  for (const auto codec : {SyncCodec::kFp32, SyncCodec::kFp16, SyncCodec::kInt8}) {
    for (const unsigned hosts : {1u, 2u, 4u, 8u}) {
      for (const unsigned threads : {1u, 2u, 4u}) {
        for (const auto strategy :
             {SyncStrategy::kRepModelNaive, SyncStrategy::kRepModelOpt,
              SyncStrategy::kPullModel}) {
          for (const unsigned chunks : {1u, 4u}) {
            out.push_back(
                FuzzConfig{hosts, 33, 5, 3, 2, strategy, seed++, threads, chunks, codec});
          }
        }
      }
    }
  }
  // Pipelined shapes: chunk counts that do and don't divide the node count,
  // including more chunks than some hosts own rows.
  for (const auto codec : {SyncCodec::kFp32, SyncCodec::kFp16, SyncCodec::kInt8}) {
    for (const auto strategy :
         {SyncStrategy::kRepModelNaive, SyncStrategy::kRepModelOpt, SyncStrategy::kPullModel}) {
      out.push_back(FuzzConfig{2, 33, 5, 3, 2, strategy, seed++, 4, 5, codec});
      out.push_back(FuzzConfig{4, 33, 5, 3, 0, strategy, seed++, 2, 3, codec});
      out.push_back(FuzzConfig{8, 33, 5, 3, 2, strategy, seed++, 4, 7, codec});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, SyncFuzzParallel, ::testing::ValuesIn(parallelConfigs()));

}  // namespace
}  // namespace gw2v::comm
