#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

// Edge cases the ps:: client row cache leans on: version-keyed entries at
// tiny capacities, re-insert after a version bump, and the get()-returns-a-
// copy contract that makes "pinned reads" (claims that survive eviction)
// sound.

namespace gw2v::util {
namespace {

/// The shape the ps client caches: per-label versions + values.
struct VersionedRow {
  std::uint64_t ver[2];
  std::vector<float> values;
};

TEST(LruCache, CapacityOneEvictsOnSecondKey) {
  LruCache<int, int> cache(1);
  cache.put(1, 10);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.get(1).has_value());
  cache.put(2, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.get(1).has_value());
  ASSERT_TRUE(cache.get(2).has_value());
  EXPECT_EQ(*cache.get(2), 20);
}

TEST(LruCache, CapacityOneUpdateInPlaceDoesNotEvict) {
  // A put() of the resident key must take the update path, not evict-then-
  // insert (which at capacity 1 would pop the very entry being updated).
  LruCache<int, std::string> cache(1);
  cache.put(7, "a");
  cache.put(7, "b");
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.get(7).has_value());
  EXPECT_EQ(*cache.get(7), "b");
}

TEST(LruCache, ReinsertAfterVersionBumpReplacesValue) {
  // The ps client re-puts a row every time a reply refreshes it; the entry
  // must carry the new version, never a stale mix.
  LruCache<std::uint32_t, VersionedRow> cache(4);
  cache.put(3, {{1, 1}, {0.5f, 0.25f}});
  cache.put(3, {{2, 1}, {0.75f, 0.125f}});
  const auto hit = cache.get(3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ver[0], 2u);
  EXPECT_EQ(hit->ver[1], 1u);
  EXPECT_EQ(hit->values[0], 0.75f);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, GetReturnsCopyThatSurvivesEviction) {
  // get() hands back a copy, so a claimed value stays valid even if the
  // entry is evicted before the claim is consumed — the exact situation a
  // capacity-1 ps row cache creates within a single round.
  LruCache<std::uint32_t, VersionedRow> cache(1);
  cache.put(3, {{5, 5}, {1.0f, 2.0f, 3.0f}});
  const auto claim = cache.get(3);
  ASSERT_TRUE(claim.has_value());
  cache.put(9, {{1, 1}, {9.0f}});  // evicts row 3
  EXPECT_FALSE(cache.get(3).has_value());
  EXPECT_EQ(claim->ver[0], 5u);
  ASSERT_EQ(claim->values.size(), 3u);
  EXPECT_EQ(claim->values[2], 3.0f);
}

TEST(LruCache, GetPromotesSoPutEvictsTheColdKey) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_TRUE(cache.get(1).has_value());  // 1 is now most-recent
  cache.put(3, 30);                       // evicts 2, the LRU
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
}

TEST(LruCache, CapacityZeroDisables) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(LruCache, TakeRemovesAndReturnsValue) {
  // take() is the move-out claim path: the value comes back, the entry is
  // gone, and the freed slot means the next put() needn't evict.
  LruCache<std::uint32_t, VersionedRow> cache(1);
  cache.put(3, {{5, 5}, {1.0f, 2.0f}});
  const auto claim = cache.take(3);
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->ver[0], 5u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(3).has_value());
  EXPECT_FALSE(cache.take(3).has_value());  // second take misses
  cache.put(9, {{1, 1}, {9.0f}});
  EXPECT_TRUE(cache.get(9).has_value());
}

TEST(LruCache, PutReturnsDisplacedValue) {
  // put() hands back whatever it displaced — the eviction victim, the
  // overwritten value, or (capacity 0) the input itself — so callers can
  // recycle heap-heavy entries instead of freeing them.
  LruCache<int, std::string> cache(1);
  EXPECT_FALSE(cache.put(1, "a").has_value());  // empty slot: nothing displaced
  const auto overwritten = cache.put(1, "b");
  ASSERT_TRUE(overwritten.has_value());
  EXPECT_EQ(*overwritten, "a");
  const auto victim = cache.put(2, "c");  // evicts key 1
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, "b");

  LruCache<int, std::string> off(0);
  const auto bounced = off.put(7, "x");
  ASSERT_TRUE(bounced.has_value());
  EXPECT_EQ(*bounced, "x");
}

TEST(LruCache, LruKeyTracksColdestWithoutPromoting) {
  LruCache<int, int> cache(3);
  EXPECT_FALSE(cache.lruKey().has_value());
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  ASSERT_TRUE(cache.lruKey().has_value());
  EXPECT_EQ(*cache.lruKey(), 1);
  // get() promotes; lruKey() itself must not.
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(*cache.lruKey(), 2);
  EXPECT_EQ(*cache.lruKey(), 2);
  // take(lruKey) + put is the write-back-before-eviction protocol: the
  // victim leaves before the newcomer lands, so put never self-evicts.
  const auto victim = cache.take(*cache.lruKey());
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 20);
  EXPECT_FALSE(cache.put(4, 40).has_value());
  EXPECT_EQ(cache.size(), 3u);
}

}  // namespace
}  // namespace gw2v::util
