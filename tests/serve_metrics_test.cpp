#include "serve/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/lru_cache.h"

namespace gw2v::serve {
namespace {

using util::LruCache;

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.quantileMicros(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantileMicros(1.0), 7.0);
  EXPECT_DOUBLE_EQ(h.meanMicros(), 3.5);
}

TEST(LatencyHistogram, QuantilesWithinBucketError) {
  // Log-bucketed with 8 sub-buckets per octave: relative error <= 12.5%
  // (half a bucket width, via the midpoint rule).
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = q * 10000.0;
    const double approx = h.quantileMicros(q);
    EXPECT_NEAR(approx, exact, exact * 0.125) << "q=" << q;
  }
  EXPECT_NEAR(h.meanMicros(), 5000.5, 1e-6);
}

TEST(LatencyHistogram, BucketOfIsMonotonicAndInRange) {
  std::uint64_t prev = 0;
  for (std::uint64_t v = 0; v < (1u << 14); ++v) {
    const unsigned b = LatencyHistogram::bucketOf(v);
    ASSERT_LT(b, LatencyHistogram::kNumBuckets);
    ASSERT_GE(b, prev);
    prev = b;
  }
  // The far end of the range must still map inside the table.
  EXPECT_LT(LatencyHistogram::bucketOf(~0ull), LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogram, EmptyHistogramReadsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantileMicros(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.meanMicros(), 0.0);
}

TEST(ServeMetrics, DerivedRates) {
  ServeMetrics m;
  EXPECT_DOUBLE_EQ(m.cacheHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.batchOccupancy(32), 0.0);
  m.cacheHits = 3;
  m.cacheMisses = 1;
  m.batches = 2;
  m.batchedQueries = 16;
  EXPECT_DOUBLE_EQ(m.cacheHitRate(), 0.75);
  EXPECT_DOUBLE_EQ(m.batchOccupancy(32), 16.0 / 64.0);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_TRUE(cache.get(1).has_value());  // promote 1; 2 is now LRU
  cache.put(3, "three");                  // evicts 2
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), "one");
  EXPECT_EQ(cache.get(3).value(), "three");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, PutOverwritesAndPromotes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite promotes 1; 2 is LRU
  cache.put(3, 30);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value(), 11);
}

TEST(LruCache, ZeroCapacityDisables) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace gw2v::serve
