#include "comm/sync_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/model_combiner.h"
#include "sim/cluster.h"
#include "util/vecmath.h"

namespace gw2v::comm {
namespace {

using graph::Label;
using graph::ModelGraph;

constexpr std::uint32_t kNodes = 12;
constexpr std::uint32_t kDim = 4;

/// Run a cluster where each host applies `update(host, model)` then syncs
/// once; returns all replicas for inspection.
struct SyncRunResult {
  std::vector<std::unique_ptr<ModelGraph>> replicas;
  sim::ClusterReport report;
};

template <typename UpdateFn>
SyncRunResult runOneSync(unsigned hosts, const Reducer& reducer, SyncStrategy strategy,
                         UpdateFn update, unsigned syncs = 1) {
  SyncRunResult out;
  out.replicas.resize(hosts);
  for (unsigned h = 0; h < hosts; ++h) {
    out.replicas[h] = std::make_unique<ModelGraph>(kNodes, kDim);
    out.replicas[h]->randomizeEmbeddings(7);
  }
  graph::BlockedPartition partition(kNodes, hosts);
  sim::ClusterOptions copts;
  copts.numHosts = hosts;
  out.report = sim::runCluster(copts, [&](sim::HostContext& ctx) {
    SyncEngine engine(ctx, *out.replicas[ctx.id()], partition, reducer, strategy);
    for (unsigned s = 0; s < syncs; ++s) {
      update(ctx.id(), *out.replicas[ctx.id()], s);
      engine.sync();
    }
  });
  return out;
}

void bumpRow(ModelGraph& m, Label label, std::uint32_t node, float delta) {
  auto row = m.mutableRow(label, node);
  for (auto& v : row) v += delta;
  m.markTouched(label, node);
}

TEST(SyncEngine, SingleHostSyncIsIdentity) {
  const SumReducer sum;
  auto run = runOneSync(1, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned, ModelGraph& m, unsigned) { bumpRow(m, Label::kEmbedding, 0, 1.0f); });
  // Value unchanged by sync (the local update is already in place).
  ModelGraph expect(kNodes, kDim);
  expect.randomizeEmbeddings(7);
  const auto got = run.replicas[0]->row(Label::kEmbedding, 0);
  const auto base = expect.row(Label::kEmbedding, 0);
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_FLOAT_EQ(got[d], base[d] + 1.0f);
  // And no bulk traffic.
  EXPECT_EQ(run.report.totalBytes(), 0u);
}

TEST(SyncEngine, ReplicasIdenticalAfterSync) {
  const SumReducer sum;
  auto run = runOneSync(4, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          bumpRow(m, Label::kEmbedding, h, 1.0f);  // disjoint rows
                        });
  for (unsigned h = 1; h < 4; ++h) {
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      for (int l = 0; l < graph::kNumLabels; ++l) {
        const auto a = run.replicas[0]->row(static_cast<Label>(l), n);
        const auto b = run.replicas[h]->row(static_cast<Label>(l), n);
        for (std::uint32_t d = 0; d < kDim; ++d) {
          ASSERT_EQ(a[d], b[d]) << "host " << h << " node " << n;
        }
      }
    }
  }
}

TEST(SyncEngine, DisjointUpdatesAllSurvive) {
  const SumReducer sum;
  auto run = runOneSync(3, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          bumpRow(m, Label::kTraining, h * 2, static_cast<float>(h + 1));
                        });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  for (unsigned h = 0; h < 3; ++h) {
    const auto got = run.replicas[0]->row(Label::kTraining, h * 2);
    for (std::uint32_t d = 0; d < kDim; ++d) {
      EXPECT_FLOAT_EQ(got[d], static_cast<float>(h + 1)) << "node " << h * 2;
    }
  }
}

TEST(SyncEngine, SumReductionAddsOverlappingDeltas) {
  const SumReducer sum;
  auto run = runOneSync(4, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned, ModelGraph& m, unsigned) {
                          bumpRow(m, Label::kEmbedding, 5, 1.0f);  // all hosts, same row
                        });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  const auto got = run.replicas[0]->row(Label::kEmbedding, 5);
  const auto orig = base.row(Label::kEmbedding, 5);
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_NEAR(got[d], orig[d] + 4.0f, 1e-5f);
}

TEST(SyncEngine, AvgReductionAveragesOverlappingDeltas) {
  const AvgReducer avg;
  auto run = runOneSync(4, avg, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          bumpRow(m, Label::kEmbedding, 5, static_cast<float>(h + 1));
                        });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  const auto got = run.replicas[0]->row(Label::kEmbedding, 5);
  const auto orig = base.row(Label::kEmbedding, 5);
  // mean(1,2,3,4) = 2.5
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_NEAR(got[d], orig[d] + 2.5f, 1e-5f);
}

TEST(SyncEngine, AvgCountsOnlyContributors) {
  const AvgReducer avg;
  auto run = runOneSync(4, avg, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          if (h < 2) bumpRow(m, Label::kEmbedding, 3, 2.0f);
                        });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  const auto got = run.replicas[0]->row(Label::kEmbedding, 3);
  const auto orig = base.row(Label::kEmbedding, 3);
  // mean over the 2 updaters = 2.0, not 1.0 over all 4 hosts.
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_NEAR(got[d], orig[d] + 2.0f, 1e-5f);
}

TEST(SyncEngine, ModelCombinerParallelDeltasCollapse) {
  const core::ModelCombinerReducer mc;
  auto run = runOneSync(3, mc, SyncStrategy::kRepModelOpt,
                        [](unsigned, ModelGraph& m, unsigned) {
                          bumpRow(m, Label::kEmbedding, 2, 1.0f);  // identical deltas
                        });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  const auto got = run.replicas[0]->row(Label::kEmbedding, 2);
  const auto orig = base.row(Label::kEmbedding, 2);
  // Identical parallel deltas collapse to one (not 3x).
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_NEAR(got[d], orig[d] + 1.0f, 1e-5f);
}

TEST(SyncEngine, UntouchedNodesUnchanged) {
  const SumReducer sum;
  auto run = runOneSync(4, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned, ModelGraph& m, unsigned) { bumpRow(m, Label::kEmbedding, 0, 1.0f); });
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  for (std::uint32_t n = 1; n < kNodes; ++n) {
    const auto got = run.replicas[2]->row(Label::kEmbedding, n);
    const auto orig = base.row(Label::kEmbedding, n);
    for (std::uint32_t d = 0; d < kDim; ++d) ASSERT_EQ(got[d], orig[d]);
  }
}

TEST(SyncEngine, NoUpdatesSyncIsNoopButCheap) {
  const SumReducer sum;
  auto run = runOneSync(4, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned, ModelGraph&, unsigned) {});
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const auto got = run.replicas[1]->row(Label::kEmbedding, n);
    const auto orig = base.row(Label::kEmbedding, n);
    for (std::uint32_t d = 0; d < kDim; ++d) ASSERT_EQ(got[d], orig[d]);
  }
  // Opt strategy: empty payloads only — exactly 4 hosts x 3 peers x 2
  // messages (reduce + broadcast), each a 16-byte header + two u32 counts.
  EXPECT_EQ(run.report.totalBytes(),
            4u * 3u * 2u * (sim::Network::kHeaderBytes + 2 * sizeof(std::uint32_t)));
}

TEST(SyncEngine, SequentialDeltasAccumulateAcrossRounds) {
  const SumReducer sum;
  auto run = runOneSync(2, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          if (h == 0) bumpRow(m, Label::kEmbedding, 1, 1.0f);
                        },
                        /*syncs=*/3);
  ModelGraph base(kNodes, kDim);
  base.randomizeEmbeddings(7);
  const auto got = run.replicas[1]->row(Label::kEmbedding, 1);
  const auto orig = base.row(Label::kEmbedding, 1);
  for (std::uint32_t d = 0; d < kDim; ++d) EXPECT_NEAR(got[d], orig[d] + 3.0f, 1e-5f);
}

/// The three communication strategies must produce identical canonical
/// models for identical updates — they differ only in traffic (Section 4.4).
class StrategyEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(StrategyEquivalence, CanonicalModelsMatchBitForBit) {
  const unsigned hosts = GetParam();
  const SumReducer sum;
  const auto update = [](unsigned h, ModelGraph& m, unsigned s) {
    // Overlapping, host- and round-dependent updates.
    bumpRow(m, Label::kEmbedding, (h + s) % kNodes, 0.5f + static_cast<float>(h));
    bumpRow(m, Label::kTraining, (2 * h + s) % kNodes, 1.0f);
    bumpRow(m, Label::kEmbedding, 5, 0.25f);
  };
  // PullModel's sync(BitVector) path is exercised by the trainer tests; here
  // the parameterless sync() treats "will access" as everything, which must
  // still reconcile masters identically.
  auto naive = runOneSync(hosts, sum, SyncStrategy::kRepModelNaive, update, 3);
  auto opt = runOneSync(hosts, sum, SyncStrategy::kRepModelOpt, update, 3);
  auto pull = runOneSync(hosts, sum, SyncStrategy::kPullModel, update, 3);

  graph::BlockedPartition partition(kNodes, hosts);
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    const unsigned owner = partition.masterOf(n);
    for (int l = 0; l < graph::kNumLabels; ++l) {
      const auto a = naive.replicas[owner]->row(static_cast<Label>(l), n);
      const auto b = opt.replicas[owner]->row(static_cast<Label>(l), n);
      const auto c = pull.replicas[owner]->row(static_cast<Label>(l), n);
      for (std::uint32_t d = 0; d < kDim; ++d) {
        ASSERT_EQ(a[d], b[d]) << "naive vs opt, node " << n;
        ASSERT_EQ(a[d], c[d]) << "naive vs pull, node " << n;
      }
    }
  }
  // Volume ordering: Opt strictly below Naive for sparse updates.
  if (hosts > 1) {
    EXPECT_LT(opt.report.totalBytes(), naive.report.totalBytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Hosts, StrategyEquivalence, ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(SyncEngine, NaiveVolumeMatchesFullModel) {
  const SumReducer sum;
  constexpr unsigned kHosts = 3;
  auto run = runOneSync(kHosts, sum, SyncStrategy::kRepModelNaive,
                        [](unsigned, ModelGraph& m, unsigned) { bumpRow(m, Label::kEmbedding, 0, 1.0f); });
  // Reduce: every host ships every non-owned node once per label.
  // Broadcast: every master ships every owned node to every other host.
  const std::uint64_t rowBytes = sizeof(std::uint32_t) + kDim * sizeof(float);
  const std::uint64_t reduceEntries =
      static_cast<std::uint64_t>(kNodes) * (kHosts - 1) * graph::kNumLabels;
  const std::uint64_t bcastEntries = reduceEntries;
  const std::uint64_t headers =
      static_cast<std::uint64_t>(kHosts) * (kHosts - 1) * 2 *
      (sim::Network::kHeaderBytes + graph::kNumLabels * sizeof(std::uint32_t));
  EXPECT_EQ(run.report.totalBytes(), (reduceEntries + bcastEntries) * rowBytes + headers);
}

TEST(SyncEngine, OptReducePhaseBytesScaleWithTouched) {
  const SumReducer sum;
  auto one = runOneSync(2, sum, SyncStrategy::kRepModelOpt,
                        [](unsigned h, ModelGraph& m, unsigned) {
                          if (h == 1) bumpRow(m, Label::kEmbedding, 0, 1.0f);
                        });
  auto many = runOneSync(2, sum, SyncStrategy::kRepModelOpt,
                         [](unsigned h, ModelGraph& m, unsigned) {
                           if (h == 1) {
                             for (std::uint32_t n = 0; n < 6; ++n)
                               bumpRow(m, Label::kEmbedding, n, 1.0f);
                           }
                         });
  const auto reduceBytes = [](const SyncRunResult& r) {
    std::uint64_t total = 0;
    for (const auto& h : r.report.hosts) total += h.comm.bytesSent;
    return total;
  };
  EXPECT_LT(reduceBytes(one), reduceBytes(many));
}

TEST(SyncEngine, RoundsCounterAdvances) {
  const SumReducer sum;
  ModelGraph m(kNodes, kDim);
  graph::BlockedPartition partition(kNodes, 1);
  sim::ClusterOptions copts;
  copts.numHosts = 1;
  sim::runCluster(copts, [&](sim::HostContext& ctx) {
    SyncEngine engine(ctx, m, partition, sum, SyncStrategy::kRepModelOpt);
    EXPECT_EQ(engine.rounds(), 0u);
    engine.sync();
    engine.sync();
    EXPECT_EQ(engine.rounds(), 2u);
  });
}

TEST(SyncEngine, StrategyNames) {
  EXPECT_STREQ(syncStrategyName(SyncStrategy::kRepModelNaive), "RepModel-Naive");
  EXPECT_STREQ(syncStrategyName(SyncStrategy::kRepModelOpt), "RepModel-Opt");
  EXPECT_STREQ(syncStrategyName(SyncStrategy::kPullModel), "PullModel");
}

TEST(SyncEngine, ModelledCommTimeAccumulates) {
  const SumReducer sum;
  auto run = runOneSync(2, sum, SyncStrategy::kRepModelNaive,
                        [](unsigned, ModelGraph& m, unsigned) { bumpRow(m, Label::kEmbedding, 0, 1.0f); });
  for (const auto& h : run.report.hosts) EXPECT_GT(h.modelledCommSeconds, 0.0);
}

}  // namespace
}  // namespace gw2v::comm
