// Trainer ingestion-path equivalence: the pre-refactor span API, the
// materialized SpanCorpusSource path, and the streaming path must produce
// bit-identical models (shuffle off) at any chunk size; with shuffle on the
// materialized path stays bit-identical to the span API while streaming is
// deterministic per chunk size. Also covers the under-delivery error and
// the corpusResidentBytesPeak accounting the memory gate relies on.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/trainer.h"
#include "text/corpus.h"
#include "text/streaming.h"
#include "util/rng.h"

namespace gw2v::core {
namespace {

text::Vocabulary makeVocab(std::uint32_t words) {
  text::Vocabulary v;
  for (std::uint32_t i = 0; i < words; ++i) v.addCount("w" + std::to_string(i), 500 - i);
  v.finalize(1);
  return v;
}

std::vector<text::WordId> makeCorpus(std::size_t n, std::uint32_t words, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<text::WordId> c(n);
  for (auto& w : c) w = static_cast<text::WordId>(rng.bounded(words));
  return c;
}

TrainOptions baseOpts(unsigned hosts) {
  TrainOptions o;
  o.sgns.dim = 8;
  o.sgns.window = 3;
  o.sgns.negatives = 3;
  o.sgns.subsample = 0;
  o.epochs = 2;
  o.numHosts = hosts;
  o.syncRoundsPerEpoch = 3;
  o.trackLoss = false;
  return o;
}

void expectSameModel(const graph::ModelGraph& a, const graph::ModelGraph& b) {
  ASSERT_EQ(a.numNodes(), b.numNodes());
  for (std::uint32_t n = 0; n < a.numNodes(); ++n) {
    const auto ra = a.row(graph::Label::kEmbedding, n);
    const auto rb = b.row(graph::Label::kEmbedding, n);
    for (std::size_t d = 0; d < ra.size(); ++d) ASSERT_EQ(ra[d], rb[d]) << "node " << n;
  }
}

/// Stream the materialized per-host parts through a bounded ring.
std::unique_ptr<text::StreamingCorpus> streamParts(
    const std::vector<std::vector<text::WordId>>& parts, std::size_t chunkTokens) {
  std::vector<std::uint64_t> per;
  for (const auto& p : parts) per.push_back(p.size());
  text::StreamingCorpus::Options opts;
  opts.chunkTokens = chunkTokens;
  opts.ringChunks = 2;
  return std::make_unique<text::StreamingCorpus>(
      std::move(per),
      [&parts](unsigned shard, unsigned, text::StreamingCorpus::Sink& sink) {
        sink.push(parts[shard]);
      },
      opts);
}

TEST(StreamTrain, SpanAndSourcePathsAgreeAcrossHostsAndStrategies) {
  const auto vocab = makeVocab(20);
  const auto corpus = makeCorpus(1800, 20, 11);
  for (const unsigned hosts : {1u, 2u, 4u}) {
    TrainOptions o = baseOpts(hosts);
    const GraphWord2Vec trainer(vocab, o);
    const auto bySpan = trainer.train(corpus);

    text::SpanCorpusSource source(corpus, hosts);
    const auto bySource = trainer.train(source);
    expectSameModel(bySpan.model, bySource.model);

    const auto parts = text::partitionCorpus(corpus, hosts);
    for (const std::size_t chunk : {64u, 257u, 4096u}) {
      auto streaming = streamParts(parts, chunk);
      const auto byStream = trainer.train(*streaming);
      expectSameModel(bySpan.model, byStream.model);
    }
  }
}

TEST(StreamTrain, OtherStrategiesAndCbowAgree) {
  const auto vocab = makeVocab(18);
  const auto corpus = makeCorpus(1500, 18, 12);
  const auto parts = text::partitionCorpus(corpus, 2);
  for (const auto strategy : {comm::SyncStrategy::kRepModelNaive, comm::SyncStrategy::kPullModel}) {
    TrainOptions o = baseOpts(2);
    o.strategy = strategy;
    const GraphWord2Vec trainer(vocab, o);
    const auto bySpan = trainer.train(corpus);
    auto streaming = streamParts(parts, 128);
    expectSameModel(bySpan.model, trainer.train(*streaming).model);
  }
  TrainOptions o = baseOpts(2);
  o.sgns.architecture = Architecture::kCbow;
  const GraphWord2Vec trainer(vocab, o);
  const auto bySpan = trainer.train(corpus);
  auto streaming = streamParts(parts, 101);
  expectSameModel(bySpan.model, trainer.train(*streaming).model);
}

TEST(StreamTrain, ShuffleMaterializedMatchesSpanBitwise) {
  const auto vocab = makeVocab(20);
  const auto corpus = makeCorpus(1600, 20, 13);
  TrainOptions o = baseOpts(2);
  o.shuffleEachEpoch = true;
  const GraphWord2Vec trainer(vocab, o);
  const auto bySpan = trainer.train(corpus);
  text::SpanCorpusSource source(corpus, 2);
  expectSameModel(bySpan.model, trainer.train(source).model);
}

TEST(StreamTrain, ShuffleStreamingDeterministicPerChunkSize) {
  const auto vocab = makeVocab(20);
  const auto corpus = makeCorpus(1600, 20, 14);
  const auto parts = text::partitionCorpus(corpus, 2);
  TrainOptions o = baseOpts(2);
  o.shuffleEachEpoch = true;
  const GraphWord2Vec trainer(vocab, o);

  auto s1 = streamParts(parts, 128);
  auto s2 = streamParts(parts, 128);
  const auto a = trainer.train(*s1);
  const auto b = trainer.train(*s2);
  expectSameModel(a.model, b.model);  // same chunk size => same bits

  // Chunk-local shuffling actually reorders training (differs from off).
  o.shuffleEachEpoch = false;
  auto s3 = streamParts(parts, 128);
  const auto off = GraphWord2Vec(vocab, o).train(*s3);
  bool differs = false;
  for (std::uint32_t n = 0; n < a.model.numNodes() && !differs; ++n) {
    const auto ra = a.model.row(graph::Label::kEmbedding, n);
    const auto rb = off.model.row(graph::Label::kEmbedding, n);
    for (std::size_t d = 0; d < ra.size(); ++d) differs = differs || ra[d] != rb[d];
  }
  EXPECT_TRUE(differs);
}

TEST(StreamTrain, ShardCountMustMatchHosts) {
  const auto vocab = makeVocab(10);
  const auto corpus = makeCorpus(200, 10, 15);
  text::SpanCorpusSource source(corpus, 3);
  EXPECT_THROW(GraphWord2Vec(vocab, baseOpts(2)).train(source), std::invalid_argument);
}

TEST(StreamTrain, UnderDeliveringShardThrows) {
  const auto vocab = makeVocab(10);
  const auto part = makeCorpus(500, 10, 16);
  text::StreamingCorpus::Options sopts;
  sopts.chunkTokens = 64;
  // Declares 600 tokens per epoch but produces only 500.
  text::StreamingCorpus source(
      {600},
      [&part](unsigned, unsigned, text::StreamingCorpus::Sink& sink) { sink.push(part); },
      sopts);
  EXPECT_THROW(GraphWord2Vec(vocab, baseOpts(1)).train(source), std::runtime_error);
}

TEST(StreamTrain, InvalidStreamedIdThrows) {
  const auto vocab = makeVocab(10);
  auto part = makeCorpus(400, 10, 17);
  part[250] = 10;  // out of vocabulary
  text::StreamingCorpus source(
      {400},
      [&part](unsigned, unsigned, text::StreamingCorpus::Sink& sink) { sink.push(part); });
  EXPECT_THROW(GraphWord2Vec(vocab, baseOpts(1)).train(source), std::out_of_range);
}

TEST(StreamTrain, StreamingPeakMemoryBelowMaterialized) {
  const auto vocab = makeVocab(30);
  const auto corpus = makeCorpus(20000, 30, 18);
  TrainOptions o = baseOpts(2);
  const GraphWord2Vec trainer(vocab, o);

  text::SpanCorpusSource span(corpus, 2);
  const auto mat = trainer.train(span);
  EXPECT_GE(mat.corpusResidentBytesPeak, corpus.size() * sizeof(text::WordId));

  const auto parts = text::partitionCorpus(corpus, 2);
  auto streaming = streamParts(parts, 512);
  const auto str = trainer.train(*streaming);
  EXPECT_GT(str.corpusResidentBytesPeak, 0u);
  // Ring slots + round-assembly scratch, vs the whole resident corpus. The
  // ratio shrinks with corpus size (the bench gates it at 25% at scale);
  // here just require a clear win.
  EXPECT_LT(str.corpusResidentBytesPeak, mat.corpusResidentBytesPeak * 3 / 4);
}

}  // namespace
}  // namespace gw2v::core
